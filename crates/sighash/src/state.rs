//! Resumable intermediate hash state.

use crate::LANES;

/// Intermediate state of the path hash after some prefix of components.
///
/// The paper stores this in every dentry ("we store the intermediate state
/// of the hash function in each dentry so that hashing can resume from any
/// prefix", §3.1), which is what makes relative-path fastpath lookups cheap:
/// a lookup of `foo/bar` under `/home/alice` resumes from the state stored
/// in `/home/alice`'s dentry instead of re-hashing the working directory's
/// absolute path.
///
/// The state is 36 bytes and `Copy`; equality compares the exact
/// accumulator values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HashState {
    /// Per-lane accumulators.
    pub(crate) acc: [u64; LANES],
    /// Stream position in 32-bit words (shared by all lanes).
    pub(crate) pos: u32,
}

impl HashState {
    pub(crate) fn new(init: [u64; LANES]) -> Self {
        HashState { acc: init, pos: 0 }
    }

    /// Number of 32-bit words consumed so far; the root state is at 0.
    pub fn words_consumed(&self) -> u32 {
        self.pos
    }

    /// True if this is a root (empty-path) state of *some* key — i.e. no
    /// words have been consumed yet.
    pub fn is_root(&self) -> bool {
        self.pos == 0
    }

    /// The raw accumulator lanes and stream position, for serialization
    /// (the warm-restart index persists dentry hash states across a
    /// remount). Exact round-trip with [`HashState::from_wire`].
    pub fn to_wire(&self) -> ([u64; LANES], u32) {
        (self.acc, self.pos)
    }

    /// Reconstructs a state from its [`to_wire`](HashState::to_wire)
    /// parts. The state is only meaningful under the key that produced
    /// it; callers that cannot prove the key survived (e.g. warm restart
    /// under a fresh boot key) must recompute rather than trust it.
    pub fn from_wire(acc: [u64; LANES], pos: u32) -> Self {
        HashState { acc, pos }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HashKey;

    #[test]
    fn root_state_is_root() {
        let key = HashKey::from_seed(1);
        let st = key.root_state();
        assert!(st.is_root());
        assert_eq!(st.words_consumed(), 0);
    }

    #[test]
    fn push_advances_words() {
        let key = HashKey::from_seed(1);
        let mut st = key.root_state();
        key.push_component(&mut st, b"abcdefgh"); // 2 words + separator
        assert_eq!(st.words_consumed(), 3);
        assert!(!st.is_root());
    }

    #[test]
    fn wire_round_trip_is_exact() {
        let key = HashKey::from_seed(9);
        let mut st = key.root_state();
        key.push_component(&mut st, b"usr");
        key.push_component(&mut st, b"include");
        let (acc, pos) = st.to_wire();
        assert_eq!(HashState::from_wire(acc, pos), st);
    }

    #[test]
    fn state_is_copy_and_small() {
        // The state must stay small enough to embed in every dentry.
        assert!(std::mem::size_of::<HashState>() <= 40);
        let key = HashKey::from_seed(1);
        let mut a = key.root_state();
        key.push_component(&mut a, b"x");
        let b = a; // Copy
        assert_eq!(a, b);
    }
}
