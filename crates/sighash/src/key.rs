//! Boot-time key material and the top-level hashing API.

use crate::multilinear::{self, splitmix64};
use crate::signature::Signature;
use crate::state::HashState;
use crate::{LANES, SCHEDULE_LEN};

/// Boot-time random key material for path-signature hashing.
///
/// A `HashKey` holds one cyclic schedule of random 64-bit keys per lane plus
/// a per-lane initial offset. It is generated once per kernel instance
/// (`§3.3`: "We choose a random key at boot time for our signature hash
/// function"), so the same path produces different signatures across kernel
/// instances and an adversary cannot search for collisions offline.
pub struct HashKey {
    /// Per-lane cyclic key schedules; all keys are forced odd so every
    /// multiplier is invertible modulo 2^64.
    lanes: [Box<[u64; SCHEDULE_LEN]>; LANES],
    /// Per-lane initial accumulator value (the `k_0` term of the
    /// multilinear family).
    init: [u64; LANES],
}

impl HashKey {
    /// Creates key material deterministically from `seed`.
    ///
    /// Tests pass a fixed seed for reproducibility; a kernel passes entropy
    /// (see [`HashKey::from_entropy`]).
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut init = [0u64; LANES];
        let mut lanes: Vec<Box<[u64; SCHEDULE_LEN]>> = Vec::with_capacity(LANES);
        for lane_init in init.iter_mut() {
            *lane_init = splitmix64(&mut x);
            let mut sched = Box::new([0u64; SCHEDULE_LEN]);
            for k in sched.iter_mut() {
                // Odd multipliers keep every key invertible mod 2^64.
                *k = splitmix64(&mut x) | 1;
            }
            lanes.push(sched);
        }
        let lanes: [Box<[u64; SCHEDULE_LEN]>; LANES] =
            lanes.try_into().unwrap_or_else(|_| unreachable!());
        HashKey { lanes, init }
    }

    /// Creates key material from OS entropy (what a real boot would do).
    pub fn from_entropy() -> Self {
        // `RandomState` seeds itself from OS entropy; hashing two fixed
        // values extracts two independent 64-bit samples.
        use std::collections::hash_map::RandomState;
        use std::hash::{BuildHasher, Hasher};
        let rs = RandomState::new();
        let mut h1 = rs.build_hasher();
        h1.write_u64(0x5eed);
        let mut h2 = rs.build_hasher();
        h2.write_u64(0xb007);
        Self::from_seed(h1.finish() ^ h2.finish().rotate_left(32))
    }

    /// Returns the hash state representing the empty path (the root).
    pub fn root_state(&self) -> HashState {
        HashState::new(self.init)
    }

    /// Feeds one canonical path component into `state`.
    ///
    /// The component must be a plain name: not empty, not `"."`, not
    /// `".."`, and containing no `/`. Callers (the VFS walker) are
    /// responsible for canonicalization; this is debug-asserted here.
    pub fn push_component(&self, state: &mut HashState, name: &[u8]) {
        debug_assert!(!name.is_empty(), "empty component fed to hasher");
        debug_assert!(name != b"." && name != b"..", "dot component fed to hasher");
        debug_assert!(!name.contains(&b'/'), "component contains a slash");
        for lane in 0..LANES {
            let sched: &[u64; SCHEDULE_LEN] = &self.lanes[lane];
            let (acc, pos) =
                multilinear::mix_component(state.acc[lane], state.pos, sched, name, lane as u64);
            state.acc[lane] = acc;
            if lane == LANES - 1 {
                state.pos = pos;
            }
        }
    }

    /// Finalizes `state` into a 256-bit [`Signature`].
    ///
    /// Finalization does not modify `state`, so a stored per-dentry state
    /// can keep being extended by deeper lookups.
    pub fn finish(&self, state: &HashState) -> Signature {
        let mut out = [0u64; LANES];
        for (lane, slot) in out.iter_mut().enumerate() {
            *slot = multilinear::finalize(state.acc[lane], state.pos, lane as u64);
        }
        Signature::from_lanes(out)
    }

    /// Convenience: hashes a sequence of components from the root.
    pub fn hash_components<'a, I>(&self, comps: I) -> Signature
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut st = self.root_state();
        for c in comps {
            self.push_component(&mut st, c);
        }
        self.finish(&st)
    }
}

impl std::fmt::Debug for HashKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Key material is secret; never print it.
        f.write_str("HashKey {{ <secret> }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = HashKey::from_seed(7);
        let b = HashKey::from_seed(7);
        let s1 = a.hash_components([b"x".as_slice(), b"y".as_slice()]);
        let s2 = b.hash_components([b"x".as_slice(), b"y".as_slice()]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_seeds_differ() {
        let a = HashKey::from_seed(1);
        let b = HashKey::from_seed(2);
        let p = [b"same".as_slice(), b"path".as_slice()];
        assert_ne!(a.hash_components(p), b.hash_components(p));
    }

    #[test]
    fn resume_equals_whole() {
        let key = HashKey::from_seed(99);
        let whole = key.hash_components([b"a".as_slice(), b"bb".as_slice(), b"ccc".as_slice()]);
        let mut prefix = key.root_state();
        key.push_component(&mut prefix, b"a");
        let stored = prefix; // as if stored in the dentry for /a
        let mut resumed = stored;
        key.push_component(&mut resumed, b"bb");
        key.push_component(&mut resumed, b"ccc");
        assert_eq!(whole, key.finish(&resumed));
    }

    #[test]
    fn debug_does_not_leak() {
        let key = HashKey::from_seed(3);
        assert!(!format!("{key:?}").contains('['));
    }

    #[test]
    fn entropy_keys_differ() {
        let a = HashKey::from_entropy();
        let b = HashKey::from_entropy();
        let p = [b"etc".as_slice()];
        // Two fresh boots must disagree on the signature of the same path.
        assert_ne!(a.hash_components(p), b.hash_components(p));
    }
}
