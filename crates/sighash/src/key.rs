//! Boot-time key material and the top-level hashing API.

use crate::multilinear::{self, splitmix64};
use crate::signature::Signature;
use crate::state::HashState;
use crate::{LANES, SCHEDULE_LEN};

/// Boot-time random key material for path-signature hashing.
///
/// A `HashKey` holds one cyclic schedule of random 64-bit keys per lane plus
/// a per-lane initial offset. It is generated once per kernel instance
/// (`§3.3`: "We choose a random key at boot time for our signature hash
/// function"), so the same path produces different signatures across kernel
/// instances and an adversary cannot search for collisions offline.
pub struct HashKey {
    /// Per-lane cyclic key schedules; all keys are forced odd so every
    /// multiplier is invertible modulo 2^64. This layout drives the
    /// byte-at-a-time oracle path (wrap handling, equivalence tests).
    lanes: [Box<[u64; SCHEDULE_LEN]>; LANES],
    /// The same key material interleaved position-major: `wide[p]` holds
    /// the four lanes' keys for stream position `p` in 32 contiguous
    /// bytes, so the wide mixing loop streams one array sequentially
    /// instead of striding four 16 KB tables in parallel.
    wide: Box<[[u64; LANES]; SCHEDULE_LEN]>,
    /// Per-lane initial accumulator value (the `k_0` term of the
    /// multilinear family).
    init: [u64; LANES],
    /// Routes `push_component` through the 8-bytes-per-step wide path
    /// (true) or the per-lane oracle (false, the layout ablation).
    wide_enabled: bool,
}

impl HashKey {
    /// Creates key material deterministically from `seed`.
    ///
    /// Tests pass a fixed seed for reproducibility; a kernel passes entropy
    /// (see [`HashKey::from_entropy`]).
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut init = [0u64; LANES];
        let mut lanes: Vec<Box<[u64; SCHEDULE_LEN]>> = Vec::with_capacity(LANES);
        for lane_init in init.iter_mut() {
            *lane_init = splitmix64(&mut x);
            let mut sched = Box::new([0u64; SCHEDULE_LEN]);
            for k in sched.iter_mut() {
                // Odd multipliers keep every key invertible mod 2^64.
                *k = splitmix64(&mut x) | 1;
            }
            lanes.push(sched);
        }
        let lanes: [Box<[u64; SCHEDULE_LEN]>; LANES] =
            lanes.try_into().unwrap_or_else(|_| unreachable!());
        let mut wide = Box::new([[0u64; LANES]; SCHEDULE_LEN]);
        for (p, row) in wide.iter_mut().enumerate() {
            for (lane, slot) in row.iter_mut().enumerate() {
                *slot = lanes[lane][p];
            }
        }
        HashKey {
            lanes,
            wide,
            init,
            wide_enabled: true,
        }
    }

    /// Enables or disables the wide (8-bytes-per-step) mixing path.
    /// Disabling routes every component through the byte-at-a-time
    /// oracle — the "before" column of the layout-attribution table.
    pub fn with_wide(mut self, enabled: bool) -> Self {
        self.wide_enabled = enabled;
        self
    }

    /// True when the wide mixing path is active.
    pub fn wide_enabled(&self) -> bool {
        self.wide_enabled
    }

    /// Creates key material from OS entropy (what a real boot would do).
    pub fn from_entropy() -> Self {
        // `RandomState` seeds itself from OS entropy; hashing two fixed
        // values extracts two independent 64-bit samples.
        use std::collections::hash_map::RandomState;
        use std::hash::{BuildHasher, Hasher};
        let rs = RandomState::new();
        let mut h1 = rs.build_hasher();
        h1.write_u64(0x5eed);
        let mut h2 = rs.build_hasher();
        h2.write_u64(0xb007);
        Self::from_seed(h1.finish() ^ h2.finish().rotate_left(32))
    }

    /// Returns the hash state representing the empty path (the root).
    pub fn root_state(&self) -> HashState {
        HashState::new(self.init)
    }

    /// Feeds one canonical path component into `state`.
    ///
    /// The component must be a plain name: not empty, not `"."`, not
    /// `".."`, and containing no `/`. Callers (the VFS walker) are
    /// responsible for canonicalization; this is debug-asserted here.
    pub fn push_component(&self, state: &mut HashState, name: &[u8]) {
        debug_assert!(!name.is_empty(), "empty component fed to hasher");
        debug_assert!(name != b"." && name != b"..", "dot component fed to hasher");
        debug_assert!(!name.contains(&b'/'), "component contains a slash");
        // The wide path assumes the wrap-salt perturbation is zero for
        // every word of this component; components that start at or
        // straddle a schedule wrap (paths past ~8 KB of components) take
        // the oracle path, which handles the perturbation per word.
        if self.wide_enabled && (state.pos as usize) + multilinear::words_for(name) <= SCHEDULE_LEN
        {
            state.pos =
                multilinear::mix_component_wide(&mut state.acc, state.pos, &self.wide, name);
        } else {
            self.push_component_oracle(state, name);
        }
    }

    /// The byte-at-a-time reference path: one [`multilinear::mix_component`]
    /// pass per lane over that lane's own schedule. Kept public as the
    /// oracle the wide path is equivalence-tested against, and as the
    /// fallback for components that straddle a schedule wrap.
    pub fn push_component_oracle(&self, state: &mut HashState, name: &[u8]) {
        for lane in 0..LANES {
            let sched: &[u64; SCHEDULE_LEN] = &self.lanes[lane];
            let (acc, pos) =
                multilinear::mix_component(state.acc[lane], state.pos, sched, name, lane as u64);
            state.acc[lane] = acc;
            if lane == LANES - 1 {
                state.pos = pos;
            }
        }
    }

    /// Finalizes `state` into a 256-bit [`Signature`].
    ///
    /// Finalization does not modify `state`, so a stored per-dentry state
    /// can keep being extended by deeper lookups.
    pub fn finish(&self, state: &HashState) -> Signature {
        let mut out = [0u64; LANES];
        for (lane, slot) in out.iter_mut().enumerate() {
            *slot = multilinear::finalize(state.acc[lane], state.pos, lane as u64);
        }
        Signature::from_lanes(out)
    }

    /// Convenience: hashes a sequence of components from the root.
    pub fn hash_components<'a, I>(&self, comps: I) -> Signature
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut st = self.root_state();
        for c in comps {
            self.push_component(&mut st, c);
        }
        self.finish(&st)
    }
}

impl std::fmt::Debug for HashKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Key material is secret; never print it.
        f.write_str("HashKey {{ <secret> }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = HashKey::from_seed(7);
        let b = HashKey::from_seed(7);
        let s1 = a.hash_components([b"x".as_slice(), b"y".as_slice()]);
        let s2 = b.hash_components([b"x".as_slice(), b"y".as_slice()]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_seeds_differ() {
        let a = HashKey::from_seed(1);
        let b = HashKey::from_seed(2);
        let p = [b"same".as_slice(), b"path".as_slice()];
        assert_ne!(a.hash_components(p), b.hash_components(p));
    }

    #[test]
    fn resume_equals_whole() {
        let key = HashKey::from_seed(99);
        let whole = key.hash_components([b"a".as_slice(), b"bb".as_slice(), b"ccc".as_slice()]);
        let mut prefix = key.root_state();
        key.push_component(&mut prefix, b"a");
        let stored = prefix; // as if stored in the dentry for /a
        let mut resumed = stored;
        key.push_component(&mut resumed, b"bb");
        key.push_component(&mut resumed, b"ccc");
        assert_eq!(whole, key.finish(&resumed));
    }

    #[test]
    fn debug_does_not_leak() {
        let key = HashKey::from_seed(3);
        assert!(!format!("{key:?}").contains('['));
    }

    #[test]
    fn entropy_keys_differ() {
        let a = HashKey::from_entropy();
        let b = HashKey::from_entropy();
        let p = [b"etc".as_slice()];
        // Two fresh boots must disagree on the signature of the same path.
        assert_ne!(a.hash_components(p), b.hash_components(p));
    }

    /// Deterministic pseudo-random byte generator for the equivalence
    /// sweeps (the offline build has no rand crate).
    fn prng_bytes(x: &mut u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|_| {
                let b = (crate::multilinear::splitmix64(x) & 0xff) as u8;
                if b == b'/' {
                    b'_'
                } else {
                    b.max(1)
                }
            })
            .collect()
    }

    #[test]
    fn wide_matches_oracle_over_random_streams() {
        // The wide 8-bytes-per-step path must be bit-identical to the
        // byte-at-a-time oracle for every component length and alignment,
        // including zero-length-word tails and odd word counts.
        let key = HashKey::from_seed(0x57ee7);
        let mut x = 0x1234_5678u64;
        for trial in 0..400 {
            let ncomps = 1 + (trial % 11);
            let mut wide_st = key.root_state();
            let mut oracle_st = key.root_state();
            for i in 0..ncomps {
                let len = 1 + ((crate::multilinear::splitmix64(&mut x) as usize) % 63);
                let comp = prng_bytes(&mut x, len);
                key.push_component(&mut wide_st, &comp);
                key.push_component_oracle(&mut oracle_st, &comp);
                assert_eq!(
                    wide_st, oracle_st,
                    "trial {trial}, component {i}, len {len}"
                );
            }
            assert_eq!(key.finish(&wide_st), key.finish(&oracle_st));
        }
    }

    #[test]
    fn wide_matches_oracle_with_resume_splits() {
        // A state stored mid-path by the wide path must resume
        // identically under either path — dentries don't record which
        // mixing loop produced their stored HashState.
        let key = HashKey::from_seed(77);
        let mut x = 0xfeed_beefu64;
        for trial in 0..100 {
            let comps: Vec<Vec<u8>> = (0..8)
                .map(|_| {
                    let len = 1 + ((crate::multilinear::splitmix64(&mut x) as usize) % 40);
                    prng_bytes(&mut x, len)
                })
                .collect();
            let split = trial % (comps.len() + 1);
            let mut whole = key.root_state();
            for c in &comps {
                key.push_component_oracle(&mut whole, c);
            }
            // Prefix via wide, suffix via oracle — and the reverse.
            let mut a = key.root_state();
            for c in &comps[..split] {
                key.push_component(&mut a, c);
            }
            let stored = a;
            let mut resumed = stored;
            for c in &comps[split..] {
                key.push_component_oracle(&mut resumed, c);
            }
            assert_eq!(whole, resumed);
            let mut b = key.root_state();
            for c in &comps[..split] {
                key.push_component_oracle(&mut b, c);
            }
            let mut resumed_b = b;
            for c in &comps[split..] {
                key.push_component(&mut resumed_b, c);
            }
            assert_eq!(whole, resumed_b);
            assert_eq!(key.finish(&whole), key.finish(&resumed));
        }
    }

    #[test]
    fn wide_falls_back_identically_at_schedule_wrap() {
        // Components that straddle the SCHEDULE_LEN wrap take the oracle
        // path inside push_component; the states must stay identical
        // through the transition and beyond it.
        let key = HashKey::from_seed(21);
        let comp = vec![b'q'; 61]; // 16 words + separator
        let n = SCHEDULE_LEN / 17 + 4; // crosses the wrap
        let mut dispatch = key.root_state();
        let mut oracle = key.root_state();
        for _ in 0..n {
            key.push_component(&mut dispatch, &comp);
            key.push_component_oracle(&mut oracle, &comp);
            assert_eq!(dispatch, oracle);
        }
        assert!(dispatch.words_consumed() as usize > SCHEDULE_LEN);
        assert_eq!(key.finish(&dispatch), key.finish(&oracle));
    }

    #[test]
    fn disabled_wide_uses_oracle() {
        let wide = HashKey::from_seed(5);
        let narrow = HashKey::from_seed(5).with_wide(false);
        assert!(wide.wide_enabled() && !narrow.wide_enabled());
        let p = [b"usr".as_slice(), b"include".as_slice()];
        assert_eq!(wide.hash_components(p), narrow.hash_components(p));
    }

    #[test]
    fn boot_key_randomization_survives_wide_layout() {
        // Regression: the wide interleaved schedule must be derived from
        // the same boot-time key material, not a fixed table — two boots
        // (seeds) must disagree on every path, under both mixing paths.
        let boot_a = HashKey::from_seed(0xA11CE);
        let boot_b = HashKey::from_seed(0xB0B);
        let mut x = 3u64;
        for _ in 0..50 {
            let len = 1 + (x as usize % 32);
            let comp = prng_bytes(&mut x, len);
            let pa = [comp.as_slice()];
            assert_ne!(boot_a.hash_components(pa), boot_b.hash_components(pa));
            // And the wide path leaks nothing the oracle wouldn't: same
            // key, same input ⇒ same output regardless of layout.
            let mut st_wide = boot_a.root_state();
            boot_a.push_component(&mut st_wide, &comp);
            let mut st_oracle = boot_a.root_state();
            boot_a.push_component_oracle(&mut st_oracle, &comp);
            assert_eq!(st_wide, st_oracle);
        }
    }
}
