//! The 256-bit output: 16 index bits + 240 signature bits.

use crate::{INDEX_BITS, SIGNATURE_BITS};

/// A finalized 256-bit path signature.
///
/// Following §3.3 of the paper, the low [`INDEX_BITS`] bits of lane 0 index
/// the direct-lookup hash table, and the remaining [`SIGNATURE_BITS`] bits
/// are the value compared against stored dentries in place of a full path
/// string comparison. The index bits and the compared bits do not overlap,
/// so bucket residency reveals nothing about the compared signature.
///
/// `PartialEq`/`Hash` operate on the *signature* bits only (two signatures
/// that differ only in index bits compare equal — such values cannot be
/// produced by the hash itself, which always emits all 256 bits, but the
/// distinction matters for [`Signature::sig240`] round-trips).
#[derive(Clone, Copy, Debug)]
pub struct Signature {
    lanes: [u64; 4],
}

impl Signature {
    pub(crate) fn from_lanes(lanes: [u64; 4]) -> Self {
        Signature { lanes }
    }

    /// Reconstructs a signature from its compared 240 bits (index bits zero).
    ///
    /// Used by storage that persists only the compared bits.
    pub fn from_sig240(sig: [u64; 4]) -> Self {
        let mut lanes = sig;
        lanes[0] &= !Self::index_mask();
        Signature { lanes }
    }

    #[inline]
    fn index_mask() -> u64 {
        (1u64 << INDEX_BITS) - 1
    }

    /// The DLHT bucket index: the low 16 bits.
    #[inline]
    pub fn bucket_index(&self) -> u32 {
        (self.lanes[0] & Self::index_mask()) as u32
    }

    /// A bucket index reduced to a table with `buckets` slots
    /// (`buckets` must be a power of two no larger than 2^16).
    #[inline]
    pub fn bucket_index_for(&self, buckets: usize) -> usize {
        debug_assert!(buckets.is_power_of_two());
        debug_assert!(buckets <= 1 << INDEX_BITS);
        (self.bucket_index() as usize) & (buckets - 1)
    }

    /// The 240 compared bits, with the index bits masked to zero.
    #[inline]
    pub fn sig240(&self) -> [u64; 4] {
        let mut s = self.lanes;
        s[0] &= !Self::index_mask();
        s
    }

    /// Total number of signature bits carried (for reporting).
    pub fn signature_bits() -> u32 {
        SIGNATURE_BITS
    }

    /// All 256 bits — the compared 240 plus the table-index bits — for
    /// transport. Unlike [`sig240`](Signature::sig240), this preserves
    /// the index bits, so a signature reconstructed with
    /// [`from_wire`](Signature::from_wire) probes the same DLHT bucket
    /// as the original.
    #[inline]
    pub fn to_wire(&self) -> [u64; 4] {
        self.lanes
    }

    /// Reconstructs a signature from [`to_wire`](Signature::to_wire)
    /// output (exact round-trip, index bits included).
    #[inline]
    pub fn from_wire(lanes: [u64; 4]) -> Self {
        Signature { lanes }
    }
}

impl PartialEq for Signature {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.sig240() == other.sig240()
    }
}

impl Eq for Signature {}

impl std::hash::Hash for Signature {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.sig240().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HashKey;

    #[test]
    fn index_within_range() {
        let key = HashKey::from_seed(5);
        let sig = key.hash_components([b"etc".as_slice(), b"passwd".as_slice()]);
        assert!(sig.bucket_index() < (1 << INDEX_BITS));
        assert!(sig.bucket_index_for(1024) < 1024);
    }

    #[test]
    fn sig240_masks_index_bits() {
        let key = HashKey::from_seed(5);
        let sig = key.hash_components([b"a".as_slice()]);
        let s = sig.sig240();
        assert_eq!(s[0] & ((1 << INDEX_BITS) - 1), 0);
    }

    #[test]
    fn from_sig240_round_trips_equality() {
        let key = HashKey::from_seed(5);
        let sig = key.hash_components([b"x".as_slice(), b"y".as_slice()]);
        let rebuilt = Signature::from_sig240(sig.sig240());
        assert_eq!(sig, rebuilt);
    }

    #[test]
    fn equality_ignores_index_bits() {
        let key = HashKey::from_seed(6);
        let sig = key.hash_components([b"q".as_slice()]);
        let mut lanes = sig.sig240();
        lanes[0] |= 0x3; // perturb index bits only
        let other = Signature::from_lanes(lanes);
        assert_eq!(sig, other);
        // But bucket indices may differ — that's the caller's concern.
    }

    #[test]
    fn hashable_in_std_collections() {
        let key = HashKey::from_seed(7);
        let mut set = std::collections::HashSet::new();
        set.insert(key.hash_components([b"m".as_slice()]));
        assert!(set.contains(&key.hash_components([b"m".as_slice()])));
        assert!(!set.contains(&key.hash_components([b"n".as_slice()])));
    }
}
