//! The per-lane multilinear mixing primitive.
//!
//! Each lane computes `acc = k_0 + Σ k_p · w_p (mod 2^64)` over the stream
//! of 32-bit words derived from the path, with per-position random odd keys
//! `k_p`. With 32-bit words and 64-bit keys this family is
//! 2^-32-almost-universal per lane; four independent lanes bring the
//! pairwise collision probability below 2^-128 even against adversarial
//! component choices, matching the paper's brute-force analysis (§3.3).
//!
//! A component is fed as its bytes packed little-endian into words, followed
//! by a separator word tagged with the component length. The length tag
//! makes the word stream an injective encoding of the component sequence
//! (zero-padding of the final word cannot be confused with real bytes, and
//! `("ab","c")` cannot collide with `("a","bc")` structurally).

use crate::SCHEDULE_LEN;

/// 64-bit SplitMix step; used for key-schedule generation and finalization.
pub(crate) fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Final avalanche (the `fmix64` finisher).
fn fmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    z = (z ^ (z >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^ (z >> 33)
}

/// Marker OR-ed into a separator word; component lengths are far below it.
const SEPARATOR_TAG: u32 = 0x8000_0000;

/// Golden-ratio constant used to perturb words once the cyclic key schedule
/// wraps, keeping distinct positions distinct beyond `SCHEDULE_LEN` words.
const WRAP_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

#[inline]
fn mix_word(acc: u64, pos: u32, sched: &[u64; SCHEDULE_LEN], word: u32) -> u64 {
    let idx = (pos as usize) % SCHEDULE_LEN;
    let wrap = (pos as usize / SCHEDULE_LEN) as u64;
    let m = (word as u64) ^ wrap.wrapping_mul(WRAP_SALT);
    acc.wrapping_add(sched[idx].wrapping_mul(m))
}

/// Mixes one path component (bytes plus a length-tagged separator) into a
/// lane accumulator, returning the new `(acc, pos)`.
#[inline]
pub(crate) fn mix_component(
    mut acc: u64,
    mut pos: u32,
    sched: &[u64; SCHEDULE_LEN],
    name: &[u8],
    _lane: u64,
) -> (u64, u32) {
    let mut chunks = name.chunks_exact(4);
    for chunk in &mut chunks {
        let w = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        acc = mix_word(acc, pos, sched, w);
        pos = pos.wrapping_add(1);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 4];
        last[..rem.len()].copy_from_slice(rem);
        let w = u32::from_le_bytes(last);
        acc = mix_word(acc, pos, sched, w);
        pos = pos.wrapping_add(1);
    }
    // Length-tagged separator word: makes the encoding injective.
    let sep = SEPARATOR_TAG | (name.len() as u32 & 0x7fff_ffff);
    acc = mix_word(acc, pos, sched, sep);
    pos = pos.wrapping_add(1);
    (acc, pos)
}

/// Wide-word mixing over the position-major (interleaved) schedule:
/// processes 8 path bytes — two 32-bit words — per multiply-accumulate
/// step, updating all four lane accumulators in the unrolled inner body.
///
/// Bit-identical to running [`mix_component`] per lane: each lane's
/// accumulator is `k_0 + Σ k_p·w_p (mod 2^64)`, and wrapping addition is
/// commutative and associative, so regrouping the terms two-positions-
/// at-a-time cannot change the sum. The interleaved schedule stores the
/// four lanes' keys for one position in 32 contiguous bytes, so a step
/// touches one or two cache lines instead of four distant ones.
///
/// Precondition (checked by the caller, debug-asserted here): the whole
/// component fits before the schedule wraps — `pos + words(name) ≤
/// SCHEDULE_LEN` — so the wrap-salt perturbation is identically zero.
/// Components straddling the wrap take the byte-at-a-time oracle path.
#[inline]
pub(crate) fn mix_component_wide(
    acc: &mut [u64; crate::LANES],
    pos: u32,
    wide: &[[u64; crate::LANES]; SCHEDULE_LEN],
    name: &[u8],
) -> u32 {
    let mut p = pos as usize;
    debug_assert!(p + words_for(name) <= SCHEDULE_LEN);
    let mut chunks = name.chunks_exact(8);
    for chunk in &mut chunks {
        let w0 = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) as u64;
        let w1 = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]) as u64;
        let k0 = &wide[p];
        let k1 = &wide[p + 1];
        for lane in 0..crate::LANES {
            acc[lane] = acc[lane]
                .wrapping_add(k0[lane].wrapping_mul(w0))
                .wrapping_add(k1[lane].wrapping_mul(w1));
        }
        p += 2;
    }
    let rem = chunks.remainder();
    let mut tail = rem;
    if tail.len() >= 4 {
        let w = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]) as u64;
        let k = &wide[p];
        for lane in 0..crate::LANES {
            acc[lane] = acc[lane].wrapping_add(k[lane].wrapping_mul(w));
        }
        p += 1;
        tail = &tail[4..];
    }
    if !tail.is_empty() {
        let mut last = [0u8; 4];
        last[..tail.len()].copy_from_slice(tail);
        let w = u32::from_le_bytes(last) as u64;
        let k = &wide[p];
        for lane in 0..crate::LANES {
            acc[lane] = acc[lane].wrapping_add(k[lane].wrapping_mul(w));
        }
        p += 1;
    }
    let sep = (SEPARATOR_TAG | (name.len() as u32 & 0x7fff_ffff)) as u64;
    let k = &wide[p];
    for lane in 0..crate::LANES {
        acc[lane] = acc[lane].wrapping_add(k[lane].wrapping_mul(sep));
    }
    (p + 1) as u32
}

/// 32-bit words a component occupies in the stream, separator included.
#[inline]
pub(crate) fn words_for(name: &[u8]) -> usize {
    name.len().div_ceil(4) + 1
}

/// Finalizes a lane accumulator into 64 output bits.
///
/// The stream position and lane index are folded in so prefixes of a path
/// never share a signature with the path itself, and lanes stay independent
/// even if their accumulators coincide.
#[inline]
pub(crate) fn finalize(acc: u64, pos: u32, lane: u64) -> u64 {
    fmix64(acc ^ ((pos as u64) << 1 | 1) ^ lane.wrapping_mul(WRAP_SALT))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HashKey;

    #[test]
    fn boundary_shift_changes_hash() {
        // ("ab","c") must differ from ("a","bc") and from ("abc").
        let key = HashKey::from_seed(11);
        let s1 = key.hash_components([b"ab".as_slice(), b"c".as_slice()]);
        let s2 = key.hash_components([b"a".as_slice(), b"bc".as_slice()]);
        let s3 = key.hash_components([b"abc".as_slice()]);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_ne!(s2, s3);
    }

    #[test]
    fn padding_is_not_confusable() {
        // A name with explicit NUL-ish tail bytes must differ from the
        // zero-padded shorter name occupying the same words.
        let key = HashKey::from_seed(12);
        let s_short = key.hash_components([b"abcd".as_slice()]);
        let s_long = key.hash_components([b"abcd\0\0\0".as_slice()]);
        assert_ne!(s_short, s_long);
    }

    #[test]
    fn prefix_differs_from_whole() {
        let key = HashKey::from_seed(13);
        let p = key.hash_components([b"usr".as_slice()]);
        let q = key.hash_components([b"usr".as_slice(), b"lib".as_slice()]);
        assert_ne!(p, q);
    }

    #[test]
    fn long_paths_past_schedule_wrap() {
        // Feed more words than SCHEDULE_LEN and check distinct tails still
        // produce distinct signatures.
        let key = HashKey::from_seed(14);
        let comp = vec![b'x'; 64]; // 16 words + separator per component
        let n = (SCHEDULE_LEN / 17) + 8; // force wrap-around
        let mut a = key.root_state();
        let mut b = key.root_state();
        for _ in 0..n {
            key.push_component(&mut a, &comp);
            key.push_component(&mut b, &comp);
        }
        key.push_component(&mut a, b"tail-one");
        key.push_component(&mut b, b"tail-two");
        assert_ne!(key.finish(&a), key.finish(&b));
    }

    #[test]
    fn no_collisions_on_small_corpus() {
        // Smoke test: hash a few thousand distinct synthetic paths and
        // require zero full-signature collisions.
        let key = HashKey::from_seed(15);
        let mut seen = std::collections::HashSet::new();
        for i in 0..40u32 {
            for j in 0..40u32 {
                for k in 0..4u32 {
                    let a = format!("d{i}");
                    let b = format!("e{j}");
                    let c = format!("f{k}");
                    let sig = key.hash_components([a.as_bytes(), b.as_bytes(), c.as_bytes()]);
                    assert!(seen.insert(sig), "collision at {a}/{b}/{c}");
                }
            }
        }
        assert_eq!(seen.len(), 40 * 40 * 4);
    }
}
