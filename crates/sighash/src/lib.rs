//! Keyed, resumable path-signature hashing for the direct-lookup fast path.
//!
//! This crate implements the signature scheme of §3.3 of *How to Get More
//! Value From Your File System Directory Cache* (SOSP '15):
//!
//! - A **2-universal multilinear hash** (after Lemire & Kaser, "Strongly
//!   universal string hashing is fast") over the canonicalized path,
//!   producing 256 bits from four independent 64-bit lanes.
//! - The hash is **keyed with boot-time randomness**, so signatures are not
//!   predictable across kernel instances and offline collision search is
//!   impossible.
//! - The low 16 bits index the direct-lookup hash table (DLHT) and the
//!   remaining **240 bits are the signature** compared in place of the full
//!   path string. Index bits and signature bits are taken from independent
//!   lanes, so observing bucket residency leaks nothing about the compared
//!   signature (the paper's side-channel caveat).
//! - Hashing is **resumable from any prefix**: the intermediate
//!   [`HashState`] is small and `Copy`, and is stored in each dentry so a
//!   relative lookup can resume from the current working directory without
//!   re-hashing its absolute path.
//!
//! # Examples
//!
//! ```
//! use dc_sighash::HashKey;
//!
//! let key = HashKey::from_seed(42);
//! let mut st = key.root_state();
//! key.push_component(&mut st, b"usr");
//! key.push_component(&mut st, b"include");
//! let sig = key.finish(&st);
//!
//! // Resuming from a stored prefix state is equivalent to hashing the
//! // whole path at once.
//! let mut st2 = key.root_state();
//! key.push_component(&mut st2, b"usr");
//! let mut st3 = st2; // state stored in the `usr` dentry
//! key.push_component(&mut st3, b"include");
//! assert_eq!(sig, key.finish(&st3));
//! ```

mod key;
mod multilinear;
mod signature;
mod state;

pub use key::HashKey;
pub use signature::Signature;
pub use state::HashState;

/// Number of independent 64-bit hash lanes (4 × 64 = 256 bits of output).
pub const LANES: usize = 4;

/// Length of the cyclic per-lane key schedule, in 64-bit keys.
///
/// Linux paths are at most 4096 bytes; with 4-byte words plus one separator
/// word per component this comfortably covers every legal path before the
/// schedule wraps. Wrapping mixes the word position into the key selection,
/// so even pathological inputs keep distinct per-position keys.
pub const SCHEDULE_LEN: usize = 2048;

/// Bits of the output used to index the DLHT (the paper uses 16).
pub const INDEX_BITS: u32 = 16;

/// Bits of the output compared as the path signature (the paper uses 240).
pub const SIGNATURE_BITS: u32 = 240;
