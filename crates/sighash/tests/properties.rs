//! Property tests for the path-signature hash (§3.3 requirements).

use dc_sighash::{HashKey, Signature};
use proptest::prelude::*;

fn component() -> impl Strategy<Value = Vec<u8>> {
    // Arbitrary non-slash, non-empty byte strings up to NAME_MAX-ish.
    prop::collection::vec(
        prop::num::u8::ANY.prop_filter("no slash", |&b| b != b'/'),
        1..64,
    )
    .prop_filter("no dots", |v| v != b"." && v != b"..")
}

fn components() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(component(), 0..12)
}

proptest! {
    /// Resuming from any stored prefix state is equivalent to hashing the
    /// whole path at once — the property that makes relative lookups
    /// resumable from cwd dentries (§3.1).
    #[test]
    fn resume_from_any_prefix_matches_whole(comps in components(), split in 0usize..13) {
        let key = HashKey::from_seed(0x5eed);
        let split = split.min(comps.len());
        let mut whole = key.root_state();
        for c in &comps {
            key.push_component(&mut whole, c);
        }
        let mut prefix = key.root_state();
        for c in &comps[..split] {
            key.push_component(&mut prefix, c);
        }
        let stored = prefix; // Copy, as a dentry would hold it
        let mut resumed = stored;
        for c in &comps[split..] {
            key.push_component(&mut resumed, c);
        }
        prop_assert_eq!(key.finish(&whole), key.finish(&resumed));
        // And the intermediate state itself is identical.
        prop_assert_eq!(whole, resumed);
    }

    /// Distinct component sequences essentially never collide (240-bit
    /// signatures; a generated collision would be astronomical).
    #[test]
    fn distinct_paths_get_distinct_signatures(a in components(), b in components()) {
        prop_assume!(a != b);
        let key = HashKey::from_seed(0x5eed);
        let sa = key.hash_components(a.iter().map(|c| c.as_slice()));
        let sb = key.hash_components(b.iter().map(|c| c.as_slice()));
        prop_assert_ne!(sa, sb);
    }

    /// Signatures are deterministic per key and disagree across keys.
    #[test]
    fn keyed_determinism(comps in components()) {
        prop_assume!(!comps.is_empty());
        let k1 = HashKey::from_seed(1);
        let k1b = HashKey::from_seed(1);
        let k2 = HashKey::from_seed(2);
        let s1 = k1.hash_components(comps.iter().map(|c| c.as_slice()));
        let s1b = k1b.hash_components(comps.iter().map(|c| c.as_slice()));
        let s2 = k2.hash_components(comps.iter().map(|c| c.as_slice()));
        prop_assert_eq!(s1, s1b);
        prop_assert_ne!(s1, s2);
    }

    /// The 240 compared bits round-trip through storage, and the bucket
    /// index stays in range for every table size used.
    #[test]
    fn sig240_round_trip_and_index_range(comps in components()) {
        let key = HashKey::from_seed(3);
        let sig = key.hash_components(comps.iter().map(|c| c.as_slice()));
        prop_assert_eq!(Signature::from_sig240(sig.sig240()), sig);
        for shift in [4usize, 8, 12, 16] {
            prop_assert!(sig.bucket_index_for(1 << shift) < (1 << shift));
        }
    }

    /// The wide 8-bytes-per-step mixing path is bit-identical to the
    /// byte-at-a-time oracle over arbitrary component streams, including
    /// resume-from-a-stored-prefix splits where the prefix and suffix
    /// were mixed by different paths.
    #[test]
    fn wide_equals_oracle_with_arbitrary_splits(comps in components(), split in 0usize..13) {
        let key = HashKey::from_seed(0xfa57);
        let split = split.min(comps.len());
        let mut oracle = key.root_state();
        for c in &comps {
            key.push_component_oracle(&mut oracle, c);
        }
        // Wide prefix, oracle suffix.
        let mut mixed = key.root_state();
        for c in &comps[..split] {
            key.push_component(&mut mixed, c);
        }
        let stored = mixed; // as a dentry would hold it
        let mut resumed = stored;
        for c in &comps[split..] {
            key.push_component_oracle(&mut resumed, c);
        }
        prop_assert_eq!(oracle, resumed);
        // All-wide must agree too.
        let mut wide = key.root_state();
        for c in &comps {
            key.push_component(&mut wide, c);
        }
        prop_assert_eq!(oracle, wide);
        prop_assert_eq!(key.finish(&oracle), key.finish(&wide));
    }

    /// Concatenation boundaries are unambiguous: moving a byte between
    /// adjacent components changes the signature.
    #[test]
    fn component_boundaries_are_injective(
        mut a in component(), b in component()
    ) {
        let key = HashKey::from_seed(4);
        prop_assume!(a.len() >= 2);
        let orig = key.hash_components([a.as_slice(), b.as_slice()]);
        // Move the last byte of `a` to the front of `b`.
        let moved = a.pop().unwrap();
        let mut b2 = vec![moved];
        b2.extend_from_slice(&b);
        prop_assume!(!a.is_empty());
        let shifted = key.hash_components([a.as_slice(), b2.as_slice()]);
        prop_assert_ne!(orig, shifted);
    }
}
