//! Server counters and per-worker latency histograms, exported through
//! the kernel's metrics registry.
//!
//! Workers never share a histogram: each owns a [`WorkerHists`] and
//! records with plain relaxed atomics on its own cache lines. A
//! metrics snapshot merges them on demand ([`LatencyHist::merge_from`]
//! is lossless — identical buckets), so the hot path pays nothing for
//! observability beyond the per-record atomic adds.

use crate::proto::Op;
use dc_obs::{HistSummary, LatencyHist, MetricSource};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic counters for the serving tier. All relaxed; exact under
/// quiescence (snapshots between load phases), approximate during.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub conns: AtomicU64,
    /// Request frames executed (one batch each).
    pub batches: AtomicU64,
    /// Requests executed (records in executed frames).
    pub requests: AtomicU64,
    /// Frames shed by admission control before decoding.
    pub rejected_frames: AtomicU64,
    /// Requests inside shed frames (by the frame header's count).
    pub rejected_requests: AtomicU64,
    /// Frames answered `BadRequest`/`BadVersion` without execution.
    pub bad_frames: AtomicU64,
    /// Executed frames whose encoded response blew the frame cap and
    /// were answered with a frame-level `TooBig` instead.
    pub resp_too_big: AtomicU64,
    /// Executed requests that returned a non-`Ok` status.
    pub errors: AtomicU64,
    /// Executed requests per op, indexed by [`Op::idx`].
    pub per_op: [AtomicU64; 4],
    /// Signature lookups not answerable from the cache (`SigMiss`).
    pub sig_miss: AtomicU64,
}

impl ServeStats {
    /// Zeroes every counter.
    pub fn reset(&self) {
        self.conns.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.requests.store(0, Ordering::Relaxed);
        self.rejected_frames.store(0, Ordering::Relaxed);
        self.rejected_requests.store(0, Ordering::Relaxed);
        self.bad_frames.store(0, Ordering::Relaxed);
        self.resp_too_big.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
        for c in &self.per_op {
            c.store(0, Ordering::Relaxed);
        }
        self.sig_miss.store(0, Ordering::Relaxed);
    }
}

/// One worker's latency histograms: the four ops plus the pipeline
/// stages around them.
#[derive(Debug, Default)]
pub struct WorkerHists {
    /// Per-op execution latency (the kernel call only), by [`Op::idx`].
    pub per_op: [LatencyHist; 4],
    /// Request-frame decode.
    pub decode: LatencyHist,
    /// Response-frame encode.
    pub encode: LatencyHist,
    /// Whole-batch execution (pin + every request).
    pub batch_exec: LatencyHist,
    /// Time a frame waited in the submission queue.
    pub queue_wait: LatencyHist,
}

/// Export names for the stage histograms, aligned with [`stage_of`].
const STAGE_NAMES: [&str; 4] = [
    "serve_decode_frame",
    "serve_encode_frame",
    "serve_batch_exec",
    "serve_queue_wait",
];

fn stage_of(w: &WorkerHists, i: usize) -> &LatencyHist {
    match i {
        0 => &w.decode,
        1 => &w.encode,
        2 => &w.batch_exec,
        _ => &w.queue_wait,
    }
}

impl WorkerHists {
    /// Zeroes every histogram.
    pub fn reset(&self) {
        for h in &self.per_op {
            h.reset();
        }
        self.decode.reset();
        self.encode.reset();
        self.batch_exec.reset();
        self.queue_wait.reset();
    }
}

/// The serving tier's [`MetricSource`]: counters from [`ServeStats`],
/// histograms merged across workers at snapshot time. Registered on
/// the kernel by `Server::start`, so `--metrics-out` exports and
/// `Kernel::reset_stats` cover served traffic with no extra wiring.
pub struct ServeMetrics {
    stats: Arc<ServeStats>,
    workers: Vec<Arc<WorkerHists>>,
}

impl ServeMetrics {
    /// Bundles the server's stats and per-worker histograms.
    pub fn new(stats: Arc<ServeStats>, workers: Vec<Arc<WorkerHists>>) -> ServeMetrics {
        ServeMetrics { stats, workers }
    }

    /// Merges one op's histogram across every worker.
    pub fn merged_op(&self, op: Op) -> LatencyHist {
        let out = LatencyHist::new();
        for w in &self.workers {
            out.merge_from(&w.per_op[op.idx()]);
        }
        out
    }
}

impl MetricSource for ServeMetrics {
    fn name(&self) -> &'static str {
        "serve"
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let s = &self.stats;
        let ld = Ordering::Relaxed;
        vec![
            ("requests", s.requests.load(ld)),
            ("batches", s.batches.load(ld)),
            ("rejected_requests", s.rejected_requests.load(ld)),
            ("rejected_frames", s.rejected_frames.load(ld)),
            ("bad_frames", s.bad_frames.load(ld)),
            ("resp_too_big", s.resp_too_big.load(ld)),
            ("errors", s.errors.load(ld)),
            ("conns", s.conns.load(ld)),
            ("op_lookup", s.per_op[Op::Lookup.idx()].load(ld)),
            ("op_stat", s.per_op[Op::Stat.idx()].load(ld)),
            ("op_readdir", s.per_op[Op::Readdir.idx()].load(ld)),
            ("op_lookup_sig", s.per_op[Op::LookupSig.idx()].load(ld)),
            ("sig_miss", s.sig_miss.load(ld)),
        ]
    }

    fn rates(&self) -> Vec<(&'static str, f64)> {
        let executed = self.stats.requests.load(Ordering::Relaxed);
        let rejected = self.stats.rejected_requests.load(Ordering::Relaxed);
        let offered = executed + rejected;
        if offered == 0 {
            return Vec::new();
        }
        vec![("reject_rate", rejected as f64 / offered as f64)]
    }

    fn hists(&self) -> Vec<(String, HistSummary)> {
        let mut out = Vec::new();
        for op in Op::all() {
            let merged = self.merged_op(op);
            if merged.count() > 0 {
                out.push((format!("serve_{}", op.key()), merged.summary()));
            }
        }
        for (i, name) in STAGE_NAMES.iter().enumerate() {
            let merged = LatencyHist::new();
            for w in &self.workers {
                merged.merge_from(stage_of(w, i));
            }
            if merged.count() > 0 {
                out.push((name.to_string(), merged.summary()));
            }
        }
        out
    }

    fn reset(&self) {
        self.stats.reset();
        for w in &self.workers {
            w.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hists_merge_across_workers_and_skip_empty() {
        let stats = Arc::new(ServeStats::default());
        let workers: Vec<Arc<WorkerHists>> =
            (0..3).map(|_| Arc::new(WorkerHists::default())).collect();
        workers[0].per_op[Op::Lookup.idx()].record(100);
        workers[2].per_op[Op::Lookup.idx()].record(300);
        workers[1].decode.record(50);
        let m = ServeMetrics::new(stats, workers);
        let hists = m.hists();
        let names: Vec<&str> = hists.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["serve_lookup", "serve_decode_frame"]);
        assert_eq!(hists[0].1.count, 2);
        assert_eq!(hists[0].1.max_ns, 300);
    }

    #[test]
    fn reset_clears_counters_and_worker_hists() {
        let stats = Arc::new(ServeStats::default());
        stats.requests.fetch_add(9, Ordering::Relaxed);
        let worker = Arc::new(WorkerHists::default());
        worker.queue_wait.record(7);
        let m = ServeMetrics::new(stats.clone(), vec![worker.clone()]);
        m.reset();
        assert_eq!(stats.requests.load(Ordering::Relaxed), 0);
        assert_eq!(worker.queue_wait.count(), 0);
        assert!(m.hists().is_empty());
    }
}
