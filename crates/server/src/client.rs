//! Synchronous clients: one over an in-process [`Connection`], one
//! over a raw byte stream. Both speak the same frames; the only
//! difference is who carries the bytes.

use crate::proto::{
    decode_response_frame, encode_request_frame, Request, RespBody, Response, Status,
};
use crate::server::Connection;
use crate::transport::{read_frame, write_frame, DuplexEnd};
use std::io;

/// Expands a frame-level status into per-request responses (a shed or
/// bad frame answers every request the client packed into it).
fn frame_level(reqs: &[Request<'_>], code: u8) -> Vec<Response> {
    let status = Status::from_code(code).unwrap_or(Status::BadRequest);
    reqs.iter()
        .map(|r| Response {
            id: r.id,
            op: r.body.op() as u8,
            status,
            body: RespBody::None,
        })
        .collect()
}

/// A client on an in-process [`Connection`].
pub struct Client {
    conn: Connection,
}

impl Client {
    /// Wraps a connection.
    pub fn new(conn: Connection) -> Client {
        Client { conn }
    }

    /// Sends one batch and blocks for its responses. A frame-level
    /// rejection (overload, bad version) is expanded to one typed
    /// response per request.
    pub fn call(&self, reqs: &[Request<'_>]) -> Vec<Response> {
        self.conn.send_frame(encode_request_frame(reqs));
        let frame = self.conn.recv_frame();
        let rf = decode_response_frame(&frame).expect("server sent a malformed response frame");
        if rf.frame_status != 0 {
            return frame_level(reqs, rf.frame_status);
        }
        rf.records
    }

    /// The underlying connection.
    pub fn connection(&self) -> &Connection {
        &self.conn
    }
}

/// A client on a byte stream served by
/// [`Server::serve_stream`](crate::Server::serve_stream).
pub struct StreamClient {
    stream: DuplexEnd,
    max_frame: usize,
}

impl StreamClient {
    /// Wraps one end of a duplex stream. Response frames are read
    /// under the default [`MAX_FRAME_BYTES`](crate::proto::MAX_FRAME_BYTES)
    /// cap — the server bounds every response it encodes to its own
    /// `max_frame_bytes`, so the caps only disagree if the server was
    /// configured with a larger one (use [`with_max_frame`](Self::with_max_frame)
    /// to match it).
    pub fn new(stream: DuplexEnd) -> StreamClient {
        StreamClient::with_max_frame(stream, crate::proto::MAX_FRAME_BYTES)
    }

    /// Wraps a stream with an explicit response-frame cap, for servers
    /// configured with a non-default `max_frame_bytes`.
    pub fn with_max_frame(stream: DuplexEnd, max_frame: usize) -> StreamClient {
        StreamClient { stream, max_frame }
    }

    /// Sends one batch over the wire and blocks for its responses.
    pub fn call(&mut self, reqs: &[Request<'_>]) -> io::Result<Vec<Response>> {
        write_frame(&mut self.stream, &encode_request_frame(reqs))?;
        let frame = read_frame(&mut self.stream, self.max_frame)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the stream")
        })?;
        let rf = decode_response_frame(&frame).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "malformed response frame")
        })?;
        if rf.frame_status != 0 {
            return Ok(frame_level(reqs, rf.frame_status));
        }
        Ok(rf.records)
    }
}
