//! A batched metadata lookup service on top of the dcache kernel.
//!
//! The paper's fastpath makes a single lookup cheap — one hash, one
//! DLHT probe, one permission check. This crate turns that into a
//! *serving tier*: a network-shaped front-end that accepts **batches**
//! of lookup/stat/readdir/signature-lookup requests over a
//! length-prefixed binary protocol ([`proto`]), executes each batch on
//! a worker pool under a single epoch pin ([`dcache_core::Dcache::
//! batch_pin`] — the pin and its accounting amortize across the whole
//! frame), and sheds load with typed `Overloaded` rejections when the
//! submission queue fills or a [`dcache_core::MemoryGate`] trips on
//! the kernel's reclaimable footprint (triggering the PR-4 shrinker on
//! the trip edge instead of stalling).
//!
//! Layering:
//!
//! - [`proto`] — wire format v1: versioned frames, request/response
//!   records, status codes (pure functions of bytes, no I/O);
//! - [`transport`] — 4-byte length-prefix framing over any
//!   `Read`/`Write` stream, plus an in-process socketpair analog;
//! - [`server`] — admission control, the bounded queue, the worker
//!   pool, request execution;
//! - [`client`] — synchronous batch clients (in-process and stream);
//! - [`stats`] — counters and per-worker latency histograms, exported
//!   through the kernel's metrics registry as the `serve` section.
//!
//! See `DESIGN.md` §12 for the protocol rationale and the
//! admission-control/shrinker interaction.

pub mod client;
pub mod proto;
pub mod server;
pub mod stats;
pub mod transport;

pub use client::{Client, StreamClient};
pub use proto::{Op, ReqBody, Request, RespBody, Response, Status};
pub use server::{Connection, Server, ServerConfig};
pub use stats::{ServeMetrics, ServeStats, WorkerHists};
pub use transport::{duplex_pair, read_frame, write_frame, DuplexEnd};
