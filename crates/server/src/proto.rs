//! Wire protocol v1: length-prefixed, batched, little-endian.
//!
//! A connection carries *frames* in each direction. Every frame is a
//! 4-byte little-endian length (of everything after the length field)
//! followed by a versioned header and a batch of records:
//!
//! ```text
//! request frame     u8 magic = 0xD5, u8 version = 1, u16 count,
//!                   count × request records
//! request record    u64 req_id, u8 op, u8 flags, u16 cred_id,
//!                   u16 arg_len, arg_len bytes of argument
//! response frame    u8 magic = 0xD6, u8 version = 1, u8 frame_status,
//!                   u8 reserved, u16 count, count × response records
//! response record   u64 req_id, u8 status, u8 op, u16 body_len,
//!                   body_len bytes of body
//! ```
//!
//! Ops: `1` lookup (arg = path; flag bit `0x01` requests the path's
//! signature in the reply), `2` stat (arg = path), `3` readdir (arg =
//! path), `4` signature lookup (arg = the 32-byte
//! [`Signature::to_wire`] image).
//!
//! Response bodies (status `0` only; error responses have empty
//! bodies): lookup → `u64 ino, u8 ftype` plus, when a signature was
//! requested and available, its 32-byte wire image; stat → `u64 ino,
//! u64 size, u64 mtime, u32 nlink, u32 uid, u32 gid, u16 mode,
//! u8 ftype`; readdir → `u16 n`, then `n` × `u64 ino, u8 ftype,
//! u8 name_len, name`; signature lookup → `u64 ino, u8 ftype`.
//!
//! Status codes: `0` OK; `1..=20` map [`FsError`] variants in
//! declaration order ([`fs_error_code`]); `32` overloaded (typed
//! `EAGAIN`: admission control shed the request — retry later); `33`
//! malformed request; `34` unsupported version; `35` unknown cred id;
//! `36` unknown op; `37` signature miss (not answerable from the
//! cache — retry by path); `38` frame or argument too large.
//!
//! An entire frame can be shed before decoding: the response then has
//! `frame_status = 32` and `count = 0`, and the client fails every
//! request it sent in that frame with [`Status::Overloaded`]. A batch
//! whose *encoded response* would exceed the server's frame cap is
//! likewise answered at the frame level with `frame_status = 38`
//! (`TooBig`) — split the batch and retry.
//!
//! Versioning: breaking layout changes bump `version`; a server
//! receiving an unknown version answers with an empty frame whose
//! `frame_status` is `34` rather than guessing at record boundaries.

use dc_fs::{FileType, FsError, InodeAttr};
use dc_sighash::Signature;

/// Request-frame magic byte.
pub const REQ_MAGIC: u8 = 0xD5;
/// Response-frame magic byte.
pub const RESP_MAGIC: u8 = 0xD6;
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Request flag: lookup replies should carry the path signature.
pub const FLAG_WANT_SIG: u8 = 0x01;
/// Hard cap on a frame's payload (sanity bound; admission control
/// bounds realistic sizes far lower).
pub const MAX_FRAME_BYTES: usize = 1 << 20;
/// Bytes of a [`Signature`] on the wire.
pub const SIG_BYTES: usize = 32;

/// Protocol operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Path lookup (follows symlinks).
    Lookup = 1,
    /// Full attributes.
    Stat = 2,
    /// Directory listing.
    Readdir = 3,
    /// Signature-keyed lookup (cache-only).
    LookupSig = 4,
}

impl Op {
    /// Decodes an op byte.
    pub fn from_u8(v: u8) -> Option<Op> {
        Some(match v {
            1 => Op::Lookup,
            2 => Op::Stat,
            3 => Op::Readdir,
            4 => Op::LookupSig,
            _ => return None,
        })
    }

    /// Stable snake_case key (histogram/report naming).
    pub fn key(self) -> &'static str {
        match self {
            Op::Lookup => "lookup",
            Op::Stat => "stat",
            Op::Readdir => "readdir",
            Op::LookupSig => "lookup_sig",
        }
    }

    /// Every op, in code order.
    pub fn all() -> [Op; 4] {
        [Op::Lookup, Op::Stat, Op::Readdir, Op::LookupSig]
    }

    /// Dense index for per-op arrays.
    pub fn idx(self) -> usize {
        self as u8 as usize - 1
    }
}

/// Response status codes (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Success.
    Ok,
    /// A file-system error (`1..=20`).
    Fs(FsError),
    /// Typed `EAGAIN`: shed by admission control, retry later.
    Overloaded,
    /// Malformed record or frame.
    BadRequest,
    /// Unsupported protocol version.
    BadVersion,
    /// Unknown credential id.
    BadCred,
    /// Unknown operation code.
    BadOp,
    /// Signature not answerable from the cache; retry by path.
    SigMiss,
    /// Frame or argument exceeds protocol bounds.
    TooBig,
}

/// `32` — the overload status byte, also used as a `frame_status`.
pub const STATUS_OVERLOADED: u8 = 32;
/// `34` — unsupported version, also used as a `frame_status`.
pub const STATUS_BAD_VERSION: u8 = 34;

impl Status {
    /// The wire byte.
    pub fn code(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Fs(e) => fs_error_code(e),
            Status::Overloaded => STATUS_OVERLOADED,
            Status::BadRequest => 33,
            Status::BadVersion => STATUS_BAD_VERSION,
            Status::BadCred => 35,
            Status::BadOp => 36,
            Status::SigMiss => 37,
            Status::TooBig => 38,
        }
    }

    /// Decodes a wire byte (`None` for unassigned codes).
    pub fn from_code(v: u8) -> Option<Status> {
        Some(match v {
            0 => Status::Ok,
            1..=20 => Status::Fs(fs_error_from_code(v)?),
            32 => Status::Overloaded,
            33 => Status::BadRequest,
            34 => Status::BadVersion,
            35 => Status::BadCred,
            36 => Status::BadOp,
            37 => Status::SigMiss,
            38 => Status::TooBig,
            _ => return None,
        })
    }
}

/// Maps an [`FsError`] to its wire code (`1..=20`, declaration order).
pub fn fs_error_code(e: FsError) -> u8 {
    match e {
        FsError::NoEnt => 1,
        FsError::NotDir => 2,
        FsError::IsDir => 3,
        FsError::Access => 4,
        FsError::Perm => 5,
        FsError::Exist => 6,
        FsError::NotEmpty => 7,
        FsError::Loop => 8,
        FsError::NameTooLong => 9,
        FsError::Inval => 10,
        FsError::RoFs => 11,
        FsError::NoSpc => 12,
        FsError::XDev => 13,
        FsError::BadF => 14,
        FsError::MFile => 15,
        FsError::NoSys => 16,
        FsError::Busy => 17,
        FsError::Io => 18,
        FsError::Srch => 19,
        FsError::Range => 20,
    }
}

/// Inverse of [`fs_error_code`].
pub fn fs_error_from_code(v: u8) -> Option<FsError> {
    Some(match v {
        1 => FsError::NoEnt,
        2 => FsError::NotDir,
        3 => FsError::IsDir,
        4 => FsError::Access,
        5 => FsError::Perm,
        6 => FsError::Exist,
        7 => FsError::NotEmpty,
        8 => FsError::Loop,
        9 => FsError::NameTooLong,
        10 => FsError::Inval,
        11 => FsError::RoFs,
        12 => FsError::NoSpc,
        13 => FsError::XDev,
        14 => FsError::BadF,
        15 => FsError::MFile,
        16 => FsError::NoSys,
        17 => FsError::Busy,
        18 => FsError::Io,
        19 => FsError::Srch,
        20 => FsError::Range,
        _ => return None,
    })
}

/// One request as the client builds it. Paths borrow from the caller;
/// encoding copies them into the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqBody<'a> {
    /// Path lookup; `want_sig` asks for the signature in the reply.
    Lookup {
        /// The path to resolve.
        path: &'a str,
        /// Request the path's signature for later [`ReqBody::LookupSig`].
        want_sig: bool,
    },
    /// Full attributes of `path`.
    Stat {
        /// The path to stat.
        path: &'a str,
    },
    /// Directory listing of `path`.
    Readdir {
        /// The directory path.
        path: &'a str,
    },
    /// Cache-only lookup by signature.
    LookupSig {
        /// The signature previously returned by a lookup.
        sig: Signature,
    },
}

impl ReqBody<'_> {
    /// The op code of this body.
    pub fn op(&self) -> Op {
        match self {
            ReqBody::Lookup { .. } => Op::Lookup,
            ReqBody::Stat { .. } => Op::Stat,
            ReqBody::Readdir { .. } => Op::Readdir,
            ReqBody::LookupSig { .. } => Op::LookupSig,
        }
    }
}

/// One request record (client side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request<'a> {
    /// Client-chosen id echoed in the response.
    pub id: u64,
    /// Credential id (a server-side process registration).
    pub cred: u16,
    /// The operation.
    pub body: ReqBody<'a>,
}

/// A decoded response record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request id this answers.
    pub id: u64,
    /// The op byte, echoing the request's (an *unknown* code for
    /// [`Status::BadOp`] errors — which is why this stays a raw byte).
    pub op: u8,
    /// Outcome.
    pub status: Status,
    /// Body for `Ok` responses.
    pub body: RespBody,
}

/// Decoded response body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum RespBody {
    /// Error or empty body.
    #[default]
    None,
    /// Lookup result.
    Lookup {
        /// Inode number.
        ino: u64,
        /// Object type byte ([`FileType::as_u8`]).
        ftype: u8,
        /// Signature, when requested and available.
        sig: Option<Signature>,
    },
    /// Stat result.
    Stat {
        /// The attributes (mtime carried; ctime not on the wire).
        attr: WireAttr,
    },
    /// Readdir result.
    Readdir {
        /// `(ino, ftype byte, name)` per entry.
        entries: Vec<(u64, u8, String)>,
    },
}

/// The attribute subset carried by a stat response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireAttr {
    /// Inode number.
    pub ino: u64,
    /// Size in bytes.
    pub size: u64,
    /// Modification time (abstract ticks).
    pub mtime: u64,
    /// Hard link count.
    pub nlink: u32,
    /// Owning user.
    pub uid: u32,
    /// Owning group.
    pub gid: u32,
    /// Permission bits.
    pub mode: u16,
    /// Object type byte.
    pub ftype: u8,
}

impl WireAttr {
    /// Projects a kernel [`InodeAttr`] onto the wire subset.
    pub fn of(a: &InodeAttr) -> WireAttr {
        WireAttr {
            ino: a.ino,
            size: a.size,
            mtime: a.mtime,
            nlink: a.nlink,
            uid: a.uid,
            gid: a.gid,
            mode: a.mode,
            ftype: a.ftype.as_u8(),
        }
    }
}

// --- primitive put/get helpers ------------------------------------------

#[inline]
fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn get_u16(buf: &[u8], at: &mut usize) -> Option<u16> {
    let b = buf.get(*at..*at + 2)?;
    *at += 2;
    Some(u16::from_le_bytes([b[0], b[1]]))
}

#[inline]
fn get_u32(buf: &[u8], at: &mut usize) -> Option<u32> {
    let b = buf.get(*at..*at + 4)?;
    *at += 4;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

#[inline]
fn get_u64(buf: &[u8], at: &mut usize) -> Option<u64> {
    let b = buf.get(*at..*at + 8)?;
    *at += 8;
    Some(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

/// Appends a signature's 32-byte wire image.
pub fn put_sig(out: &mut Vec<u8>, sig: &Signature) {
    for lane in sig.to_wire() {
        put_u64(out, lane);
    }
}

/// Reads a 32-byte signature image.
pub fn get_sig(buf: &[u8], at: &mut usize) -> Option<Signature> {
    let mut lanes = [0u64; 4];
    for lane in &mut lanes {
        *lane = get_u64(buf, at)?;
    }
    Some(Signature::from_wire(lanes))
}

// --- request encode/decode ----------------------------------------------

/// Encodes a batch of requests into one frame (without the 4-byte
/// length prefix — the transport owns that).
///
/// # Panics
///
/// The frame's count and argument-length fields are `u16`; more than
/// 65535 requests or a path longer than 65535 bytes cannot be encoded
/// and panics rather than silently truncating into a frame the server
/// would decode as malformed (or worse, misframed).
pub fn encode_request_frame(reqs: &[Request<'_>]) -> Vec<u8> {
    assert!(
        reqs.len() <= u16::MAX as usize,
        "batch of {} requests exceeds the u16 frame count",
        reqs.len()
    );
    let mut out = Vec::with_capacity(16 + reqs.len() * 48);
    out.push(REQ_MAGIC);
    out.push(VERSION);
    put_u16(&mut out, reqs.len() as u16);
    for r in reqs {
        put_u64(&mut out, r.id);
        out.push(r.body.op() as u8);
        let flags = match r.body {
            ReqBody::Lookup { want_sig: true, .. } => FLAG_WANT_SIG,
            _ => 0,
        };
        out.push(flags);
        put_u16(&mut out, r.cred);
        match r.body {
            ReqBody::Lookup { path, .. } | ReqBody::Stat { path } | ReqBody::Readdir { path } => {
                assert!(
                    path.len() <= u16::MAX as usize,
                    "path of {} bytes exceeds the u16 argument length",
                    path.len()
                );
                put_u16(&mut out, path.len() as u16);
                out.extend_from_slice(path.as_bytes());
            }
            ReqBody::LookupSig { sig } => {
                put_u16(&mut out, SIG_BYTES as u16);
                put_sig(&mut out, &sig);
            }
        }
    }
    out
}

/// A request record as the server decodes it; the argument borrows
/// from the frame buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedReq<'a> {
    /// Request id to echo.
    pub id: u64,
    /// Raw op byte (validated later so unknown ops get a per-record
    /// [`Status::BadOp`] instead of poisoning the frame).
    pub op: u8,
    /// Flag bits.
    pub flags: u8,
    /// Credential id.
    pub cred: u16,
    /// Raw argument bytes (path or signature image).
    pub arg: &'a [u8],
}

/// Outcome of decoding a request frame.
#[derive(Debug)]
pub enum DecodedFrame<'a> {
    /// A well-formed batch.
    Batch(Vec<DecodedReq<'a>>),
    /// The header was readable but the version is unknown; answer with
    /// `frame_status = 34`.
    BadVersion,
    /// Structurally malformed; answer with `frame_status = 33`.
    Malformed,
}

/// Decodes a request frame (after the transport stripped the length
/// prefix).
pub fn decode_request_frame(buf: &[u8]) -> DecodedFrame<'_> {
    let mut at = 0usize;
    let Some(&magic) = buf.first() else {
        return DecodedFrame::Malformed;
    };
    at += 1;
    if magic != REQ_MAGIC {
        return DecodedFrame::Malformed;
    }
    let Some(&version) = buf.get(at) else {
        return DecodedFrame::Malformed;
    };
    at += 1;
    if version != VERSION {
        return DecodedFrame::BadVersion;
    }
    let Some(count) = get_u16(buf, &mut at) else {
        return DecodedFrame::Malformed;
    };
    let mut reqs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let Some(id) = get_u64(buf, &mut at) else {
            return DecodedFrame::Malformed;
        };
        let Some(&op) = buf.get(at) else {
            return DecodedFrame::Malformed;
        };
        let Some(&flags) = buf.get(at + 1) else {
            return DecodedFrame::Malformed;
        };
        at += 2;
        let Some(cred) = get_u16(buf, &mut at) else {
            return DecodedFrame::Malformed;
        };
        let Some(arg_len) = get_u16(buf, &mut at) else {
            return DecodedFrame::Malformed;
        };
        let Some(arg) = buf.get(at..at + arg_len as usize) else {
            return DecodedFrame::Malformed;
        };
        at += arg_len as usize;
        reqs.push(DecodedReq {
            id,
            op,
            flags,
            cred,
            arg,
        });
    }
    if at != buf.len() {
        return DecodedFrame::Malformed;
    }
    DecodedFrame::Batch(reqs)
}

/// Peeks the record count of a request frame without decoding records
/// (for accounting rejected frames without paying the decode).
pub fn peek_request_count(buf: &[u8]) -> u32 {
    if buf.len() >= 4 && buf[0] == REQ_MAGIC {
        u16::from_le_bytes([buf[2], buf[3]]) as u32
    } else {
        0
    }
}

// --- response encode/decode ---------------------------------------------

/// Encoded size of a readdir body: the `u16` entry count plus
/// `u64 ino, u8 ftype, u8 name_len, name` per entry. The server checks
/// this against `u16::MAX` before encoding — body_len is a `u16`, so a
/// listing past ~6500 entries is unencodable in one record.
pub fn readdir_wire_len(entries: &[dc_fs::DirEntry]) -> usize {
    2 + entries.iter().map(|e| 10 + e.name.len()).sum::<usize>()
}

/// Incremental response-frame builder the server encodes into.
#[derive(Debug)]
pub struct RespWriter {
    buf: Vec<u8>,
    count: u16,
}

impl RespWriter {
    /// Starts a frame with the given `frame_status` (0 for a normal
    /// batch).
    pub fn new(frame_status: u8) -> RespWriter {
        let mut buf = Vec::with_capacity(256);
        buf.push(RESP_MAGIC);
        buf.push(VERSION);
        buf.push(frame_status);
        buf.push(0); // reserved
        put_u16(&mut buf, 0); // count back-patched in finish()
        RespWriter { buf, count: 0 }
    }

    fn record_header(&mut self, id: u64, status: Status, op: u8) -> usize {
        put_u64(&mut self.buf, id);
        self.buf.push(status.code());
        self.buf.push(op);
        let len_at = self.buf.len();
        put_u16(&mut self.buf, 0); // body_len back-patched
        self.count += 1;
        len_at
    }

    fn patch_body_len(&mut self, len_at: usize) {
        let body_len = self.buf.len() - len_at - 2;
        debug_assert!(
            body_len <= u16::MAX as usize,
            "response body of {body_len} bytes overflows the u16 body_len \
             (the server must bound bodies before encoding)"
        );
        self.buf[len_at..len_at + 2].copy_from_slice(&(body_len as u16).to_le_bytes());
    }

    /// Bytes encoded so far (header plus every pushed record).
    pub fn encoded_len(&self) -> usize {
        self.buf.len()
    }

    /// An error (or otherwise body-less) response.
    pub fn push_status(&mut self, id: u64, status: Status, op: u8) {
        let at = self.record_header(id, status, op);
        self.patch_body_len(at);
    }

    /// A successful lookup.
    pub fn push_lookup(&mut self, id: u64, ino: u64, ftype: FileType, sig: Option<&Signature>) {
        let at = self.record_header(id, Status::Ok, Op::Lookup as u8);
        put_u64(&mut self.buf, ino);
        self.buf.push(ftype.as_u8());
        if let Some(sig) = sig {
            put_sig(&mut self.buf, sig);
        }
        self.patch_body_len(at);
    }

    /// A successful signature lookup.
    pub fn push_lookup_sig(&mut self, id: u64, ino: u64, ftype: FileType) {
        let at = self.record_header(id, Status::Ok, Op::LookupSig as u8);
        put_u64(&mut self.buf, ino);
        self.buf.push(ftype.as_u8());
        self.patch_body_len(at);
    }

    /// A successful stat.
    pub fn push_stat(&mut self, id: u64, attr: &InodeAttr) {
        let at = self.record_header(id, Status::Ok, Op::Stat as u8);
        let w = WireAttr::of(attr);
        put_u64(&mut self.buf, w.ino);
        put_u64(&mut self.buf, w.size);
        put_u64(&mut self.buf, w.mtime);
        put_u32(&mut self.buf, w.nlink);
        put_u32(&mut self.buf, w.uid);
        put_u32(&mut self.buf, w.gid);
        put_u16(&mut self.buf, w.mode);
        self.buf.push(w.ftype);
        self.patch_body_len(at);
    }

    /// A successful readdir. Names beyond 255 bytes and listings whose
    /// encoded body ([`readdir_wire_len`]) exceeds the `u16` body_len
    /// cannot be encoded; the caller bounds both (the server answers
    /// such listings with [`Status::TooBig`] instead).
    pub fn push_readdir(&mut self, id: u64, entries: &[dc_fs::DirEntry]) {
        let at = self.record_header(id, Status::Ok, Op::Readdir as u8);
        put_u16(&mut self.buf, entries.len() as u16);
        for e in entries {
            put_u64(&mut self.buf, e.ino);
            self.buf.push(e.ftype.as_u8());
            self.buf.push(e.name.len() as u8);
            self.buf.extend_from_slice(e.name.as_bytes());
        }
        self.patch_body_len(at);
    }

    /// Finalizes the frame bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let count = self.count;
        self.buf[4..6].copy_from_slice(&count.to_le_bytes());
        self.buf
    }
}

/// A decoded response frame.
#[derive(Debug)]
pub struct RespFrame {
    /// Frame-level status (0, or 32/33/34 when the whole frame was
    /// answered without record decoding).
    pub frame_status: u8,
    /// Per-record responses.
    pub records: Vec<Response>,
}

/// Decodes a response frame (client side). `None` on malformed input.
pub fn decode_response_frame(buf: &[u8]) -> Option<RespFrame> {
    let mut at = 0usize;
    if *buf.first()? != RESP_MAGIC || *buf.get(1)? != VERSION {
        return None;
    }
    let frame_status = *buf.get(2)?;
    at += 4; // magic, version, frame_status, reserved
    let count = get_u16(buf, &mut at)?;
    let mut records = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let id = get_u64(buf, &mut at)?;
        let status_b = *buf.get(at)?;
        let op_b = *buf.get(at + 1)?;
        at += 2;
        let body_len = get_u16(buf, &mut at)? as usize;
        let body_end = at.checked_add(body_len)?;
        if body_end > buf.len() {
            return None;
        }
        let status = Status::from_code(status_b)?;
        let body = if status == Status::Ok {
            // An `Ok` record with an op the client doesn't know is
            // undecodable; error records just echo the byte.
            match Op::from_u8(op_b)? {
                Op::Lookup => {
                    let ino = get_u64(buf, &mut at)?;
                    let ftype = *buf.get(at)?;
                    at += 1;
                    let sig = if at < body_end {
                        Some(get_sig(buf, &mut at)?)
                    } else {
                        None
                    };
                    RespBody::Lookup { ino, ftype, sig }
                }
                Op::LookupSig => {
                    let ino = get_u64(buf, &mut at)?;
                    let ftype = *buf.get(at)?;
                    at += 1;
                    RespBody::Lookup {
                        ino,
                        ftype,
                        sig: None,
                    }
                }
                Op::Stat => {
                    let ino = get_u64(buf, &mut at)?;
                    let size = get_u64(buf, &mut at)?;
                    let mtime = get_u64(buf, &mut at)?;
                    let nlink = get_u32(buf, &mut at)?;
                    let uid = get_u32(buf, &mut at)?;
                    let gid = get_u32(buf, &mut at)?;
                    let mode = get_u16(buf, &mut at)?;
                    let ftype = *buf.get(at)?;
                    at += 1;
                    RespBody::Stat {
                        attr: WireAttr {
                            ino,
                            size,
                            mtime,
                            nlink,
                            uid,
                            gid,
                            mode,
                            ftype,
                        },
                    }
                }
                Op::Readdir => {
                    let n = get_u16(buf, &mut at)?;
                    let mut entries = Vec::with_capacity(n as usize);
                    for _ in 0..n {
                        let ino = get_u64(buf, &mut at)?;
                        let ftype = *buf.get(at)?;
                        let name_len = *buf.get(at + 1)? as usize;
                        at += 2;
                        let name = buf.get(at..at + name_len)?;
                        at += name_len;
                        entries.push((ino, ftype, String::from_utf8(name.to_vec()).ok()?));
                    }
                    RespBody::Readdir { entries }
                }
            }
        } else {
            RespBody::None
        };
        if at != body_end {
            return None;
        }
        records.push(Response {
            id,
            op: op_b,
            status,
            body,
        });
    }
    Some(RespFrame {
        frame_status,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_round_trip() {
        let mut seen = std::collections::HashSet::new();
        let all = [
            Status::Ok,
            Status::Overloaded,
            Status::BadRequest,
            Status::BadVersion,
            Status::BadCred,
            Status::BadOp,
            Status::SigMiss,
            Status::TooBig,
        ];
        for s in all {
            assert_eq!(Status::from_code(s.code()), Some(s));
            assert!(seen.insert(s.code()), "duplicate code {}", s.code());
        }
        for code in 1..=20u8 {
            let s = Status::from_code(code).unwrap();
            assert_eq!(s.code(), code);
            assert!(matches!(s, Status::Fs(_)));
            assert!(seen.insert(code), "duplicate code {code}");
        }
        assert_eq!(Status::from_code(99), None);
    }

    #[test]
    fn request_frame_round_trips() {
        let sig =
            dc_sighash::HashKey::from_seed(7).hash_components([b"a".as_slice(), b"b".as_slice()]);
        let reqs = [
            Request {
                id: 1,
                cred: 0,
                body: ReqBody::Lookup {
                    path: "/a/b",
                    want_sig: true,
                },
            },
            Request {
                id: 2,
                cred: 3,
                body: ReqBody::Stat { path: "/etc" },
            },
            Request {
                id: 3,
                cred: 0,
                body: ReqBody::Readdir { path: "/" },
            },
            Request {
                id: 4,
                cred: 1,
                body: ReqBody::LookupSig { sig },
            },
        ];
        let frame = encode_request_frame(&reqs);
        let DecodedFrame::Batch(decoded) = decode_request_frame(&frame) else {
            panic!("well-formed frame failed to decode");
        };
        assert_eq!(peek_request_count(&frame), 4);
        assert_eq!(decoded.len(), 4);
        assert_eq!(decoded[0].id, 1);
        assert_eq!(decoded[0].op, Op::Lookup as u8);
        assert_eq!(decoded[0].flags, FLAG_WANT_SIG);
        assert_eq!(decoded[0].arg, b"/a/b");
        assert_eq!(decoded[1].cred, 3);
        assert_eq!(decoded[1].arg, b"/etc");
        assert_eq!(decoded[3].arg.len(), SIG_BYTES);
        let mut at = 0;
        assert_eq!(get_sig(decoded[3].arg, &mut at), Some(sig));
    }

    #[test]
    fn truncated_and_bad_version_frames_are_classified() {
        let reqs = [Request {
            id: 9,
            cred: 0,
            body: ReqBody::Stat { path: "/x" },
        }];
        let frame = encode_request_frame(&reqs);
        for cut in 1..frame.len() {
            assert!(
                matches!(decode_request_frame(&frame[..cut]), DecodedFrame::Malformed),
                "truncation at {cut} not detected"
            );
        }
        let mut wrong = frame.clone();
        wrong[1] = 2; // future version
        assert!(matches!(
            decode_request_frame(&wrong),
            DecodedFrame::BadVersion
        ));
        let mut junk = frame;
        junk[0] = 0x00;
        assert!(matches!(
            decode_request_frame(&junk),
            DecodedFrame::Malformed
        ));
    }

    #[test]
    fn response_frame_round_trips() {
        let sig = dc_sighash::HashKey::from_seed(1).hash_components([b"f".as_slice()]);
        let attr = InodeAttr {
            ino: 42,
            ftype: FileType::Regular,
            mode: 0o644,
            uid: 1000,
            gid: 100,
            nlink: 2,
            size: 4096,
            mtime: 7,
            ctime: 8,
        };
        let mut w = RespWriter::new(0);
        w.push_lookup(1, 42, FileType::Regular, Some(&sig));
        w.push_lookup(2, 43, FileType::Directory, None);
        w.push_stat(3, &attr);
        w.push_readdir(
            4,
            &[
                dc_fs::DirEntry {
                    name: "etc".to_string(),
                    ino: 5,
                    ftype: FileType::Directory,
                },
                dc_fs::DirEntry {
                    name: "passwd".to_string(),
                    ino: 6,
                    ftype: FileType::Regular,
                },
            ],
        );
        w.push_status(5, Status::Fs(FsError::NoEnt), Op::Stat as u8);
        w.push_status(6, Status::SigMiss, Op::LookupSig as u8);
        w.push_lookup_sig(7, 44, FileType::Symlink);
        let frame = w.finish();

        let f = decode_response_frame(&frame).expect("decode");
        assert_eq!(f.frame_status, 0);
        assert_eq!(f.records.len(), 7);
        assert_eq!(
            f.records[0].body,
            RespBody::Lookup {
                ino: 42,
                ftype: FileType::Regular.as_u8(),
                sig: Some(sig)
            }
        );
        assert_eq!(
            f.records[1].body,
            RespBody::Lookup {
                ino: 43,
                ftype: FileType::Directory.as_u8(),
                sig: None
            }
        );
        let RespBody::Stat { attr: got } = f.records[2].body else {
            panic!("stat body");
        };
        assert_eq!(got, WireAttr::of(&attr));
        let RespBody::Readdir { entries } = &f.records[3].body else {
            panic!("readdir body");
        };
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1], (6, FileType::Regular.as_u8(), "passwd".into()));
        assert_eq!(f.records[4].status, Status::Fs(FsError::NoEnt));
        assert_eq!(f.records[5].status, Status::SigMiss);
        assert_eq!(
            f.records[6].body,
            RespBody::Lookup {
                ino: 44,
                ftype: FileType::Symlink.as_u8(),
                sig: None
            }
        );
        // Malformed inputs never panic, just fail.
        for cut in 1..frame.len() {
            assert!(decode_response_frame(&frame[..cut]).is_none());
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the u16 frame count")]
    fn oversized_batch_panics_instead_of_truncating() {
        let reqs = vec![
            Request {
                id: 0,
                cred: 0,
                body: ReqBody::Stat { path: "/x" },
            };
            u16::MAX as usize + 1
        ];
        let _ = encode_request_frame(&reqs);
    }

    #[test]
    #[should_panic(expected = "exceeds the u16 argument length")]
    fn oversized_path_panics_instead_of_truncating() {
        let long = "x".repeat(u16::MAX as usize + 1);
        let _ = encode_request_frame(&[Request {
            id: 0,
            cred: 0,
            body: ReqBody::Lookup {
                path: &long,
                want_sig: false,
            },
        }]);
    }

    #[test]
    fn readdir_wire_len_matches_encoding() {
        let entries: Vec<dc_fs::DirEntry> = (0..37)
            .map(|i| dc_fs::DirEntry {
                name: format!("entry{i}"),
                ino: i,
                ftype: FileType::Regular,
            })
            .collect();
        let mut w = RespWriter::new(0);
        let before = w.encoded_len();
        w.push_readdir(1, &entries);
        // record header is u64 id + u8 status + u8 op + u16 body_len.
        assert_eq!(w.encoded_len() - before - 12, readdir_wire_len(&entries));
    }

    #[test]
    fn overload_frame_is_empty_with_status() {
        let frame = RespWriter::new(STATUS_OVERLOADED).finish();
        let f = decode_response_frame(&frame).unwrap();
        assert_eq!(f.frame_status, STATUS_OVERLOADED);
        assert!(f.records.is_empty());
    }
}
