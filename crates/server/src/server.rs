//! The batched metadata server: a bounded submission queue feeding a
//! worker pool that executes whole frames against the kernel.
//!
//! # Batch = epoch pin
//!
//! Each worker pins the reclamation epoch **once per frame**
//! ([`dcache_core::Dcache::batch_pin`]) and executes every request in
//! the batch under that pin; the per-lookup pins inside the kernel
//! collapse to a thread-local nesting bump. At batch size 64 this
//! amortizes the pin (and its stats/trace accounting) 64×, which is
//! what carries the service past 1M lookups/s on a single core. The
//! pin spans only the batch — workers unpin between frames, so grace
//! periods stay short even under sustained load.
//!
//! # Admission control
//!
//! Submission is where load is shed, *before* any decoding:
//!
//! - the submission queue is bounded (`queue_depth`); a full queue
//!   rejects the frame with a typed `Overloaded` response rather than
//!   blocking the client's submit path, and
//! - an optional [`MemoryGate`] trips when the kernel's reclaimable
//!   footprint exceeds its budget. On the trip *edge* exactly one
//!   submitter triggers [`Kernel::memory_pressure`] (guarded by a CAS
//!   so concurrent submitters keep shedding instead of piling onto the
//!   shrinker); the gate re-opens once the footprint falls below its
//!   low-water mark. The server never stalls and never panics under
//!   pressure — it sheds, reclaims, and recovers.

use crate::proto::{
    self, DecodedFrame, DecodedReq, Op, RespWriter, Status, STATUS_BAD_VERSION, STATUS_OVERLOADED,
};
use crate::stats::{ServeMetrics, ServeStats, WorkerHists};
use crate::transport::{read_frame, write_frame, DuplexEnd};
use dc_fs::{DirEntry, InodeAttr};
use dc_obs::TraceEvent;
use dc_sighash::Signature;
use dc_vfs::{FileType, Kernel, Process, SigLookup};
use dcache_core::{MemoryGate, Verdict};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Longest path argument accepted (matches `PATH_MAX`).
const MAX_PATH_ARG: usize = 4096;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing batches.
    pub workers: usize,
    /// Submission-queue bound; frames beyond it are shed.
    pub queue_depth: usize,
    /// Memory budget for the admission gate; `None` disables it.
    pub mem_budget_bytes: Option<u64>,
    /// Largest request frame accepted.
    pub max_frame_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_depth: 256,
            mem_budget_bytes: None,
            max_frame_bytes: proto::MAX_FRAME_BYTES,
        }
    }
}

/// A frame waiting for a worker.
struct Job {
    conn: Arc<ConnShared>,
    frame: Vec<u8>,
    enqueued: Instant,
}

/// Per-connection response mailbox.
struct ConnShared {
    responses: Mutex<VecDeque<Vec<u8>>>,
    ready: Condvar,
}

impl ConnShared {
    fn push(&self, frame: Vec<u8>) {
        self.responses.lock().unwrap().push_back(frame);
        self.ready.notify_all();
    }

    fn pop(&self) -> Vec<u8> {
        let mut q = self.responses.lock().unwrap();
        while q.is_empty() {
            q = self.ready.wait(q).unwrap();
        }
        q.pop_front().unwrap()
    }
}

struct Inner {
    kernel: Arc<Kernel>,
    config: ServerConfig,
    gate: Option<MemoryGate>,
    stats: Arc<ServeStats>,
    worker_hists: Vec<Arc<WorkerHists>>,
    queue: Mutex<VecDeque<Job>>,
    queue_ready: Condvar,
    creds: RwLock<HashMap<u16, Arc<Process>>>,
    shutdown: AtomicBool,
    /// Ensures only one submitter runs the shrinker per trip edge.
    shrink_in_flight: AtomicBool,
    next_conn: AtomicU64,
}

/// A client's handle on the server: frames go in via
/// [`send_frame`](Connection::send_frame), response frames come back
/// via [`recv_frame`](Connection::recv_frame). Every submitted frame
/// produces exactly one response frame (possibly a frame-level
/// rejection), in completion order.
pub struct Connection {
    shared: Arc<ConnShared>,
    inner: Arc<Inner>,
}

impl Connection {
    /// Submits an encoded request frame (admission control applies).
    pub fn send_frame(&self, frame: Vec<u8>) {
        self.inner.submit(&self.shared, frame);
    }

    /// Blocks for the next response frame.
    pub fn recv_frame(&self) -> Vec<u8> {
        self.shared.pop()
    }
}

/// The in-process metadata server. Dropping it (or calling
/// [`shutdown`](Server::shutdown)) drains the queue with typed
/// rejections and joins the workers.
pub struct Server {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Builds the server, spawns its workers, and registers its metric
    /// source on the kernel (so `--metrics-out` exports and
    /// [`Kernel::reset_stats`] cover served traffic).
    pub fn start(kernel: Arc<Kernel>, config: ServerConfig) -> Server {
        let workers = config.workers.max(1);
        let stats = Arc::new(ServeStats::default());
        let worker_hists: Vec<Arc<WorkerHists>> = (0..workers)
            .map(|_| Arc::new(WorkerHists::default()))
            .collect();
        kernel.register_metric_source(Arc::new(ServeMetrics::new(
            stats.clone(),
            worker_hists.clone(),
        )));
        let inner = Arc::new(Inner {
            gate: config.mem_budget_bytes.map(MemoryGate::new),
            kernel,
            stats,
            worker_hists: worker_hists.clone(),
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            creds: RwLock::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            shrink_in_flight: AtomicBool::new(false),
            next_conn: AtomicU64::new(1),
            config,
        });
        let handles = worker_hists
            .iter()
            .map(|hists| {
                let inner = inner.clone();
                let hists = hists.clone();
                std::thread::spawn(move || inner.worker_loop(&hists))
            })
            .collect();
        Server {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// Maps a wire credential id to a server-side process (namespace,
    /// cwd, credentials). Requests naming an unregistered id get
    /// [`Status::BadCred`].
    pub fn register_cred(&self, cred_id: u16, proc: Arc<Process>) {
        self.inner.creds.write().unwrap().insert(cred_id, proc);
    }

    /// Opens an in-process connection.
    pub fn connect(&self) -> Connection {
        self.inner.next_conn.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.conns.fetch_add(1, Ordering::Relaxed);
        self.inner.kernel.obs().event(|| TraceEvent::ServeConn);
        Connection {
            shared: Arc::new(ConnShared {
                responses: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
            }),
            inner: self.inner.clone(),
        }
    }

    /// Serves a byte stream (e.g. one end of
    /// [`duplex_pair`](crate::transport::duplex_pair)): a pump thread
    /// reads request frames, submits them, and writes each response
    /// frame back. One frame in flight per stream; clients wanting
    /// pipelining open several streams.
    pub fn serve_stream(&self, mut stream: DuplexEnd) -> JoinHandle<()> {
        let conn = self.connect();
        let max = self.inner.config.max_frame_bytes;
        std::thread::spawn(move || {
            while let Ok(Some(frame)) = read_frame(&mut stream, max) {
                conn.send_frame(frame);
                let resp = conn.recv_frame();
                if write_frame(&mut stream, &resp).is_err() {
                    break;
                }
            }
        })
    }

    /// The server's counters.
    pub fn stats(&self) -> &Arc<ServeStats> {
        &self.inner.stats
    }

    /// The admission gate, when one was configured.
    pub fn gate(&self) -> Option<&MemoryGate> {
        self.inner.gate.as_ref()
    }

    /// Per-worker histograms (merged views come from the kernel's
    /// metrics registry).
    pub fn worker_hists(&self) -> &[Arc<WorkerHists>] {
        &self.inner.worker_hists
    }

    /// Stops the workers: in-queue frames are rejected with typed
    /// `Overloaded` responses (no request is silently dropped), then
    /// the workers are joined.
    pub fn shutdown(&self) {
        // Flag and drain under the queue lock: any submit that takes
        // the lock afterwards sees the flag and rejects, so nothing can
        // slip into the queue once the drain has run.
        let drained: Vec<Job> = {
            let mut q = self.inner.queue.lock().unwrap();
            if self.inner.shutdown.swap(true, Ordering::SeqCst) {
                return;
            }
            q.drain(..).collect()
        };
        for job in drained {
            self.inner.reject(&job.conn, &job.frame);
        }
        self.inner.queue_ready.notify_all();
        for h in self.workers.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    // --- submission / admission -----------------------------------------

    fn submit(&self, conn: &Arc<ConnShared>, frame: Vec<u8>) {
        if frame.len() > self.config.max_frame_bytes {
            self.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
            conn.push(RespWriter::new(Status::TooBig.code()).finish());
            return;
        }
        // Fast path only — the authoritative shutdown check happens
        // under the queue lock below, where it cannot race the drain.
        if self.shutdown.load(Ordering::SeqCst) {
            self.reject(conn, &frame);
            return;
        }
        if let Some(gate) = &self.gate {
            let kernel = &self.kernel;
            match gate.admit(|| kernel.shrinkers().count_bytes()) {
                Verdict::Admit => {}
                Verdict::Shed { just_tripped } => {
                    self.reject(conn, &frame);
                    if just_tripped {
                        self.reclaim(gate);
                    }
                    return;
                }
            }
        }
        {
            let mut q = self.queue.lock().unwrap();
            // Re-checked under the lock: shutdown() sets the flag and
            // drains while holding it, so a frame enqueued here is
            // either seen by that drain or rejected right now — never
            // stranded in the queue with no worker left to answer it.
            if self.shutdown.load(Ordering::SeqCst) || q.len() >= self.config.queue_depth {
                drop(q);
                self.reject(conn, &frame);
                return;
            }
            q.push_back(Job {
                conn: conn.clone(),
                frame,
                enqueued: Instant::now(),
            });
        }
        self.queue_ready.notify_one();
    }

    /// Typed frame-level rejection: no decode, an empty response frame
    /// with `frame_status = 32`. The client fails every request it
    /// packed into the frame with [`Status::Overloaded`].
    fn reject(&self, conn: &ConnShared, frame: &[u8]) {
        let ops = proto::peek_request_count(frame);
        self.stats.rejected_frames.fetch_add(1, Ordering::Relaxed);
        self.stats
            .rejected_requests
            .fetch_add(ops as u64, Ordering::Relaxed);
        self.kernel.obs().event(|| TraceEvent::ServeReject { ops });
        conn.push(RespWriter::new(STATUS_OVERLOADED).finish());
    }

    /// Runs the shrinker down to the gate's low-water mark. Exactly one
    /// submitter per trip edge gets here (the `just_tripped` edge), and
    /// the CAS keeps a re-trip from stacking a second shrink behind a
    /// still-running one.
    fn reclaim(&self, gate: &MemoryGate) {
        if self
            .shrink_in_flight
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        self.kernel.memory_pressure(gate.low_water());
        self.shrink_in_flight.store(false, Ordering::Release);
    }

    // --- worker side -----------------------------------------------------

    fn worker_loop(&self, hists: &WorkerHists) {
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    q = self.queue_ready.wait(q).unwrap();
                }
            };
            hists
                .queue_wait
                .record(job.enqueued.elapsed().as_nanos() as u64);
            let resp = self.process_frame(&job.frame, hists);
            job.conn.push(resp);
        }
    }

    fn process_frame(&self, frame: &[u8], hists: &WorkerHists) -> Vec<u8> {
        let t = Instant::now();
        let decoded = proto::decode_request_frame(frame);
        hists.decode.record(t.elapsed().as_nanos() as u64);
        let reqs = match decoded {
            DecodedFrame::Batch(reqs) => reqs,
            DecodedFrame::BadVersion => {
                self.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                return RespWriter::new(STATUS_BAD_VERSION).finish();
            }
            DecodedFrame::Malformed => {
                self.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                return RespWriter::new(Status::BadRequest.code()).finish();
            }
        };

        // Execute the whole batch under one epoch pin: per-lookup pins
        // inside the kernel collapse to a nesting bump.
        let t = Instant::now();
        let results: Vec<(u64, u8, ExecResult)> = {
            let _pin = self.kernel.dcache.batch_pin();
            reqs.iter()
                .map(|r| (r.id, r.op, self.execute(r, hists)))
                .collect()
        };
        hists.batch_exec.record(t.elapsed().as_nanos() as u64);
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats
            .requests
            .fetch_add(reqs.len() as u64, Ordering::Relaxed);
        let ops = reqs.len() as u32;
        self.kernel.obs().event(|| TraceEvent::ServeBatch { ops });

        let t = Instant::now();
        let mut w = RespWriter::new(0);
        let mut too_big = false;
        for (id, op, result) in results {
            match result {
                ExecResult::Status(status) => {
                    if status != Status::Ok {
                        self.stats.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    w.push_status(id, status, op);
                }
                ExecResult::Lookup { ino, ftype, sig } => {
                    w.push_lookup(id, ino, ftype, sig.as_ref())
                }
                ExecResult::LookupSig { ino, ftype } => w.push_lookup_sig(id, ino, ftype),
                ExecResult::Stat(attr) => w.push_stat(id, &attr),
                ExecResult::Readdir(entries) => w.push_readdir(id, &entries),
            }
            // The peer reads responses under the same frame cap as
            // requests; a batch whose encoded response would blow it
            // (e.g. many near-cap readdirs) fails typed at the frame
            // level instead of poisoning the connection. Checked per
            // record so the overshoot stays bounded by one record.
            if w.encoded_len() > self.config.max_frame_bytes {
                too_big = true;
                break;
            }
        }
        let resp = if too_big {
            self.stats.resp_too_big.fetch_add(1, Ordering::Relaxed);
            RespWriter::new(Status::TooBig.code()).finish()
        } else {
            w.finish()
        };
        hists.encode.record(t.elapsed().as_nanos() as u64);
        resp
    }

    fn execute(&self, req: &DecodedReq<'_>, hists: &WorkerHists) -> ExecResult {
        let Some(op) = Op::from_u8(req.op) else {
            return ExecResult::Status(Status::BadOp);
        };
        self.stats.per_op[op.idx()].fetch_add(1, Ordering::Relaxed);
        let Some(proc) = self.creds.read().unwrap().get(&req.cred).cloned() else {
            return ExecResult::Status(Status::BadCred);
        };
        match op {
            Op::Lookup | Op::Stat | Op::Readdir => {
                if req.arg.len() > MAX_PATH_ARG {
                    return ExecResult::Status(Status::TooBig);
                }
                let Ok(path) = std::str::from_utf8(req.arg) else {
                    return ExecResult::Status(Status::BadRequest);
                };
                let t = Instant::now();
                let out = match op {
                    Op::Lookup => {
                        let want_sig = req.flags & proto::FLAG_WANT_SIG != 0;
                        match self.kernel.lookup_path(&proc, path, want_sig) {
                            Ok(r) => ExecResult::Lookup {
                                ino: r.ino,
                                ftype: r.ftype,
                                sig: r.sig,
                            },
                            Err(e) => ExecResult::Status(Status::Fs(e)),
                        }
                    }
                    Op::Stat => match self.kernel.stat_path(&proc, path) {
                        Ok(attr) => ExecResult::Stat(attr),
                        Err(e) => ExecResult::Status(Status::Fs(e)),
                    },
                    Op::Readdir => match self.kernel.list_dir(&proc, path) {
                        Ok(entries) => {
                            // The encoded body (2 + Σ(10 + name_len))
                            // must fit the u16 body_len — bounding the
                            // entry count alone is not enough.
                            if proto::readdir_wire_len(&entries) > u16::MAX as usize
                                || entries.iter().any(|e| e.name.len() > 255)
                            {
                                ExecResult::Status(Status::TooBig)
                            } else {
                                ExecResult::Readdir(entries)
                            }
                        }
                        Err(e) => ExecResult::Status(Status::Fs(e)),
                    },
                    Op::LookupSig => unreachable!(),
                };
                hists.per_op[op.idx()].record(t.elapsed().as_nanos() as u64);
                out
            }
            Op::LookupSig => {
                if req.arg.len() != proto::SIG_BYTES {
                    return ExecResult::Status(Status::BadRequest);
                }
                let mut lanes = [0u64; 4];
                for (i, lane) in lanes.iter_mut().enumerate() {
                    let b = &req.arg[i * 8..i * 8 + 8];
                    *lane = u64::from_le_bytes(b.try_into().unwrap());
                }
                let sig = Signature::from_wire(lanes);
                let t = Instant::now();
                let out = match self.kernel.lookup_sig(&proc, &sig) {
                    SigLookup::Hit(r) => ExecResult::LookupSig {
                        ino: r.ino,
                        ftype: r.ftype,
                    },
                    SigLookup::Neg(e) => ExecResult::Status(Status::Fs(e)),
                    SigLookup::Miss => {
                        self.stats.sig_miss.fetch_add(1, Ordering::Relaxed);
                        ExecResult::Status(Status::SigMiss)
                    }
                };
                hists.per_op[op.idx()].record(t.elapsed().as_nanos() as u64);
                out
            }
        }
    }
}

/// Kernel-side result of one request, before encoding.
enum ExecResult {
    Status(Status),
    Lookup {
        ino: u64,
        ftype: FileType,
        sig: Option<Signature>,
    },
    LookupSig {
        ino: u64,
        ftype: FileType,
    },
    Stat(InodeAttr),
    Readdir(Vec<DirEntry>),
}
