//! Frame transport: 4-byte little-endian length prefix over any byte
//! stream, plus an in-process duplex pipe standing in for a socket.
//!
//! The evaluation environment has no network, so the "wire" is a pair
//! of byte pipes ([`duplex_pair`]) — but every frame still crosses it
//! as a contiguous byte image produced by [`crate::proto`], so the
//! encode/decode cost and the framing discipline are exactly what a
//! TCP deployment would pay. Swapping [`DuplexEnd`] for a `TcpStream`
//! changes nothing else: both sides only use `Read`/`Write`.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex};

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame. `Ok(None)` on clean end-of-stream
/// (the peer closed between frames); an error if the stream ends mid-
/// frame or the announced length exceeds `max`.
pub fn read_frame(r: &mut impl Read, max: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len_b = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        let n = r.read(&mut len_b[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream closed inside a frame header",
            ));
        }
        got += n;
    }
    let len = u32::from_le_bytes(len_b) as usize;
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

/// High-water mark on a pipe's buffer: writes block once the reader
/// falls this far behind, like a socket's send buffer. One full frame
/// (plus its length prefix) always fits, so a request/response
/// exchange never deadlocks on its own data.
pub const PIPE_HIGH_WATER: usize = crate::proto::MAX_FRAME_BYTES + 4;

/// One direction of the in-process pipe.
struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
}

struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl Pipe {
    fn new() -> Arc<Pipe> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                closed: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        })
    }

    /// Writes up to the high-water mark, blocking while the buffer is
    /// full (backpressure: a producer cannot outrun a stalled reader
    /// without bound). Returns the bytes accepted; `write_all` in the
    /// framing layer loops over partial writes.
    fn write(&self, data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut st = self.state.lock().unwrap();
        loop {
            if st.closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "peer closed the pipe",
                ));
            }
            if st.buf.len() < PIPE_HIGH_WATER {
                break;
            }
            st = self.writable.wait(st).unwrap();
        }
        let n = (PIPE_HIGH_WATER - st.buf.len()).min(data.len());
        st.buf.extend(&data[..n]);
        self.readable.notify_all();
        Ok(n)
    }

    /// Blocks until data is available or the writer closed; returns the
    /// number of bytes copied (0 only at end-of-stream).
    fn read(&self, out: &mut [u8]) -> usize {
        let mut st = self.state.lock().unwrap();
        while st.buf.is_empty() && !st.closed {
            st = self.readable.wait(st).unwrap();
        }
        let n = st.buf.len().min(out.len());
        for slot in out.iter_mut().take(n) {
            *slot = st.buf.pop_front().unwrap();
        }
        if n > 0 {
            self.writable.notify_all();
        }
        n
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }
}

/// One end of an in-process bidirectional byte stream. Clones share
/// the same stream (so one thread can read while another writes).
/// Dropping *all* clones of an end closes its outbound direction,
/// which the peer observes as end-of-stream.
pub struct DuplexEnd {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    /// Closes `tx` when the last clone of this end drops.
    _closer: Arc<TxCloser>,
}

struct TxCloser(Arc<Pipe>);

impl Drop for TxCloser {
    fn drop(&mut self) {
        self.0.close();
    }
}

impl Clone for DuplexEnd {
    fn clone(&self) -> DuplexEnd {
        DuplexEnd {
            rx: self.rx.clone(),
            tx: self.tx.clone(),
            _closer: self._closer.clone(),
        }
    }
}

/// Creates a connected pair of stream ends (a socketpair analog).
pub fn duplex_pair() -> (DuplexEnd, DuplexEnd) {
    let a_to_b = Pipe::new();
    let b_to_a = Pipe::new();
    let a = DuplexEnd {
        rx: b_to_a.clone(),
        tx: a_to_b.clone(),
        _closer: Arc::new(TxCloser(a_to_b.clone())),
    };
    let b = DuplexEnd {
        rx: a_to_b,
        tx: b_to_a.clone(),
        _closer: Arc::new(TxCloser(b_to_a)),
    };
    (a, b)
}

impl Read for DuplexEnd {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        Ok(self.rx.read(buf))
    }
}

impl Write for DuplexEnd {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_the_pipe() {
        let (mut a, mut b) = duplex_pair();
        write_frame(&mut a, b"hello").unwrap();
        write_frame(&mut a, b"").unwrap();
        write_frame(&mut a, &[7u8; 1000]).unwrap();
        assert_eq!(read_frame(&mut b, 1 << 20).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut b, 1 << 20).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut b, 1 << 20).unwrap().unwrap(), [7u8; 1000]);
    }

    #[test]
    fn clean_close_reads_as_none_mid_frame_as_error() {
        let (mut a, mut b) = duplex_pair();
        write_frame(&mut a, b"last").unwrap();
        drop(a);
        assert_eq!(read_frame(&mut b, 1 << 20).unwrap().unwrap(), b"last");
        assert!(read_frame(&mut b, 1 << 20).unwrap().is_none());

        let (mut a, mut b) = duplex_pair();
        a.write_all(&100u32.to_le_bytes()).unwrap();
        a.write_all(b"short").unwrap(); // 5 of the announced 100 bytes
        drop(a);
        assert!(read_frame(&mut b, 1 << 20).is_err());
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocation() {
        let (mut a, mut b) = duplex_pair();
        a.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let err = read_frame(&mut b, 4096).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn cross_thread_blocking_read() {
        let (mut a, mut b) = duplex_pair();
        let t = std::thread::spawn(move || read_frame(&mut b, 1 << 20).unwrap().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        write_frame(&mut a, b"late").unwrap();
        assert_eq!(t.join().unwrap(), b"late");
    }

    #[test]
    fn writes_block_at_the_high_water_mark() {
        let (mut a, mut b) = duplex_pair();
        let total = PIPE_HIGH_WATER * 2 + 17;
        let writer = std::thread::spawn(move || {
            a.write_all(&vec![0xAB; total]).unwrap();
        });
        // The writer cannot finish: the buffer caps at the high-water
        // mark and nothing has been read yet. (This holds regardless of
        // timing — completion would require draining the pipe.)
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!writer.is_finished(), "writer ran past the buffer cap");
        let mut drained = vec![0u8; total];
        b.read_exact(&mut drained).unwrap();
        assert!(drained.iter().all(|&x| x == 0xAB));
        writer.join().unwrap();
    }

    #[test]
    fn blocked_writer_errors_when_the_pipe_closes() {
        let (mut a, _b) = duplex_pair();
        a.write_all(&vec![0u8; PIPE_HIGH_WATER]).unwrap(); // fill to the cap
        let tx = a.tx.clone();
        let writer = std::thread::spawn(move || a.write_all(b"one more byte"));
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.close();
        assert!(writer.join().unwrap().is_err());
    }

    #[test]
    fn write_to_closed_peer_fails() {
        let (mut a, b) = duplex_pair();
        // Peer's rx is our tx; closing *our* tx is what `drop(a)` does.
        // Closing b entirely closes b's tx (a's rx) — a's writes still
        // target a_to_b, which only a's closer closes. Simulate the peer
        // vanishing by closing the shared pipe directly.
        drop(b);
        a.tx.close();
        assert!(write_frame(&mut a, b"x").is_err());
    }
}
