//! End-to-end server tests: protocol round-trips against a live
//! kernel, typed admission rejections with recovery, stream transport,
//! and the events↔stats↔exporter reconciliation for served traffic.

use dc_server::proto::{encode_request_frame, Op, ReqBody, Request, RespBody, Status};
use dc_server::{duplex_pair, Client, Server, ServerConfig, StreamClient};
use dc_vfs::{EventKind, Kernel, KernelBuilder, ObsConfig, OpenFlags};
use dcache_core::DcacheConfig;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn obs_kernel() -> Arc<Kernel> {
    KernelBuilder::new(DcacheConfig::optimized())
        .observability(ObsConfig::default())
        .build()
        .unwrap()
}

/// `/d{0..dirs}/f{0..files}` with one byte per file.
fn populate(k: &Arc<Kernel>, dirs: usize, files: usize) {
    let p = k.init_process();
    for d in 0..dirs {
        k.mkdir(&p, &format!("/d{d}"), 0o755).unwrap();
        for f in 0..files {
            let path = format!("/d{d}/f{f}");
            let fd = k.open(&p, &path, OpenFlags::create(), 0o644).unwrap();
            k.write_fd(&p, fd, b"x").unwrap();
            k.close(&p, fd).unwrap();
        }
    }
}

#[test]
fn batched_ops_round_trip_against_the_kernel() {
    let k = obs_kernel();
    populate(&k, 2, 4);
    let server = Server::start(k.clone(), ServerConfig::default());
    server.register_cred(1, k.init_process());
    let client = Client::new(server.connect());

    // One batch mixing every op, plus typed errors.
    let resps = client.call(&[
        Request {
            id: 10,
            cred: 1,
            body: ReqBody::Lookup {
                path: "/d0/f0",
                want_sig: true,
            },
        },
        Request {
            id: 11,
            cred: 1,
            body: ReqBody::Stat { path: "/d1/f3" },
        },
        Request {
            id: 12,
            cred: 1,
            body: ReqBody::Readdir { path: "/d0" },
        },
        Request {
            id: 13,
            cred: 1,
            body: ReqBody::Lookup {
                path: "/d0/missing",
                want_sig: false,
            },
        },
        Request {
            id: 14,
            cred: 9, // never registered
            body: ReqBody::Stat { path: "/d0/f0" },
        },
    ]);
    assert_eq!(resps.len(), 5);

    assert_eq!(resps[0].id, 10);
    assert_eq!(resps[0].status, Status::Ok);
    let RespBody::Lookup { ino, ftype, sig } = &resps[0].body else {
        panic!("lookup body expected, got {:?}", resps[0].body);
    };
    let expect = k.stat(&k.init_process(), "/d0/f0").unwrap();
    assert_eq!(*ino, expect.ino);
    assert_eq!(*ftype, expect.ftype.as_u8());
    let sig = sig.expect("want_sig was set and the fastpath is on");

    assert_eq!(resps[1].status, Status::Ok);
    let RespBody::Stat { attr } = &resps[1].body else {
        panic!("stat body expected");
    };
    let expect = k.stat(&k.init_process(), "/d1/f3").unwrap();
    assert_eq!(attr.ino, expect.ino);
    assert_eq!(attr.size, 1);
    assert_eq!(attr.mode, 0o644);

    assert_eq!(resps[2].status, Status::Ok);
    let RespBody::Readdir { entries } = &resps[2].body else {
        panic!("readdir body expected");
    };
    let mut names: Vec<&str> = entries.iter().map(|(_, _, n)| n.as_str()).collect();
    names.sort_unstable(); // readdir order is unspecified
    assert_eq!(names, ["f0", "f1", "f2", "f3"]);

    assert_eq!(resps[3].status, Status::Fs(dc_vfs::FsError::NoEnt));
    assert_eq!(resps[4].status, Status::BadCred);

    // The signature from the lookup serves a cache-only lookup.
    let resps = client.call(&[Request {
        id: 20,
        cred: 1,
        body: ReqBody::LookupSig { sig },
    }]);
    assert_eq!(resps[0].status, Status::Ok, "warm signature must hit");
    let RespBody::Lookup { ino, .. } = &resps[0].body else {
        panic!("lookup_sig body expected");
    };
    assert_eq!(*ino, k.stat(&k.init_process(), "/d0/f0").unwrap().ino);

    // After a cache drop the signature is not answerable: typed miss,
    // not an error and not a fallback walk.
    k.drop_caches();
    let resps = client.call(&[Request {
        id: 21,
        cred: 1,
        body: ReqBody::LookupSig { sig },
    }]);
    assert_eq!(resps[0].status, Status::SigMiss);
    assert_eq!(server.stats().sig_miss.load(Ordering::Relaxed), 1);
}

#[test]
fn unknown_ops_bad_versions_and_malformed_frames_are_typed() {
    let k = obs_kernel();
    populate(&k, 1, 1);
    let server = Server::start(k.clone(), ServerConfig::default());
    server.register_cred(1, k.init_process());
    let conn = server.connect();

    // Unknown op byte inside a well-formed frame: per-record BadOp.
    let mut frame = encode_request_frame(&[Request {
        id: 1,
        cred: 1,
        body: ReqBody::Stat { path: "/d0/f0" },
    }]);
    frame[4 + 8] = 9; // the op byte of the first record
    conn.send_frame(frame);
    let rf = dc_server::proto::decode_response_frame(&conn.recv_frame()).unwrap();
    assert_eq!(rf.frame_status, 0);
    assert_eq!(rf.records[0].status, Status::BadOp);

    // Unsupported version: empty frame with frame_status 34.
    let mut frame = encode_request_frame(&[Request {
        id: 2,
        cred: 1,
        body: ReqBody::Stat { path: "/d0/f0" },
    }]);
    frame[1] = 77;
    conn.send_frame(frame);
    let rf = dc_server::proto::decode_response_frame(&conn.recv_frame()).unwrap();
    assert_eq!(rf.frame_status, Status::BadVersion.code());
    assert!(rf.records.is_empty());

    // Garbage: frame_status 33.
    conn.send_frame(vec![0xFF, 0x00, 0x01]);
    let rf = dc_server::proto::decode_response_frame(&conn.recv_frame()).unwrap();
    assert_eq!(rf.frame_status, Status::BadRequest.code());
    assert_eq!(server.stats().bad_frames.load(Ordering::Relaxed), 2);
}

#[test]
fn memory_pressure_sheds_typed_reclaims_and_recovers() {
    let k = obs_kernel();
    populate(&k, 8, 64);
    let footprint = k.shrinkers().count_bytes();
    assert!(
        footprint > 0,
        "populated kernel must have reclaimable bytes"
    );

    // Budget well below the current footprint: the first admission
    // probe trips the gate.
    let server = Server::start(
        k.clone(),
        ServerConfig {
            workers: 1,
            mem_budget_bytes: Some(footprint / 2),
            ..ServerConfig::default()
        },
    );
    server.register_cred(1, k.init_process());
    let client = Client::new(server.connect());

    let reqs: Vec<Request<'_>> = (0..4)
        .map(|i| Request {
            id: i,
            cred: 1,
            body: ReqBody::Lookup {
                path: "/d0/f0",
                want_sig: false,
            },
        })
        .collect();

    // First frame: shed with a typed per-request Overloaded, and the
    // trip edge runs the shrinker inline.
    let resps = client.call(&reqs);
    assert!(resps.iter().all(|r| r.status == Status::Overloaded));
    assert_eq!(server.stats().rejected_frames.load(Ordering::Relaxed), 1);
    assert_eq!(server.stats().rejected_requests.load(Ordering::Relaxed), 4);
    let gate = server.gate().unwrap();
    assert_eq!(gate.trip_count(), 1);
    assert!(
        k.shrinkers().count_bytes() <= gate.low_water(),
        "trip edge must have reclaimed down to the low-water mark"
    );

    // The gate re-opens on the next probe: service recovers without
    // intervention, and the retried frame executes.
    let resps = client.call(&reqs);
    assert!(
        resps.iter().all(|r| r.status == Status::Ok),
        "post-reclaim retry must be admitted and served: {resps:?}"
    );
    assert!(!gate.is_tripped());
    assert_eq!(server.stats().batches.load(Ordering::Relaxed), 1);

    // Reconciliation: reject/batch/conn events match the counters.
    let obs = k.obs().obs().expect("observability is on");
    let stats = server.stats();
    assert_eq!(
        obs.event_count(EventKind::ServeReject),
        stats.rejected_frames.load(Ordering::Relaxed)
    );
    assert_eq!(
        obs.event_count(EventKind::ServeBatch),
        stats.batches.load(Ordering::Relaxed)
    );
    assert_eq!(
        obs.event_count(EventKind::ServeConn),
        stats.conns.load(Ordering::Relaxed)
    );
}

#[test]
fn queue_bound_sheds_when_no_workers_drain() {
    let k = obs_kernel();
    populate(&k, 1, 1);
    // One worker, depth 2: stall the worker with a first frame is racy,
    // so instead shut the server down — the drain path and subsequent
    // submits must reject, never hang or drop silently.
    let server = Server::start(
        k.clone(),
        ServerConfig {
            workers: 1,
            queue_depth: 2,
            ..ServerConfig::default()
        },
    );
    server.register_cred(1, k.init_process());
    let client = Client::new(server.connect());
    server.shutdown();
    let resps = client.call(&[Request {
        id: 1,
        cred: 1,
        body: ReqBody::Stat { path: "/d0/f0" },
    }]);
    assert_eq!(resps[0].status, Status::Overloaded);
}

#[test]
fn stream_transport_serves_frames_over_the_wire() {
    let k = obs_kernel();
    populate(&k, 1, 2);
    let server = Server::start(k.clone(), ServerConfig::default());
    server.register_cred(1, k.init_process());

    let (client_end, server_end) = duplex_pair();
    let pump = server.serve_stream(server_end);
    let mut client = StreamClient::new(client_end);

    for round in 0..3u64 {
        let resps = client
            .call(&[
                Request {
                    id: round * 2,
                    cred: 1,
                    body: ReqBody::Lookup {
                        path: "/d0/f1",
                        want_sig: false,
                    },
                },
                Request {
                    id: round * 2 + 1,
                    cred: 1,
                    body: ReqBody::Readdir { path: "/d0" },
                },
            ])
            .unwrap();
        assert_eq!(resps.len(), 2);
        assert!(resps.iter().all(|r| r.status == Status::Ok));
    }
    drop(client); // closes the stream; the pump sees EOF and exits
    pump.join().unwrap();
    assert_eq!(server.stats().requests.load(Ordering::Relaxed), 6);
}

#[test]
fn huge_readdir_is_rejected_typed_not_truncated() {
    let k = obs_kernel();
    let p = k.init_process();
    // Encoded readdir body is 2 + Σ(10 + name_len); 3500 entries with
    // 9-byte names is ~66.5 KB — past the u16 body_len, though both the
    // entry count and every name length are individually in bounds.
    k.mkdir(&p, "/big", 0o755).unwrap();
    for f in 0..3500 {
        let fd = k
            .open(&p, &format!("/big/file{f:05}"), OpenFlags::create(), 0o644)
            .unwrap();
        k.close(&p, fd).unwrap();
    }
    let server = Server::start(k.clone(), ServerConfig::default());
    server.register_cred(1, k.init_process());
    let client = Client::new(server.connect());
    let resps = client.call(&[
        Request {
            id: 1,
            cred: 1,
            body: ReqBody::Readdir { path: "/big" },
        },
        Request {
            id: 2,
            cred: 1,
            body: ReqBody::Stat { path: "/big" },
        },
    ]);
    // The oversized listing fails typed; its batch-mates still succeed
    // and the response frame stays decodable (no silent u16 wraparound).
    assert_eq!(resps[0].status, Status::TooBig);
    assert_eq!(resps[1].status, Status::Ok);
}

#[test]
fn oversized_response_frame_fails_typed_at_the_frame_level() {
    let k = obs_kernel();
    populate(&k, 1, 400);
    // A 4 KiB frame cap: each readdir of /d0 encodes to ~5.5 KB, well
    // under the u16 per-record bound but past the whole-frame cap.
    let server = Server::start(
        k.clone(),
        ServerConfig {
            max_frame_bytes: 4096,
            ..ServerConfig::default()
        },
    );
    server.register_cred(1, k.init_process());
    let client = Client::new(server.connect());
    let resps = client.call(&[Request {
        id: 1,
        cred: 1,
        body: ReqBody::Readdir { path: "/d0" },
    }]);
    assert_eq!(
        resps[0].status,
        Status::TooBig,
        "response past the frame cap must fail typed, not poison the stream"
    );
    assert_eq!(server.stats().resp_too_big.load(Ordering::Relaxed), 1);
    let json = k.metrics_registry().snapshot().to_json();
    assert!(json.contains("\"resp_too_big\": 1"), "export: {json}");

    // A small request on the same connection still succeeds: the
    // connection survives the rejection.
    let resps = client.call(&[Request {
        id: 2,
        cred: 1,
        body: ReqBody::Stat { path: "/d0/f0" },
    }]);
    assert_eq!(resps[0].status, Status::Ok);
}

#[test]
fn shutdown_racing_submits_never_strands_a_client() {
    let k = obs_kernel();
    populate(&k, 1, 1);
    for _ in 0..8 {
        let server = Arc::new(Server::start(
            k.clone(),
            ServerConfig {
                workers: 2,
                queue_depth: 4,
                ..ServerConfig::default()
            },
        ));
        server.register_cred(1, k.init_process());
        let clients: Vec<_> = (0..4)
            .map(|t| {
                let server = server.clone();
                std::thread::spawn(move || {
                    let client = Client::new(server.connect());
                    for i in 0..50 {
                        // Every call must come back — Ok before the
                        // shutdown, Overloaded after — never hang on a
                        // frame enqueued behind the drain.
                        let resps = client.call(&[Request {
                            id: t * 1000 + i,
                            cred: 1,
                            body: ReqBody::Stat { path: "/d0/f0" },
                        }]);
                        assert!(matches!(resps[0].status, Status::Ok | Status::Overloaded));
                    }
                })
            })
            .collect();
        server.shutdown();
        for c in clients {
            c.join().unwrap();
        }
    }
}

#[test]
fn serve_metrics_export_in_both_formats_and_reset_clears() {
    let k = obs_kernel();
    populate(&k, 1, 4);
    let server = Server::start(k.clone(), ServerConfig::default());
    server.register_cred(1, k.init_process());
    let client = Client::new(server.connect());
    for i in 0..8 {
        let resps = client.call(&[Request {
            id: i,
            cred: 1,
            body: ReqBody::Lookup {
                path: "/d0/f2",
                want_sig: false,
            },
        }]);
        assert_eq!(resps[0].status, Status::Ok);
    }

    let snap = k.metrics_registry().snapshot();
    let json = snap.to_json();
    let text = snap.to_text();
    for needle in ["\"serve\"", "\"requests\": 8", "\"serve_lookup\""] {
        assert!(
            json.contains(needle),
            "JSON export missing {needle}: {json}"
        );
    }
    assert!(text.contains("[serve]"), "text export: {text}");
    assert!(text.contains("serve_lookup"), "text export: {text}");

    // Executed-request accounting: every op was a lookup.
    assert_eq!(
        server.stats().per_op[Op::Lookup.idx()].load(Ordering::Relaxed),
        8
    );

    // reset_stats reaches the registered serve source.
    k.reset_stats();
    assert_eq!(server.stats().requests.load(Ordering::Relaxed), 0);
    assert_eq!(server.stats().batches.load(Ordering::Relaxed), 0);
    assert!(server.worker_hists().iter().all(|w| w.decode.count() == 0));
    let json = k.metrics_registry().snapshot().to_json();
    assert!(json.contains("\"requests\": 0"), "post-reset: {json}");
}
