//! The `--metrics-out` export end-to-end: the metrics workload's JSON
//! must carry the schema tag, per-op latency histograms for at least
//! stat/open/unlink, and event counters that reconcile with the
//! dcache section.

use dc_bench::setup::kernel_with_obs;
use dc_vfs::OpenFlags;
use dcache_core::DcacheConfig;

#[test]
fn metrics_snapshot_json_is_complete() {
    let s = kernel_with_obs(DcacheConfig::optimized());
    let k = &s.kernel;
    let p = &s.proc;
    k.mkdir(p, "/w", 0o755).unwrap();
    for i in 0..30 {
        let path = format!("/w/f{i}");
        let fd = k.open(p, &path, OpenFlags::create(), 0o644).unwrap();
        k.close(p, fd).unwrap();
        k.stat(p, &path).unwrap();
        let fd = k.open(p, &path, OpenFlags::read_only(), 0).unwrap();
        k.close(p, fd).unwrap();
    }
    for i in 0..10 {
        k.unlink(p, &format!("/w/f{i}")).unwrap();
    }

    let json = k.metrics_snapshot().to_json();
    assert!(json.contains("\"schema\": \"dcache-metrics/v1\""));
    for section in ["\"dcache\"", "\"syscalls\"", "\"events\"", "\"rates\""] {
        assert!(json.contains(section), "missing section {section}");
    }
    for rate in [
        "\"dcache.hit_rate\"",
        "\"dcache.fastpath_rate\"",
        "\"dcache.neg_hit_rate\"",
    ] {
        assert!(json.contains(rate), "missing rate {rate}");
    }
    // Histograms for the three headline ops, each with percentiles.
    let hist_section = json
        .split("\"histograms\"")
        .nth(1)
        .expect("histograms section present");
    for op in ["\"stat\"", "\"open\"", "\"unlink\""] {
        assert!(hist_section.contains(op), "missing histogram for {op}");
    }
    assert!(hist_section.contains("\"p50_ns\""));
    assert!(hist_section.contains("\"p99_ns\""));

    // Event counters reconcile with the dcache section.
    let count_of = |key: &str| -> u64 {
        let pat = format!("\"{key}\": ");
        let at = json.find(&pat).unwrap_or_else(|| panic!("{key} missing"));
        json[at + pat.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    };
    assert_eq!(count_of("lookup_start"), count_of("lookups"));
    assert_eq!(count_of("slow_step"), count_of("slow_steps"));
    assert_eq!(count_of("fs_miss"), count_of("miss_fs"));
    assert_eq!(count_of("seq_retry"), count_of("slow_retries"));
    assert!(count_of("lookups") > 0);
}
