//! The `--metrics-out` export end-to-end: the metrics workload's JSON
//! must carry the schema tag, per-op latency histograms for at least
//! stat/open/unlink, and event counters that reconcile with the
//! dcache section.

use dc_bench::setup::kernel_with_obs;
use dc_vfs::OpenFlags;
use dcache_core::DcacheConfig;

#[test]
fn metrics_snapshot_json_is_complete() {
    let s = kernel_with_obs(DcacheConfig::optimized());
    let k = &s.kernel;
    let p = &s.proc;
    k.mkdir(p, "/w", 0o755).unwrap();
    for i in 0..30 {
        let path = format!("/w/f{i}");
        let fd = k.open(p, &path, OpenFlags::create(), 0o644).unwrap();
        k.close(p, fd).unwrap();
        k.stat(p, &path).unwrap();
        let fd = k.open(p, &path, OpenFlags::read_only(), 0).unwrap();
        k.close(p, fd).unwrap();
    }
    for i in 0..10 {
        k.unlink(p, &format!("/w/f{i}")).unwrap();
    }

    let json = k.metrics_snapshot().to_json();
    assert!(json.contains("\"schema\": \"dcache-metrics/v1\""));
    for section in ["\"dcache\"", "\"syscalls\"", "\"events\"", "\"rates\""] {
        assert!(json.contains(section), "missing section {section}");
    }
    for rate in [
        "\"dcache.hit_rate\"",
        "\"dcache.fastpath_rate\"",
        "\"dcache.neg_hit_rate\"",
    ] {
        assert!(json.contains(rate), "missing rate {rate}");
    }
    // Histograms for the three headline ops, each with percentiles.
    let hist_section = json
        .split("\"histograms\"")
        .nth(1)
        .expect("histograms section present");
    for op in ["\"stat\"", "\"open\"", "\"unlink\""] {
        assert!(hist_section.contains(op), "missing histogram for {op}");
    }
    assert!(hist_section.contains("\"p50_ns\""));
    assert!(hist_section.contains("\"p99_ns\""));

    // Event counters reconcile with the dcache section.
    let count_of = |key: &str| -> u64 {
        let pat = format!("\"{key}\": ");
        let at = json.find(&pat).unwrap_or_else(|| panic!("{key} missing"));
        json[at + pat.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    };
    assert_eq!(count_of("lookup_start"), count_of("lookups"));
    assert_eq!(count_of("slow_step"), count_of("slow_steps"));
    assert_eq!(count_of("fs_miss"), count_of("miss_fs"));
    assert_eq!(count_of("seq_retry"), count_of("slow_retries"));
    assert!(count_of("lookups") > 0);

    // Lock-free read-path counters: the `epoch_pin`/`read_retry` events
    // must reconcile with the `DcacheStats` counters surfaced in the
    // dcache section, and the optimized walk must actually have pinned.
    assert_eq!(count_of("epoch_pin"), count_of("epoch_pins"));
    assert_eq!(count_of("read_retry"), count_of("read_retries"));
    assert!(count_of("epoch_pins") > 0, "fastpath never pinned an epoch");
}

#[test]
fn metrics_snapshot_text_carries_lockfree_counters() {
    let s = kernel_with_obs(DcacheConfig::optimized());
    let k = &s.kernel;
    let p = &s.proc;
    k.mkdir(p, "/t", 0o755).unwrap();
    let fd = k.open(p, "/t/f", OpenFlags::create(), 0o644).unwrap();
    k.close(p, fd).unwrap();
    for _ in 0..20 {
        k.stat(p, "/t/f").unwrap();
    }

    let text = k.metrics_snapshot().to_text();
    assert!(text.contains("[dcache]"), "missing dcache section:\n{text}");
    assert!(text.contains("[events]"), "missing events section:\n{text}");
    for key in ["epoch_pins", "read_retries", "epoch_pin", "read_retry"] {
        assert!(text.contains(key), "missing {key} in text export:\n{text}");
    }

    // The aligned-text and JSON exporters must agree on the values.
    let json = k.metrics_snapshot().to_json();
    let json_count = |key: &str| -> u64 {
        let pat = format!("\"{key}\": ");
        let at = json.find(&pat).unwrap_or_else(|| panic!("{key} missing"));
        json[at + pat.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    };
    let text_count = |key: &str| -> u64 {
        let line = text
            .lines()
            .find(|l| l.trim_start().starts_with(key))
            .unwrap_or_else(|| panic!("{key} missing in text"));
        line.split_whitespace().last().unwrap().parse().unwrap()
    };
    for key in ["epoch_pins", "read_retries"] {
        assert_eq!(
            json_count(key),
            text_count(key),
            "exporters disagree on {key}"
        );
    }
}
