//! Criterion benches mirroring the paper's latency-shaped experiments.
//!
//! One group per figure/table; within each group, one benchmark per
//! (configuration, parameter) point, so `cargo bench` regenerates the
//! comparison series. The heavyweight throughput experiments (Figures
//! 8/10, Tables 1–3) have representative single points here and full
//! sweeps in the `repro` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dc_bench::setup::{config_pair, kernel_with};
use dc_vfs::OpenFlags;
use dc_workloads::apache;
use dc_workloads::apps::{find_name, updatedb};
use dc_workloads::lmbench::{self, Pattern};
use dc_workloads::maildir::MaildirSim;
use dc_workloads::tree::{build_flat_dir, build_subtree, build_tree, TreeSpec};
use dcache_core::DcacheConfig;

/// Figure 2/6: stat latency per path pattern, per configuration.
fn bench_stat_patterns(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_stat");
    for (name, config) in config_pair() {
        let s = kernel_with(config);
        lmbench::setup(&s.kernel, &s.proc).unwrap();
        for pat in [
            Pattern::Comp1,
            Pattern::Comp4,
            Pattern::Comp8,
            Pattern::NegF,
        ] {
            // Warm both paths.
            let _ = s.kernel.stat(&s.proc, pat.path());
            g.bench_with_input(BenchmarkId::new(name, pat.label()), &pat, |b, pat| {
                b.iter(|| {
                    let _ = std::hint::black_box(s.kernel.stat(&s.proc, pat.path()));
                })
            });
        }
    }
    g.finish();
}

/// Figure 6: open latency, unmodified vs optimized.
fn bench_open(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_open");
    for (name, config) in config_pair() {
        let s = kernel_with(config);
        lmbench::setup(&s.kernel, &s.proc).unwrap();
        g.bench_function(BenchmarkId::new(name, "4-comp"), |b| {
            b.iter(|| {
                let fd = s
                    .kernel
                    .open(&s.proc, Pattern::Comp4.path(), OpenFlags::read_only(), 0)
                    .unwrap();
                s.kernel.close(&s.proc, fd).unwrap();
            })
        });
    }
    g.finish();
}

/// Figure 7: chmod of a directory with a cached 100-descendant subtree.
fn bench_chmod_subtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_chmod");
    for (name, config) in config_pair() {
        let s = kernel_with(config);
        build_subtree(&s.kernel, &s.proc, "/t", 2, 100).unwrap();
        let _ = updatedb(&s.kernel, &s.proc, "/t").unwrap();
        let mut mode = 0o755u16;
        g.bench_function(BenchmarkId::new(name, "depth2-100files"), |b| {
            b.iter(|| {
                mode ^= 0o011;
                s.kernel.chmod(&s.proc, "/t", mode).unwrap();
            })
        });
    }
    g.finish();
}

/// Figure 9: full-directory listing, 1000 entries.
fn bench_readdir(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_readdir");
    g.sample_size(20);
    for (name, config) in config_pair() {
        let s = kernel_with(config);
        build_flat_dir(&s.kernel, &s.proc, "/big", 1000).unwrap();
        let _ = s.kernel.list_dir(&s.proc, "/big").unwrap();
        g.bench_function(BenchmarkId::new(name, "1000"), |b| {
            b.iter(|| {
                std::hint::black_box(s.kernel.list_dir(&s.proc, "/big").unwrap());
            })
        });
    }
    g.finish();
}

/// Figure 9: mkstemp in a 1000-entry directory.
fn bench_mkstemp(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_mkstemp");
    g.sample_size(20);
    for (name, config) in config_pair() {
        let s = kernel_with(config);
        build_flat_dir(&s.kernel, &s.proc, "/tmp1000", 1000).unwrap();
        let _ = s.kernel.list_dir(&s.proc, "/tmp1000").unwrap();
        g.bench_function(BenchmarkId::new(name, "1000"), |b| {
            b.iter(|| {
                let (fd, nm) = s.kernel.mkstemp(&s.proc, "/tmp1000", "t-").unwrap();
                s.kernel.close(&s.proc, fd).unwrap();
                s.kernel.unlink(&s.proc, &format!("/tmp1000/{nm}")).unwrap();
            })
        });
    }
    g.finish();
}

/// Figure 10: one Dovecot mark/readdir operation, 500-message boxes.
fn bench_maildir(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_dovecot");
    g.sample_size(20);
    for (name, config) in config_pair() {
        let s = kernel_with(config);
        let mut sim = MaildirSim::provision(&s.kernel, &s.proc, "/mail", 5, 500, 7).unwrap();
        for _ in 0..10 {
            sim.mark_one(&s.kernel, &s.proc).unwrap();
        }
        g.bench_function(BenchmarkId::new(name, "500"), |b| {
            b.iter(|| sim.mark_one(&s.kernel, &s.proc).unwrap())
        });
    }
    g.finish();
}

/// Table 3: one Apache listing request, 100-entry directory.
fn bench_apache(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_apache");
    g.sample_size(20);
    for (name, config) in config_pair() {
        let s = kernel_with(config);
        build_flat_dir(&s.kernel, &s.proc, "/www", 100).unwrap();
        let _ = apache::listing_request(&s.kernel, &s.proc, "/www").unwrap();
        g.bench_function(BenchmarkId::new(name, "100"), |b| {
            b.iter(|| {
                std::hint::black_box(apache::listing_request(&s.kernel, &s.proc, "/www").unwrap());
            })
        });
    }
    g.finish();
}

/// Table 1 representative: a full `find` over a small source tree.
fn bench_find(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_find");
    g.sample_size(10);
    for (name, config) in config_pair() {
        let s = kernel_with(config);
        build_tree(&s.kernel, &s.proc, "/src", &TreeSpec::source_like(400)).unwrap();
        let _ = find_name(&s.kernel, &s.proc, "/src", "core").unwrap();
        g.bench_function(BenchmarkId::new(name, "400files"), |b| {
            b.iter(|| {
                std::hint::black_box(find_name(&s.kernel, &s.proc, "/src", "core").unwrap());
            })
        });
    }
    g.finish();
}

/// Signature hashing itself (supporting Figure 3).
fn bench_sighash(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_hashing");
    let s = kernel_with(DcacheConfig::optimized());
    let comps: Vec<&[u8]> = vec![
        b"XXX", b"YYY", b"ZZZ", b"AAA", b"BBB", b"CCC", b"DDD", b"FFF",
    ];
    g.bench_function("8comp-signature", |b| {
        b.iter(|| {
            std::hint::black_box(s.kernel.dcache.key.hash_components(comps.iter().copied()));
        })
    });
    g.finish();
}

fn configured() -> Criterion {
    // Short windows: the suite spans many groups, and these comparisons
    // have large effect sizes.
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group!(
    name = benches;
    config = configured();
    targets =
    bench_stat_patterns,
    bench_open,
    bench_chmod_subtree,
    bench_readdir,
    bench_mkstemp,
    bench_maildir,
    bench_apache,
    bench_find,
    bench_sighash
);
criterion_main!(benches);
