//! Throwaway hot-path attribution probe (not part of `repro`).

use dc_vfs::{DcacheConfig, KernelBuilder, OpenFlags, SyscallClass};
use std::time::Instant;

fn time<R>(label: &str, iters: u64, mut f: impl FnMut() -> R) {
    for _ in 0..1000 {
        std::hint::black_box(f());
    }
    let mut best = f64::MAX;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        if ns < best {
            best = ns;
        }
    }
    println!("{label:32} {best:8.1} ns");
}

fn main() {
    let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(7))
        .build()
        .unwrap();
    let p = k.init_process();
    k.mkdir(&p, "/a", 0o755).unwrap();
    k.mkdir(&p, "/a/b", 0o755).unwrap();
    k.mkdir(&p, "/a/b/c", 0o755).unwrap();
    let fd = k.open(&p, "/a/b/c/f", OpenFlags::create(), 0o644).unwrap();
    k.close(&p, fd).unwrap();
    for _ in 0..4 {
        k.stat(&p, "/a/b/c/f").unwrap();
    }

    const N: u64 = 200_000;
    time("stat 4-comp", N, || k.stat(&p, "/a/b/c/f").unwrap());
    time("stat 1-comp", N, || k.stat(&p, "/a").unwrap());
    time("timing.record(nop)", N, || {
        k.timing.record(SyscallClass::AccessStat, || 1u64)
    });
    time("proc.namespace+cred+root", N, || {
        let ns = p.namespace();
        let c = p.cred();
        let r = p.root();
        (ns.id, c.uid, r.mount.id)
    });
    time("batch_pin (epoch pin)", N, || k.dcache.batch_pin());
    time("dcache.dlht_for", N, || {
        let ns = p.namespace();
        k.dcache.dlht_for(ns.id).len()
    });
    time("dcache.pcc_for", N, || {
        let c = p.cred();
        let ns = p.namespace();
        k.dcache.pcc_for(&c, ns.id).capacity()
    });
    time("split_path 4-comp", N, || {
        dc_vfs::split_path("/a/b/c/f").unwrap().components.len()
    });
    time("Instant::now x2", N, || {
        let a = Instant::now();
        a.elapsed().as_nanos() as u64
    });
}
