//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--full] [--seed <N>] [--metrics-out <path>] <experiment>...
//! experiments: fig1 fig2 fig3 fig3-layout fig6 fig7 fig8 fig9 fig10
//!              table1 table2 table3 table4 space ablation pcc rename-scale
//!              faults crash fsck serve fleet perfgate all
//! ```
//!
//! Default scale is `--quick` (seconds per experiment); `--full`
//! approaches the paper's parameters (minutes).
//!
//! `faults` replays the fig. 8 workload through the standard seeded
//! fault campaign (`--seed N`, default 0x5EED) and reports hit rate and
//! latency before, during, and after recovery; results land in
//! `BENCH_faults.json` and are appended to `EXPERIMENTS.md`.
//!
//! `crash` runs the seeded 200-point power-cut campaign: every captured
//! image must remount, pass `fsck`, and match a committed-prefix shadow
//! tree; the journal on/off overhead ablation closes the report.
//! A warm-restart phase then remounts every image with the persisted
//! directory index (DESIGN.md §15): typed rehydration outcomes, zero
//! wrong lookups against the recovered tree, a seeded index-corruption
//! sub-campaign, and the ops-to-90%-hit-rate ablation (warm vs cold
//! mount, floor 5×). Results land in `BENCH_crash.json`,
//! `BENCH_warm.json`, and `EXPERIMENTS.md`. `fsck`
//! runs the workload once, cuts power, and prints the recovered image's
//! full invariant report.
//!
//! `serve` spawns the batched metadata server (`dc-server`)
//! in-process and drives it with a seeded 64-client load generator:
//! steady-state throughput, a memory-pressure shed/recover cycle, the
//! batch-size ablation, and the admission-control ablation. Results
//! land in `BENCH_serve.json` and `EXPERIMENTS.md`; the run fails
//! (exit 1) on any unexpected request error, a throughput floor miss,
//! or incomplete recovery.
//!
//! `fleet` provisions the `dc-fleet` multi-tenant simulator — 1000+
//! mount namespaces, 10k+ credentials, three traffic classes churning
//! inside a fixed memory budget — and reports per-class hit rate,
//! latency, resident bytes, and teardown cost. Results land in
//! `BENCH_fleet.json` and `EXPERIMENTS.md`; the run fails (exit 1) on a
//! hit-rate floor miss, a budget overrun, or a teardown leak.
//!
//! `fig3-layout` re-measures the fig-3 decomposition at each of the
//! four §13 memory-layout stages (pre-layout → +wide sighash →
//! +open-addressed DLHT → +snap slab → +scratch arena) and writes the
//! attribution table to `BENCH_fig3.json`.
//!
//! `perfgate` is the CI perf-regression lane: it measures the warm
//! single-thread stat point and exits 1 if the median exceeds the
//! checked-in 600 ns threshold.
//!
//! `--metrics-out <path>` runs the observability workload and writes
//! the unified metrics snapshot (latency histograms, trace-event
//! counters, dcache/syscall/page-cache stats, and the §13
//! layout-attribution counters) as JSON to `path`. It may be given
//! alone or combined with experiments; when combined, the metrics dump
//! runs after the experiments finish.

use dc_bench::{crash, faults, figs, fleet, serve, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--full] [--seed <N>] [--metrics-out <path>] <experiment>...\n\
         experiments: fig1 fig2 fig3 fig3-layout fig6 fig7 fig8 fig9 fig10\n\
         \x20            table1 table2 table3 table4 space ablation pcc rename-scale\n\
         \x20            faults crash fsck serve fleet perfgate all"
    );
    std::process::exit(2);
}

/// Accepts decimal or `0x`-prefixed hex.
fn parse_seed(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut full = false;
    let mut seed: u64 = 0x5EED;
    let mut metrics_out: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => full = true,
            "--seed" => match it.next().as_deref().and_then(parse_seed) {
                Some(n) => seed = n,
                None => {
                    eprintln!("--seed requires an integer argument");
                    usage();
                }
            },
            "--metrics-out" => match it.next() {
                Some(path) => metrics_out = Some(path),
                None => {
                    eprintln!("--metrics-out requires a path argument");
                    usage();
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                usage();
            }
            _ => wanted.push(a),
        }
    }
    let scale = if full { Scale::full() } else { Scale::quick() };
    if wanted.is_empty() && metrics_out.is_none() {
        usage();
    }
    for w in &wanted {
        match w.as_str() {
            "fig1" => figs::fig1(scale),
            "fig2" => figs::fig2(scale),
            "fig3" => figs::fig3(scale),
            "fig3-layout" => figs::fig3_layout(scale),
            "fig6" => figs::fig6(scale),
            "fig7" => figs::fig7(scale),
            "fig8" => figs::fig8(scale),
            "fig9" => figs::fig9(scale),
            "fig10" => figs::fig10(scale),
            "table1" => figs::table1(scale),
            "table2" => figs::table2(scale),
            "table3" => figs::table3(scale),
            "table4" => figs::table4(),
            "space" => figs::space(scale),
            "ablation" => figs::ablation(scale),
            "pcc" => figs::pcc_sensitivity(scale),
            "rename-scale" => figs::rename_scalability(scale),
            "faults" => faults::faults(scale, seed),
            "serve" => {
                if !serve::serve(scale, seed) {
                    std::process::exit(1);
                }
            }
            "crash" => {
                if !crash::crash(scale, seed) {
                    std::process::exit(1);
                }
            }
            "fsck" => crash::fsck_cmd(scale, seed),
            "fleet" => {
                if !fleet::fleet(scale, seed) {
                    std::process::exit(1);
                }
            }
            "perfgate" => {
                if !figs::perfgate(scale) {
                    std::process::exit(1);
                }
            }
            "all" => figs::all(scale),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = metrics_out {
        if let Err(e) = figs::metrics(scale, &path) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}
