//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--full] <experiment>...
//! experiments: fig1 fig2 fig3 fig6 fig7 fig8 fig9 fig10
//!              table1 table2 table3 table4 space ablation pcc rename-scale all
//! ```
//!
//! Default scale is `--quick` (seconds per experiment); `--full`
//! approaches the paper's parameters (minutes).

use dc_bench::{figs, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::full() } else { Scale::quick() };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.as_str())
        .collect();
    if wanted.is_empty() {
        eprintln!(
            "usage: repro [--full] <experiment>...\n\
             experiments: fig1 fig2 fig3 fig6 fig7 fig8 fig9 fig10\n\
             \x20            table1 table2 table3 table4 space ablation pcc rename-scale all"
        );
        std::process::exit(2);
    }
    for w in wanted {
        match w {
            "fig1" => figs::fig1(scale),
            "fig2" => figs::fig2(scale),
            "fig3" => figs::fig3(scale),
            "fig6" => figs::fig6(scale),
            "fig7" => figs::fig7(scale),
            "fig8" => figs::fig8(scale),
            "fig9" => figs::fig9(scale),
            "fig10" => figs::fig10(scale),
            "table1" => figs::table1(scale),
            "table2" => figs::table2(scale),
            "table3" => figs::table3(scale),
            "table4" => figs::table4(),
            "space" => figs::space(scale),
            "ablation" => figs::ablation(scale),
            "pcc" => figs::pcc_sensitivity(scale),
            "rename-scale" => figs::rename_scalability(scale),
            "all" => figs::all(scale),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    }
}
