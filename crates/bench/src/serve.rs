//! `repro serve` — drives the batched metadata server (`dc-server`)
//! with a seeded in-process load generator and reports throughput and
//! per-op latency, the batch-size ablation, and the admission-control
//! (memory-gate) ablation.
//!
//! The generator simulates 64 closed-loop clients, each with its own
//! server connection. A round submits one encoded request frame per
//! client (so the submission queue stays deep), then collects and
//! decodes every response frame, verifying each record's status. The
//! hot phase uses the protocol's design-point mix — mostly
//! signature-keyed lookups over keys the clients learned during warmup
//! (skewed toward a hot set), a minority of path lookups — which is
//! what carries the service past 1M lookups/s on one core: one epoch
//! pin per 64-request batch, no parsing or hashing on the sig path.
//!
//! Phases: `pre` (steady state) → `pressure` (negative-dentry flood
//! grows the reclaimable footprint past the gate's budget; the gate
//! sheds with typed `Overloaded` rejections and runs the shrinker on
//! the trip edge) → re-warm (clients re-resolve, as real clients would
//! after `SigMiss`) → `post` (must recover to within 5% of `pre`).
//!
//! Results land in `BENCH_serve.json` and one line is appended to
//! `EXPERIMENTS.md`. Returns `false` (→ exit 1) if any request fails
//! outside the planned rejection window, the server misses the
//! throughput floor, or recovery falls short.

use crate::setup::kernel_with;
use crate::table::Table;
use dc_obs::LatencyHist;
use dc_server::proto::{Op, ReqBody, Request, RespBody, Status};
use dc_server::{Client, Server, ServerConfig};
use dc_sighash::Signature;
use dc_vfs::{Kernel, OpenFlags, Process};
use dcache_core::DcacheConfig;
use std::sync::Arc;
use std::time::Instant;

/// Simulated clients (one connection each).
const CLIENTS: usize = 64;
/// Requests per frame in the main phases.
const BATCH: usize = 64;
/// Throughput floor for the hot phase, lookups per second.
const TARGET_LOOKUPS_PER_S: f64 = 1_000_000.0;
/// Fraction of requests that are signature-keyed in the hot mix.
const SIG_FRAC_NUM: u64 = 7; // 7/8 sig lookups, 1/8 path lookups
/// Generous per-request p99 ceiling for the smoke gate. Steady-state
/// p99s sit in the hundreds of nanoseconds; a millisecond means a
/// request stalled behind something pathological.
const P99_BOUND_NS: u64 = 1_000_000;

/// splitmix64 — the repo-wide seeding discipline.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Skewed key pick: 90% of draws land in the hot first 10%.
    fn skewed(&mut self, n: usize) -> usize {
        let r = self.next();
        if r % 10 < 9 {
            (r >> 8) as usize % (n / 10).max(1)
        } else {
            (r >> 8) as usize % n
        }
    }
}

/// One phase's client-side tally.
#[derive(Debug, Default, Clone)]
struct Tally {
    ops: u64,
    ok: u64,
    rejected: u64,
    sig_miss: u64,
    /// Definitive negative answers (`NoEnt`) — the *expected* outcome
    /// of the pressure flood's stats of missing names.
    neg: u64,
    errors: u64,
    elapsed_s: f64,
}

impl Tally {
    fn mops(&self) -> f64 {
        if self.elapsed_s == 0.0 {
            return 0.0;
        }
        self.ops as f64 / self.elapsed_s / 1e6
    }

    fn absorb(&mut self, resps: &[dc_server::Response]) {
        self.ops += resps.len() as u64;
        for r in resps {
            match r.status {
                Status::Ok => self.ok += 1,
                Status::Overloaded => self.rejected += 1,
                Status::SigMiss => self.sig_miss += 1,
                Status::Fs(dc_vfs::FsError::NoEnt) => self.neg += 1,
                _ => self.errors += 1,
            }
        }
    }
}

/// The provisioned service: kernel, server, per-client connections,
/// and the warmed path/signature table.
struct Rig {
    kernel: Arc<Kernel>,
    server: Server,
    clients: Vec<Client>,
    paths: Vec<String>,
    sigs: Vec<Signature>,
}

fn build_tree(kernel: &Arc<Kernel>, proc: &Arc<Process>, dirs: usize, files: usize) -> Vec<String> {
    let mut paths = Vec::with_capacity(dirs * files);
    for d in 0..dirs {
        kernel.mkdir(proc, &format!("/srv/d{d}"), 0o755).unwrap();
        for f in 0..files {
            let path = format!("/srv/d{d}/f{f}");
            let fd = kernel
                .open(proc, &path, OpenFlags::create(), 0o644)
                .unwrap();
            kernel.close(proc, fd).unwrap();
            paths.push(path);
        }
    }
    paths
}

fn provision(dirs: usize, files: usize, mem_budget: Option<u64>) -> Rig {
    let setup = kernel_with(DcacheConfig::optimized());
    let kernel = setup.kernel;
    kernel.mkdir(&setup.proc, "/srv", 0o755).unwrap();
    let paths = build_tree(&kernel, &setup.proc, dirs, files);
    let server = Server::start(
        kernel.clone(),
        ServerConfig {
            queue_depth: CLIENTS * 2,
            mem_budget_bytes: mem_budget,
            ..ServerConfig::default()
        },
    );
    server.register_cred(1, setup.proc.clone());
    let clients: Vec<Client> = (0..CLIENTS)
        .map(|_| Client::new(server.connect()))
        .collect();
    let mut rig = Rig {
        kernel,
        server,
        clients,
        paths,
        sigs: Vec::new(),
    };
    rig.warm();
    rig
}

impl Rig {
    /// Resolves every path through the server with `want_sig`,
    /// refreshing the signature table — the protocol's re-warm step
    /// after `SigMiss` (e.g. once the shrinker has run).
    fn warm(&mut self) {
        self.sigs.clear();
        for (i, chunk) in self.paths.chunks(BATCH).enumerate() {
            let client = &self.clients[i % CLIENTS];
            let reqs: Vec<Request<'_>> = chunk
                .iter()
                .enumerate()
                .map(|(j, p)| Request {
                    id: j as u64,
                    cred: 1,
                    body: ReqBody::Lookup {
                        path: p,
                        want_sig: true,
                    },
                })
                .collect();
            for r in client.call(&reqs) {
                let RespBody::Lookup { sig: Some(sig), .. } = r.body else {
                    panic!("warmup lookup failed: {r:?}");
                };
                self.sigs.push(sig);
            }
        }
        assert_eq!(self.sigs.len(), self.paths.len());
    }

    /// Runs the hot mix (skewed sig-keyed lookups + path lookups) for
    /// `duration_ms`, one frame per client per round.
    fn run_hot(&self, duration_ms: u64, rng: &mut Rng) -> Tally {
        let mut tally = Tally::default();
        let start = Instant::now();
        let mut id = 0u64;
        loop {
            for client in &self.clients {
                let reqs: Vec<Request<'_>> = (0..BATCH)
                    .map(|_| {
                        let k = rng.skewed(self.paths.len());
                        id += 1;
                        let body = if rng.next() % 8 < SIG_FRAC_NUM {
                            ReqBody::LookupSig { sig: self.sigs[k] }
                        } else {
                            ReqBody::Lookup {
                                path: &self.paths[k],
                                want_sig: false,
                            }
                        };
                        Request { id, cred: 1, body }
                    })
                    .collect();
                tally.absorb(&client.call(&reqs));
            }
            let elapsed = start.elapsed();
            if elapsed.as_millis() as u64 >= duration_ms {
                tally.elapsed_s = elapsed.as_secs_f64();
                return tally;
            }
        }
    }

    /// One mixed frame per client covering every op (latency samples
    /// for stat/readdir alongside the lookups).
    fn run_mixed(&self, rounds: usize, rng: &mut Rng) -> Tally {
        let mut tally = Tally::default();
        let start = Instant::now();
        let mut id = 0u64;
        for _ in 0..rounds {
            for client in &self.clients {
                let reqs: Vec<Request<'_>> = (0..BATCH)
                    .map(|_| {
                        let k = rng.skewed(self.paths.len());
                        id += 1;
                        let body = match rng.next() % 4 {
                            0 => ReqBody::Stat {
                                path: &self.paths[k],
                            },
                            1 => ReqBody::Readdir {
                                path: &self.paths[k][..self.paths[k].rfind('/').unwrap()],
                            },
                            2 => ReqBody::Lookup {
                                path: &self.paths[k],
                                want_sig: false,
                            },
                            _ => ReqBody::LookupSig { sig: self.sigs[k] },
                        };
                        Request { id, cred: 1, body }
                    })
                    .collect();
                tally.absorb(&client.call(&reqs));
            }
        }
        tally.elapsed_s = start.elapsed().as_secs_f64();
        tally
    }

    /// Floods the cache with negative dentries (stats of unique missing
    /// names) until the reclaimable footprint exceeds `beyond` or the
    /// attempt cap is hit; returns the client-side tally (rejections
    /// expected once the gate trips).
    fn inflate(&self, beyond: u64, rng: &mut Rng) -> Tally {
        let mut tally = Tally::default();
        let start = Instant::now();
        let mut n = rng.next();
        'outer: for _ in 0..4096 {
            for client in &self.clients {
                let paths: Vec<String> = (0..BATCH)
                    .map(|_| {
                        n = n.wrapping_add(1);
                        format!("/srv/d0/missing-{n:x}")
                    })
                    .collect();
                let reqs: Vec<Request<'_>> = paths
                    .iter()
                    .enumerate()
                    .map(|(j, p)| Request {
                        id: j as u64,
                        cred: 1,
                        body: ReqBody::Stat { path: p },
                    })
                    .collect();
                tally.absorb(&client.call(&reqs));
                // Stop once the gate has demonstrably tripped and shed.
                if tally.rejected > 0 && self.server.gate().is_none_or(|g| g.trip_count() > 0) {
                    break 'outer;
                }
                if self.server.gate().is_none() && self.kernel.shrinkers().count_bytes() > beyond {
                    break 'outer;
                }
            }
        }
        tally.elapsed_s = start.elapsed().as_secs_f64();
        tally
    }

    /// Per-op latency summaries merged across the server's workers.
    fn op_hists(&self) -> Vec<(&'static str, dc_obs::HistSummary)> {
        Op::all()
            .iter()
            .filter_map(|op| {
                let merged = LatencyHist::new();
                for w in self.server.worker_hists() {
                    merged.merge_from(&w.per_op[op.idx()]);
                }
                (merged.count() > 0).then(|| (op.key(), merged.summary()))
            })
            .collect()
    }
}

/// Entry point for `repro serve`. Returns `false` on failure.
pub fn serve(scale: crate::Scale, seed: u64) -> bool {
    let full = scale.duration_ms > 100;
    let (dirs, files) = if full { (64, 64) } else { (32, 32) };
    let duration_ms = scale.duration_ms.max(60) * 4;
    let mut rng = Rng(seed);

    println!(
        "serve: {CLIENTS} clients × batch {BATCH}, {} paths, seed {seed:#x}",
        dirs * files
    );

    // Gate budget: double the warmed footprint, so steady state never
    // sheds and the pressure phase must actively inflate to trip it.
    let probe = provision(dirs, files, None);
    let warmed_footprint = probe.kernel.shrinkers().count_bytes();
    drop(probe);
    let budget = warmed_footprint * 2;
    let mut rig = provision(dirs, files, Some(budget));

    // Latency samples for every op, then the measured phases.
    let mixed = rig.run_mixed(2, &mut rng);
    let pre = rig.run_hot(duration_ms, &mut rng);
    let pressure = rig.inflate(budget, &mut rng);
    rig.warm(); // clients re-resolve after the shrinker ran
    let post = rig.run_hot(duration_ms, &mut rng);

    let trips = rig.server.gate().map_or(0, |g| g.trip_count());
    let footprint_after = rig.kernel.shrinkers().count_bytes();
    let low_water = rig.server.gate().map_or(0, |g| g.low_water());

    // Batch-size ablation on a fresh un-gated rig (same tree, mix, and
    // skew; only the frame size varies).
    let abl_rig = provision(dirs, files, None);
    let mut ablation: Vec<(usize, f64)> = Vec::new();
    for batch in [1usize, 8, 64] {
        let t = run_hot_with_batch(&abl_rig, batch, duration_ms / 4, &mut rng);
        ablation.push((batch, t.mops()));
    }

    // Admission ablation: the same inflate flood without a gate — no
    // typed rejections, and the footprint keeps the flood's growth.
    let ungated = abl_rig.inflate(budget, &mut rng);
    let ungated_footprint = abl_rig.kernel.shrinkers().count_bytes();
    drop(abl_rig);

    let mut t = Table::new(&[
        "phase", "ops", "Mops/s", "ok", "rejected", "sig_miss", "neg", "errors",
    ]);
    for (name, tl) in [
        ("mixed", &mixed),
        ("pre", &pre),
        ("pressure", &pressure),
        ("post", &post),
    ] {
        t.row(vec![
            name.into(),
            tl.ops.to_string(),
            format!("{:.3}", tl.mops()),
            tl.ok.to_string(),
            tl.rejected.to_string(),
            tl.sig_miss.to_string(),
            tl.neg.to_string(),
            tl.errors.to_string(),
        ]);
    }
    t.print();

    let hists = rig.op_hists();
    let mut lt = Table::new(&["op", "count", "p50 ns", "p99 ns", "max ns"]);
    for (name, h) in &hists {
        lt.row(vec![
            (*name).into(),
            h.count.to_string(),
            h.p50_ns.to_string(),
            h.p99_ns.to_string(),
            h.max_ns.to_string(),
        ]);
    }
    lt.print();

    let mut at = Table::new(&["batch", "Mops/s"]);
    for (b, mops) in &ablation {
        at.row(vec![b.to_string(), format!("{mops:.3}")]);
    }
    at.print();

    let hit_target = pre.mops() * 1e6 >= TARGET_LOOKUPS_PER_S;
    let shed_typed = pressure.rejected > 0 && trips > 0;
    let reclaimed = footprint_after <= low_water;
    let recovered = post.mops() >= pre.mops() * 0.95;
    let clean = mixed.errors + pre.errors + pressure.errors + post.errors == 0
        && pre.rejected + post.rejected == 0
        && mixed.neg + pre.neg + post.neg == 0;
    let p99_ok = hists
        .iter()
        .all(|(_, h)| h.count == 0 || h.p99_ns <= P99_BOUND_NS);
    if !p99_ok {
        for (name, h) in &hists {
            if h.count > 0 && h.p99_ns > P99_BOUND_NS {
                eprintln!(
                    "serve: {name} p99 {} ns exceeds bound {P99_BOUND_NS} ns",
                    h.p99_ns
                );
            }
        }
    }
    let pass = hit_target && shed_typed && reclaimed && recovered && clean && p99_ok;
    println!(
        "serve: pre {:.3} Mops/s (target ≥1.0) | pressure: {} shed (typed), {} trips, \
         footprint {} → {} (low water {}) | post {:.3} Mops/s ({}) | \
         ungated flood: {} shed, footprint {} — {}",
        pre.mops(),
        pressure.rejected,
        trips,
        budget,
        footprint_after,
        low_water,
        post.mops(),
        if recovered { "recovered" } else { "DEGRADED" },
        ungated.rejected,
        ungated_footprint,
        if pass { "PASS" } else { "FAIL" }
    );

    let json_path = "BENCH_serve.json";
    match write_serve_json(
        json_path,
        seed,
        &[
            ("mixed", &mixed),
            ("pre", &pre),
            ("pressure", &pressure),
            ("post", &post),
        ],
        &hists,
        &ablation,
        (trips, budget, footprint_after, low_water),
        (ungated.rejected, ungated_footprint),
        pass,
    ) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
    }
    match append_experiments_record(seed, &pre, &pressure, &post, pass) {
        Ok(()) => println!("appended EXPERIMENTS.md"),
        Err(e) => eprintln!("warning: could not append EXPERIMENTS.md: {e}"),
    }
    pass
}

/// The hot mix at an explicit frame size (batch-size ablation).
fn run_hot_with_batch(rig: &Rig, batch: usize, duration_ms: u64, rng: &mut Rng) -> Tally {
    let mut tally = Tally::default();
    let start = Instant::now();
    let mut id = 0u64;
    loop {
        for client in &rig.clients {
            let reqs: Vec<Request<'_>> = (0..batch)
                .map(|_| {
                    let k = rng.skewed(rig.paths.len());
                    id += 1;
                    let body = if rng.next() % 8 < SIG_FRAC_NUM {
                        ReqBody::LookupSig { sig: rig.sigs[k] }
                    } else {
                        ReqBody::Lookup {
                            path: &rig.paths[k],
                            want_sig: false,
                        }
                    };
                    Request { id, cred: 1, body }
                })
                .collect();
            tally.absorb(&client.call(&reqs));
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() as u64 >= duration_ms {
            tally.elapsed_s = elapsed.as_secs_f64();
            return tally;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn write_serve_json(
    path: &str,
    seed: u64,
    phases: &[(&str, &Tally)],
    hists: &[(&'static str, dc_obs::HistSummary)],
    ablation: &[(usize, f64)],
    gate: (u64, u64, u64, u64),
    ungated: (u64, u64),
    pass: bool,
) -> std::io::Result<()> {
    use std::io::Write;
    let (trips, budget, footprint_after, low_water) = gate;
    let (ungated_rejected, ungated_footprint) = ungated;
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"serve\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!(
        "  \"clients\": {CLIENTS},\n  \"batch\": {BATCH},\n"
    ));
    out.push_str("  \"phases\": {\n");
    for (i, (name, t)) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{name}\": {{ \"ops\": {}, \"elapsed_s\": {:.4}, \"mops_per_s\": {:.4}, \
             \"ok\": {}, \"rejected\": {}, \"sig_miss\": {}, \"neg\": {}, \
             \"errors\": {} }}{comma}\n",
            t.ops,
            t.elapsed_s,
            t.mops(),
            t.ok,
            t.rejected,
            t.sig_miss,
            t.neg,
            t.errors
        ));
    }
    out.push_str("  },\n  \"per_op_ns\": {\n");
    for (i, (name, h)) in hists.iter().enumerate() {
        let comma = if i + 1 < hists.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{name}\": {{ \"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
             \"max\": {} }}{comma}\n",
            h.count, h.p50_ns, h.p90_ns, h.p99_ns, h.max_ns
        ));
    }
    out.push_str("  },\n  \"batch_ablation\": [\n");
    for (i, (b, mops)) in ablation.iter().enumerate() {
        let comma = if i + 1 < ablation.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"batch\": {b}, \"mops_per_s\": {mops:.4} }}{comma}\n"
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"admission\": {{ \"budget_bytes\": {budget}, \"low_water_bytes\": {low_water}, \
         \"trips\": {trips}, \"footprint_after_bytes\": {footprint_after}, \
         \"ungated_rejected\": {ungated_rejected}, \
         \"ungated_footprint_bytes\": {ungated_footprint} }},\n"
    ));
    out.push_str(&format!("  \"pass\": {pass}\n}}\n"));
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

fn append_experiments_record(
    seed: u64,
    pre: &Tally,
    pressure: &Tally,
    post: &Tally,
    pass: bool,
) -> std::io::Result<()> {
    use std::io::Write;
    let line = format!(
        "- `repro serve --seed {seed:#x}` ({CLIENTS} clients × batch {BATCH}): \
         pre {:.3} Mops/s; pressure shed {} typed; post {:.3} Mops/s — {}\n",
        pre.mops(),
        pressure.rejected,
        post.mops(),
        if pass { "PASS" } else { "FAIL" }
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("EXPERIMENTS.md")?;
    f.write_all(line.as_bytes())
}
