//! `repro faults` — the fig. 8 lookup workload run through a seeded
//! fault campaign (DESIGN.md §10).
//!
//! Three identically-shaped phases over the lmbench path ladder:
//! *before* (injector disarmed), *during* (armed with the standard
//! recoverable campaign), *after* (disarmed again — the recovery
//! picture). Each phase periodically drops the page/dentry caches so a
//! fixed fraction of walks reach the device, where the campaign's
//! transients, torn reads, and latency spikes fire. The acceptance bar
//! is the robustness contract: zero syscall-visible errors in every
//! phase, and a post-recovery hit rate within five points of the
//! no-fault baseline.

use crate::setup::Scale;
use crate::table::{pct, us, Table};
use dc_blockdev::{CachedDisk, DiskConfig, LatencyModel};
use dc_fault::{FaultInjector, FaultPlan};
use dc_fs::{FileSystem, MemFs, MemFsConfig};
use dc_vfs::{Kernel, KernelBuilder, OpenFlags, Process};
use dc_workloads::lmbench::{self, Pattern};
use dcache_core::DcacheConfig;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Faults the standard campaign injects before going quiet.
pub const CAMPAIGN_FAULTS: u64 = 1000;

/// One measured phase of the campaign.
struct PhaseReport {
    name: &'static str,
    ops: u64,
    ns_per_op: f64,
    hit_rate: f64,
    /// Faults the injector fired during this phase.
    faults: u64,
    /// Device-level retries the page cache absorbed.
    retries: u64,
    /// `EIO`s that leaked past the retry budget (must stay zero).
    io_errors: u64,
    /// Syscall results other than the expected ones (must stay zero).
    syscall_errors: u64,
}

struct Campaign {
    kernel: Arc<Kernel>,
    proc: Arc<Process>,
    disk: Arc<CachedDisk>,
    injector: Arc<FaultInjector>,
}

/// Builds the optimized kernel on a spinning-latency disk carrying the
/// standard campaign injector (disarmed).
fn provision(seed: u64) -> Campaign {
    let disk = Arc::new(CachedDisk::new(DiskConfig {
        capacity_blocks: 1 << 16,
        latency: LatencyModel::new(2_000, 4_000, true).with_hit_ns(150),
        ..Default::default()
    }));
    let injector = Arc::new(FaultPlan::campaign(seed, CAMPAIGN_FAULTS).build());
    disk.attach_fault_injector(injector.clone());
    let fs = MemFs::mkfs(
        disk.clone(),
        MemFsConfig {
            max_inodes: 1 << 16,
            ..Default::default()
        },
    )
    .expect("mkfs");
    let kernel = KernelBuilder::new(DcacheConfig::optimized().with_seed(seed))
        .root_fs(fs as Arc<dyn FileSystem>)
        .build()
        .expect("kernel construction");
    let proc = kernel.init_process();
    lmbench::setup(&kernel, &proc).expect("lmbench fixture");
    Campaign {
        kernel,
        proc,
        disk,
        injector,
    }
}

/// Runs one phase: `iters` iterations of the fig. 8 ladder (stat the
/// 1/2/4/8-component paths, then open+close the 4-component one), with
/// a cache drop every eighth iteration so cold walks keep reaching the
/// device.
fn run_phase(c: &Campaign, name: &'static str, iters: usize) -> PhaseReport {
    let k = &c.kernel;
    let p = &c.proc;
    let stats = &k.dcache.stats;
    let lookups0 = stats.lookups.load(Ordering::Relaxed);
    let miss0 = stats.miss_fs.load(Ordering::Relaxed);
    let d0 = c.disk.stats();
    let f0 = c.injector.stats().total();
    let mut ops = 0u64;
    let mut syscall_errors = 0u64;
    let t0 = Instant::now();
    for i in 0..iters {
        if i % 8 == 0 {
            k.drop_caches();
        }
        for pat in [
            Pattern::Comp1,
            Pattern::Comp2,
            Pattern::Comp4,
            Pattern::Comp8,
        ] {
            if k.stat(p, pat.path()).is_err() {
                syscall_errors += 1;
            }
            ops += 1;
        }
        match k.open(p, Pattern::Comp4.path(), OpenFlags::read_only(), 0) {
            Ok(fd) => {
                let _ = k.close(p, fd);
            }
            Err(_) => syscall_errors += 1,
        }
        ops += 1;
    }
    let elapsed_ns = t0.elapsed().as_nanos() as f64;
    let lookups = stats.lookups.load(Ordering::Relaxed) - lookups0;
    let miss = stats.miss_fs.load(Ordering::Relaxed) - miss0;
    let d1 = c.disk.stats();
    PhaseReport {
        name,
        ops,
        ns_per_op: elapsed_ns / ops.max(1) as f64,
        hit_rate: (1.0 - miss as f64 / lookups.max(1) as f64).max(0.0),
        faults: c.injector.stats().total() - f0,
        retries: d1.io_retries - d0.io_retries,
        io_errors: d1.io_errors - d0.io_errors,
        syscall_errors,
    }
}

/// The `repro faults --seed N` entry point.
pub fn faults(scale: Scale, seed: u64) {
    println!("\n==== Fault campaign: fig8 workload, seed {seed:#x} ====");
    let c = provision(seed);
    let iters = scale.tree_files.max(64);

    // Warm everything once so the three phases start from the same
    // steady state (the per-phase cache drops re-cool them equally).
    run_phase(&c, "warmup", iters / 4);

    let before = run_phase(&c, "before", iters);
    c.injector.arm();
    let during = run_phase(&c, "during", iters);
    c.injector.disarm();
    let after = run_phase(&c, "after", iters);

    let mut t = Table::new(&[
        "phase", "ops", "ns/op", "hit rate", "faults", "retries", "EIO", "errs",
    ]);
    for r in [&before, &during, &after] {
        t.row(vec![
            r.name.into(),
            r.ops.to_string(),
            us(r.ns_per_op),
            pct(r.hit_rate),
            r.faults.to_string(),
            r.retries.to_string(),
            r.io_errors.to_string(),
            r.syscall_errors.to_string(),
        ]);
    }
    t.print();

    let recovered = (before.hit_rate - after.hit_rate).abs() <= 0.05;
    let clean = [&before, &during, &after]
        .iter()
        .all(|r| r.io_errors == 0 && r.syscall_errors == 0);
    println!(
        "campaign: {} faults fired, {} retries absorbed; \
         post-recovery hit rate {} vs no-fault {} — {}",
        during.faults,
        during.retries,
        pct(after.hit_rate),
        pct(before.hit_rate),
        if recovered && clean { "PASS" } else { "FAIL" }
    );

    let phases = [before, during, after];
    let json_path = "BENCH_faults.json";
    match write_faults_json(json_path, seed, &phases, recovered, clean) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
    }
    match append_experiments_record(seed, &phases, recovered, clean) {
        Ok(()) => println!("appended EXPERIMENTS.md"),
        Err(e) => eprintln!("warning: could not append EXPERIMENTS.md: {e}"),
    }
}

/// Serializes the campaign phases as JSON (hand-rolled; the workspace
/// carries no serialization dependency).
fn write_faults_json(
    path: &str,
    seed: u64,
    phases: &[PhaseReport; 3],
    recovered: bool,
    clean: bool,
) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"faults\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"campaign_faults\": {CAMPAIGN_FAULTS},\n"));
    out.push_str("  \"phases\": {\n");
    for (i, r) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{}\": {{ \"ops\": {}, \"ns_per_op\": {:.1}, \"hit_rate\": {:.4}, \
             \"faults\": {}, \"retries\": {}, \"io_errors\": {}, \"syscall_errors\": {} }}{comma}\n",
            r.name, r.ops, r.ns_per_op, r.hit_rate, r.faults, r.retries, r.io_errors,
            r.syscall_errors
        ));
    }
    out.push_str("  },\n");
    out.push_str(&format!("  \"recovered_within_5pct\": {recovered},\n"));
    out.push_str(&format!("  \"clean\": {clean}\n}}\n"));
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

/// Appends one run-record line under the fault-campaign section of
/// `EXPERIMENTS.md` (created if the file is missing, e.g. when run
/// outside the repository root).
fn append_experiments_record(
    seed: u64,
    phases: &[PhaseReport; 3],
    recovered: bool,
    clean: bool,
) -> std::io::Result<()> {
    use std::io::Write;
    let [before, during, after] = phases;
    let line = format!(
        "- `repro faults --seed {seed:#x}` ({} ops/phase): before {} @ {} hit; during {} @ {} hit \
         ({} faults, {} retries, {} EIO); after {} @ {} hit — {}\n",
        before.ops,
        us(before.ns_per_op),
        pct(before.hit_rate),
        us(during.ns_per_op),
        pct(during.hit_rate),
        during.faults,
        during.retries,
        during.io_errors,
        us(after.ns_per_op),
        pct(after.hit_rate),
        if recovered && clean {
            "recovered within 5%"
        } else {
            "RECOVERY FAILED"
        }
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("EXPERIMENTS.md")?;
    f.write_all(line.as_bytes())
}
