//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Each experiment is a function in [`figs`] that provisions fresh
//! kernels (baseline and optimized), drives the matching workload from
//! `dc-workloads`, and prints the same rows/series the paper reports.
//! The `repro` binary dispatches to them; the Criterion benches wrap the
//! latency-shaped ones. [`Scale`] trades fidelity for runtime so the
//! whole suite can run in CI (`quick`) or at paper scale (`full`).

pub mod crash;
pub mod faults;
pub mod figs;
pub mod fleet;
pub mod serve;
pub mod setup;
pub mod table;
pub mod warm;

pub use setup::{Scale, Setup};
