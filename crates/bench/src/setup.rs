//! Kernel provisioning and experiment scaling.

use dc_blockdev::{CachedDisk, DiskConfig, LatencyModel};
use dc_fs::{FileSystem, MemFs, MemFsConfig};
use dc_obs::ObsConfig;
use dc_vfs::{Kernel, KernelBuilder, Process};
use dcache_core::DcacheConfig;
use std::sync::Arc;

/// A provisioned kernel and its init process.
pub struct Setup {
    /// The kernel under test.
    pub kernel: Arc<Kernel>,
    /// The driving process (root credentials).
    pub proc: Arc<Process>,
}

/// Builds a kernel with a zero-latency memfs root.
pub fn kernel_with(config: DcacheConfig) -> Setup {
    let kernel = KernelBuilder::new(config)
        .build()
        .expect("kernel construction");
    let proc = kernel.init_process();
    Setup { kernel, proc }
}

/// Builds a kernel whose root disk charges real (spinning) latency per
/// device access — the cold-cache substrate for Table 2.
pub fn kernel_with_disk(config: DcacheConfig, read_ns: u64, write_ns: u64) -> Setup {
    kernel_with_disk_full(config, read_ns, write_ns, 0)
}

/// Like [`kernel_with_disk`], additionally charging `hit_ns` per
/// page-cache hit — modeling the buffer-cache lookup and on-disk-format
/// translation costs a real kernel pays even when metadata is resident
/// (our memfs is otherwise several times faster than the paper's ext4
/// testbed, which would hide the value of avoiding FS calls entirely).
pub fn kernel_with_disk_full(
    config: DcacheConfig,
    read_ns: u64,
    write_ns: u64,
    hit_ns: u64,
) -> Setup {
    let disk = Arc::new(CachedDisk::new(DiskConfig {
        capacity_blocks: 1 << 18,
        latency: LatencyModel::new(read_ns, write_ns, true).with_hit_ns(hit_ns),
        ..Default::default()
    }));
    let fs = MemFs::mkfs(
        disk,
        MemFsConfig {
            max_inodes: 1 << 18,
            ..Default::default()
        },
    )
    .expect("mkfs");
    let kernel = KernelBuilder::new(config)
        .root_fs(fs as Arc<dyn FileSystem>)
        .build()
        .expect("kernel construction");
    let proc = kernel.init_process();
    Setup { kernel, proc }
}

/// Builds a kernel with the observability subsystem enabled: latency
/// histograms, the trace ring, and the event counters all record.
pub fn kernel_with_obs(config: DcacheConfig) -> Setup {
    let kernel = KernelBuilder::new(config)
        .observability(ObsConfig::default())
        .build()
        .expect("kernel construction");
    let proc = kernel.init_process();
    Setup { kernel, proc }
}

/// The configuration pair every comparison runs.
pub fn config_pair() -> [(&'static str, DcacheConfig); 2] {
    [
        ("unmodified", DcacheConfig::baseline()),
        ("optimized", DcacheConfig::optimized()),
    ]
}

/// The thread-scaling comparison set: the pair plus the locked-reads
/// ablation — every optimization enabled but dentry/DLHT reads taking
/// the per-bucket and per-field locks instead of epoch-protected
/// optimistic reads. The "opt-locked" column is the before picture for
/// the lock-free read path; "optimized" is the after.
pub fn config_triple() -> [(&'static str, DcacheConfig); 3] {
    [
        ("unmodified", DcacheConfig::baseline()),
        ("opt-locked", DcacheConfig::optimized().with_locked_reads()),
        ("optimized", DcacheConfig::optimized()),
    ]
}

/// Experiment scaling knobs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Approximate files in the source-like tree workloads.
    pub tree_files: usize,
    /// Throughput-measurement duration per point, milliseconds.
    pub duration_ms: u64,
    /// Latency batches per measurement.
    pub batches: usize,
    /// Largest directory size in the size sweeps.
    pub max_dir: usize,
    /// Largest subtree in the mutation sweeps.
    pub max_subtree: usize,
    /// Maximum threads in the scalability sweep.
    pub max_threads: usize,
}

impl Scale {
    /// CI-friendly scale (seconds, not minutes).
    pub fn quick() -> Scale {
        Scale {
            tree_files: 400,
            duration_ms: 60,
            batches: 5,
            max_dir: 1000,
            max_subtree: 1000,
            max_threads: 4,
        }
    }

    /// Paper-comparable scale.
    pub fn full() -> Scale {
        Scale {
            tree_files: 5000,
            duration_ms: 800,
            batches: 15,
            max_dir: 10000,
            max_subtree: 10000,
            max_threads: 12,
        }
    }
}
