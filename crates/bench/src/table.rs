//! Plain-text table rendering for harness output.

/// A simple left-aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders and prints.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a nanosecond value as microseconds with 2 decimals.
pub fn us(ns: f64) -> String {
    format!("{:.2}", ns / 1000.0)
}

/// Formats a fraction (0.0..=1.0) as a percentage with 2 decimals.
pub fn pct(fraction: f64) -> String {
    format!("{:.2}", fraction * 100.0)
}

/// Formats a gain percentage `(base - new) / base`.
pub fn gain_pct(base: f64, new: f64) -> String {
    if base <= 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.1}%", (base - new) / base * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn helpers_format() {
        assert_eq!(us(1234.0), "1.23");
        assert_eq!(pct(0.756), "75.60");
        assert_eq!(pct(0.0), "0.00");
        assert_eq!(gain_pct(100.0, 74.0), "+26.0%");
        assert_eq!(gain_pct(100.0, 112.0), "-12.0%");
        assert_eq!(gain_pct(0.0, 5.0), "n/a");
    }
}
