//! `repro crash` — the seeded power-cut campaign (DESIGN.md §11), plus
//! `repro fsck` — the standalone metadata invariant checker.
//!
//! The campaign runs the fig. 8 lookup ladder interleaved with a seeded
//! metadata mutation stream, cuts power at [`CAMPAIGN_POINTS`] device
//! write ordinals drawn deterministically from the seed (a quarter of
//! them tearing the in-flight write), and then, for every captured
//! image:
//!
//!   1. remounts — journal recovery must succeed,
//!   2. runs `fsck` — every metadata invariant must hold,
//!   3. rebuilds the exact recovered prefix on a shadow file system and
//!      compares the full metadata trees — recovery must land on a
//!      *committed-operation prefix* of the workload, never a torn or
//!      reordered state,
//!   4. confirms the remount started cold (real device reads).
//!
//! Cut-point enumeration needs the total write count up front, so the
//! campaign runs twice: pass 1 counts device writes, pass 2 attaches
//! the sampled [`CrashMonitor`] and captures images. Both passes replay
//! the identical seeded workload.
//!
//! The journal-overhead ablation (journal on vs off) closes the report:
//! the warm fig. 8 fast path must stay within 10% — the journal prices
//! mutations, never warm lookups.

use crate::setup::Scale;
use crate::table::{us, Table};
use dc_blockdev::{CachedDisk, CrashImage, CrashMonitor, DiskConfig, LatencyModel};
use dc_fs::{fsck, FileSystem, FileType, MemFs, MemFsConfig, SetAttr};
use dc_vfs::{Kernel, KernelBuilder, OpenFlags, Process};
use dc_workloads::lmbench::{self, Pattern};
use dcache_core::DcacheConfig;
use std::sync::Arc;
use std::time::Instant;

/// Power-cut points per campaign (the ISSUE acceptance bar).
pub const CAMPAIGN_POINTS: usize = 200;

/// Probability that a cut tears the in-flight write in half.
const TEAR_PROB: f64 = 0.25;

/// Cap on the hot working set the campaign keeps warm and checkpoints
/// into the warm index (bounds the rewarm cost at full scale).
const HOT_CAP: usize = 1024;

/// Op cadence of the rewarm + warm-checkpoint cycle. Offset from the
/// 96-op cache-drop cadence so cut points land inside drop windows,
/// rewarm windows, and index-checkpoint flush windows alike.
const WARM_EVERY: usize = 192;

/// Capacity/cache sizing: small enough that the workload overflows the
/// page cache (dirty evictions reach the device at awkward moments —
/// exactly the traffic the write-ordering contract must survive).
const CAPACITY_BLOCKS: u64 = 1 << 16;
const CACHE_PAGES: usize = 2048;
const MAX_INODES: u64 = 1 << 14;

/// Deterministic op-stream generator (splitmix64).
pub(crate) struct Rng(pub(crate) u64);

impl Rng {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One resolved metadata operation. The campaign logs the concrete
/// arguments (inode numbers, names) rather than generator state, so a
/// prefix of the log replays mechanically on a fresh file system.
#[derive(Clone, Debug)]
enum Op {
    Create {
        dir: u64,
        name: String,
        mode: u16,
    },
    Mkdir {
        dir: u64,
        name: String,
        mode: u16,
    },
    Symlink {
        dir: u64,
        name: String,
        target: String,
    },
    Link {
        dir: u64,
        name: String,
        ino: u64,
    },
    Unlink {
        dir: u64,
        name: String,
    },
    Rmdir {
        dir: u64,
        name: String,
    },
    Rename {
        od: u64,
        on: String,
        nd: u64,
        nn: String,
    },
    Chmod {
        ino: u64,
        mode: u16,
    },
    Write {
        ino: u64,
        offset: u64,
        len: usize,
    },
}

impl Op {
    /// Applies the operation; returns whether it succeeded. MemFs is
    /// deterministic, so a prefix replay reproduces the exact outcome
    /// (including allocator decisions) of the original run.
    fn apply(&self, fs: &MemFs) -> bool {
        match self {
            Op::Create { dir, name, mode } => fs.create(*dir, name, *mode, 0, 0).is_ok(),
            Op::Mkdir { dir, name, mode } => fs.mkdir(*dir, name, *mode, 0, 0).is_ok(),
            Op::Symlink { dir, name, target } => fs.symlink(*dir, name, target, 0, 0).is_ok(),
            Op::Link { dir, name, ino } => fs.link(*dir, name, *ino).is_ok(),
            Op::Unlink { dir, name } => fs.unlink(*dir, name).is_ok(),
            Op::Rmdir { dir, name } => fs.rmdir(*dir, name).is_ok(),
            Op::Rename { od, on, nd, nn } => fs.rename(*od, on, *nd, nn).is_ok(),
            Op::Chmod { ino, mode } => fs
                .setattr(
                    *ino,
                    SetAttr {
                        mode: Some(*mode),
                        ..Default::default()
                    },
                )
                .is_ok(),
            Op::Write { ino, offset, len } => {
                let data = vec![0xA5u8; *len];
                fs.write(*ino, *offset, &data).is_ok()
            }
        }
    }
}

/// Generator bookkeeping: what exists right now, so the op stream stays
/// mostly-successful (failures are allowed — they commit nothing).
struct Gen {
    rng: Rng,
    /// Live directories: `(ino, parent_ino, name)`. Index 0 is the
    /// root (empty name, parent 0).
    dirs: Vec<(u64, u64, String)>,
    /// Live non-directory entries: `(parent, name, ino, is_regular)`.
    files: Vec<(u64, String, u64, bool)>,
    next_name: u64,
}

impl Gen {
    fn new(seed: u64, root: u64) -> Gen {
        Gen {
            rng: Rng(seed ^ 0x0C1A_57AF),
            dirs: vec![(root, 0, String::new())],
            files: Vec::new(),
            next_name: 0,
        }
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        let n = self.next_name;
        self.next_name += 1;
        format!("{prefix}{n}")
    }

    fn pick_dir(&mut self) -> u64 {
        let i = self.rng.below(self.dirs.len() as u64) as usize;
        self.dirs[i].0
    }

    /// Generates the next op and pre-applies its effect to the
    /// bookkeeping **assuming success** would be wrong for ops that can
    /// fail; instead the caller reports the outcome to [`Gen::settle`].
    fn next_op(&mut self) -> Op {
        let roll = self.rng.below(100);
        match roll {
            // Create a regular file (the bulk of the stream).
            0..=29 => Op::Create {
                dir: self.pick_dir(),
                name: self.fresh_name("f"),
                mode: 0o600 + (self.rng.below(0o100) as u16),
            },
            // Grow the directory tree.
            30..=39 => Op::Mkdir {
                dir: self.pick_dir(),
                name: self.fresh_name("d"),
                mode: 0o700 + (self.rng.below(0o60) as u16),
            },
            40..=46 => Op::Symlink {
                dir: self.pick_dir(),
                name: self.fresh_name("s"),
                target: format!("../t{}", self.rng.below(64)),
            },
            // Hard-link an existing regular file somewhere else.
            47..=52 => {
                if let Some(&(_, _, ino, _)) = self.pick_file(true) {
                    Op::Link {
                        dir: self.pick_dir(),
                        name: self.fresh_name("l"),
                        ino,
                    }
                } else {
                    self.fallback_create()
                }
            }
            // Unlink whatever the dice pick.
            53..=66 => {
                if let Some(&(parent, ref name, _, _)) = self.pick_file(false) {
                    Op::Unlink {
                        dir: parent,
                        name: name.clone(),
                    }
                } else {
                    self.fallback_create()
                }
            }
            // Remove an empty directory (may fail with NotEmpty — fine).
            67..=70 => {
                if self.dirs.len() > 1 {
                    let i = 1 + self.rng.below(self.dirs.len() as u64 - 1) as usize;
                    let (_, parent, ref name) = self.dirs[i];
                    Op::Rmdir {
                        dir: parent,
                        name: name.clone(),
                    }
                } else {
                    self.fallback_create()
                }
            }
            // Move a file, sometimes over an existing destination.
            71..=80 => {
                if let Some(&(od, ref on, _, _)) = self.pick_file(false) {
                    let on = on.clone();
                    let nd = self.pick_dir();
                    let overwrite = self.rng.below(5) == 0;
                    let nn = if overwrite {
                        match self.pick_file(false) {
                            Some(&(p, ref n, _, _)) if p == nd => n.clone(),
                            _ => self.fresh_name("r"),
                        }
                    } else {
                        self.fresh_name("r")
                    };
                    Op::Rename { od, on, nd, nn }
                } else {
                    self.fallback_create()
                }
            }
            81..=87 => {
                let ino = if self.rng.below(2) == 0 {
                    self.pick_dir()
                } else {
                    match self.pick_file(false) {
                        Some(&(_, _, ino, _)) => ino,
                        None => self.pick_dir(),
                    }
                };
                Op::Chmod {
                    ino,
                    mode: 0o400 + (self.rng.below(0o377) as u16),
                }
            }
            // Append/overwrite content (metadata: size + indirect block).
            _ => {
                if let Some(&(_, _, ino, _)) = self.pick_file(true) {
                    Op::Write {
                        ino,
                        offset: self.rng.below(24 * 1024),
                        len: 1 + self.rng.below(8 * 1024) as usize,
                    }
                } else {
                    self.fallback_create()
                }
            }
        }
    }

    fn fallback_create(&mut self) -> Op {
        Op::Create {
            dir: self.pick_dir(),
            name: self.fresh_name("f"),
            mode: 0o644,
        }
    }

    fn pick_file(&mut self, regular_only: bool) -> Option<&(u64, String, u64, bool)> {
        if self.files.is_empty() {
            return None;
        }
        let start = self.rng.below(self.files.len() as u64) as usize;
        (0..self.files.len())
            .map(|k| &self.files[(start + k) % self.files.len()])
            .find(|f| !regular_only || f.3)
    }

    /// Updates the bookkeeping after the live file system reported the
    /// op's outcome (`ino` is the inode a create-like op produced).
    fn settle(&mut self, op: &Op, result: Option<u64>) {
        let Some(ino) = result else { return };
        match op {
            Op::Create { dir, name, .. } => {
                self.files.push((*dir, name.clone(), ino, true));
            }
            Op::Mkdir { dir, name, .. } => {
                self.dirs.push((ino, *dir, name.clone()));
            }
            Op::Symlink { dir, name, .. } => {
                self.files.push((*dir, name.clone(), ino, false));
            }
            Op::Link { dir, name, ino } => {
                self.files.push((*dir, name.clone(), *ino, true));
            }
            Op::Unlink { dir, name } => {
                self.files.retain(|(p, n, _, _)| !(p == dir && n == name));
            }
            Op::Rmdir { dir, name } => {
                self.dirs.retain(|(_, p, n)| !(p == dir && n == name));
            }
            Op::Rename { od, on, nd, nn } => {
                // A successful rename unlinks any overwritten target.
                self.files.retain(|(p, n, _, _)| !(p == nd && n == nn));
                if let Some(f) = self
                    .files
                    .iter_mut()
                    .find(|(p, n, _, _)| p == od && n == on)
                {
                    f.0 = *nd;
                    f.1 = nn.clone();
                }
            }
            Op::Chmod { .. } | Op::Write { .. } => {}
        }
    }
}

/// Applies `op` and reports `(succeeded, created_ino)` — the created
/// inode lets the generator track objects without re-looking them up.
fn apply_tracked(fs: &MemFs, op: &Op) -> (bool, Option<u64>) {
    match op {
        Op::Create { dir, name, mode } => match fs.create(*dir, name, *mode, 0, 0) {
            Ok(a) => (true, Some(a.ino)),
            Err(_) => (false, None),
        },
        Op::Mkdir { dir, name, mode } => match fs.mkdir(*dir, name, *mode, 0, 0) {
            Ok(a) => (true, Some(a.ino)),
            Err(_) => (false, None),
        },
        Op::Symlink { dir, name, target } => match fs.symlink(*dir, name, target, 0, 0) {
            Ok(a) => (true, Some(a.ino)),
            Err(_) => (false, None),
        },
        Op::Link { dir, name, ino } => match fs.link(*dir, name, *ino) {
            Ok(a) => (true, Some(a.ino)),
            Err(_) => (false, None),
        },
        other => {
            let ok = other.apply(fs);
            (ok, if ok { Some(0) } else { None })
        }
    }
}

/// The campaign fixture shared by live runs and shadow replays: the
/// lmbench fig. 8 ladder tree plus `/hot`, a directory of `hotset`
/// files modeling the node's hot working set. The stats pull every
/// path into the dcache, so subsequent warm checkpoints persist it.
pub(crate) fn fixture(kernel: &Kernel, proc: &Arc<Process>, hotset: usize) {
    lmbench::setup(kernel, proc).expect("lmbench fixture");
    kernel.mkdir(proc, "/hot", 0o755).expect("hotset dir");
    for i in 0..hotset {
        let path = format!("/hot/h{i}");
        let fd = kernel
            .open(proc, &path, OpenFlags::create(), 0o644)
            .expect("hotset file");
        kernel.close(proc, fd).expect("hotset close");
    }
    rewarm(kernel, proc, hotset);
}

/// Walks the hot working set back into the dcache (what a serving node
/// does between checkpoints anyway — the warm index snapshots exactly
/// this state).
pub(crate) fn rewarm(kernel: &Kernel, proc: &Arc<Process>, hotset: usize) {
    for i in 0..hotset {
        let _ = kernel.stat(proc, &format!("/hot/h{i}"));
    }
}

/// Everything one campaign pass produces.
struct RunResult {
    fs: Arc<MemFs>,
    /// Device writes issued during the armed (mutation) phase.
    writes_during: u64,
    /// `(committed_seq, oplog_prefix_len)` after every successful op;
    /// the first entry is the post-setup base `(seq, 0)`.
    boundaries: Vec<(u64, usize)>,
    /// Every generated op with its live outcome.
    oplog: Vec<(Op, bool)>,
    ops_ok: u64,
    checkpoints: u64,
    forced_checkpoints: u64,
    commits: u64,
    /// Warm-index checkpoints persisted during the armed phase.
    warm_checkpoints: u64,
}

/// One pass of the seeded workload: fig. 8 ladder + mutation stream on
/// an optimized kernel over a journaled memfs. With a monitor attached
/// the identical pass is re-run under scheduled power cuts.
fn run_campaign(
    seed: u64,
    ops: usize,
    hotset: usize,
    monitor: Option<&Arc<CrashMonitor>>,
) -> RunResult {
    let disk = Arc::new(CachedDisk::new(DiskConfig {
        capacity_blocks: CAPACITY_BLOCKS,
        cache_pages: CACHE_PAGES,
        latency: LatencyModel::free(),
        ..Default::default()
    }));
    if let Some(m) = monitor {
        disk.attach_crash_monitor(m.clone());
    }
    let fs = MemFs::mkfs(
        disk.clone(),
        MemFsConfig {
            max_inodes: MAX_INODES,
            ..Default::default()
        },
    )
    .expect("mkfs");
    let kernel = KernelBuilder::new(DcacheConfig::optimized().with_seed(seed))
        .root_fs(fs.clone() as Arc<dyn FileSystem>)
        .build()
        .expect("kernel construction");
    let proc = kernel.init_process();
    fixture(&kernel, &proc, hotset);
    fs.sync().expect("post-setup checkpoint");

    let seq_base = fs.journal_seq().expect("journaled fs");
    let mut boundaries = vec![(seq_base, 0usize)];
    let mut oplog: Vec<(Op, bool)> = Vec::with_capacity(ops);
    let mut gen = Gen::new(seed, fs.root_ino());
    let stats0 = fs.journal_stats().unwrap_or_default();
    let writes0 = disk.stats().device_writes;
    if let Some(m) = monitor {
        m.arm();
    }

    let mut ops_ok = 0u64;
    let mut warm_checkpoints = 0u64;
    for i in 0..ops {
        // Keep the fig. 8 read ladder (and its evictions) in the mix.
        if i % 16 == 0 {
            for pat in [Pattern::Comp1, Pattern::Comp4, Pattern::Comp8] {
                let _ = kernel.stat(&proc, pat.path());
            }
        }
        // Periodic cache drop = fs.sync() = journal checkpoint, so cut
        // points also land inside checkpoint header/flush windows.
        if i % 96 == 95 {
            kernel.drop_caches();
        }
        // Rewarm the hot set and persist the warm index, so cut points
        // also land before, inside, and after index-checkpoint flushes
        // and the captured images carry real index state to recover.
        if i % WARM_EVERY == 100 {
            rewarm(&kernel, &proc, hotset);
            kernel.warm_checkpoint().expect("warm checkpoint");
            warm_checkpoints += 1;
        }
        let op = gen.next_op();
        let (ok, created) = apply_tracked(&fs, &op);
        if ok {
            ops_ok += 1;
            gen.settle(&op, created.or(Some(0)));
            let seq = fs.journal_seq().expect("journaled fs");
            // An op that touched no metadata re-uses the previous seq;
            // fold it into that boundary (the trees are identical).
            match boundaries.last_mut() {
                Some(last) if last.0 == seq => last.1 = oplog.len() + 1,
                _ => boundaries.push((seq, oplog.len() + 1)),
            }
        }
        oplog.push((op, ok));
    }
    if let Some(m) = monitor {
        m.disarm();
    }
    let writes_during = disk.stats().device_writes - writes0;
    let stats1 = fs.journal_stats().unwrap_or_default();
    RunResult {
        fs,
        writes_during,
        boundaries,
        oplog,
        ops_ok,
        checkpoints: stats1.checkpoints - stats0.checkpoints,
        forced_checkpoints: stats1.forced_checkpoints - stats0.forced_checkpoints,
        commits: stats1.commits - stats0.commits,
        warm_checkpoints,
    }
}

/// Serializes one inode subtree as comparable lines: path, type, mode,
/// nlink, size, and symlink target. Times are excluded (ticks advance
/// with read traffic); content is excluded (data blocks are write-back,
/// the journal guarantees the metadata tree).
fn tree_sig(fs: &MemFs, ino: u64, path: &str, out: &mut Vec<String>) {
    let Ok(a) = fs.getattr(ino) else {
        out.push(format!("{path} <unreadable>"));
        return;
    };
    let link = if a.ftype == FileType::Symlink {
        fs.readlink(ino).unwrap_or_else(|_| "<bad-link>".into())
    } else {
        String::new()
    };
    out.push(format!(
        "{path} {:?} mode={:o} nlink={} size={} {link}",
        a.ftype, a.mode, a.nlink, a.size
    ));
    if !a.ftype.is_dir() {
        return;
    }
    let mut entries = Vec::new();
    let mut cursor = 0u64;
    loop {
        match fs.readdir(ino, cursor, 128, &mut entries) {
            Ok(Some(next)) => cursor = next,
            Ok(None) => break,
            Err(_) => {
                out.push(format!("{path} <unreadable-dir>"));
                return;
            }
        }
    }
    entries.sort_by(|x, y| x.name.cmp(&y.name));
    for e in entries {
        tree_sig(fs, e.ino, &format!("{path}/{}", e.name), out);
    }
}

fn full_sig(fs: &MemFs) -> Vec<String> {
    let mut out = Vec::new();
    tree_sig(fs, fs.root_ino(), "", &mut out);
    out
}

/// Per-campaign verification tallies.
#[derive(Default)]
struct Verdict {
    images: usize,
    torn: usize,
    mount_failures: usize,
    fsck_errors: usize,
    prefix_mismatches: usize,
    divergences: usize,
    replayed_txns: u64,
    cold_reads: u64,
    first_failure: Option<String>,
}

impl Verdict {
    fn clean(&self) -> bool {
        self.mount_failures == 0
            && self.fsck_errors == 0
            && self.prefix_mismatches == 0
            && self.divergences == 0
    }

    fn note(&mut self, what: String) {
        if self.first_failure.is_none() {
            self.first_failure = Some(what);
        }
    }
}

/// Remounts, fscks, and prefix-checks every captured image against a
/// shadow file system that replays the committed op prefix.
fn verify_images(seed: u64, hotset: usize, run: &RunResult, images: &[CrashImage]) -> Verdict {
    let mut v = Verdict {
        images: images.len(),
        ..Default::default()
    };

    // Shadow: identical provisioning and fixture, ops replayed on
    // demand. Metadata state only depends on the mutation stream (the
    // fig. 8 reads allocate nothing), so the ladder is not replayed.
    let shadow_disk = Arc::new(CachedDisk::new(DiskConfig {
        capacity_blocks: CAPACITY_BLOCKS,
        cache_pages: CACHE_PAGES,
        latency: LatencyModel::free(),
        ..Default::default()
    }));
    let shadow = MemFs::mkfs(
        shadow_disk,
        MemFsConfig {
            max_inodes: MAX_INODES,
            ..Default::default()
        },
    )
    .expect("shadow mkfs");
    {
        let kernel = KernelBuilder::new(DcacheConfig::optimized().with_seed(seed))
            .root_fs(shadow.clone() as Arc<dyn FileSystem>)
            .build()
            .expect("shadow kernel");
        let proc = kernel.init_process();
        fixture(&kernel, &proc, hotset);
    }
    shadow.sync().expect("shadow checkpoint");
    let mut applied = 0usize;

    // Mount + fsck first; sort by recovered prefix so the shadow only
    // ever advances (commit records reach the device in seq order, so
    // this is also roughly cut order).
    let mut mounted: Vec<(usize, Arc<CachedDisk>, Arc<MemFs>)> = Vec::new();
    for img in images {
        if img.torn_block.is_some() {
            v.torn += 1;
        }
        let cut = img.cut_at_write;
        let disk = Arc::new(CachedDisk::from_image(
            img,
            CACHE_PAGES,
            LatencyModel::free(),
        ));
        let fs = match MemFs::mount(disk.clone()) {
            Ok(fs) => fs,
            Err(e) => {
                v.mount_failures += 1;
                v.note(format!("cut@{cut}: remount failed: {e:?}"));
                continue;
            }
        };
        v.replayed_txns += fs.replayed_txns();
        match fsck(&disk) {
            Ok(report) if report.is_clean() => {}
            Ok(report) => {
                v.fsck_errors += 1;
                v.note(format!(
                    "cut@{cut}: fsck found {} errors, first: {}",
                    report.errors.len(),
                    report.errors[0]
                ));
                continue;
            }
            Err(e) => {
                v.fsck_errors += 1;
                v.note(format!("cut@{cut}: fsck failed to run: {e:?}"));
                continue;
            }
        }
        let stats = disk.stats();
        v.cold_reads += stats.device_reads;
        // Map the recovered commit seq to the workload prefix it must
        // correspond to — exactly, or recovery invented/lost a txn.
        let rseq = fs.recovered_seq();
        match run.boundaries.binary_search_by_key(&rseq, |b| b.0) {
            Ok(i) => mounted.push((run.boundaries[i].1, disk, fs)),
            Err(_) => {
                v.prefix_mismatches += 1;
                v.note(format!(
                    "cut@{cut}: recovered seq {rseq} is not an op boundary"
                ));
            }
        }
    }

    mounted.sort_by_key(|(prefix, _, _)| *prefix);
    for (prefix, _disk, fs) in mounted {
        while applied < prefix {
            let (op, live_ok) = &run.oplog[applied];
            let ok = op.apply(&shadow);
            if ok != *live_ok {
                v.divergences += 1;
                v.note(format!(
                    "shadow replay diverged at op {applied}: {op:?} live_ok={live_ok} shadow_ok={ok}"
                ));
            }
            applied += 1;
        }
        let want = full_sig(&shadow);
        let got = full_sig(&fs);
        if want != got {
            v.divergences += 1;
            let diff = want
                .iter()
                .zip(got.iter())
                .find(|(w, g)| w != g)
                .map(|(w, g)| format!("want `{w}` got `{g}`"))
                .unwrap_or_else(|| format!("tree sizes differ: {} vs {}", want.len(), got.len()));
            v.note(format!("prefix {prefix}: tree mismatch: {diff}"));
        }
    }
    v
}

/// One warm fig. 8 ladder round (no cache drops): ns/op of the hit
/// fast path.
fn warm_round(kernel: &Kernel, proc: &Arc<Process>, iters: usize) -> f64 {
    let mut ops = 0u64;
    let t0 = Instant::now();
    for _ in 0..iters {
        for pat in [
            Pattern::Comp1,
            Pattern::Comp2,
            Pattern::Comp4,
            Pattern::Comp8,
        ] {
            let _ = kernel.stat(proc, pat.path());
            ops += 1;
        }
    }
    t0.elapsed().as_nanos() as f64 / ops.max(1) as f64
}

/// Metadata churn (create + unlink round trips): ns/op including the
/// journal's payload-then-commit flushes when enabled.
fn churn(kernel: &Kernel, proc: &Arc<Process>, pairs: usize) -> f64 {
    let _ = kernel.mkdir(proc, "/churn", 0o755);
    let mut best = f64::INFINITY;
    for round in 0..3 {
        let mut ops = 0u64;
        let t0 = Instant::now();
        for i in 0..pairs {
            let path = format!("/churn/r{round}c{i}");
            if let Ok(fd) = kernel.open(proc, &path, OpenFlags::create(), 0o644) {
                let _ = kernel.close(proc, fd);
            }
            let _ = kernel.unlink(proc, &path);
            ops += 2;
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / ops.max(1) as f64);
    }
    best
}

struct OverheadRow {
    name: &'static str,
    warm_ns: f64,
    churn_ns: f64,
    commits: u64,
}

/// Journal on/off ablation on the spinning-latency disk the fig. 8
/// experiments use. Measurement rounds are interleaved between the two
/// kernels (and each config keeps its best round) so CPU frequency
/// ramp-up or background noise cannot masquerade as journal overhead.
fn journal_overhead(seed: u64, scale: &Scale) -> [OverheadRow; 2] {
    let mut setups = Vec::new();
    for (name, journal) in [("journal", true), ("no-journal", false)] {
        let disk = Arc::new(CachedDisk::new(DiskConfig {
            capacity_blocks: CAPACITY_BLOCKS,
            latency: LatencyModel::new(2_000, 4_000, true).with_hit_ns(150),
            ..Default::default()
        }));
        let fs = MemFs::mkfs(
            disk,
            MemFsConfig {
                max_inodes: MAX_INODES,
                journal,
                ..Default::default()
            },
        )
        .expect("mkfs");
        let kernel = KernelBuilder::new(DcacheConfig::optimized().with_seed(seed))
            .root_fs(fs.clone() as Arc<dyn FileSystem>)
            .build()
            .expect("kernel construction");
        let proc = kernel.init_process();
        lmbench::setup(&kernel, &proc).expect("lmbench fixture");
        setups.push((name, fs, kernel, proc));
    }
    let iters = scale.tree_files.max(200);
    let mut warm = [f64::INFINITY; 2];
    for round in 0..7 {
        for (i, (_, _, kernel, proc)) in setups.iter().enumerate() {
            let ns = warm_round(kernel, proc, iters * 4);
            // Round 0 warms caches and branch predictors; discard.
            if round > 0 {
                warm[i] = warm[i].min(ns);
            }
        }
    }
    let churn_ns = [
        churn(&setups[0].2, &setups[0].3, iters),
        churn(&setups[1].2, &setups[1].3, iters),
    ];
    let rows: Vec<OverheadRow> = setups
        .iter()
        .enumerate()
        .map(|(i, (name, fs, _, _))| OverheadRow {
            name,
            warm_ns: warm[i],
            churn_ns: churn_ns[i],
            commits: fs.journal_stats().map(|s| s.commits).unwrap_or(0),
        })
        .collect();
    let [a, b] = <[OverheadRow; 2]>::try_from(rows).ok().unwrap();
    [a, b]
}

/// The `repro crash --seed N` entry point. Returns `false` if any image
/// failed verification or the journal's warm overhead blew the 10% bar,
/// so the caller (and CI) can turn the verdict into an exit code.
pub fn crash(scale: Scale, seed: u64) -> bool {
    println!("\n==== Crash campaign: {CAMPAIGN_POINTS} seeded power cuts, seed {seed:#x} ====");
    let ops = scale.tree_files.max(400) * 4; // quick: 1600 ops, full: 20k
    let hotset = scale.tree_files.clamp(400, HOT_CAP);

    // Pass 1: count device writes so cut points span the whole run.
    let t0 = Instant::now();
    let pass1 = run_campaign(seed, ops, hotset, None);
    println!(
        "pass 1: {} ops ({} committed) -> {} device writes, {} commits, {} checkpoints ({} forced), \
         {} warm-index checkpoints [{:?}]",
        pass1.oplog.len(),
        pass1.ops_ok,
        pass1.writes_during,
        pass1.commits,
        pass1.checkpoints,
        pass1.forced_checkpoints,
        pass1.warm_checkpoints,
        t0.elapsed(),
    );

    // Pass 2: identical workload with the armed crash monitor.
    let monitor = Arc::new(CrashMonitor::sample(
        seed,
        pass1.writes_during,
        CAMPAIGN_POINTS,
        TEAR_PROB,
    ));
    let scheduled = monitor.scheduled().len();
    if scheduled < CAMPAIGN_POINTS {
        println!(
            "note: only {scheduled} distinct cut points available \
             ({} device writes < {CAMPAIGN_POINTS} requested)",
            pass1.writes_during,
        );
    }
    let t1 = Instant::now();
    let pass2 = run_campaign(seed, ops, hotset, Some(&monitor));
    let images = monitor.take_images();
    println!(
        "pass 2: captured {} crash images over {} writes [{:?}]",
        images.len(),
        pass2.writes_during,
        t1.elapsed(),
    );

    let t2 = Instant::now();
    let v = verify_images(seed, hotset, &pass2, &images);
    let mut t = Table::new(&["check", "count", "failures"]);
    t.row(vec![
        "images captured".into(),
        v.images.to_string(),
        String::new(),
    ]);
    t.row(vec![
        "torn in-flight writes".into(),
        v.torn.to_string(),
        String::new(),
    ]);
    t.row(vec![
        "remounts".into(),
        v.images.to_string(),
        v.mount_failures.to_string(),
    ]);
    t.row(vec![
        "fsck runs".into(),
        (v.images - v.mount_failures).to_string(),
        v.fsck_errors.to_string(),
    ]);
    t.row(vec![
        "prefix-consistency checks".into(),
        (v.images - v.mount_failures - v.fsck_errors).to_string(),
        (v.prefix_mismatches + v.divergences).to_string(),
    ]);
    t.row(vec![
        "journal txns replayed".into(),
        v.replayed_txns.to_string(),
        String::new(),
    ]);
    t.row(vec![
        "cold device reads/remount".into(),
        format!("{:.0}", v.cold_reads as f64 / v.images.max(1) as f64),
        String::new(),
    ]);
    t.print();
    if let Some(f) = &v.first_failure {
        println!("first failure: {f}");
    }
    println!(
        "campaign verification: {} [{:?}]",
        if v.clean() { "PASS" } else { "FAIL" },
        t2.elapsed()
    );

    // Journal overhead ablation.
    let rows = journal_overhead(seed, &scale);
    let warm_overhead = (rows[0].warm_ns - rows[1].warm_ns) / rows[1].warm_ns;
    let churn_overhead = (rows[0].churn_ns - rows[1].churn_ns) / rows[1].churn_ns;
    let mut t = Table::new(&[
        "config",
        "warm stat us/op",
        "create+unlink us/op",
        "commits",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.into(),
            us(r.warm_ns),
            us(r.churn_ns),
            r.commits.to_string(),
        ]);
    }
    t.print();
    let warm_ok = warm_overhead <= 0.10;
    println!(
        "journal overhead: warm fast path {:+.1}% (bar: <=10% — {}), metadata churn {:+.1}% \
         (durability price, not on the fast path)",
        warm_overhead * 100.0,
        if warm_ok { "PASS" } else { "FAIL" },
        churn_overhead * 100.0,
    );

    let json_path = "BENCH_crash.json";
    match write_crash_json(json_path, seed, ops, &pass2, &v, &rows, warm_overhead) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
    }
    match append_experiments_record(seed, &pass2, &v, &rows, warm_overhead) {
        Ok(()) => println!("appended EXPERIMENTS.md"),
        Err(e) => eprintln!("warning: could not append EXPERIMENTS.md: {e}"),
    }

    // Warm-restart phase (DESIGN.md §15): rehydrate every surviving
    // image, corrupt its index and rehydrate again, and run the
    // ops-to-90%-hit-rate ablation. Its own floor feeds the exit code.
    let warm_restart_ok = crate::warm::phase(seed, hotset, images);

    v.clean() && warm_ok && warm_restart_ok
}

/// The `repro fsck --seed N` entry point: runs the seeded workload,
/// pulls the plug without any final sync, remounts, and prints the full
/// invariant report for the recovered image.
pub fn fsck_cmd(scale: Scale, seed: u64) {
    println!("\n==== fsck: seeded workload, power cut, recover, check (seed {seed:#x}) ====");
    let ops = scale.tree_files.max(400);
    let hotset = scale.tree_files.clamp(400, HOT_CAP);
    let run = run_campaign(seed, ops, hotset, None);
    let disk = run.fs.disk().clone();
    let dropped = disk.power_cut();
    println!(
        "workload: {} ops ({} committed); power cut dropped {} dirty pages",
        run.oplog.len(),
        run.ops_ok,
        dropped
    );
    let fs = MemFs::mount(disk.clone()).expect("remount after power cut");
    println!(
        "recovery: replayed {} txns up to seq {}",
        fs.replayed_txns(),
        fs.recovered_seq()
    );
    match fsck(&disk) {
        Ok(report) => {
            let mut t = Table::new(&["metric", "value"]);
            t.row(vec![
                "inodes reachable".into(),
                report.inodes_reachable.to_string(),
            ]);
            t.row(vec!["directories".into(), report.dirs.to_string()]);
            t.row(vec![
                "data blocks reachable".into(),
                report.blocks_reachable.to_string(),
            ]);
            t.row(vec!["errors".into(), report.errors.len().to_string()]);
            t.print();
            for e in report.errors.iter().take(10) {
                println!("  error: {e}");
            }
            println!(
                "fsck: {}",
                if report.is_clean() { "CLEAN" } else { "ERRORS" }
            );
        }
        Err(e) => println!("fsck failed to run: {e:?}"),
    }
}

/// Hand-rolled JSON (the workspace carries no serialization dependency).
#[allow(clippy::too_many_arguments)]
fn write_crash_json(
    path: &str,
    seed: u64,
    ops: usize,
    run: &RunResult,
    v: &Verdict,
    rows: &[OverheadRow; 2],
    warm_overhead: f64,
) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"crash\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"crash_points\": {CAMPAIGN_POINTS},\n"));
    out.push_str(&format!("  \"tear_prob\": {TEAR_PROB},\n"));
    out.push_str(&format!(
        "  \"workload\": {{ \"ops\": {ops}, \"committed\": {}, \"device_writes\": {}, \
         \"commits\": {}, \"checkpoints\": {}, \"forced_checkpoints\": {} }},\n",
        run.ops_ok, run.writes_during, run.commits, run.checkpoints, run.forced_checkpoints
    ));
    out.push_str(&format!(
        "  \"verification\": {{ \"images\": {}, \"torn\": {}, \"mount_failures\": {}, \
         \"fsck_errors\": {}, \"prefix_mismatches\": {}, \"divergences\": {}, \
         \"replayed_txns\": {}, \"clean\": {} }},\n",
        v.images,
        v.torn,
        v.mount_failures,
        v.fsck_errors,
        v.prefix_mismatches,
        v.divergences,
        v.replayed_txns,
        v.clean()
    ));
    out.push_str("  \"overhead\": {\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{}\": {{ \"warm_stat_ns\": {:.1}, \"churn_ns\": {:.1}, \"commits\": {} }}{comma}\n",
            r.name, r.warm_ns, r.churn_ns, r.commits
        ));
    }
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"warm_overhead\": {:.4},\n  \"warm_overhead_within_10pct\": {}\n}}\n",
        warm_overhead,
        warm_overhead <= 0.10
    ));
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

/// Appends one run-record line to `EXPERIMENTS.md`.
fn append_experiments_record(
    seed: u64,
    run: &RunResult,
    v: &Verdict,
    rows: &[OverheadRow; 2],
    warm_overhead: f64,
) -> std::io::Result<()> {
    use std::io::Write;
    let line = format!(
        "- `repro crash --seed {seed:#x}`: {} cuts ({} torn) over {} writes / {} committed ops — \
         {} mount failures, {} fsck errors, {} prefix divergences; {} txns replayed; \
         warm fast path {}us (journal) vs {}us (no journal) = {:+.1}% — {}\n",
        v.images,
        v.torn,
        run.writes_during,
        run.ops_ok,
        v.mount_failures,
        v.fsck_errors,
        v.prefix_mismatches + v.divergences,
        v.replayed_txns,
        us(rows[0].warm_ns),
        us(rows[1].warm_ns),
        warm_overhead * 100.0,
        if v.clean() && warm_overhead <= 0.10 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("EXPERIMENTS.md")?;
    f.write_all(line.as_bytes())
}
