//! Warm-restart phase of `repro crash` (DESIGN.md §15).
//!
//! Runs three sub-phases over the campaign's captured crash images:
//!
//! 1. **Rehydration** — every image remounts with warm restart enabled.
//!    The outcome must be typed (rehydrated, or a typed cold fallback),
//!    its accounting must balance, and every lookup the rehydrated
//!    cache answers must agree with the recovered metadata tree — zero
//!    wrong lookups, zero phantoms.
//! 2. **Corruption** — seeded byte flips in each image's warm-index
//!    region ([`CrashImage::corrupt_byte`]), then a second warm
//!    remount: still zero panics, zero wrong lookups, and `fsck`
//!    (index pass included) still clean — index rot must never read as
//!    metadata damage.
//! 3. **Ablation** — per rehydrated image, ops-to-90%-hit-rate over the
//!    recovered hot set with and without the persisted index; the
//!    with-index median must beat the without-index median by at least
//!    [`ABLATION_FLOOR`]×.
//!
//! Results land in `BENCH_warm.json` plus a run-record line in
//! `EXPERIMENTS.md`; the returned verdict feeds `repro crash`'s exit
//! code.

use crate::crash::Rng;
use crate::table::Table;
use dc_blockdev::{CachedDisk, CrashImage, LatencyModel};
use dc_fs::{fsck, FileSystem, MemFs};
use dc_vfs::{Kernel, KernelBuilder};
use dcache_core::DcacheConfig;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Acceptance floor: the with-index restart must reach the hit-rate
/// target in at least this many times fewer ops than the cold restart.
pub const ABLATION_FLOOR: f64 = 5.0;

/// The hit-rate a restarted node must reach: 90% of lookups served
/// without touching the backing file system.
const HIT_TARGET_PCT: u64 = 90;

/// Page-cache sizing for remounts (matches the campaign's disks).
const CACHE_PAGES: usize = 2048;

/// Remounts a crash image and builds an optimized kernel over it,
/// with or without warm restart.
fn mount_kernel(
    img: &CrashImage,
    seed: u64,
    warm: bool,
) -> Option<(Arc<CachedDisk>, Arc<MemFs>, Arc<Kernel>)> {
    let disk = Arc::new(CachedDisk::from_image(
        img,
        CACHE_PAGES,
        LatencyModel::free(),
    ));
    let fs = MemFs::mount(disk.clone()).ok()?;
    let kernel = KernelBuilder::new(DcacheConfig::optimized().with_seed(seed))
        .root_fs(fs.clone() as Arc<dyn FileSystem>)
        .warm_restart(warm)
        .build()
        .ok()?;
    Some((disk, fs, kernel))
}

/// The recovered hot working set: `(path, inode)` for every `/hot`
/// entry in the image's own metadata tree — the ground truth any
/// rehydrated answer must match.
fn hot_paths(fs: &MemFs) -> Vec<(String, u64)> {
    let Ok(hot) = fs.lookup(fs.root_ino(), "hot") else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    let mut cursor = 0u64;
    while let Ok(Some(next)) = fs.readdir(hot.ino, cursor, 128, &mut entries) {
        cursor = next;
    }
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    entries
        .iter()
        .map(|e| (format!("/hot/{}", e.name), e.ino))
        .collect()
}

/// Seeded Fisher–Yates permutation of `0..n`.
fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = Rng(seed ^ 0x5817_FF1E);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.below(i as u64 + 1) as usize);
    }
    order
}

/// Ops until the restarted node serves its hot set at the target hit
/// rate: stats the set in a seeded order and returns the first op count
/// (at least one full pass) where ≥90% of ops so far needed no
/// backing-fs lookup. Capped at 40 passes.
fn ops_to_target(kernel: &Kernel, paths: &[(String, u64)], seed: u64) -> u64 {
    let proc = kernel.init_process();
    kernel.reset_stats();
    let stats = &kernel.dcache.stats;
    let order = shuffled(paths.len(), seed);
    let cap = 40 * paths.len() as u64;
    let mut hit_ops = 0u64;
    let mut last_miss = 0u64;
    let mut n = 0u64;
    loop {
        let (path, _) = &paths[order[(n % paths.len() as u64) as usize]];
        let _ = kernel.stat(&proc, path);
        n += 1;
        let miss = stats.miss_fs.load(Ordering::Relaxed);
        if miss == last_miss {
            hit_ops += 1;
        }
        last_miss = miss;
        if (n >= paths.len() as u64 && hit_ops * 100 >= n * HIT_TARGET_PCT) || n >= cap {
            return n;
        }
    }
}

/// Wrong answers the (possibly rehydrated) cache gives against the
/// recovered tree: a hot path resolving to the wrong inode (or not at
/// all), or a phantom path resolving.
fn wrong_lookups(kernel: &Kernel, paths: &[(String, u64)]) -> u64 {
    let proc = kernel.init_process();
    let mut wrong = 0u64;
    for (path, ino) in paths {
        match kernel.stat(&proc, path) {
            Ok(a) if a.ino == *ino => {}
            _ => wrong += 1,
        }
    }
    if kernel.stat(&proc, "/hot/phantom-entry").is_ok() {
        wrong += 1;
    }
    wrong
}

fn median(v: &mut [u64]) -> u64 {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[v.len() / 2]
}

/// Everything the warm phase tallies (and exports).
#[derive(Default)]
struct WarmVerdict {
    images: usize,
    rehydrated: usize,
    fallbacks: usize,
    published: u64,
    rejected: u64,
    wrong: u64,
    accounting_breaks: usize,
    corrupt_images: usize,
    corrupt_flips: usize,
    corrupt_rehydrated: usize,
    corrupt_fallbacks: usize,
    corrupt_wrong: u64,
    corrupt_fsck_errors: usize,
    warm_p50: u64,
    cold_p50: u64,
    first_failure: Option<String>,
}

impl WarmVerdict {
    fn ratio(&self) -> f64 {
        self.cold_p50 as f64 / self.warm_p50.max(1) as f64
    }

    fn clean(&self) -> bool {
        self.wrong == 0
            && self.accounting_breaks == 0
            && self.corrupt_wrong == 0
            && self.corrupt_fsck_errors == 0
            && self.rehydrated > 0
            && self.ratio() >= ABLATION_FLOOR
    }

    fn note(&mut self, what: String) {
        if self.first_failure.is_none() {
            self.first_failure = Some(what);
        }
    }
}

/// The warm-restart phase entry point, fed by `crash::crash` with the
/// campaign's captured images. Returns whether every sub-phase passed.
pub(crate) fn phase(seed: u64, hotset: usize, mut images: Vec<CrashImage>) -> bool {
    println!(
        "\n==== Warm restart: rehydration + index corruption + ops-to-90% ablation \
         ({} images, hot set {hotset}) ====",
        images.len()
    );
    let t0 = Instant::now();
    let mut rng = Rng(seed ^ 0x57A6_11D0);
    let mut v = WarmVerdict {
        images: images.len(),
        ..Default::default()
    };
    let mut warm_ops: Vec<u64> = Vec::new();
    let mut cold_ops: Vec<u64> = Vec::new();

    for img in &mut images {
        let cut = img.cut_at_write;
        // Sub-phase 1: warm remount of the image as captured.
        let Some((_, wfs, wk)) = mount_kernel(img, seed, true) else {
            // Unmountable images already failed the main campaign.
            continue;
        };
        let geo = *wfs.geometry();
        let outcome = wk.warm_outcome().expect("builder ran warm restart");
        let paths = hot_paths(&wfs);
        if paths.is_empty() {
            continue;
        }
        if outcome.fallback.is_none() {
            v.rehydrated += 1;
            v.published += outcome.published;
            v.rejected += outcome.rejected;
            if outcome.attempted != outcome.published + outcome.rejected {
                v.accounting_breaks += 1;
                v.note(format!("cut@{cut}: outcome accounting broken: {outcome:?}"));
            }
        } else {
            v.fallbacks += 1;
        }
        let w = ops_to_target(&wk, &paths, seed ^ cut);
        let wrong = wrong_lookups(&wk, &paths);
        if wrong > 0 {
            v.wrong += wrong;
            v.note(format!(
                "cut@{cut}: {wrong} wrong lookups after warm restart ({outcome:?})"
            ));
        }
        // Ablation comparator only where an index actually rehydrated —
        // an absent/torn index is the cold case by definition.
        if outcome.fallback.is_none() && outcome.published > 0 {
            if let Some((_, _, ck)) = mount_kernel(img, seed, false) {
                warm_ops.push(w);
                cold_ops.push(ops_to_target(&ck, &paths, seed ^ cut));
            }
        }
        drop(wk);
        drop(wfs);

        // Sub-phase 2: corrupt the index region in-place, remount warm.
        let flips = 1 + rng.below(8) as usize;
        for _ in 0..flips {
            let blk = geo.warmidx_start + rng.below(geo.warmidx_blocks);
            let off = rng.below(geo.block_size as u64) as usize;
            img.corrupt_byte(blk, off, rng.below(256) as u8);
        }
        v.corrupt_images += 1;
        v.corrupt_flips += flips;
        let Some((cdisk, cfs, ck)) = mount_kernel(img, seed, true) else {
            v.corrupt_wrong += 1;
            v.note(format!("cut@{cut}: remount failed after index corruption"));
            continue;
        };
        let outcome2 = ck.warm_outcome().expect("builder ran warm restart");
        if outcome2.fallback.is_none() {
            v.corrupt_rehydrated += 1;
        } else {
            v.corrupt_fallbacks += 1;
        }
        let wrong2 = wrong_lookups(&ck, &hot_paths(&cfs));
        if wrong2 > 0 {
            v.corrupt_wrong += wrong2;
            v.note(format!(
                "cut@{cut}: {wrong2} wrong lookups after index corruption ({outcome2:?})"
            ));
        }
        // Index rot must never read as metadata damage.
        match fsck(&cdisk) {
            Ok(r) if r.is_clean() => {}
            Ok(r) => {
                v.corrupt_fsck_errors += 1;
                v.note(format!("cut@{cut}: post-corruption fsck: {}", r.errors[0]));
            }
            Err(e) => {
                v.corrupt_fsck_errors += 1;
                v.note(format!("cut@{cut}: post-corruption fsck failed: {e:?}"));
            }
        }
    }

    v.warm_p50 = median(&mut warm_ops);
    v.cold_p50 = median(&mut cold_ops);

    let mut t = Table::new(&["warm-restart check", "count", "failures"]);
    t.row(vec![
        "images rehydrated / fell back".into(),
        format!("{} / {}", v.rehydrated, v.fallbacks),
        v.accounting_breaks.to_string(),
    ]);
    t.row(vec![
        "entries published / rejected".into(),
        format!("{} / {}", v.published, v.rejected),
        String::new(),
    ]);
    t.row(vec![
        "lookups vs recovered tree".into(),
        (v.images * hotset).to_string(),
        v.wrong.to_string(),
    ]);
    t.row(vec![
        "corrupted images (byte flips)".into(),
        format!("{} ({})", v.corrupt_images, v.corrupt_flips),
        (v.corrupt_wrong + v.corrupt_fsck_errors as u64).to_string(),
    ]);
    t.row(vec![
        "corrupt: rehydrated / fell back".into(),
        format!("{} / {}", v.corrupt_rehydrated, v.corrupt_fallbacks),
        String::new(),
    ]);
    t.row(vec![
        "ops-to-90%: warm / cold (p50)".into(),
        format!("{} / {}", v.warm_p50, v.cold_p50),
        String::new(),
    ]);
    t.print();
    if let Some(f) = &v.first_failure {
        println!("first failure: {f}");
    }
    let pass = v.clean();
    println!(
        "warm restart: {:.1}x fewer ops to 90% hit rate (floor: {ABLATION_FLOOR}x) — {} [{:?}]",
        v.ratio(),
        if pass { "PASS" } else { "FAIL" },
        t0.elapsed(),
    );

    let json_path = "BENCH_warm.json";
    match write_warm_json(json_path, seed, hotset, &v) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
    }
    match append_experiments_record(seed, &v) {
        Ok(()) => println!("appended EXPERIMENTS.md"),
        Err(e) => eprintln!("warning: could not append EXPERIMENTS.md: {e}"),
    }
    pass
}

/// Hand-rolled JSON (the workspace carries no serialization dependency).
fn write_warm_json(path: &str, seed: u64, hotset: usize, v: &WarmVerdict) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"warm_restart\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"hotset\": {hotset},\n"));
    out.push_str(&format!(
        "  \"rehydration\": {{ \"images\": {}, \"rehydrated\": {}, \"fallbacks\": {}, \
         \"published\": {}, \"rejected\": {}, \"wrong_lookups\": {}, \"accounting_breaks\": {} }},\n",
        v.images, v.rehydrated, v.fallbacks, v.published, v.rejected, v.wrong, v.accounting_breaks
    ));
    out.push_str(&format!(
        "  \"corruption\": {{ \"images\": {}, \"byte_flips\": {}, \"rehydrated\": {}, \
         \"fallbacks\": {}, \"wrong_lookups\": {}, \"fsck_errors\": {} }},\n",
        v.corrupt_images,
        v.corrupt_flips,
        v.corrupt_rehydrated,
        v.corrupt_fallbacks,
        v.corrupt_wrong,
        v.corrupt_fsck_errors
    ));
    out.push_str(&format!(
        "  \"ablation\": {{ \"warm_ops_p50\": {}, \"cold_ops_p50\": {}, \"ratio\": {:.2}, \
         \"floor\": {ABLATION_FLOOR}, \"pass\": {} }},\n",
        v.warm_p50,
        v.cold_p50,
        v.ratio(),
        v.ratio() >= ABLATION_FLOOR
    ));
    out.push_str(&format!("  \"clean\": {}\n}}\n", v.clean()));
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

/// Appends one run-record line to `EXPERIMENTS.md`.
fn append_experiments_record(seed: u64, v: &WarmVerdict) -> std::io::Result<()> {
    use std::io::Write;
    let line = format!(
        "- `repro crash --seed {seed:#x}` warm restart: {} images ({} rehydrated, {} typed cold \
         fallbacks), {}/{} entries published/rejected, {} wrong lookups; corruption: {} byte \
         flips over {} images, {} wrong lookups, {} fsck errors; ops-to-90%-hit-rate p50 {} warm \
         vs {} cold = {:.1}x (floor {ABLATION_FLOOR}x) — {}\n",
        v.images,
        v.rehydrated,
        v.fallbacks,
        v.published,
        v.rejected,
        v.wrong,
        v.corrupt_flips,
        v.corrupt_images,
        v.corrupt_wrong,
        v.corrupt_fsck_errors,
        v.warm_p50,
        v.cold_p50,
        v.ratio(),
        if v.clean() { "PASS" } else { "FAIL" }
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("EXPERIMENTS.md")?;
    f.write_all(line.as_bytes())
}
