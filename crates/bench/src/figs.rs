//! One function per table/figure of the paper's evaluation (§6).

use crate::setup::{
    config_pair, config_triple, kernel_with, kernel_with_disk, kernel_with_disk_full,
    kernel_with_obs, Scale, Setup,
};
use crate::table::{gain_pct, pct, us, Table};
use dc_vfs::{Cred, Kernel, OpClass, OpenFlags, Process};
use dc_workloads::apps::{
    du_s, find_name, git_diff, git_status, git_write_index, make_build, rm_r, tar_extract,
    AppReport,
};
use dc_workloads::lmbench::{self, Pattern};
use dc_workloads::maildir::MaildirSim;
use dc_workloads::measure::latency_ns;
use dc_workloads::tree::{build_flat_dir, build_subtree, build_tree, Manifest, TreeSpec};
use dc_workloads::{apache, ops_per_sec};
use dcache_core::DcacheConfig;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

fn banner(title: &str) {
    println!("\n==== {title} ====");
}

// ---------------------------------------------------------------------
// Figure 1: fraction of execution time in path-based system calls.
// ---------------------------------------------------------------------

/// Figure 1: per-application fraction of runtime spent in path-based
/// syscalls (access/stat, open, chmod/chown, unlink) with a warm cache.
pub fn fig1(scale: Scale) {
    banner("Figure 1: % of execution time in path-based syscalls (warm cache)");
    let mut t = Table::new(&["application", "path-syscall %", "wall (ms)"]);
    let runs = run_apps(DcacheConfig::baseline(), scale, false);
    for r in runs {
        t.row(vec![
            r.name.to_string(),
            format!("{:.1}%", r.path_fraction * 100.0),
            format!("{:.1}", r.report.wall_ns as f64 / 1e6),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// Figure 2: stat latency across "kernel versions".
// ---------------------------------------------------------------------

/// Figure 2: `stat` latency of the 8-component path across the version
/// sweep (lock-walk ≈ pre-RCU kernels; baseline ≈ v3.14; optimized =
/// this design, −26% in the paper).
pub fn fig2(scale: Scale) {
    banner("Figure 2: stat latency across kernel generations (8-comp path)");
    let configs = [
        ("v2.6-like (locked walk)", DcacheConfig::legacy_lock_walk()),
        ("v3.14-like (optimistic walk)", DcacheConfig::baseline()),
        ("optimized (this design)", DcacheConfig::optimized()),
    ];
    let mut t = Table::new(&["kernel", "stat (µs)", "p50 (µs)", "p99 (µs)", "vs v3.14"]);
    let mut base = 0.0f64;
    for (name, config) in configs {
        let s = kernel_with_obs(config);
        lmbench::setup(&s.kernel, &s.proc).unwrap();
        // Discard setup-phase samples so the histogram covers only the
        // measured stat loop.
        s.kernel.reset_stats();
        let lat = lmbench::stat_latency(&s.kernel, &s.proc, Pattern::Comp8, scale.batches);
        if name.contains("v3.14") {
            base = lat.median_ns;
        }
        let rel = if base > 0.0 {
            gain_pct(base, lat.median_ns)
        } else {
            "-".to_string()
        };
        let (p50, p99) = s
            .kernel
            .obs()
            .obs()
            .map(|o| {
                let h = o.hist(OpClass::AccessStat).summary();
                (us(h.p50_ns as f64), us(h.p99_ns as f64))
            })
            .unwrap_or_else(|| ("-".to_string(), "-".to_string()));
        t.row(vec![name.to_string(), us(lat.median_ns), p50, p99, rel]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// Figure 3: principal components of lookup latency.
// ---------------------------------------------------------------------

/// Figure 3: where lookup time goes (initialization, permission checks,
/// path scanning & hashing, hash-table lookups, finalization), measured
/// by timing each mechanism in isolation and attributing the remainder
/// to init/finalize.
pub fn fig3(scale: Scale) {
    banner("Figure 3: principal lookup components (ns)");
    let paths: [(&str, Pattern); 4] = [
        ("1-comp", Pattern::Comp1),
        ("2-comp", Pattern::Comp2),
        ("4-comp", Pattern::Comp4),
        ("8-comp", Pattern::Comp8),
    ];
    let mut t = Table::new(&[
        "path",
        "config",
        "total",
        "hashing",
        "table",
        "permission",
        "init+final",
    ]);
    for (name, config) in config_pair() {
        let s = kernel_with(config.clone());
        lmbench::setup(&s.kernel, &s.proc).unwrap();
        for (label, pat) in paths {
            let total = lmbench::stat_latency(&s.kernel, &s.proc, pat, scale.batches).median_ns;
            let comps: Vec<&str> = pat.path().split('/').filter(|c| !c.is_empty()).collect();
            // Path scanning & hashing: the signature computation.
            let key = &s.kernel.dcache.key;
            let hashing = latency_ns(scale.batches, 4000, || {
                let sig = key.hash_components(comps.iter().map(|c| c.as_bytes()));
                std::hint::black_box(sig);
            })
            .median_ns;
            // Hash table lookups: one DLHT probe (optimized) or one
            // per-parent probe per component (unmodified).
            let table_ns = if config.fastpath {
                let sig = key.hash_components(comps.iter().map(|c| c.as_bytes()));
                let ns_id = s.proc.namespace().id;
                latency_ns(scale.batches, 4000, || {
                    std::hint::black_box(s.kernel.dcache.dlht_lookup(ns_id, &sig));
                })
                .median_ns
            } else {
                let mut chain = Vec::new();
                let mut d = s.proc.namespace().root_mount().root.clone();
                for c in &comps {
                    let next = s.kernel.dcache.d_lookup(&d, c).expect("warm chain");
                    chain.push((d.clone(), c.to_string()));
                    d = next;
                }
                latency_ns(scale.batches, 2000, || {
                    for (parent, name) in &chain {
                        std::hint::black_box(s.kernel.dcache.d_lookup(parent, name));
                    }
                })
                .median_ns
            };
            // Permission checking: memoized PCC probe (optimized) or one
            // LSM evaluation per directory (unmodified).
            let perm_ns = if config.fastpath {
                let sig = key.hash_components(comps.iter().map(|c| c.as_bytes()));
                let ns_id = s.proc.namespace().id;
                let dentry = s.kernel.dcache.dlht_lookup(ns_id, &sig).expect("warm");
                let cred = s.proc.cred();
                let pcc = s.kernel.dcache.pcc_for(&cred, ns_id);
                latency_ns(scale.batches, 4000, || {
                    std::hint::black_box(pcc.check(dentry.id(), dentry.seq()));
                })
                .median_ns
            } else {
                // Attribute snapshots of every directory on the path.
                let mut attrs = Vec::new();
                let mut prefix = String::from("");
                for c in &comps[..comps.len() - 1] {
                    prefix.push('/');
                    prefix.push_str(c);
                    attrs.push(s.kernel.stat(&s.proc, &prefix).unwrap());
                }
                let cred = s.proc.cred();
                latency_ns(scale.batches, 4000, || {
                    for a in &attrs {
                        let ctx = dc_cred::PermCtx {
                            attr: a,
                            path: None,
                        };
                        std::hint::black_box(s.kernel.security.permission(
                            &cred,
                            &ctx,
                            dc_cred::MAY_EXEC,
                        ))
                        .ok();
                    }
                })
                .median_ns
            };
            let rest = (total - hashing - table_ns - perm_ns).max(0.0);
            t.row(vec![
                label.to_string(),
                name.to_string(),
                format!("{total:.0}"),
                format!("{hashing:.0}"),
                format!("{table_ns:.0}"),
                format!("{perm_ns:.0}"),
                format!("{rest:.0}"),
            ]);
        }
    }
    t.print();
}

// ---------------------------------------------------------------------
// Figure 3 (layout attribution): the §13 memory-layout changes applied
// cumulatively, each stage re-measured with the fig-3 decomposition.
// ---------------------------------------------------------------------

/// One measured stage of the cumulative layout ablation.
pub struct LayoutStageRow {
    /// Stage name (the layout change switched on at this stage).
    pub name: &'static str,
    /// Warm `stat` median, ns (4-component path).
    pub total: f64,
    /// Path scanning & hashing component, ns.
    pub hashing: f64,
    /// Hash-table lookup component, ns.
    pub table: f64,
    /// Permission-check component, ns.
    pub permission: f64,
    /// Attributed remainder (initialization + finalization), ns.
    pub init_final: f64,
}

/// The four hot-path layout changes (DESIGN.md §13), applied
/// cumulatively on top of the otherwise-optimized configuration:
/// pre-layout (all four off) → +wide sighash → +open-addressed DLHT →
/// +snap slab → +scratch arena (= today's default).
fn layout_stages() -> [(&'static str, DcacheConfig); 5] {
    let pre = DcacheConfig::optimized().pre_layout();
    [
        ("pre_layout", pre.clone()),
        ("wide_sighash", pre.clone().with_sighash_wide(true)),
        (
            "open_dlht",
            pre.clone()
                .with_sighash_wide(true)
                .with_open_addressed(true),
        ),
        (
            "snap_slab",
            pre.with_sighash_wide(true)
                .with_open_addressed(true)
                .with_snap_slab(true),
        ),
        ("scratch_arena", DcacheConfig::optimized()),
    ]
}

/// Measures the fig-3 decomposition of a warm 4-component `stat` for
/// one (fastpath) stage: total plus the isolated hashing / table /
/// permission mechanisms; the remainder is attributed to init+final.
fn measure_layout_stage(name: &'static str, s: &Setup, batches: usize) -> LayoutStageRow {
    let pat = Pattern::Comp4;
    let total = lmbench::stat_latency(&s.kernel, &s.proc, pat, batches).median_ns;
    let comps: Vec<&str> = pat.path().split('/').filter(|c| !c.is_empty()).collect();
    let key = &s.kernel.dcache.key;
    let hashing = latency_ns(batches, 4000, || {
        let sig = key.hash_components(comps.iter().map(|c| c.as_bytes()));
        std::hint::black_box(sig);
    })
    .median_ns;
    let sig = key.hash_components(comps.iter().map(|c| c.as_bytes()));
    let ns_id = s.proc.namespace().id;
    let table = latency_ns(batches, 4000, || {
        std::hint::black_box(s.kernel.dcache.dlht_lookup(ns_id, &sig));
    })
    .median_ns;
    let dentry = s.kernel.dcache.dlht_lookup(ns_id, &sig).expect("warm");
    let cred = s.proc.cred();
    let pcc = s.kernel.dcache.pcc_for(&cred, ns_id);
    let permission = latency_ns(batches, 4000, || {
        std::hint::black_box(pcc.check(dentry.id(), dentry.seq()));
    })
    .median_ns;
    let init_final = (total - hashing - table - permission).max(0.0);
    LayoutStageRow {
        name,
        total,
        hashing,
        table,
        permission,
        init_final,
    }
}

/// Runs the cumulative layout ablation and returns the per-stage rows,
/// pre-layout first. Shared by [`fig3_layout`] and the `--metrics-out`
/// export so both report the same numbers.
pub fn layout_rows(scale: Scale) -> Vec<LayoutStageRow> {
    layout_stages()
        .into_iter()
        .map(|(name, config)| {
            let s = kernel_with(config);
            lmbench::setup(&s.kernel, &s.proc).unwrap();
            // Warm the 4-component point thoroughly before measuring.
            for _ in 0..64 {
                s.kernel.stat(&s.proc, Pattern::Comp4.path()).unwrap();
            }
            measure_layout_stage(name, &s, scale.batches)
        })
        .collect()
}

/// Converts the layout rows to a counters section for the unified
/// metrics export (`--metrics-out`), nanoseconds rounded to integers.
pub fn layout_attribution_section(rows: &[LayoutStageRow]) -> dc_obs::Section {
    let mut counters = Vec::new();
    for r in rows {
        for (k, v) in [
            ("total_ns", r.total),
            ("hashing_ns", r.hashing),
            ("table_ns", r.table),
            ("permission_ns", r.permission),
            ("init_final_ns", r.init_final),
        ] {
            counters.push((format!("{}.{k}", r.name), v.round() as u64));
        }
    }
    dc_obs::Section {
        name: "layout_attribution".to_string(),
        counters,
    }
}

/// Figure 3 companion: per-stage attribution of the §13 layout changes
/// (each row shows which component its layout change moved). Persists
/// the table to `BENCH_fig3.json`.
pub fn fig3_layout(scale: Scale) {
    banner("Figure 3 (layout attribution): cumulative §13 stages, 4-comp warm stat (ns)");
    let rows = layout_rows(scale);
    let mut t = Table::new(&[
        "stage",
        "total",
        "Δ total",
        "hashing",
        "table",
        "permission",
        "init+final",
    ]);
    let mut prev: Option<f64> = None;
    for r in &rows {
        let delta = prev.map_or("-".to_string(), |p| format!("{:+.0}", r.total - p));
        prev = Some(r.total);
        t.row(vec![
            r.name.to_string(),
            format!("{:.0}", r.total),
            delta,
            format!("{:.0}", r.hashing),
            format!("{:.0}", r.table),
            format!("{:.0}", r.permission),
            format!("{:.0}", r.init_final),
        ]);
    }
    t.print();
    let json_path = "BENCH_fig3.json";
    match write_fig3_json(json_path, &rows) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
    }
}

/// Serializes the layout-attribution rows as JSON (hand-rolled; the
/// workspace carries no serialization dependency).
fn write_fig3_json(path: &str, rows: &[LayoutStageRow]) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"fig3_layout\",\n  \"unit\": \"ns\",\n");
    out.push_str("  \"path\": \"4-comp\",\n  \"stages\": [\n");
    let mut prev: Option<f64> = None;
    for (i, r) in rows.iter().enumerate() {
        let delta = prev.map_or(0.0, |p| r.total - p);
        prev = Some(r.total);
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"total\": {:.1}, \"delta_total\": {:.1}, \
             \"hashing\": {:.1}, \"table\": {:.1}, \"permission\": {:.1}, \
             \"init_final\": {:.1} }}{comma}\n",
            r.name, r.total, delta, r.hashing, r.table, r.permission, r.init_final
        ));
    }
    out.push_str("  ]\n}\n");
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

// ---------------------------------------------------------------------
// Figure 6: lat_syscall stat/open across path patterns.
// ---------------------------------------------------------------------

/// Figure 6: `stat` and `open` latency for every path pattern, under the
/// unmodified kernel, the optimized kernel, the always-miss synthetic,
/// and (for dot-dot patterns) Plan 9 lexical semantics.
pub fn fig6(scale: Scale) {
    banner("Figure 6: stat/open latency by path pattern (µs)");
    let configs = [
        ("unmodified", DcacheConfig::baseline()),
        ("optimized", DcacheConfig::optimized()),
        ("fastmiss", DcacheConfig::optimized_always_miss()),
        ("lexical*", DcacheConfig::optimized_lexical()),
    ];
    let mut setups: Vec<(&str, Setup)> = Vec::new();
    for (name, config) in configs {
        let s = kernel_with(config);
        lmbench::setup(&s.kernel, &s.proc).unwrap();
        setups.push((name, s));
    }
    let mut t = Table::new(&[
        "pattern",
        "stat unmod",
        "stat opt",
        "stat miss",
        "stat lex*",
        "open unmod",
        "open opt",
    ]);
    for pat in Pattern::all() {
        let mut stat_cells = Vec::new();
        for (_, s) in &setups {
            let lat = lmbench::stat_latency(&s.kernel, &s.proc, pat, scale.batches);
            stat_cells.push(us(lat.median_ns));
        }
        let open_unmod =
            lmbench::open_latency(&setups[0].1.kernel, &setups[0].1.proc, pat, scale.batches);
        let open_opt =
            lmbench::open_latency(&setups[1].1.kernel, &setups[1].1.proc, pat, scale.batches);
        t.row(vec![
            pat.label().to_string(),
            stat_cells[0].clone(),
            stat_cells[1].clone(),
            stat_cells[2].clone(),
            stat_cells[3].clone(),
            us(open_unmod.median_ns),
            us(open_opt.median_ns),
        ]);
    }
    t.print();
    // §6.1 *at() variants.
    let mut t2 = Table::new(&["*at() variant", "unmod (µs)", "opt (µs)", "gain"]);
    let fu =
        lmbench::fstatat_latency(&setups[0].1.kernel, &setups[0].1.proc, scale.batches).unwrap();
    let fo =
        lmbench::fstatat_latency(&setups[1].1.kernel, &setups[1].1.proc, scale.batches).unwrap();
    t2.row(vec![
        "fstatat 1-comp".to_string(),
        us(fu.median_ns),
        us(fo.median_ns),
        gain_pct(fu.median_ns, fo.median_ns),
    ]);
    t2.print();
}

// ---------------------------------------------------------------------
// Figure 7: chmod/rename latency vs cached subtree size.
// ---------------------------------------------------------------------

/// Figure 7: directory `chmod`/`rename` latency as the cached subtree
/// grows — constant-time on the unmodified kernel, linear with the
/// shootdown on the optimized one.
pub fn fig7(scale: Scale) {
    banner("Figure 7: chmod/rename latency vs subtree size (µs)");
    let shapes: Vec<(&str, usize, usize)> = vec![
        ("single file", 0, 1),
        ("depth=1, 10 files", 1, 10),
        ("depth=2, 100 files", 2, 100),
        ("depth=3, 1000 files", 3, 1000.min(scale.max_subtree)),
        ("depth=4, 10000 files", 4, scale.max_subtree),
    ];
    let mut t = Table::new(&[
        "shape",
        "chmod unmod",
        "chmod opt",
        "slowdown",
        "rename unmod",
        "rename opt",
        "slowdown",
    ]);
    let mut results: Vec<Vec<f64>> = vec![Vec::new(); shapes.len()];
    for (_, config) in config_pair() {
        let s = kernel_with(config);
        for (i, (_, depth, files)) in shapes.iter().enumerate() {
            let root = format!("/t{i}");
            if *depth == 0 {
                // A single file, not a directory.
                let fd = s
                    .kernel
                    .open(&s.proc, &root, OpenFlags::create(), 0o644)
                    .unwrap();
                s.kernel.close(&s.proc, fd).unwrap();
            } else {
                build_subtree(&s.kernel, &s.proc, &root, *depth, *files).unwrap();
                // Populate the cache over the whole subtree.
                let _ = dc_workloads::apps::updatedb(&s.kernel, &s.proc, &root).unwrap();
            }
            let mut mode = 0o755u16;
            let chmod = latency_ns(scale.batches.max(3), 20, || {
                mode ^= 0o011;
                s.kernel.chmod(&s.proc, &root, mode).unwrap();
            })
            .median_ns;
            let alt = format!("{root}.moved");
            let mut flip = false;
            let rename = latency_ns(scale.batches.max(3), 10, || {
                let (from, to) = if flip { (&alt, &root) } else { (&root, &alt) };
                s.kernel.rename(&s.proc, from, to).unwrap();
                flip = !flip;
            })
            .median_ns;
            // Leave the tree at its original name for the next config.
            if flip {
                s.kernel.rename(&s.proc, &alt, &root).unwrap();
            }
            results[i].push(chmod);
            results[i].push(rename);
        }
    }
    for (i, (label, _, _)) in shapes.iter().enumerate() {
        let r = &results[i];
        // r = [chmod_unmod, rename_unmod, chmod_opt, rename_opt]
        t.row(vec![
            label.to_string(),
            us(r[0]),
            us(r[2]),
            format!("{:.0}%", (r[2] / r[0] - 1.0) * 100.0),
            us(r[1]),
            us(r[3]),
            format!("{:.0}%", (r[3] / r[1] - 1.0) * 100.0),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// Figure 8: lookup scalability across threads.
// ---------------------------------------------------------------------

/// Figure 8: `stat`/`open` latency of the same path as reader threads
/// scale. Three walkers: unmodified, opt-locked (all optimizations but
/// reads still take the per-bucket/per-field locks — the before picture
/// for the lock-free read path), and optimized (epoch + seqlock reads).
/// Latency should stay flat, with the optimized walker strictly below.
///
/// Also records the raw per-config latency matrix to `BENCH_fig8.json`
/// in the working directory.
pub fn fig8(scale: Scale) {
    banner("Figure 8: stat/open latency vs threads (µs)");
    let configs = config_triple();
    let mut t = Table::new(&[
        "threads",
        "stat unmod",
        "open unmod",
        "stat opt-locked",
        "open opt-locked",
        "stat opt",
        "open opt",
    ]);
    let threads: Vec<usize> = (1..=scale.max_threads).collect();
    let mut rows: Vec<Vec<String>> = threads.iter().map(|n| vec![n.to_string()]).collect();
    // lat[config][op][thread-index], nanoseconds per op.
    let mut lats: Vec<[Vec<f64>; 2]> = Vec::new();
    for (_, config) in &configs {
        let s = kernel_with(config.clone());
        lmbench::setup(&s.kernel, &s.proc).unwrap();
        let path = Pattern::Comp4.path();
        // Warm.
        for _ in 0..64 {
            s.kernel.stat(&s.proc, path).unwrap();
        }
        let mut per_op: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
        for (i, &n) in threads.iter().enumerate() {
            for (oi, op) in ["stat", "open"].into_iter().enumerate() {
                let lat = parallel_latency(&s, n, scale.duration_ms, |k, p| match op {
                    "stat" => {
                        k.stat(p, path).unwrap();
                    }
                    _ => {
                        if let Ok(fd) = k.open(p, path, OpenFlags::read_only(), 0) {
                            let _ = k.close(p, fd);
                        }
                    }
                });
                rows[i].push(us(lat));
                per_op[oi].push(lat);
            }
        }
        lats.push(per_op);
    }
    for r in rows {
        t.row(r);
    }
    t.print();
    let json_path = "BENCH_fig8.json";
    match write_fig8_json(json_path, &threads, &configs, &lats) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
    }
}

/// Serializes the fig8 latency matrix as JSON (hand-rolled; the
/// workspace carries no serialization dependency).
fn write_fig8_json(
    path: &str,
    threads: &[usize],
    configs: &[(&'static str, DcacheConfig); 3],
    lats: &[[Vec<f64>; 2]],
) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"fig8\",\n  \"unit\": \"ns_per_op\",\n");
    let tl: Vec<String> = threads.iter().map(|n| n.to_string()).collect();
    out.push_str(&format!("  \"threads\": [{}],\n", tl.join(", ")));
    out.push_str("  \"configs\": {\n");
    for (ci, ((name, _), per_op)) in configs.iter().zip(lats).enumerate() {
        out.push_str(&format!("    \"{name}\": {{\n"));
        for (oi, op) in ["stat", "open"].into_iter().enumerate() {
            let vals: Vec<String> = per_op[oi].iter().map(|v| format!("{v:.1}")).collect();
            let comma = if oi == 0 { "," } else { "" };
            out.push_str(&format!("      \"{op}\": [{}]{comma}\n", vals.join(", ")));
        }
        let comma = if ci + 1 < configs.len() { "," } else { "" };
        out.push_str(&format!("    }}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

/// Mean per-op latency with `n` concurrent threads hammering `op`.
fn parallel_latency(
    s: &Setup,
    n: usize,
    duration_ms: u64,
    op: impl Fn(&Kernel, &Process) + Sync,
) -> f64 {
    let total_ops = std::sync::atomic::AtomicU64::new(0);
    let kernel = &s.kernel;
    let procs: Vec<Arc<Process>> = (0..n).map(|_| kernel.spawn(&s.proc)).collect();
    let t0 = Instant::now();
    let budget = std::time::Duration::from_millis(duration_ms);
    std::thread::scope(|sc| {
        for p in &procs {
            sc.spawn(|| {
                let mut ops = 0u64;
                while t0.elapsed() < budget {
                    for _ in 0..64 {
                        op(kernel, p);
                    }
                    ops += 64;
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
    });
    let elapsed = t0.elapsed().as_nanos() as f64;
    let ops = total_ops.load(Ordering::Relaxed).max(1) as f64;
    elapsed * n as f64 / ops
}

// ---------------------------------------------------------------------
// Figure 9: readdir and mkstemp latency vs directory size.
// ---------------------------------------------------------------------

/// Figure 9: `readdir` latency (log-scale in the paper) and `mkstemp`
/// latency against directory size; completeness caching removes the
/// per-listing file-system call (§5.1).
pub fn fig9(scale: Scale) {
    banner("Figure 9: readdir/mkstemp latency vs directory size (µs)");
    let sizes: Vec<usize> = [10usize, 100, 1000, 10000]
        .into_iter()
        .filter(|&s| s <= scale.max_dir)
        .collect();
    let mut t = Table::new(&[
        "entries",
        "readdir unmod",
        "readdir opt",
        "gain",
        "mkstemp unmod",
        "mkstemp opt",
    ]);
    let mut cells: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for (_, config) in config_pair() {
        let s = kernel_with(config);
        for (i, &n) in sizes.iter().enumerate() {
            let dir = format!("/d{n}");
            build_flat_dir(&s.kernel, &s.proc, &dir, n).unwrap();
            // Warm: full listings (set DIR_COMPLETE when optimized).
            let _ = s.kernel.list_dir(&s.proc, &dir).unwrap();
            let _ = s.kernel.list_dir(&s.proc, &dir).unwrap();
            let readdir = latency_ns(scale.batches.max(3), (20_000 / n).max(5), || {
                std::hint::black_box(s.kernel.list_dir(&s.proc, &dir).unwrap());
            })
            .median_ns;
            let mkstemp = latency_ns(scale.batches.max(3), 50, || {
                let (fd, name) = s.kernel.mkstemp(&s.proc, &dir, "tmp-").unwrap();
                s.kernel.close(&s.proc, fd).unwrap();
                s.kernel.unlink(&s.proc, &format!("{dir}/{name}")).unwrap();
            })
            .median_ns;
            cells[i].push(readdir);
            cells[i].push(mkstemp);
        }
    }
    for (i, &n) in sizes.iter().enumerate() {
        let c = &cells[i];
        t.row(vec![
            n.to_string(),
            us(c[0]),
            us(c[2]),
            gain_pct(c[0], c[2]),
            us(c[1]),
            us(c[3]),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// Figure 10: Dovecot maildir throughput.
// ---------------------------------------------------------------------

/// Figure 10: maildir mark/unmark throughput vs mailbox size; the
/// optimized cache serves the per-mark directory re-read from memory.
pub fn fig10(scale: Scale) {
    banner("Figure 10: Dovecot maildir throughput (ops/sec)");
    let full_sizes = [500usize, 1000, 2000, 2500, 3000];
    let sizes: Vec<usize> = full_sizes
        .iter()
        .map(|&s| if scale.max_dir >= 10000 { s } else { s / 10 })
        .collect();
    let mut t = Table::new(&["mailbox size", "unmodified", "optimized", "gain"]);
    let mut rates: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for (_, config) in config_pair() {
        // Calibrated substrate: charge 25µs per metadata page access so
        // the warm-cache fs readdir cost matches the paper's measured
        // ext4 baseline (Figure 9: 284µs per 1000-entry listing). memfs
        // alone is ~5x faster than that testbed, which would mask the
        // benefit of serving listings without any FS call. Both
        // configurations run on the identical substrate; see
        // EXPERIMENTS.md for the calibration.
        let s = kernel_with_disk_full(config, 50_000, 50_000, 25_000);
        for (i, &n) in sizes.iter().enumerate() {
            let root = format!("/mail{i}");
            let mut sim = MaildirSim::provision(&s.kernel, &s.proc, &root, 10, n, 42).unwrap();
            // Warm one round.
            for _ in 0..20 {
                sim.mark_one(&s.kernel, &s.proc).unwrap();
            }
            let rate = sim.run(&s.kernel, &s.proc, scale.duration_ms).unwrap();
            rates[i].push(rate);
        }
    }
    for (i, &n) in sizes.iter().enumerate() {
        let (unmod, opt) = (rates[i][0], rates[i][1]);
        t.row(vec![
            n.to_string(),
            format!("{unmod:.0}"),
            format!("{opt:.0}"),
            format!("{:+.1}%", (opt / unmod - 1.0) * 100.0),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// Tables 1 & 2: application benchmarks, warm and cold cache.
// ---------------------------------------------------------------------

/// One measured application run.
pub struct AppRun {
    /// Row label.
    pub name: &'static str,
    /// The emulator's report.
    pub report: AppReport,
    /// Cache hit rate during the measured run (fraction, 0..=1).
    pub hit_rate: f64,
    /// Negative-dentry answer rate (fraction, 0..=1).
    pub neg_rate: f64,
    /// Fraction of wall time inside path-based syscalls (Figure 1).
    pub path_fraction: f64,
}

/// Runs the full application suite under `config`; `cold` drops every
/// cache (and uses a latency-charging disk) before each measured run.
pub fn run_apps(config: DcacheConfig, scale: Scale, cold: bool) -> Vec<AppRun> {
    let s = if cold {
        kernel_with_disk(config, 15_000, 15_000)
    } else {
        kernel_with(config)
    };
    let k = &s.kernel;
    let p = &s.proc;
    let spec = TreeSpec::source_like(scale.tree_files);
    let m = build_tree(k, p, "/src", &spec).unwrap();
    git_write_index(k, p, &m, "/src").unwrap();
    let mut out = Vec::new();
    // Best-of-N per application: single millisecond-scale runs are too
    // noisy to compare configurations. Counters reflect the final rep.
    let reps: usize = if cold { 2 } else { 3 };
    let measured =
        |name: &'static str, out: &mut Vec<AppRun>, run: &mut dyn FnMut(usize) -> AppReport| {
            let mut best: Option<AppReport> = None;
            for rep in 0..reps {
                if cold {
                    k.drop_caches();
                }
                k.reset_stats();
                let report = run(rep);
                if best.as_ref().is_none_or(|b| report.wall_ns < b.wall_ns) {
                    best = Some(report);
                }
            }
            let report = best.expect("at least one rep");
            let stats = &k.dcache.stats;
            let path_ns = k.timing.path_syscall_ns();
            out.push(AppRun {
                name,
                hit_rate: stats.hit_rate(),
                neg_rate: stats.neg_hit_rate(),
                path_fraction: path_ns as f64 / report.wall_ns.max(1) as f64,
                report,
            });
        };

    // find: warm pass, then measured.
    let _ = find_name(k, p, "/src", "core").unwrap();
    measured("find", &mut out, &mut |_| {
        find_name(k, p, "/src", "core").unwrap().0
    });

    // tar: a fresh destination per rep.
    let _ = tar_extract(k, p, &m, "/src", "/unpack-warm").unwrap();
    measured("tar xzf", &mut out, &mut |rep| {
        tar_extract(k, p, &m, "/src", &format!("/unpack-{rep}")).unwrap()
    });

    // rm -r: remove the trees tar just produced (walk first to warm).
    let _ = find_name(k, p, "/unpack-warm", "x").unwrap();
    let mut rm_targets: Vec<String> = (0..reps).map(|r| format!("/unpack-{r}")).collect();
    rm_targets.push("/unpack-warm".to_string());
    measured("rm -r", &mut out, &mut |rep| {
        rm_r(k, p, &rm_targets[rep]).unwrap()
    });

    // make: first build warms and creates objects; measured rebuilds.
    let _ = make_build(k, p, &m, "/src").unwrap();
    measured("make", &mut out, &mut |_| {
        make_build(k, p, &m, "/src").unwrap()
    });

    // du -s.
    let _ = du_s(k, p, "/src").unwrap();
    measured("du -s", &mut out, &mut |_| du_s(k, p, "/src").unwrap().0);

    // updatedb.
    let _ = dc_workloads::apps::updatedb(k, p, "/src").unwrap();
    measured("updatedb", &mut out, &mut |_| {
        dc_workloads::apps::updatedb(k, p, "/src").unwrap().0
    });

    // git status / git diff.
    let _ = git_status(k, p, &m, "/src").unwrap();
    measured("git status", &mut out, &mut |_| {
        git_status(k, p, &m, "/src").unwrap()
    });
    let _ = git_diff(k, p, &m, "/src").unwrap();
    measured("git diff", &mut out, &mut |_| {
        git_diff(k, p, &m, "/src").unwrap()
    });
    out
}

fn app_table(title: &str, scale: Scale, cold: bool) {
    banner(title);
    let mut t = Table::new(&[
        "application",
        "l",
        "#",
        "unmod (s)",
        "hit%",
        "neg%",
        "opt (s)",
        "gain",
    ]);
    let unmod = run_apps(DcacheConfig::baseline(), scale, cold);
    let opt = run_apps(DcacheConfig::optimized(), scale, cold);
    for (u, o) in unmod.iter().zip(&opt) {
        t.row(vec![
            u.name.to_string(),
            format!("{:.0}", u.report.avg_path_len()),
            format!("{:.0}", u.report.avg_components()),
            format!("{:.4}", u.report.seconds()),
            pct(u.hit_rate),
            pct(u.neg_rate),
            format!("{:.4}", o.report.seconds()),
            gain_pct(u.report.seconds(), o.report.seconds()),
        ]);
    }
    t.print();
}

/// Table 1: warm-cache application benchmarks.
pub fn table1(scale: Scale) {
    app_table("Table 1: application benchmarks, warm cache", scale, false);
}

/// Table 2: cold-cache application benchmarks.
pub fn table2(scale: Scale) {
    app_table("Table 2: application benchmarks, cold cache", scale, true);
}

// ---------------------------------------------------------------------
// Table 3: Apache directory-listing throughput.
// ---------------------------------------------------------------------

/// Table 3: generated-directory-listing requests per second.
pub fn table3(scale: Scale) {
    banner("Table 3: Apache directory-listing throughput (req/s)");
    let sizes: Vec<usize> = [10usize, 100, 1000, 10000]
        .into_iter()
        .filter(|&s| s <= scale.max_dir)
        .collect();
    let mut t = Table::new(&["files", "unmodified", "optimized", "gain"]);
    let mut rates: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for (_, config) in config_pair() {
        let s = kernel_with(config);
        for (i, &n) in sizes.iter().enumerate() {
            let dir = format!("/www{n}");
            build_flat_dir(&s.kernel, &s.proc, &dir, n).unwrap();
            let _ = apache::listing_request(&s.kernel, &s.proc, &dir).unwrap();
            let rate = apache::serve(&s.kernel, &s.proc, &dir, scale.duration_ms).unwrap();
            rates[i].push(rate);
        }
    }
    for (i, &n) in sizes.iter().enumerate() {
        let (unmod, opt) = (rates[i][0], rates[i][1]);
        t.row(vec![
            n.to_string(),
            format!("{unmod:.0}"),
            format!("{opt:.0}"),
            format!("{:+.1}%", (opt / unmod - 1.0) * 100.0),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// Table 4: lines of code.
// ---------------------------------------------------------------------

/// Table 4 analog: lines of Rust per crate/role in this repository.
pub fn table4() {
    banner("Table 4: lines of code by component");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root");
    let areas: [(&str, &str); 9] = [
        ("crates/core", "the paper's dcache (contribution)"),
        ("crates/vfs", "VFS + walkers (contribution + substrate)"),
        ("crates/sighash", "path signatures (contribution)"),
        ("crates/fs", "file systems (substrate)"),
        ("crates/blockdev", "block device + page cache (substrate)"),
        ("crates/cred", "credentials + LSMs (substrate)"),
        ("crates/workloads", "workload generators (evaluation)"),
        ("crates/bench", "benchmark harness (evaluation)"),
        ("tests", "integration tests"),
    ];
    let mut t = Table::new(&["area", "role", "rust LoC"]);
    let mut total = 0usize;
    for (area, role) in areas {
        let loc = count_rs_lines(&root.join(area));
        total += loc;
        t.row(vec![area.to_string(), role.to_string(), loc.to_string()]);
    }
    t.row(vec!["TOTAL".to_string(), String::new(), total.to_string()]);
    t.print();
}

fn count_rs_lines(dir: &std::path::Path) -> usize {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for e in entries.flatten() {
        let path = e.path();
        if path.is_dir() {
            total += count_rs_lines(&path);
        } else if path.extension().is_some_and(|x| x == "rs") {
            if let Ok(content) = std::fs::read_to_string(&path) {
                total += content.lines().count();
            }
        }
    }
    total
}

// ---------------------------------------------------------------------
// §6.1 space overhead.
// ---------------------------------------------------------------------

/// The §6.1 space-overhead report: dentry size, PCC/DLHT footprints, and
/// DLHT bucket occupancy (§6.5).
pub fn space(scale: Scale) {
    banner("Space overhead (§6.1) and DLHT occupancy (§6.5)");
    let s = kernel_with(DcacheConfig::optimized());
    let m = build_tree(
        &s.kernel,
        &s.proc,
        "/src",
        &TreeSpec::source_like(scale.tree_files),
    )
    .unwrap();
    warm_all(&s, &m);
    let report = s.kernel.dcache.space_report();
    println!("{report}");
    let occ = s.kernel.dcache.dlht_occupancy();
    let total: u64 = occ.iter().sum();
    println!(
        "DLHT buckets: {} empty ({:.0}%), {} with 1, {} with 2, {} with 3+",
        occ[0],
        occ[0] as f64 / total.max(1) as f64 * 100.0,
        occ[1],
        occ[2],
        occ[3]
    );
    space_per_ns(scale);
}

/// The §14 multi-tenant addendum to the space report: provision a small
/// fleet of namespaces on one kernel (sharded tenant DLHTs + per-cred
/// PCCs) and print the top-K tenants by resident bytes.
fn space_per_ns(scale: Scale) {
    const TOP_K: usize = 8;
    let tenants = if scale.duration_ms > 100 { 64 } else { 24 };
    let files = 16usize;
    banner("Per-namespace footprint (§14): top tenants by resident bytes");
    let cfg = DcacheConfig::optimized()
        .with_tenant_buckets(1 << 8)
        .with_pcc_max_resident(1024);
    let s = kernel_with(cfg);
    let k = &s.kernel;
    k.mkdir(&s.proc, "/tenants", 0o755).unwrap();
    let mut procs = Vec::with_capacity(tenants);
    for t in 0..tenants {
        let proc = k.spawn(&s.proc);
        let ns = k.unshare_ns(&proc).expect("unshare");
        let dir = format!("/tenants/t{t}");
        k.mkdir(&proc, &dir, 0o755).unwrap();
        // Tenant populations are deliberately skewed (tenant t owns
        // t%4+1 quarters of `files`) so the top-K ordering is visible.
        let count = files * (t % 4 + 1) / 4;
        let mut paths = Vec::with_capacity(count);
        for j in 0..count {
            let p = format!("{dir}/f{j}");
            let fd = k.open(&proc, &p, OpenFlags::create(), 0o644).unwrap();
            k.close(&proc, fd).unwrap();
            paths.push(p);
        }
        let cred = Cred::user(2000 + t as u32, 200);
        k.chown(&proc, &dir, Some(cred.uid), Some(200)).unwrap();
        proc.set_cred(cred);
        for p in &paths {
            let _ = k.stat(&proc, p);
        }
        procs.push((ns.id, proc, paths));
    }
    let hits: std::collections::HashMap<u64, (u64, u64)> = k
        .dcache
        .ns_hit_stats()
        .into_iter()
        .map(|(ns, h, m)| (ns, (h, m)))
        .collect();
    let mut rows: Vec<(u64, u64, u64, usize, u64)> = k
        .dcache
        .ns_footprints()
        .into_iter()
        .map(|(ns, fp)| {
            let (pccs, pcc_bytes) = k.dcache.pcc_stats_for_ns(ns);
            (ns, fp.total_bytes() as u64, fp.entries, pccs, pcc_bytes)
        })
        .collect();
    rows.sort_by(|a, b| (b.1 + b.4).cmp(&(a.1 + a.4)).then(a.0.cmp(&b.0)));
    let mut t = Table::new(&[
        "ns",
        "dlht bytes",
        "entries",
        "dlht hits",
        "dlht miss",
        "pccs",
        "pcc bytes",
        "total",
    ]);
    for &(ns, dlht_bytes, entries, pccs, pcc_bytes) in rows.iter().take(TOP_K) {
        let (h, m) = hits.get(&ns).copied().unwrap_or((0, 0));
        t.row(vec![
            if ns == 0 {
                "0 (init)".into()
            } else {
                ns.to_string()
            },
            dlht_bytes.to_string(),
            entries.to_string(),
            h.to_string(),
            m.to_string(),
            pccs.to_string(),
            pcc_bytes.to_string(),
            (dlht_bytes + pcc_bytes).to_string(),
        ]);
    }
    t.print();
    println!(
        "{} namespaces, {} DLHT tables, {} resident PCCs (showing top {TOP_K})",
        k.namespace_count(),
        k.dcache.dlht_count(),
        k.dcache.resident_pccs()
    );
    drop(procs);
}

fn warm_all(s: &Setup, m: &Manifest) {
    for f in &m.files {
        let _ = s.kernel.stat(&s.proc, f);
    }
}

// ---------------------------------------------------------------------
// Ablations (design-choice benches promised by DESIGN.md).
// ---------------------------------------------------------------------

/// Ablation: each optimization toggled off independently, measured on a
/// mixed lookup workload (stat hot paths + misses + readdir).
pub fn ablation(scale: Scale) {
    banner("Ablation: per-feature contribution (mixed workload, µs/op)");
    let variants: Vec<(&str, DcacheConfig)> = vec![
        ("baseline", DcacheConfig::baseline()),
        ("full optimized", DcacheConfig::optimized()),
        (
            "no fastpath",
            DcacheConfig {
                fastpath: false,
                ..DcacheConfig::optimized()
            },
        ),
        (
            "no completeness",
            DcacheConfig {
                dir_completeness: false,
                ..DcacheConfig::optimized()
            },
        ),
        (
            "no deep negatives",
            DcacheConfig {
                deep_negative: false,
                ..DcacheConfig::optimized()
            },
        ),
        (
            "no neg-on-unlink",
            DcacheConfig {
                neg_on_unlink: false,
                ..DcacheConfig::optimized()
            },
        ),
    ];
    let mut t = Table::new(&["variant", "µs/op", "vs optimized"]);
    let mut opt_lat = 0.0;
    let mut rows = Vec::new();
    for (name, config) in variants {
        let s = kernel_with(config);
        lmbench::setup(&s.kernel, &s.proc).unwrap();
        build_flat_dir(&s.kernel, &s.proc, "/abl", 200).unwrap();
        let _ = s.kernel.list_dir(&s.proc, "/abl").unwrap();
        let mut i = 0usize;
        let rate = ops_per_sec(scale.duration_ms, || {
            i = i.wrapping_add(1);
            match i % 4 {
                0 => {
                    let _ = s.kernel.stat(&s.proc, Pattern::Comp4.path());
                }
                1 => {
                    let _ = s.kernel.stat(&s.proc, Pattern::NegF.path());
                }
                2 => {
                    let _ = s.kernel.stat(&s.proc, "/abl/f000050");
                }
                _ => {
                    let _ = s.kernel.list_dir(&s.proc, "/abl");
                }
            }
        });
        let us_per_op = 1e6 / rate;
        if name == "full optimized" {
            opt_lat = us_per_op;
        }
        rows.push((name, us_per_op));
    }
    for (name, lat) in rows {
        t.row(vec![
            name.to_string(),
            format!("{lat:.2}"),
            if opt_lat > 0.0 {
                format!("{:+.1}%", (lat / opt_lat - 1.0) * 100.0)
            } else {
                "-".to_string()
            },
        ]);
    }
    t.print();
}

/// §6.3's PCC-sensitivity observation: running `updatedb` over a tree
/// whose hot directory set overflows the PCC cuts the gain (the paper
/// measures 29% → 16.5% when the tree is twice the PCC's reach).
pub fn pcc_sensitivity(scale: Scale) {
    banner("PCC sensitivity: updatedb gain vs PCC size (§6.3)");
    let tree = scale.tree_files.max(800);
    let mut t = Table::new(&["PCC size", "updatedb (ms)", "vs unmod", "pcc hit rate"]);
    // Baseline reference time.
    let best_of = |s: &Setup| -> f64 {
        let mut best = f64::MAX;
        for _ in 0..5 {
            let (r, _) = dc_workloads::apps::updatedb(&s.kernel, &s.proc, "/usr").unwrap();
            best = best.min(r.wall_ns as f64 / 1e6);
        }
        best
    };
    let base_ms = {
        let s = kernel_with(DcacheConfig::baseline());
        build_tree(&s.kernel, &s.proc, "/usr", &TreeSpec::source_like(tree)).unwrap();
        let _ = dc_workloads::apps::updatedb(&s.kernel, &s.proc, "/usr").unwrap();
        best_of(&s)
    };
    t.row(vec![
        "(baseline)".into(),
        format!("{base_ms:.2}"),
        "-".into(),
        "-".into(),
    ]);
    for pcc_bytes in [64 * 1024usize, 8 * 1024, 2 * 1024] {
        let config = DcacheConfig {
            pcc_bytes,
            ..DcacheConfig::optimized()
        };
        let s = kernel_with(config);
        build_tree(&s.kernel, &s.proc, "/usr", &TreeSpec::source_like(tree)).unwrap();
        let _ = dc_workloads::apps::updatedb(&s.kernel, &s.proc, "/usr").unwrap();
        let cred = s.proc.cred();
        let pcc = s.kernel.dcache.pcc_for(&cred, s.proc.namespace().id);
        pcc.reset_stats();
        let ms = best_of(&s);
        let (hits, misses) = pcc.hit_stats();
        let rate = hits as f64 / (hits + misses).max(1) as f64;
        t.row(vec![
            format!("{} KB", pcc_bytes / 1024),
            format!("{ms:.2}"),
            gain_pct(base_ms, ms),
            format!("{:.1}%", rate * 100.0),
        ]);
    }
    t.print();
}

/// §6.1's scalability note on rename: concurrent renames of different
/// files contend on the global rename lock in both designs; the
/// optimizations must not make it worse.
pub fn rename_scalability(scale: Scale) {
    banner("Rename latency under concurrent renamers (µs, §6.1)");
    let mut t = Table::new(&["threads", "unmodified", "opt-locked", "optimized"]);
    let threads: Vec<usize> = [1usize, 2, 4, 8, 12]
        .into_iter()
        .filter(|&n| n <= scale.max_threads.max(2))
        .collect();
    let mut rows: Vec<Vec<String>> = threads.iter().map(|n| vec![n.to_string()]).collect();
    for (_, config) in config_triple() {
        let s = kernel_with(config);
        for (i, &n) in threads.iter().enumerate() {
            // Per-thread private files, renamed back and forth.
            for tid in 0..n {
                let fd = s
                    .kernel
                    .open(&s.proc, &format!("/r{tid}-a"), OpenFlags::create(), 0o644)
                    .unwrap();
                s.kernel.close(&s.proc, fd).unwrap();
                let _ = s.kernel.unlink(&s.proc, &format!("/r{tid}-b"));
            }
            let lat = parallel_latency_indexed(&s, n, scale.duration_ms, |k, p, tid, i| {
                let (from, to) = if i % 2 == 0 {
                    (format!("/r{tid}-a"), format!("/r{tid}-b"))
                } else {
                    (format!("/r{tid}-b"), format!("/r{tid}-a"))
                };
                k.rename(p, &from, &to).unwrap();
            });
            rows[i].push(us(lat));
            // Restore names for the next round.
            for tid in 0..n {
                let _ = s
                    .kernel
                    .rename(&s.proc, &format!("/r{tid}-b"), &format!("/r{tid}-a"));
            }
        }
    }
    for r in rows {
        t.row(r);
    }
    t.print();
}

/// Like [`parallel_latency`] but hands each thread its index and an
/// iteration counter.
fn parallel_latency_indexed(
    s: &Setup,
    n: usize,
    duration_ms: u64,
    op: impl Fn(&Kernel, &Process, usize, u64) + Sync,
) -> f64 {
    let total_ops = std::sync::atomic::AtomicU64::new(0);
    let kernel = &s.kernel;
    let procs: Vec<Arc<Process>> = (0..n).map(|_| kernel.spawn(&s.proc)).collect();
    let t0 = Instant::now();
    let budget = std::time::Duration::from_millis(duration_ms);
    std::thread::scope(|sc| {
        for (tid, p) in procs.iter().enumerate() {
            let op = &op;
            let total_ops = &total_ops;
            sc.spawn(move || {
                let mut i = 0u64;
                while t0.elapsed() < budget {
                    op(kernel, p, tid, i);
                    i += 1;
                }
                total_ops.fetch_add(i, Ordering::Relaxed);
            });
        }
    });
    let elapsed = t0.elapsed().as_nanos() as f64;
    let ops = total_ops.load(Ordering::Relaxed).max(1) as f64;
    elapsed * n as f64 / ops
}

// ---------------------------------------------------------------------
// Metrics dump: the observability subsystem end-to-end.
// ---------------------------------------------------------------------

/// Drives a mixed metadata workload (stat/open/unlink plus the tree
/// build's mkdir/create/write) on an observability-enabled optimized
/// kernel, prints the unified metrics snapshot, and writes the JSON
/// export to `out`. Returns the write error, if any, so the caller
/// can exit non-zero.
pub fn metrics(scale: Scale, out: &str) -> std::io::Result<()> {
    banner("Metrics: unified observability snapshot (optimized config)");
    let s = kernel_with_obs(DcacheConfig::optimized());
    let k = &s.kernel;
    let p = &s.proc;
    let spec = TreeSpec::source_like(scale.tree_files);
    let m = build_tree(k, p, "/src", &spec).unwrap();
    // Drop construction-phase samples; everything below is measured.
    k.reset_stats();
    for d in &m.dirs {
        k.stat(p, d).unwrap();
    }
    for f in &m.files {
        k.stat(p, f).unwrap();
        let fd = k.open(p, f, OpenFlags::read_only(), 0).unwrap();
        k.close(p, fd).unwrap();
    }
    // Misses exercise the negative path and the slowpath refill.
    for i in 0..m.files.len().min(200) {
        let _ = k.stat(p, &format!("/src/no-such-{i}"));
    }
    for f in m.files.iter().step_by(4) {
        k.unlink(p, f).unwrap();
    }
    let mut snap = s.kernel.metrics_snapshot();
    // The §13 layout-attribution counters ride along so the fig-3
    // deltas are machine-checkable from the same export.
    snap.sections
        .push(layout_attribution_section(&layout_rows(scale)));
    print!("{}", snap.to_text());
    std::fs::write(out, snap.to_json())?;
    println!("metrics JSON written to {out}");
    Ok(())
}

// ---------------------------------------------------------------------
// Perf gate: the CI regression tripwire.
// ---------------------------------------------------------------------

/// Warm single-thread `stat` ceiling for [`perfgate`], nanoseconds.
/// The committed full-scale number is ≤550 ns; 600 leaves jitter
/// margin while still catching any layout regression that gives the
/// §13 nanoseconds back.
pub const PERF_GATE_WARM_STAT_NS: f64 = 600.0;

/// CI perf-regression lane: measures the single-thread fig-8 point
/// (warm 4-component `stat`, optimized config) and fails when the
/// median exceeds [`PERF_GATE_WARM_STAT_NS`]. Returns `false` on
/// regression so the caller can exit non-zero.
pub fn perfgate(scale: Scale) -> bool {
    banner("Perf gate: warm single-thread stat vs checked-in threshold");
    let s = kernel_with(DcacheConfig::optimized());
    lmbench::setup(&s.kernel, &s.proc).unwrap();
    let path = Pattern::Comp4.path();
    for _ in 0..64 {
        s.kernel.stat(&s.proc, path).unwrap();
    }
    // Best-of-3 medians: the gate must be robust to a noisy CI
    // neighbor, while a real layout regression shifts every run.
    let mut best = f64::MAX;
    for _ in 0..3 {
        let lat = lmbench::stat_latency(&s.kernel, &s.proc, Pattern::Comp4, scale.batches.max(5));
        best = best.min(lat.median_ns);
    }
    let ok = best <= PERF_GATE_WARM_STAT_NS;
    println!(
        "warm stat (4-comp, 1 thread): {best:.1} ns — threshold {PERF_GATE_WARM_STAT_NS:.0} ns: {}",
        if ok { "PASS" } else { "FAIL" }
    );
    ok
}

/// Runs everything in paper order.
pub fn all(scale: Scale) {
    fig1(scale);
    fig2(scale);
    fig3(scale);
    fig3_layout(scale);
    fig6(scale);
    fig7(scale);
    fig8(scale);
    fig9(scale);
    fig10(scale);
    table1(scale);
    table2(scale);
    table3(scale);
    table4();
    space(scale);
    ablation(scale);
    pcc_sensitivity(scale);
    rename_scalability(scale);
}

// Re-export for the multi-user PCC sharing check used in examples.
pub use dc_vfs::FsError;

/// Smoke entry used by tests: runs the cheapest experiment end-to-end.
pub fn smoke() {
    let scale = Scale {
        tree_files: 60,
        duration_ms: 10,
        batches: 2,
        max_dir: 100,
        max_subtree: 50,
        max_threads: 2,
    };
    fig2(scale);
    let _ = Cred::user(1, 1);
}
