//! `repro fleet` — the multi-tenant fleet campaign (DESIGN.md §14).
//!
//! Provisions a seeded `dc-fleet` simulator — 1000+ mount namespaces,
//! 10k+ credentials, three tenant classes (hot-web, cold-batch,
//! churn-ci) churning over overlapping trees — inside a fixed memory
//! budget, then reports a per-class summary (hit rate, sampled p50/p99
//! stat latency, resident bytes, teardown cost) and the fleet-wide
//! accounting (budget compliance, resident-PCC cap pressure, and the
//! teardown leak check).
//!
//! Results land in `BENCH_fleet.json` and one line is appended to
//! `EXPERIMENTS.md`. Returns `false` (→ exit 1) when the fleet misses
//! the scale floor, any class misses its hit-rate floor, a round ends
//! over budget, or teardown leaks a table, a PCC, or a byte.

use crate::table::Table;
use dc_fleet::{Fleet, FleetConfig, FleetReport, TenantClass};

/// Per-class hit-rate floors (fraction of lookups served without an FS
/// call). Calibrated against seeded quick/full runs, which all land
/// ≥0.99 warm; the floors sit well below so only a real regression —
/// a tenant DLHT that stops retaining, a PCC cap that thrashes the hot
/// credential — trips them, not run-to-run noise.
const HIT_FLOORS: [(TenantClass, f64); 3] = [
    (TenantClass::HotWeb, 0.90),
    (TenantClass::ColdBatch, 0.85),
    (TenantClass::ChurnCi, 0.70),
];

/// The acceptance scale floor: a fleet, not a demo.
const MIN_NAMESPACES: usize = 1000;
const MIN_CREDS: usize = 10_000;

/// Entry point for `repro fleet`. Returns `false` on failure.
pub fn fleet(scale: crate::Scale, seed: u64) -> bool {
    let full = scale.duration_ms > 100;
    let cfg = if full {
        FleetConfig::full(seed)
    } else {
        FleetConfig::quick(seed)
    };
    println!(
        "fleet: {} tenants × {} creds, {} rounds × {} ops/tenant, budget {} MiB, seed {seed:#x}",
        cfg.tenants,
        cfg.creds_per_tenant,
        cfg.rounds,
        cfg.ops_per_tenant,
        cfg.mem_budget_bytes >> 20,
    );

    let fleet = Fleet::provision(cfg);
    let report = fleet.run();

    let mut t = Table::new(&[
        "class",
        "tenants",
        "ops",
        "hit%",
        "p50 ns",
        "p99 ns",
        "resident KiB",
        "teardowns",
        "teardown µs",
    ]);
    for tally in &report.classes {
        let h = tally.hist.summary();
        t.row(vec![
            tally.class.key().into(),
            tally.tenants.to_string(),
            tally.ops.to_string(),
            format!("{:.2}", tally.hit_rate() * 100.0),
            h.p50_ns.to_string(),
            h.p99_ns.to_string(),
            (tally.resident_bytes >> 10).to_string(),
            tally.teardowns.to_string(),
            format!("{:.1}", tally.teardown_us()),
        ]);
    }
    t.print();

    println!(
        "fleet: peak {} namespaces, {} creds | footprint peak {} KiB (budget {} KiB), \
         {} rounds over budget | PCCs: peak {} resident (cap {}), {} evicted | churn {:.2}s",
        report.peak_namespaces,
        report.creds,
        report.peak_footprint >> 10,
        report.config.mem_budget_bytes >> 10,
        report.over_budget_rounds,
        report.peak_resident_pccs,
        report.config.pcc_max_resident,
        report.pcc_evictions,
        report.churn_s,
    );
    println!(
        "teardown: {} tables / {} PCCs / {} KiB left (baseline {} KiB) — {}",
        report.final_dlht_tables,
        report.final_resident_pccs,
        report.final_footprint >> 10,
        report.baseline_footprint >> 10,
        if report.teardown_clean() {
            "leak-free"
        } else {
            "LEAKED"
        }
    );

    // --- gates ---------------------------------------------------------
    let scale_ok = report.peak_namespaces >= MIN_NAMESPACES && report.creds >= MIN_CREDS;
    if !scale_ok {
        eprintln!(
            "fleet: scale floor missed ({} ns / {} creds; need {MIN_NAMESPACES}/{MIN_CREDS})",
            report.peak_namespaces, report.creds
        );
    }
    let mut hit_ok = true;
    for (class, floor) in HIT_FLOORS {
        let tally = report
            .classes
            .iter()
            .find(|c| c.class == class)
            .expect("class tally");
        if tally.hit_rate() < floor {
            eprintln!(
                "fleet: {} hit rate {:.3} below floor {floor}",
                class.key(),
                tally.hit_rate()
            );
            hit_ok = false;
        }
    }
    let budget_ok = report.over_budget_rounds == 0;
    if !budget_ok {
        eprintln!(
            "fleet: {} rounds ended over the {} MiB budget",
            report.over_budget_rounds,
            report.config.mem_budget_bytes >> 20
        );
    }
    let churn_ok = report.classes.iter().any(|c| c.teardowns > 0);
    if !churn_ok {
        eprintln!("fleet: no namespace was ever torn down — churn never ran");
    }
    let clean = report.teardown_clean();
    if !clean {
        eprintln!(
            "fleet: teardown leak — {} tables, {} PCCs, {} bytes not returned",
            report.final_dlht_tables - 1,
            report.final_resident_pccs,
            report.leaked_bytes
        );
    }
    let pass = scale_ok && hit_ok && budget_ok && churn_ok && clean;
    println!("fleet: {}", if pass { "PASS" } else { "FAIL" });

    let json_path = "BENCH_fleet.json";
    match write_fleet_json(json_path, &report, pass) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
    }
    match append_experiments_record(&report, pass) {
        Ok(()) => println!("appended EXPERIMENTS.md"),
        Err(e) => eprintln!("warning: could not append EXPERIMENTS.md: {e}"),
    }
    pass
}

fn write_fleet_json(path: &str, r: &FleetReport, pass: bool) -> std::io::Result<()> {
    use std::io::Write;
    let c = &r.config;
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"fleet\",\n");
    out.push_str(&format!("  \"seed\": {},\n", c.seed));
    out.push_str(&format!(
        "  \"tenants\": {}, \"creds_per_tenant\": {}, \"rounds\": {}, \
         \"ops_per_tenant\": {},\n",
        c.tenants, c.creds_per_tenant, c.rounds, c.ops_per_tenant
    ));
    out.push_str(&format!(
        "  \"mem_budget_bytes\": {}, \"pcc_max_resident\": {}, \
         \"tenant_buckets\": {},\n",
        c.mem_budget_bytes, c.pcc_max_resident, c.tenant_buckets
    ));
    out.push_str("  \"classes\": {\n");
    for (i, tally) in r.classes.iter().enumerate() {
        let comma = if i + 1 < r.classes.len() { "," } else { "" };
        let h = tally.hist.summary();
        out.push_str(&format!(
            "    \"{}\": {{ \"tenants\": {}, \"ops\": {}, \"lookups\": {}, \
             \"miss_fs\": {}, \"hit_rate\": {:.4}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"resident_bytes\": {}, \"teardowns\": {}, \"teardown_us_mean\": {:.1}, \
             \"teardown_entries\": {} }}{comma}\n",
            tally.class.key(),
            tally.tenants,
            tally.ops,
            tally.lookups,
            tally.miss_fs,
            tally.hit_rate(),
            h.p50_ns,
            h.p99_ns,
            tally.resident_bytes,
            tally.teardowns,
            tally.teardown_us(),
            tally.teardown_entries,
        ));
    }
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"fleet\": {{ \"peak_namespaces\": {}, \"creds\": {}, \
         \"peak_footprint_bytes\": {}, \"over_budget_rounds\": {}, \
         \"peak_resident_pccs\": {}, \"pcc_evictions\": {}, \"churn_s\": {:.3} }},\n",
        r.peak_namespaces,
        r.creds,
        r.peak_footprint,
        r.over_budget_rounds,
        r.peak_resident_pccs,
        r.pcc_evictions,
        r.churn_s,
    ));
    out.push_str(&format!(
        "  \"teardown\": {{ \"baseline_footprint_bytes\": {}, \
         \"final_footprint_bytes\": {}, \"final_dlht_tables\": {}, \
         \"final_resident_pccs\": {}, \"leaked_bytes\": {}, \"clean\": {} }},\n",
        r.baseline_footprint,
        r.final_footprint,
        r.final_dlht_tables,
        r.final_resident_pccs,
        r.leaked_bytes,
        r.teardown_clean(),
    ));
    out.push_str(&format!("  \"pass\": {pass}\n}}\n"));
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

fn append_experiments_record(r: &FleetReport, pass: bool) -> std::io::Result<()> {
    use std::io::Write;
    let hit = |class: TenantClass| {
        r.classes
            .iter()
            .find(|c| c.class == class)
            .map_or(0.0, |c| c.hit_rate() * 100.0)
    };
    let line = format!(
        "- `repro fleet --seed {:#x}` ({} ns × {} creds, {} rounds): hit% hot {:.1} / \
         cold {:.1} / ci {:.1}; {} teardowns; footprint peak {} KiB ≤ budget {} KiB; \
         leak {} B — {}\n",
        r.config.seed,
        r.peak_namespaces,
        r.creds,
        r.config.rounds,
        hit(TenantClass::HotWeb),
        hit(TenantClass::ColdBatch),
        hit(TenantClass::ChurnCi),
        r.classes.iter().map(|c| c.teardowns).sum::<u64>(),
        r.peak_footprint >> 10,
        r.config.mem_budget_bytes >> 10,
        r.leaked_bytes,
        if pass { "PASS" } else { "FAIL" }
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("EXPERIMENTS.md")?;
    f.write_all(line.as_bytes())
}
