//! RCU-style read-mostly containers over epoch-based reclamation.
//!
//! Two primitives back the lock-free read path (DESIGN.md §5):
//!
//! - [`EpochCell`]: a single replaceable value. Readers pin the epoch,
//!   load the pointer, and borrow or clone the value — no locks, no
//!   reference-count contention. Writers swap in a fresh allocation and
//!   defer destruction of the old one.
//! - [`SnapMap`]: a small copy-on-write map. Readers scan an immutable
//!   snapshot vector; writers rebuild the vector under an internal mutex
//!   and swap it wholesale. Intended for tiny, read-dominated maps
//!   (mounts by id, per-namespace tables, per-cred caches) — lookups are
//!   a linear scan over a snapshot that rarely exceeds a handful of
//!   entries.
//!
//! Writers serialize through `parking_lot` locks and therefore *do*
//! count as lock acquisitions; readers never touch a lock.

pub use crossbeam_epoch::Guard;
use crossbeam_epoch::{self as epoch, Atomic, Owned, Shared};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;

/// A read-mostly cell: lock-free reads, swap-and-defer writes.
pub struct EpochCell<T> {
    inner: Atomic<T>,
}

impl<T> EpochCell<T> {
    /// A cell holding `value`.
    pub fn new(value: T) -> EpochCell<T> {
        EpochCell {
            inner: Atomic::new(value),
        }
    }

    /// Runs `f` against the current value without copying it.
    ///
    /// The epoch guard is held for the duration of `f`; keep the closure
    /// short (no blocking).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let guard = epoch::pin();
        f(self.read(&guard))
    }

    /// Borrows the current value under a caller-held epoch guard — no
    /// extra pin, no clone. The borrow lives as long as the guard: a
    /// value replaced by [`set`](EpochCell::set) is only reclaimed after
    /// every guard that could have observed it unpins.
    pub fn read<'g>(&self, guard: &'g epoch::Guard) -> &'g T {
        let shared = self.inner.load(Ordering::Acquire, guard);
        // Invariant: the cell always holds a non-null pointer (set at
        // construction, replaced atomically, freed only in Drop).
        unsafe { shared.deref() }
    }

    /// Replaces the value; the old allocation is reclaimed once no
    /// reader can still hold it.
    pub fn set(&self, value: T) {
        let guard = epoch::pin();
        let old = self.inner.swap(Owned::new(value), Ordering::AcqRel, &guard);
        unsafe { guard.defer_destroy(old) };
    }
}

impl<T: Clone> EpochCell<T> {
    /// Clones the current value out.
    pub fn get(&self) -> T {
        self.with(T::clone)
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        // &mut self: no concurrent readers can exist.
        unsafe {
            let guard = epoch::unprotected();
            let shared = self.inner.swap(Shared::null(), Ordering::AcqRel, guard);
            guard.defer_destroy(shared);
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.with(|v| f.debug_tuple("EpochCell").field(v).finish())
    }
}

/// A copy-on-write map with lock-free reads.
///
/// The entry vector is immutable once published; every mutation clones
/// it, edits the clone, and swaps it in. `K` is `Copy` because keys are
/// small ids in practice.
pub struct SnapMap<K: Copy + Eq, V: Clone> {
    snap: Atomic<Vec<(K, V)>>,
    write: Mutex<()>,
}

impl<K: Copy + Eq, V: Clone> SnapMap<K, V> {
    /// An empty map.
    pub fn new() -> SnapMap<K, V> {
        SnapMap {
            snap: Atomic::new(Vec::new()),
            write: Mutex::new(()),
        }
    }

    fn current<'g>(&self, guard: &'g epoch::Guard) -> &'g Vec<(K, V)> {
        let shared = self.snap.load(Ordering::Acquire, guard);
        // Invariant: always non-null (constructed with an empty vec).
        unsafe { shared.deref() }
    }

    /// Publishes `next` and defers destruction of the previous snapshot.
    /// Caller must hold the write mutex.
    fn publish(&self, next: Vec<(K, V)>, guard: &epoch::Guard) {
        let old = self.snap.swap(Owned::new(next), Ordering::AcqRel, guard);
        unsafe { guard.defer_destroy(old) };
    }

    /// Lock-free lookup.
    pub fn get(&self, key: K) -> Option<V> {
        let guard = epoch::pin();
        self.get_ref(key, &guard).cloned()
    }

    /// Borrows the value for `key` under a caller-held epoch guard —
    /// no extra pin, no clone (see [`EpochCell::read`]).
    pub fn get_ref<'g>(&self, key: K, guard: &'g epoch::Guard) -> Option<&'g V>
    where
        K: 'g,
        V: 'g,
    {
        self.current(guard)
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// True when `key` is present (lock-free).
    pub fn contains_key(&self, key: K) -> bool {
        let guard = epoch::pin();
        self.current(&guard).iter().any(|(k, _)| *k == key)
    }

    /// Clones all values out (lock-free).
    pub fn values(&self) -> Vec<V> {
        let guard = epoch::pin();
        self.current(&guard)
            .iter()
            .map(|(_, v)| v.clone())
            .collect()
    }

    /// Clones all entries out (lock-free).
    pub fn entries(&self) -> Vec<(K, V)> {
        let guard = epoch::pin();
        self.current(&guard).clone()
    }

    /// Number of entries (lock-free).
    pub fn len(&self) -> usize {
        let guard = epoch::pin();
        self.current(&guard).len()
    }

    /// True when empty (lock-free).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts or replaces, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let _w = self.write.lock();
        let guard = epoch::pin();
        let mut next = self.current(&guard).clone();
        let prev = match next.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => Some(std::mem::replace(&mut slot.1, value)),
            None => {
                next.push((key, value));
                None
            }
        };
        self.publish(next, &guard);
        prev
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, key: K) -> Option<V> {
        let _w = self.write.lock();
        let guard = epoch::pin();
        let cur = self.current(&guard);
        let pos = cur.iter().position(|(k, _)| *k == key)?;
        let mut next = cur.clone();
        let (_, v) = next.remove(pos);
        self.publish(next, &guard);
        Some(v)
    }

    /// Returns the value for `key`, inserting `make()` under the write
    /// lock if absent. The fast path (present) takes no lock.
    pub fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(key) {
            return v;
        }
        let _w = self.write.lock();
        let guard = epoch::pin();
        // Re-check under the lock: another writer may have won the race.
        if let Some((_, v)) = self.current(&guard).iter().find(|(k, _)| *k == key) {
            return v.clone();
        }
        let v = make();
        let mut next = self.current(&guard).clone();
        next.push((key, v.clone()));
        self.publish(next, &guard);
        v
    }

    /// Removes every entry.
    pub fn clear(&self) {
        let _w = self.write.lock();
        let guard = epoch::pin();
        self.publish(Vec::new(), &guard);
    }

    /// Runs `f` over the current snapshot without cloning entries.
    pub fn with_snapshot<R>(&self, f: impl FnOnce(&[(K, V)]) -> R) -> R {
        let guard = epoch::pin();
        f(self.current(&guard))
    }
}

impl<K: Copy + Eq, V: Clone> Default for SnapMap<K, V> {
    fn default() -> Self {
        SnapMap::new()
    }
}

impl<K: Copy + Eq, V: Clone> Drop for SnapMap<K, V> {
    fn drop(&mut self) {
        unsafe {
            let guard = epoch::unprotected();
            let shared = self.snap.swap(Shared::null(), Ordering::AcqRel, guard);
            guard.defer_destroy(shared);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering as O};
    use std::sync::Arc;

    #[test]
    fn epoch_cell_get_set() {
        let c = EpochCell::new(Arc::new(1u32));
        assert_eq!(*c.get(), 1);
        c.set(Arc::new(2));
        assert_eq!(*c.get(), 2);
        assert_eq!(c.with(|v| **v), 2);
    }

    #[test]
    fn snap_map_crud() {
        let m: SnapMap<u64, Arc<str>> = SnapMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "one".into()), None);
        assert_eq!(m.insert(2, "two".into()), None);
        assert_eq!(m.get(1).as_deref(), Some("one"));
        assert_eq!(m.insert(1, "uno".into()).as_deref(), Some("one"));
        assert_eq!(m.get(1).as_deref(), Some("uno"));
        assert_eq!(m.len(), 2);
        assert!(m.contains_key(2));
        assert_eq!(m.remove(2).as_deref(), Some("two"));
        assert_eq!(m.remove(2), None);
        assert_eq!(m.len(), 1);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let m: SnapMap<u64, Arc<u32>> = SnapMap::new();
        let a = m.get_or_insert_with(7, || Arc::new(70));
        let b = m.get_or_insert_with(7, || unreachable!("must not rebuild"));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn concurrent_reads_survive_writes() {
        let cell = Arc::new(EpochCell::new(Arc::new(0u64)));
        let map: Arc<SnapMap<u64, u64>> = Arc::new(SnapMap::new());
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            {
                let cell = cell.clone();
                let map = map.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        cell.set(Arc::new(i));
                        map.insert(i % 16, i);
                        if i % 64 == 0 {
                            map.remove(i % 16);
                        }
                    }
                    stop.store(true, O::SeqCst);
                });
            }
            for _ in 0..4 {
                let cell = cell.clone();
                let map = map.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut last = 0;
                    while !stop.load(O::Relaxed) {
                        let v = *cell.get();
                        assert!(v >= last, "cell value went backwards");
                        last = v;
                        for (k, v) in map.entries() {
                            assert_eq!(v % 16, k % 16);
                        }
                    }
                });
            }
        });
    }
}
