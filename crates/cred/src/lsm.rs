//! The security-module hook chain.

use crate::credential::Cred;
use dc_fs::{FsError, FsResult, InodeAttr};
use std::sync::Arc;

/// Permission mask bit: search/execute.
pub const MAY_EXEC: u32 = 0x1;
/// Permission mask bit: write.
pub const MAY_WRITE: u32 = 0x2;
/// Permission mask bit: read.
pub const MAY_READ: u32 = 0x4;

/// Context handed to permission hooks.
///
/// `path` is the full canonical path when the caller knows it. The VFS
/// guarantees it is present whenever the active stack contains a module
/// whose [`Lsm::needs_path`] is true (path-based MAC); pure mode-bit
/// modules ignore it.
pub struct PermCtx<'a> {
    /// Attributes of the inode being checked.
    pub attr: &'a InodeAttr,
    /// Full canonical path, when known.
    pub path: Option<&'a str>,
}

/// One security module (the LSM hook surface this reproduction needs).
pub trait Lsm: Send + Sync {
    /// Module name, e.g. `"dac"`.
    fn name(&self) -> &'static str;

    /// May `cred` perform `mask` accesses on the object? Returning an
    /// error vetoes the access (modules are AND-combined, like Linux).
    fn inode_permission(&self, cred: &Cred, ctx: &PermCtx<'_>, mask: u32) -> FsResult<()>;

    /// True if this module's decisions depend on the path string; the VFS
    /// then reconstructs paths for final-object checks on the fastpath.
    fn needs_path(&self) -> bool {
        false
    }
}

/// An ordered stack of security modules, all of which must allow an
/// access.
pub struct SecurityStack {
    lsms: Vec<Arc<dyn Lsm>>,
}

impl SecurityStack {
    /// A stack with only the default DAC module.
    pub fn dac_only() -> Self {
        SecurityStack {
            lsms: vec![Arc::new(crate::dac::Dac)],
        }
    }

    /// A stack from explicit modules (callers normally put [`crate::Dac`]
    /// first, as Linux always applies DAC).
    pub fn new(lsms: Vec<Arc<dyn Lsm>>) -> Self {
        SecurityStack { lsms }
    }

    /// Appends a module to the chain.
    pub fn push(&mut self, lsm: Arc<dyn Lsm>) {
        self.lsms.push(lsm);
    }

    /// Evaluates the whole chain; the first veto wins.
    pub fn permission(&self, cred: &Cred, ctx: &PermCtx<'_>, mask: u32) -> FsResult<()> {
        for lsm in &self.lsms {
            lsm.inode_permission(cred, ctx, mask)?;
        }
        Ok(())
    }

    /// True if any module needs path strings for its decisions.
    pub fn needs_path(&self) -> bool {
        self.lsms.iter().any(|l| l.needs_path())
    }

    /// Names of the active modules, for reporting.
    pub fn module_names(&self) -> Vec<&'static str> {
        self.lsms.iter().map(|l| l.name()).collect()
    }
}

impl Default for SecurityStack {
    fn default() -> Self {
        Self::dac_only()
    }
}

/// A module that denies everything — useful in tests and for quarantine
/// configurations.
#[cfg_attr(not(test), allow(dead_code))]
pub struct DenyAll;

impl Lsm for DenyAll {
    fn name(&self) -> &'static str {
        "deny-all"
    }

    fn inode_permission(&self, _: &Cred, _: &PermCtx<'_>, _: u32) -> FsResult<()> {
        Err(FsError::Access)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_fs::FileType;

    fn attr() -> InodeAttr {
        InodeAttr {
            ino: 1,
            ftype: FileType::Regular,
            mode: 0o777,
            uid: 0,
            gid: 0,
            nlink: 1,
            size: 0,
            mtime: 0,
            ctime: 0,
        }
    }

    #[test]
    fn stack_is_and_combined() {
        let a = attr();
        let cred = Cred::root();
        let ctx = PermCtx {
            attr: &a,
            path: None,
        };
        let permissive = SecurityStack::dac_only();
        assert!(permissive.permission(&cred, &ctx, MAY_READ).is_ok());
        let mut strict = SecurityStack::dac_only();
        strict.push(Arc::new(DenyAll));
        assert_eq!(
            strict.permission(&cred, &ctx, MAY_READ),
            Err(FsError::Access)
        );
    }

    #[test]
    fn needs_path_propagates() {
        let plain = SecurityStack::dac_only();
        assert!(!plain.needs_path());
        let mut mac = SecurityStack::dac_only();
        mac.push(Arc::new(crate::pathmac::PathMac::new(vec![])));
        assert!(mac.needs_path());
    }

    #[test]
    fn module_names_in_order() {
        let mut s = SecurityStack::dac_only();
        s.push(Arc::new(DenyAll));
        assert_eq!(s.module_names(), vec!["dac", "deny-all"]);
    }
}
