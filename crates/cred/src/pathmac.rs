//! An AppArmor-flavored, path-based mandatory access control module.
//!
//! Rules deny accesses by `(subject uid, path prefix, mask)`. The module
//! exists to prove two claims from §4.1 of the paper: the PCC memoizes
//! *arbitrary* LSM decisions (not just mode bits), and path-sensitive
//! modules are compatible with the fastpath because prefix checks are only
//! (re)computed on the slowpath — where the path string is available —
//! and then cached by credential.

use crate::credential::Cred;
use crate::lsm::{Lsm, PermCtx};
use dc_fs::{FsError, FsResult};

/// One deny rule.
#[derive(Debug, Clone)]
pub struct MacRule {
    /// Subject uid the rule applies to; `None` = every uid.
    pub uid: Option<u32>,
    /// Canonical path prefix, e.g. `"/etc/secret"`. A rule matches the
    /// path itself and everything beneath it.
    pub path_prefix: String,
    /// Denied [`crate::MAY_READ`]/[`crate::MAY_WRITE`]/[`crate::MAY_EXEC`]
    /// bits.
    pub deny_mask: u32,
}

impl MacRule {
    fn matches(&self, uid: u32, path: &str) -> bool {
        if self.uid.is_some_and(|u| u != uid) {
            return false;
        }
        match path.strip_prefix(self.path_prefix.as_str()) {
            Some(rest) => {
                rest.is_empty() || rest.starts_with('/') || self.path_prefix.ends_with('/')
            }
            None => false,
        }
    }
}

/// A path-rule MAC module (deny-list semantics, root not exempt —
/// mandatory access control binds root too).
pub struct PathMac {
    rules: Vec<MacRule>,
}

impl PathMac {
    /// Builds the module from a rule list.
    pub fn new(rules: Vec<MacRule>) -> Self {
        PathMac { rules }
    }
}

impl Lsm for PathMac {
    fn name(&self) -> &'static str {
        "pathmac"
    }

    fn needs_path(&self) -> bool {
        true
    }

    fn inode_permission(&self, cred: &Cred, ctx: &PermCtx<'_>, mask: u32) -> FsResult<()> {
        if self.rules.is_empty() {
            return Ok(());
        }
        let Some(path) = ctx.path else {
            // The VFS contract is to supply paths when needs_path() is
            // true; failing closed here means a contract violation can
            // never grant access it should not.
            return Err(FsError::Access);
        };
        for rule in &self.rules {
            if rule.deny_mask & mask != 0 && rule.matches(cred.uid, path) {
                return Err(FsError::Access);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsm::{MAY_EXEC, MAY_READ, MAY_WRITE};
    use dc_fs::{FileType, InodeAttr};

    fn attr() -> InodeAttr {
        InodeAttr {
            ino: 1,
            ftype: FileType::Regular,
            mode: 0o777,
            uid: 0,
            gid: 0,
            nlink: 1,
            size: 0,
            mtime: 0,
            ctime: 0,
        }
    }

    fn check(mac: &PathMac, cred: &Cred, path: Option<&str>, mask: u32) -> FsResult<()> {
        let a = attr();
        mac.inode_permission(cred, &PermCtx { attr: &a, path }, mask)
    }

    #[test]
    fn deny_rule_blocks_subtree() {
        let mac = PathMac::new(vec![MacRule {
            uid: Some(1000),
            path_prefix: "/etc/secret".into(),
            deny_mask: MAY_READ | MAY_WRITE,
        }]);
        let alice = Cred::user(1000, 1000);
        assert_eq!(
            check(&mac, &alice, Some("/etc/secret"), MAY_READ),
            Err(FsError::Access)
        );
        assert_eq!(
            check(&mac, &alice, Some("/etc/secret/key"), MAY_READ),
            Err(FsError::Access)
        );
        // Sibling with a shared string prefix is NOT matched.
        assert!(check(&mac, &alice, Some("/etc/secrets2"), MAY_READ).is_ok());
        // Unlisted masks pass.
        assert!(check(&mac, &alice, Some("/etc/secret"), MAY_EXEC).is_ok());
    }

    #[test]
    fn uid_scoping() {
        let mac = PathMac::new(vec![MacRule {
            uid: Some(1000),
            path_prefix: "/srv".into(),
            deny_mask: MAY_WRITE,
        }]);
        let alice = Cred::user(1000, 1000);
        let bob = Cred::user(1001, 1001);
        assert!(check(&mac, &bob, Some("/srv/www"), MAY_WRITE).is_ok());
        assert_eq!(
            check(&mac, &alice, Some("/srv/www"), MAY_WRITE),
            Err(FsError::Access)
        );
    }

    #[test]
    fn wildcard_uid_binds_root_too() {
        let mac = PathMac::new(vec![MacRule {
            uid: None,
            path_prefix: "/vault".into(),
            deny_mask: MAY_READ,
        }]);
        let root = Cred::root();
        assert_eq!(
            check(&mac, &root, Some("/vault/blob"), MAY_READ),
            Err(FsError::Access)
        );
    }

    #[test]
    fn missing_path_fails_closed() {
        let mac = PathMac::new(vec![MacRule {
            uid: None,
            path_prefix: "/x".into(),
            deny_mask: MAY_READ,
        }]);
        let c = Cred::user(1, 1);
        assert_eq!(check(&mac, &c, None, MAY_READ), Err(FsError::Access));
        // ...but an empty rule set short-circuits to allow.
        let empty = PathMac::new(vec![]);
        assert!(check(&empty, &c, None, MAY_READ).is_ok());
    }
}
