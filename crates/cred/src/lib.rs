//! Credentials and the Linux-Security-Module framework (paper §4.1).
//!
//! The prefix check cache (PCC) memoizes the *result* of access-control
//! decisions, so it must be keyed by something that captures **everything**
//! those decisions depend on. The paper leverages three properties of the
//! Linux `cred` structure, all reproduced here:
//!
//! 1. **Comprehensive** — [`Cred`] carries uid/gid/supplementary groups
//!    *plus* an opaque [`SecurityBlob`] where an LSM stores its own state
//!    (role, profile, …), so memoized results are valid for arbitrary LSMs.
//! 2. **Copy-on-write** — creds are immutable behind `Arc`; changing
//!    credentials builds a new one via [`prepare_creds`]/[`commit_creds`].
//! 3. **Deduplicated commits** — Linux often allocates a new `cred` even
//!    when nothing changed (e.g. `exec`); the paper waits until
//!    `commit_creds()` and reuses the old cred (and its PCC) if the
//!    contents are identical. [`commit_creds`] does exactly that.
//!
//! The [`Lsm`] trait plus [`SecurityStack`] mirror the LSM hook chain; two
//! modules are provided: [`Dac`] (POSIX mode bits, always first) and
//! [`PathMac`] (an AppArmor-flavored path-rule module proving the PCC can
//! memoize arbitrary, path-sensitive policies).

mod credential;
mod dac;
mod lsm;
mod pathmac;

pub use credential::{commit_creds, prepare_creds, Cred, CredBuilder, CredId, SecurityBlob};
pub use dac::Dac;
pub use lsm::{Lsm, PermCtx, SecurityStack, MAY_EXEC, MAY_READ, MAY_WRITE};
pub use pathmac::{MacRule, PathMac};
