//! The copy-on-write credential structure.

use dc_rcu::SnapMap;
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Unique identity of one credential object (never reused).
pub type CredId = u64;

static NEXT_CRED_ID: AtomicU64 = AtomicU64::new(1);

/// Opaque LSM-private state attached to a credential (the analog of the
/// `security` pointer in `struct cred`).
pub trait SecurityBlob: Send + Sync {
    /// Downcasting access for the owning LSM.
    fn as_any(&self) -> &dyn Any;
    /// Content equality; `commit_creds` dedup depends on this.
    fn blob_eq(&self, other: &dyn SecurityBlob) -> bool;
    /// Human-readable label (e.g. an SELinux context or AppArmor profile).
    fn label(&self) -> String;
}

/// An immutable credential.
///
/// All permission-relevant state lives here; per-credential caches (the
/// PCC) attach through [`Cred::cache_for`], keyed by mount namespace so a
/// namespace switch never reuses prefix-check results across namespaces
/// (§4.3, "Mount Namespaces").
pub struct Cred {
    id: CredId,
    /// Effective user id.
    pub uid: u32,
    /// Effective group id.
    pub gid: u32,
    /// Supplementary groups, sorted.
    pub groups: Vec<u32>,
    /// LSM-private state, if any LSM attached one.
    pub security: Option<Arc<dyn SecurityBlob>>,
    /// Per-namespace opaque caches (the dcache stores each PCC here).
    /// Copy-on-write: the fastpath's PCC fetch never takes a lock.
    caches: SnapMap<u64, Arc<dyn Any + Send + Sync>>,
}

impl Cred {
    /// A root credential (uid 0, gid 0, no supplementary groups).
    pub fn root() -> Arc<Cred> {
        CredBuilder::new(0, 0).build()
    }

    /// A plain user credential.
    pub fn user(uid: u32, gid: u32) -> Arc<Cred> {
        CredBuilder::new(uid, gid).build()
    }

    /// This credential's unique id.
    pub fn id(&self) -> CredId {
        self.id
    }

    /// True if `gid` is the primary or a supplementary group.
    pub fn in_group(&self, gid: u32) -> bool {
        self.gid == gid || self.groups.binary_search(&gid).is_ok()
    }

    /// Content equality — the `commit_creds` dedup predicate. Two creds
    /// are equal when every permission-relevant field matches, including
    /// LSM state; cache attachments are explicitly *not* compared.
    pub fn content_eq(&self, other: &Cred) -> bool {
        if self.uid != other.uid || self.gid != other.gid || self.groups != other.groups {
            return false;
        }
        match (&self.security, &other.security) {
            (None, None) => true,
            (Some(a), Some(b)) => a.blob_eq(b.as_ref()),
            _ => false,
        }
    }

    /// Returns the cache attached for namespace `ns`, creating it with
    /// `make` on first use. The dcache stores one PCC per (cred, ns)
    /// here. The hit path is lock-free.
    pub fn cache_for(
        &self,
        ns: u64,
        make: impl FnOnce() -> Arc<dyn Any + Send + Sync>,
    ) -> Arc<dyn Any + Send + Sync> {
        self.caches.get_or_insert_with(ns, make)
    }

    /// Borrows the cache attached for namespace `ns` under a caller-held
    /// epoch guard — the fastpath variant of
    /// [`cache_for`](Cred::cache_for): no nested pin, no `Arc` clone,
    /// `None` when the cache was never attached.
    pub fn cache_ref<'g>(
        &self,
        ns: u64,
        guard: &'g dc_rcu::Guard,
    ) -> Option<&'g Arc<dyn Any + Send + Sync>> {
        self.caches.get_ref(ns, guard)
    }

    /// Drops every attached cache (used on PCC-wide invalidation, e.g.
    /// the paper's version-counter wraparound flush).
    pub fn clear_caches(&self) {
        self.caches.clear();
    }

    /// Detaches the cache attached for namespace `ns`, if any — the
    /// dcache's PCC eviction policy and namespace teardown both end a
    /// PCC's life here. In-flight readers holding an epoch-guard borrow
    /// of the old snapshot finish safely; the next
    /// [`cache_for`](Cred::cache_for) rebuilds from scratch.
    pub fn remove_cache(&self, ns: u64) -> Option<Arc<dyn Any + Send + Sync>> {
        self.caches.remove(ns)
    }
}

impl std::fmt::Debug for Cred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cred")
            .field("id", &self.id)
            .field("uid", &self.uid)
            .field("gid", &self.gid)
            .field("groups", &self.groups)
            .field("security", &self.security.as_ref().map(|s| s.label()))
            .finish()
    }
}

/// A mutable credential under construction (the `prepare_creds` copy).
#[derive(Clone)]
pub struct CredBuilder {
    /// Effective user id.
    pub uid: u32,
    /// Effective group id.
    pub gid: u32,
    /// Supplementary groups (sorted on build).
    pub groups: Vec<u32>,
    /// LSM-private state.
    pub security: Option<Arc<dyn SecurityBlob>>,
}

impl CredBuilder {
    /// Starts from explicit ids.
    pub fn new(uid: u32, gid: u32) -> Self {
        CredBuilder {
            uid,
            gid,
            groups: Vec::new(),
            security: None,
        }
    }

    /// Adds supplementary groups.
    pub fn with_groups(mut self, groups: &[u32]) -> Self {
        self.groups.extend_from_slice(groups);
        self
    }

    /// Attaches LSM state.
    pub fn with_security(mut self, blob: Arc<dyn SecurityBlob>) -> Self {
        self.security = Some(blob);
        self
    }

    /// Finalizes into a fresh immutable credential with a new id and
    /// empty caches.
    pub fn build(mut self) -> Arc<Cred> {
        self.groups.sort_unstable();
        self.groups.dedup();
        Arc::new(Cred {
            id: NEXT_CRED_ID.fetch_add(1, Ordering::Relaxed),
            uid: self.uid,
            gid: self.gid,
            groups: self.groups,
            security: self.security,
            caches: SnapMap::new(),
        })
    }
}

/// Begins a credential change: a mutable copy of `old` (Linux
/// `prepare_creds`).
pub fn prepare_creds(old: &Cred) -> CredBuilder {
    CredBuilder {
        uid: old.uid,
        gid: old.gid,
        groups: old.groups.clone(),
        security: old.security.clone(),
    }
}

/// Applies a prepared credential to a task (Linux `commit_creds`).
///
/// If the prepared contents are identical to `old`, the old credential —
/// **and therefore its prefix check cache** — is reused and shared; this is
/// the paper's fix for Linux's liberal allocation of unchanged creds
/// (§4.1). Otherwise a brand-new credential (with an empty PCC) is built.
pub fn commit_creds(old: &Arc<Cred>, new: CredBuilder) -> Arc<Cred> {
    let candidate = new.build();
    if old.content_eq(&candidate) {
        old.clone()
    } else {
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestBlob(String);

    impl SecurityBlob for TestBlob {
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn blob_eq(&self, other: &dyn SecurityBlob) -> bool {
            other
                .as_any()
                .downcast_ref::<TestBlob>()
                .is_some_and(|o| o.0 == self.0)
        }
        fn label(&self) -> String {
            self.0.clone()
        }
    }

    #[test]
    fn ids_are_unique() {
        let a = Cred::user(1, 1);
        let b = Cred::user(1, 1);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn group_membership() {
        let c = CredBuilder::new(5, 10).with_groups(&[30, 20, 20]).build();
        assert!(c.in_group(10));
        assert!(c.in_group(20));
        assert!(c.in_group(30));
        assert!(!c.in_group(40));
    }

    #[test]
    fn commit_reuses_identical_cred() {
        let old = CredBuilder::new(4, 4).with_groups(&[7]).build();
        let prepared = prepare_creds(&old);
        let committed = commit_creds(&old, prepared);
        assert_eq!(committed.id(), old.id(), "unchanged commit must reuse");
    }

    #[test]
    fn commit_allocates_on_change() {
        let old = Cred::user(4, 4);
        let mut prepared = prepare_creds(&old);
        prepared.uid = 0; // setuid
        let committed = commit_creds(&old, prepared);
        assert_ne!(committed.id(), old.id());
        assert_eq!(committed.uid, 0);
    }

    #[test]
    fn security_blob_participates_in_dedup() {
        let base = CredBuilder::new(1, 1)
            .with_security(Arc::new(TestBlob("confined".into())))
            .build();
        // Same blob content → reuse.
        let mut same = prepare_creds(&base);
        same.security = Some(Arc::new(TestBlob("confined".into())));
        assert_eq!(commit_creds(&base, same).id(), base.id());
        // Different blob content → new cred.
        let mut diff = prepare_creds(&base);
        diff.security = Some(Arc::new(TestBlob("unconfined".into())));
        assert_ne!(commit_creds(&base, diff).id(), base.id());
        // Dropping the blob → new cred.
        let mut none = prepare_creds(&base);
        none.security = None;
        assert_ne!(commit_creds(&base, none).id(), base.id());
    }

    #[test]
    fn caches_are_per_namespace_and_persistent() {
        let c = Cred::user(9, 9);
        let a = c.cache_for(1, || Arc::new(42u32));
        let b = c.cache_for(1, || Arc::new(43u32));
        assert_eq!(
            a.downcast_ref::<u32>(),
            b.downcast_ref::<u32>(),
            "same namespace shares the cache"
        );
        let other = c.cache_for(2, || Arc::new(99u32));
        assert_eq!(other.downcast_ref::<u32>(), Some(&99));
        c.clear_caches();
        let fresh = c.cache_for(1, || Arc::new(7u32));
        assert_eq!(fresh.downcast_ref::<u32>(), Some(&7));
    }

    #[test]
    fn debug_prints_label_not_blob() {
        let c = CredBuilder::new(1, 2)
            .with_security(Arc::new(TestBlob("role_r".into())))
            .build();
        let s = format!("{c:?}");
        assert!(s.contains("role_r"));
    }
}
