//! Classic POSIX discretionary access control.

use crate::credential::Cred;
use crate::lsm::{Lsm, PermCtx, MAY_EXEC};
#[cfg(test)]
use crate::lsm::{MAY_READ, MAY_WRITE};
use dc_fs::{FileType, FsError, FsResult};

/// The default discretionary access control module: owner/group/other
/// mode-bit checks with the standard root overrides (`CAP_DAC_OVERRIDE` /
/// `CAP_DAC_READ_SEARCH` behavior).
pub struct Dac;

impl Dac {
    fn triplet_for(cred: &Cred, uid: u32, gid: u32, mode: u16) -> u32 {
        if cred.uid == uid {
            ((mode >> 6) & 0o7) as u32
        } else if cred.in_group(gid) {
            ((mode >> 3) & 0o7) as u32
        } else {
            (mode & 0o7) as u32
        }
    }
}

impl Lsm for Dac {
    fn name(&self) -> &'static str {
        "dac"
    }

    fn inode_permission(&self, cred: &Cred, ctx: &PermCtx<'_>, mask: u32) -> FsResult<()> {
        let attr = ctx.attr;
        if cred.uid == 0 {
            // Root: read/write always; search on directories always;
            // execute on files only if some execute bit is set.
            if mask & MAY_EXEC != 0 && attr.ftype != FileType::Directory && attr.mode & 0o111 == 0 {
                return Err(FsError::Access);
            }
            return Ok(());
        }
        let granted = Self::triplet_for(cred, attr.uid, attr.gid, attr.mode);
        // Mode triplet is rwx = 4,2,1; the MAY_* masks use the same shape.
        if mask & !granted != 0 {
            return Err(FsError::Access);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::credential::CredBuilder;
    use dc_fs::InodeAttr;

    fn attr(mode: u16, uid: u32, gid: u32, ftype: FileType) -> InodeAttr {
        InodeAttr {
            ino: 1,
            ftype,
            mode,
            uid,
            gid,
            nlink: 1,
            size: 0,
            mtime: 0,
            ctime: 0,
        }
    }

    fn check(cred: &Cred, attr: &InodeAttr, mask: u32) -> FsResult<()> {
        Dac.inode_permission(cred, &PermCtx { attr, path: None }, mask)
    }

    #[test]
    fn owner_uses_owner_bits() {
        let alice = Cred::user(1000, 1000);
        let a = attr(0o700, 1000, 2000, FileType::Regular);
        assert!(check(&alice, &a, MAY_READ | MAY_WRITE | MAY_EXEC).is_ok());
        // Owner bits apply even when group/other would deny more...
        let a = attr(0o077, 1000, 1000, FileType::Regular);
        // ...and the owner triplet is the ONLY one consulted.
        assert_eq!(check(&alice, &a, MAY_READ), Err(FsError::Access));
    }

    #[test]
    fn group_membership_selects_group_bits() {
        let bob = CredBuilder::new(1001, 100).with_groups(&[200]).build();
        let a = attr(0o640, 1, 200, FileType::Regular);
        assert!(check(&bob, &a, MAY_READ).is_ok());
        assert_eq!(check(&bob, &a, MAY_WRITE), Err(FsError::Access));
    }

    #[test]
    fn other_bits_for_strangers() {
        let eve = Cred::user(5000, 5000);
        let a = attr(0o754, 1, 1, FileType::Regular);
        assert!(check(&eve, &a, MAY_READ).is_ok());
        assert_eq!(check(&eve, &a, MAY_EXEC), Err(FsError::Access));
    }

    #[test]
    fn directory_search_is_exec_bit() {
        let alice = Cred::user(1000, 1000);
        let searchable = attr(0o711, 0, 0, FileType::Directory);
        assert!(check(&alice, &searchable, MAY_EXEC).is_ok());
        // Search without read: can't list, can traverse.
        assert_eq!(check(&alice, &searchable, MAY_READ), Err(FsError::Access));
        let locked = attr(0o700, 0, 0, FileType::Directory);
        assert_eq!(check(&alice, &locked, MAY_EXEC), Err(FsError::Access));
    }

    #[test]
    fn root_overrides_except_plain_file_exec() {
        let root = Cred::root();
        let secret = attr(0o000, 1000, 1000, FileType::Regular);
        assert!(check(&root, &secret, MAY_READ | MAY_WRITE).is_ok());
        assert_eq!(check(&root, &secret, MAY_EXEC), Err(FsError::Access));
        let script = attr(0o001, 1000, 1000, FileType::Regular);
        assert!(check(&root, &script, MAY_EXEC).is_ok());
        let dir = attr(0o000, 1000, 1000, FileType::Directory);
        assert!(check(&root, &dir, MAY_EXEC).is_ok());
    }
}
