//! Model-based property test: memfs against an in-memory reference model.
//!
//! Random sequences of file-system operations run against both the real
//! ext2-flavored implementation (serialized through the block device) and
//! a trivial HashMap model; observable outcomes must agree. A final
//! sync + remount replays the reads to check on-disk durability.

use dc_blockdev::{CachedDisk, DiskConfig};
use dc_fs::{FileSystem, FileType, FsError, MemFs, MemFsConfig};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Mkdir(u8, String),
    Create(u8, String),
    Symlink(u8, String, String),
    Unlink(u8, String),
    Rmdir(u8, String),
    Rename(u8, String, u8, String),
    Lookup(u8, String),
    Readdir(u8),
    Write(u8, String, usize),
    ReadBack(u8, String),
}

fn name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("bb".to_string()),
        Just("ccc".to_string()),
        Just("d-file".to_string()),
        Just("e.txt".to_string()),
    ]
}

fn op() -> impl Strategy<Value = Op> {
    // `u8` selects a directory slot out of a small pool the runner keeps.
    prop_oneof![
        (0u8..4, name()).prop_map(|(d, n)| Op::Mkdir(d, n)),
        (0u8..4, name()).prop_map(|(d, n)| Op::Create(d, n)),
        (0u8..4, name(), name()).prop_map(|(d, n, t)| Op::Symlink(d, n, t)),
        (0u8..4, name()).prop_map(|(d, n)| Op::Unlink(d, n)),
        (0u8..4, name()).prop_map(|(d, n)| Op::Rmdir(d, n)),
        (0u8..4, name(), 0u8..4, name()).prop_map(|(a, n, b, m)| Op::Rename(a, n, b, m)),
        (0u8..4, name()).prop_map(|(d, n)| Op::Lookup(d, n)),
        (0u8..4).prop_map(Op::Readdir),
        (0u8..4, name(), 0usize..9000).prop_map(|(d, n, len)| Op::Write(d, n, len)),
        (0u8..4, name()).prop_map(|(d, n)| Op::ReadBack(d, n)),
    ]
}

/// The reference model: directories as name → node maps.
#[derive(Debug, Clone, Default)]
struct ModelDir {
    entries: HashMap<String, ModelNode>,
}

#[derive(Debug, Clone)]
enum ModelNode {
    File(Vec<u8>),
    Dir(usize), // index into the dirs arena
    Link(String),
}

struct Model {
    dirs: Vec<ModelDir>,
}

impl Model {
    fn new() -> Model {
        Model {
            dirs: vec![ModelDir::default()],
        }
    }
}

fn errname<T>(r: &Result<T, FsError>) -> String {
    match r {
        Ok(_) => "ok".into(),
        Err(e) => e.errno_name().into(),
    }
}

fn run_model(ops: &[Op]) {
    let disk = Arc::new(CachedDisk::new(DiskConfig {
        capacity_blocks: 1 << 14,
        cache_pages: 256, // small: force writeback traffic
        ..Default::default()
    }));
    let fs = MemFs::mkfs(
        disk.clone(),
        MemFsConfig {
            max_inodes: 4096,
            ..Default::default()
        },
    )
    .unwrap();
    let mut model = Model::new();
    // Directory slots: model index ↔ real ino. Slot 0 is the root;
    // mkdirs append (up to the pool size the op generator addresses).
    let mut slots: Vec<(usize, u64)> = vec![(0, fs.root_ino())];

    for op in ops {
        match op {
            Op::Mkdir(d, n) => {
                let (mi, ri) = slots[*d as usize % slots.len()];
                let real = fs.mkdir(ri, n, 0o755, 0, 0);
                let model_has = model.dirs[mi].entries.contains_key(n);
                if model_has {
                    assert_eq!(errname(&real), "EEXIST", "mkdir over existing {n}");
                } else {
                    let attr = real.expect("model says mkdir should succeed");
                    assert_eq!(attr.ftype, FileType::Directory);
                    let new_idx = model.dirs.len();
                    model.dirs.push(ModelDir::default());
                    model.dirs[mi]
                        .entries
                        .insert(n.clone(), ModelNode::Dir(new_idx));
                    if slots.len() < 4 {
                        slots.push((new_idx, attr.ino));
                    }
                }
            }
            Op::Create(d, n) => {
                let (mi, ri) = slots[*d as usize % slots.len()];
                let real = fs.create(ri, n, 0o644, 0, 0);
                if model.dirs[mi].entries.contains_key(n) {
                    assert_eq!(errname(&real), "EEXIST");
                } else {
                    real.expect("create should succeed");
                    model.dirs[mi]
                        .entries
                        .insert(n.clone(), ModelNode::File(Vec::new()));
                }
            }
            Op::Symlink(d, n, t) => {
                let (mi, ri) = slots[*d as usize % slots.len()];
                let real = fs.symlink(ri, n, t, 0, 0);
                if model.dirs[mi].entries.contains_key(n) {
                    assert_eq!(errname(&real), "EEXIST");
                } else {
                    real.expect("symlink should succeed");
                    model.dirs[mi]
                        .entries
                        .insert(n.clone(), ModelNode::Link(t.clone()));
                }
            }
            Op::Unlink(d, n) => {
                let (mi, ri) = slots[*d as usize % slots.len()];
                let real = fs.unlink(ri, n);
                match model.dirs[mi].entries.get(n) {
                    None => assert_eq!(errname(&real), "ENOENT"),
                    Some(ModelNode::Dir(_)) => assert_eq!(errname(&real), "EISDIR"),
                    Some(_) => {
                        real.expect("unlink should succeed");
                        model.dirs[mi].entries.remove(n);
                    }
                }
            }
            Op::Rmdir(d, n) => {
                let (mi, ri) = slots[*d as usize % slots.len()];
                let real = fs.rmdir(ri, n);
                match model.dirs[mi].entries.get(n) {
                    None => assert_eq!(errname(&real), "ENOENT"),
                    Some(ModelNode::Dir(idx)) => {
                        let idx = *idx;
                        if model.dirs[idx].entries.is_empty() {
                            // Keep slot-addressed directories alive so the
                            // slot table never dangles.
                            if slots.iter().any(|(m, _)| *m == idx) {
                                assert_eq!(errname(&real), "ok");
                                model.dirs[mi].entries.remove(n);
                                // Drop the slot too: replace with root.
                                for s in slots.iter_mut() {
                                    if s.0 == idx {
                                        *s = (0, fs.root_ino());
                                    }
                                }
                            } else {
                                assert_eq!(errname(&real), "ok");
                                model.dirs[mi].entries.remove(n);
                            }
                        } else {
                            assert_eq!(errname(&real), "ENOTEMPTY");
                        }
                    }
                    Some(_) => assert_eq!(errname(&real), "ENOTDIR"),
                }
            }
            Op::Rename(da, n, db, m) => {
                let (mia, ria) = slots[*da as usize % slots.len()];
                let (mib, rib) = slots[*db as usize % slots.len()];
                let real = fs.rename(ria, n, rib, m);
                // Mirror POSIX rename in the model, conservatively: only
                // reproduce the cases the model can decide, and otherwise
                // just require agreement on success/failure by replaying
                // the precondition logic.
                let src = model.dirs[mia].entries.get(n).cloned();
                match src {
                    None => assert_eq!(errname(&real), "ENOENT"),
                    Some(src_node) => {
                        if mia == mib && n == m {
                            assert_eq!(errname(&real), "ok");
                            continue;
                        }
                        // Renaming a slot-addressed directory would leave
                        // dangling slots; the generator's 5-name alphabet
                        // makes this rare — skip model verification but
                        // require the fs not to corrupt itself.
                        let dst = model.dirs[mib].entries.get(m).cloned();
                        let ok = match (&src_node, &dst) {
                            (_, None) => true,
                            (ModelNode::Dir(_), Some(ModelNode::Dir(di))) => {
                                model.dirs[*di].entries.is_empty()
                            }
                            (ModelNode::Dir(_), Some(_)) => false,
                            (_, Some(ModelNode::Dir(_))) => false,
                            (_, Some(_)) => true,
                        };
                        // Directory cycle corner (rename dir into itself)
                        // can't occur: slots only go downward from root
                        // and the generator uses distinct slots. Apply.
                        if ok {
                            assert_eq!(errname(&real), "ok", "rename {n}->{m}");
                            if let Some(ModelNode::Dir(di)) = dst {
                                // Replaced empty dir: fix any slots.
                                for s in slots.iter_mut() {
                                    if s.0 == di {
                                        *s = (0, fs.root_ino());
                                    }
                                }
                            }
                            model.dirs[mia].entries.remove(n);
                            model.dirs[mib].entries.insert(m.clone(), src_node);
                        } else {
                            assert!(real.is_err(), "model expected rename failure");
                        }
                    }
                }
            }
            Op::Lookup(d, n) => {
                let (mi, ri) = slots[*d as usize % slots.len()];
                let real = fs.lookup(ri, n);
                match model.dirs[mi].entries.get(n) {
                    None => assert_eq!(errname(&real), "ENOENT"),
                    Some(node) => {
                        let attr = real.expect("lookup should find");
                        let want = match node {
                            ModelNode::File(_) => FileType::Regular,
                            ModelNode::Dir(_) => FileType::Directory,
                            ModelNode::Link(_) => FileType::Symlink,
                        };
                        assert_eq!(attr.ftype, want);
                    }
                }
            }
            Op::Readdir(d) => {
                let (mi, ri) = slots[*d as usize % slots.len()];
                let mut out = Vec::new();
                let mut cursor = 0u64;
                loop {
                    match fs.readdir(ri, cursor, 7, &mut out).unwrap() {
                        Some(c) => cursor = c,
                        None => break,
                    }
                }
                let mut got: Vec<String> = out.into_iter().map(|e| e.name).collect();
                got.sort();
                let mut want: Vec<String> = model.dirs[mi].entries.keys().cloned().collect();
                want.sort();
                assert_eq!(got, want, "readdir mismatch in slot {d}");
            }
            Op::Write(d, n, len) => {
                let (mi, ri) = slots[*d as usize % slots.len()];
                if let Some(ModelNode::File(content)) = model.dirs[mi].entries.get_mut(n) {
                    let attr = fs.lookup(ri, n).expect("model has the file");
                    let data: Vec<u8> = (0..*len).map(|i| (i % 251) as u8).collect();
                    fs.write(attr.ino, 0, &data).expect("write");
                    if content.len() < data.len() {
                        content.resize(data.len(), 0);
                    }
                    content[..data.len()].copy_from_slice(&data);
                }
            }
            Op::ReadBack(d, n) => {
                let (mi, ri) = slots[*d as usize % slots.len()];
                if let Some(ModelNode::File(content)) = model.dirs[mi].entries.get(n) {
                    let attr = fs.lookup(ri, n).expect("model has the file");
                    assert_eq!(attr.size as usize, content.len());
                    let data = fs.read(attr.ino, 0, content.len().max(1)).unwrap();
                    assert_eq!(&data[..], &content[..]);
                }
            }
        }
    }

    // Durability: remount and re-verify the root listing.
    fs.sync().unwrap();
    let mut want: Vec<String> = model.dirs[0].entries.keys().cloned().collect();
    want.sort();
    drop(fs);
    disk.drop_caches();
    let fs2 = MemFs::mount(disk).unwrap();
    let mut out = Vec::new();
    let mut cursor = 0u64;
    loop {
        match fs2.readdir(fs2.root_ino(), cursor, 16, &mut out).unwrap() {
            Some(c) => cursor = c,
            None => break,
        }
    }
    let mut got: Vec<String> = out.into_iter().map(|e| e.name).collect();
    got.sort();
    assert_eq!(got, want, "root listing diverged after remount");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    #[test]
    fn memfs_matches_reference_model(ops in prop::collection::vec(op(), 1..80)) {
        run_model(&ops);
    }
}

#[test]
fn memfs_model_regression_rename_cases() {
    run_model(&[
        Op::Mkdir(0, "a".into()),
        Op::Create(0, "bb".into()),
        Op::Rename(0, "bb".into(), 1, "bb".into()),
        Op::Readdir(0),
        Op::Readdir(1),
        Op::Rename(1, "bb".into(), 0, "a".into()),
        Op::Lookup(0, "a".into()),
    ]);
}
