//! A procfs-like pseudo file system.
//!
//! Entries are registered programmatically and file content is produced by
//! generator closures at read time — there is no backing store and (as in
//! Linux's `/proc`) regular files report size 0. Its distinguishing
//! property for this reproduction is [`FileSystem::is_pseudo`], which the
//! baseline directory cache uses to *suppress* negative dentries; §5.2 of
//! the paper argues (and the optimized configuration shows) that negative
//! dentries pay off even for in-memory file systems.
//!
//! Registry mutations ([`PseudoFs::add_dir`] and friends) performed while a
//! kernel is live must be followed by a VFS-level invalidation of the
//! affected path; workloads register their tree before running.

use crate::api::{DirEntry, FileSystem, FileType, FsStats, InodeAttr, SetAttr, StatFs};
use crate::error::{FsError, FsResult};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Content generator for a pseudo file.
pub type Generator = Arc<dyn Fn() -> Vec<u8> + Send + Sync>;

/// One registered pseudo node.
pub struct PseudoNode {
    ftype: FileType,
    mode: u16,
    uid: u32,
    gid: u32,
    /// Children (directories only), name → ino.
    children: BTreeMap<String, u64>,
    /// Content generator (regular files only).
    generator: Option<Generator>,
    /// Link target (symlinks only).
    target: Option<String>,
    nlink: u32,
}

/// The root inode number.
const ROOT_INO: u64 = 1;

/// A procfs-like pseudo file system.
///
/// # Examples
///
/// ```
/// use dc_fs::{PseudoFs, FileSystem};
///
/// let proc = PseudoFs::new(0o555);
/// let pid1 = proc.add_dir(proc.root_ino(), "1", 0o555).unwrap();
/// proc.add_file(pid1, "status", 0o444, || b"State: R".to_vec()).unwrap();
/// let st = proc.lookup(pid1, "status").unwrap();
/// assert_eq!(&proc.read(st.ino, 0, 64).unwrap()[..], b"State: R");
/// ```
pub struct PseudoFs {
    nodes: RwLock<HashMap<u64, PseudoNode>>,
    next_ino: AtomicU64,
    stats: FsStats,
}

impl PseudoFs {
    /// Creates an empty pseudo file system with the given root mode.
    pub fn new(root_mode: u16) -> Arc<PseudoFs> {
        let mut nodes = HashMap::new();
        nodes.insert(
            ROOT_INO,
            PseudoNode {
                ftype: FileType::Directory,
                mode: root_mode,
                uid: 0,
                gid: 0,
                children: BTreeMap::new(),
                generator: None,
                target: None,
                nlink: 2,
            },
        );
        Arc::new(PseudoFs {
            nodes: RwLock::new(nodes),
            next_ino: AtomicU64::new(ROOT_INO + 1),
            stats: FsStats::default(),
        })
    }

    fn register(&self, parent: u64, name: &str, node: PseudoNode) -> FsResult<u64> {
        if name.is_empty() || name.contains('/') || name == "." || name == ".." {
            return Err(FsError::Inval);
        }
        let is_dir = node.ftype == FileType::Directory;
        let mut nodes = self.nodes.write();
        let p = nodes.get(&parent).ok_or(FsError::NoEnt)?;
        if p.ftype != FileType::Directory {
            return Err(FsError::NotDir);
        }
        if p.children.contains_key(name) {
            return Err(FsError::Exist);
        }
        let ino = self.next_ino.fetch_add(1, Ordering::Relaxed);
        nodes.insert(ino, node);
        let Some(p) = nodes.get_mut(&parent) else {
            // The parent was checked above and the write lock is still
            // held; missing now means the table is corrupt.
            nodes.remove(&ino);
            return Err(FsError::Io);
        };
        p.children.insert(name.to_string(), ino);
        if is_dir {
            p.nlink += 1;
        }
        Ok(ino)
    }

    /// Registers a directory; returns its ino.
    pub fn add_dir(&self, parent: u64, name: &str, mode: u16) -> FsResult<u64> {
        self.register(
            parent,
            name,
            PseudoNode {
                ftype: FileType::Directory,
                mode,
                uid: 0,
                gid: 0,
                children: BTreeMap::new(),
                generator: None,
                target: None,
                nlink: 2,
            },
        )
    }

    /// Registers a generated file; returns its ino.
    pub fn add_file<F>(&self, parent: u64, name: &str, mode: u16, gen: F) -> FsResult<u64>
    where
        F: Fn() -> Vec<u8> + Send + Sync + 'static,
    {
        self.register(
            parent,
            name,
            PseudoNode {
                ftype: FileType::Regular,
                mode,
                uid: 0,
                gid: 0,
                children: BTreeMap::new(),
                generator: Some(Arc::new(gen)),
                target: None,
                nlink: 1,
            },
        )
    }

    /// Registers a symlink; returns its ino.
    pub fn add_symlink(&self, parent: u64, name: &str, target: &str) -> FsResult<u64> {
        self.register(
            parent,
            name,
            PseudoNode {
                ftype: FileType::Symlink,
                mode: 0o777,
                uid: 0,
                gid: 0,
                children: BTreeMap::new(),
                generator: None,
                target: Some(target.to_string()),
                nlink: 1,
            },
        )
    }

    /// Unregisters `name` (recursively for directories).
    pub fn remove_entry(&self, parent: u64, name: &str) -> FsResult<()> {
        let mut nodes = self.nodes.write();
        let p = nodes.get_mut(&parent).ok_or(FsError::NoEnt)?;
        let ino = p.children.remove(name).ok_or(FsError::NoEnt)?;
        let was_dir = nodes
            .get(&ino)
            .map(|n| n.ftype == FileType::Directory)
            .unwrap_or(false);
        if was_dir {
            if let Some(p) = nodes.get_mut(&parent) {
                p.nlink -= 1;
            }
        }
        // Recursively drop the subtree.
        let mut stack = vec![ino];
        while let Some(i) = stack.pop() {
            if let Some(n) = nodes.remove(&i) {
                stack.extend(n.children.values().copied());
            }
        }
        Ok(())
    }

    fn attr_of(&self, ino: u64, n: &PseudoNode) -> InodeAttr {
        InodeAttr {
            ino,
            ftype: n.ftype,
            mode: n.mode,
            uid: n.uid,
            gid: n.gid,
            nlink: n.nlink,
            // Like procfs: generated files report size 0; symlinks report
            // their target length.
            size: n.target.as_ref().map(|t| t.len() as u64).unwrap_or(0),
            mtime: 0,
            ctime: 0,
        }
    }
}

impl FileSystem for PseudoFs {
    fn fs_type(&self) -> &'static str {
        "pseudofs"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn root_ino(&self) -> u64 {
        ROOT_INO
    }

    fn getattr(&self, ino: u64) -> FsResult<InodeAttr> {
        self.stats.getattrs.fetch_add(1, Ordering::Relaxed);
        let nodes = self.nodes.read();
        let n = nodes.get(&ino).ok_or(FsError::NoEnt)?;
        Ok(self.attr_of(ino, n))
    }

    fn lookup(&self, dir: u64, name: &str) -> FsResult<InodeAttr> {
        self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        let nodes = self.nodes.read();
        let d = nodes.get(&dir).ok_or(FsError::NoEnt)?;
        if d.ftype != FileType::Directory {
            return Err(FsError::NotDir);
        }
        let ino = *d.children.get(name).ok_or(FsError::NoEnt)?;
        let n = nodes.get(&ino).ok_or(FsError::NoEnt)?;
        Ok(self.attr_of(ino, n))
    }

    fn readdir(
        &self,
        dir: u64,
        offset: u64,
        max: usize,
        out: &mut Vec<DirEntry>,
    ) -> FsResult<Option<u64>> {
        self.stats.readdirs.fetch_add(1, Ordering::Relaxed);
        let nodes = self.nodes.read();
        let d = nodes.get(&dir).ok_or(FsError::NoEnt)?;
        if d.ftype != FileType::Directory {
            return Err(FsError::NotDir);
        }
        for (emitted, (i, (name, &ino))) in d
            .children
            .iter()
            .enumerate()
            .skip(offset as usize)
            .enumerate()
        {
            if emitted == max {
                return Ok(Some(i as u64));
            }
            let ftype = nodes
                .get(&ino)
                .map(|n| n.ftype)
                .unwrap_or(FileType::Regular);
            out.push(DirEntry {
                name: name.clone(),
                ino,
                ftype,
            });
        }
        Ok(None)
    }

    fn create(&self, _: u64, _: &str, _: u16, _: u32, _: u32) -> FsResult<InodeAttr> {
        Err(FsError::Perm)
    }

    fn mkdir(&self, _: u64, _: &str, _: u16, _: u32, _: u32) -> FsResult<InodeAttr> {
        Err(FsError::Perm)
    }

    fn symlink(&self, _: u64, _: &str, _: &str, _: u32, _: u32) -> FsResult<InodeAttr> {
        Err(FsError::Perm)
    }

    fn readlink(&self, ino: u64) -> FsResult<String> {
        let nodes = self.nodes.read();
        let n = nodes.get(&ino).ok_or(FsError::NoEnt)?;
        n.target.clone().ok_or(FsError::Inval)
    }

    fn link(&self, _: u64, _: &str, _: u64) -> FsResult<InodeAttr> {
        Err(FsError::Perm)
    }

    fn unlink(&self, _: u64, _: &str) -> FsResult<()> {
        Err(FsError::Perm)
    }

    fn rmdir(&self, _: u64, _: &str) -> FsResult<()> {
        Err(FsError::Perm)
    }

    fn rename(&self, _: u64, _: &str, _: u64, _: &str) -> FsResult<()> {
        Err(FsError::Perm)
    }

    fn setattr(&self, _: u64, _: SetAttr) -> FsResult<InodeAttr> {
        Err(FsError::Perm)
    }

    fn read(&self, ino: u64, offset: u64, len: usize) -> FsResult<Bytes> {
        let gen = {
            let nodes = self.nodes.read();
            let n = nodes.get(&ino).ok_or(FsError::NoEnt)?;
            if n.ftype == FileType::Directory {
                return Err(FsError::IsDir);
            }
            n.generator.clone().ok_or(FsError::Inval)?
        };
        // Generate outside the lock: generators may be slow.
        let data = gen();
        let start = (offset as usize).min(data.len());
        let end = (start + len).min(data.len());
        Ok(Bytes::copy_from_slice(&data[start..end]))
    }

    fn write(&self, _: u64, _: u64, _: &[u8]) -> FsResult<usize> {
        Err(FsError::Perm)
    }

    fn statfs(&self) -> FsResult<StatFs> {
        let nodes = self.nodes.read();
        Ok(StatFs {
            blocks: 0,
            bfree: 0,
            files: nodes.len() as u64,
            ffree: u64::MAX,
            bsize: 4096,
        })
    }

    fn stats(&self) -> &FsStats {
        &self.stats
    }

    fn is_pseudo(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn procfs() -> Arc<PseudoFs> {
        let p = PseudoFs::new(0o555);
        let pid = p.add_dir(p.root_ino(), "42", 0o555).unwrap();
        p.add_file(pid, "status", 0o444, || b"State: S (sleeping)".to_vec())
            .unwrap();
        p.add_file(p.root_ino(), "meminfo", 0o444, || {
            b"MemTotal: 65536 kB".to_vec()
        })
        .unwrap();
        p.add_symlink(pid, "cwd", "/home/alice").unwrap();
        p
    }

    #[test]
    fn lookup_and_read_generated_content() {
        let p = procfs();
        let pid = p.lookup(p.root_ino(), "42").unwrap();
        assert!(pid.ftype.is_dir());
        let st = p.lookup(pid.ino, "status").unwrap();
        assert_eq!(st.size, 0); // procfs convention
        let content = p.read(st.ino, 0, 1024).unwrap();
        assert_eq!(&content[..], b"State: S (sleeping)");
        // Offset reads.
        assert_eq!(&p.read(st.ino, 7, 1).unwrap()[..], b"S");
    }

    #[test]
    fn missing_entries_are_enoent() {
        let p = procfs();
        assert_eq!(p.lookup(p.root_ino(), "99"), Err(FsError::NoEnt));
    }

    #[test]
    fn readdir_lists_registered_entries() {
        let p = procfs();
        let mut out = Vec::new();
        assert_eq!(p.readdir(p.root_ino(), 0, 100, &mut out).unwrap(), None);
        let names: Vec<_> = out.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["42", "meminfo"]);
    }

    #[test]
    fn readdir_pagination() {
        let p = PseudoFs::new(0o555);
        for i in 0..10 {
            p.add_file(p.root_ino(), &format!("f{i}"), 0o444, Vec::new)
                .unwrap();
        }
        let mut out = Vec::new();
        let next = p.readdir(p.root_ino(), 0, 4, &mut out).unwrap();
        assert_eq!(out.len(), 4);
        let next2 = p
            .readdir(p.root_ino(), next.unwrap(), 100, &mut out)
            .unwrap();
        assert_eq!(next2, None);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn symlink_target_readable() {
        let p = procfs();
        let pid = p.lookup(p.root_ino(), "42").unwrap();
        let cwd = p.lookup(pid.ino, "cwd").unwrap();
        assert_eq!(cwd.ftype, FileType::Symlink);
        assert_eq!(cwd.size, "/home/alice".len() as u64);
        assert_eq!(p.readlink(cwd.ino).unwrap(), "/home/alice");
    }

    #[test]
    fn mutations_rejected() {
        let p = procfs();
        assert_eq!(p.create(p.root_ino(), "x", 0o644, 0, 0), Err(FsError::Perm));
        assert_eq!(p.unlink(p.root_ino(), "meminfo"), Err(FsError::Perm));
        assert_eq!(
            p.rename(p.root_ino(), "42", p.root_ino(), "43"),
            Err(FsError::Perm)
        );
    }

    #[test]
    fn remove_entry_drops_subtree() {
        let p = procfs();
        let root_nlink_before = p.getattr(p.root_ino()).unwrap().nlink;
        p.remove_entry(p.root_ino(), "42").unwrap();
        assert_eq!(p.lookup(p.root_ino(), "42"), Err(FsError::NoEnt));
        assert_eq!(
            p.getattr(p.root_ino()).unwrap().nlink,
            root_nlink_before - 1
        );
        // Subtree nodes are gone from the registry.
        assert_eq!(p.statfs().unwrap().files, 2); // root + meminfo
    }

    #[test]
    fn is_pseudo_flag_set() {
        let p = procfs();
        assert!(p.is_pseudo());
        assert!(p.supports_fastpath());
    }
}
