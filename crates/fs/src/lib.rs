//! Low-level file systems living beneath the VFS and directory cache.
//!
//! The paper's directory-cache optimizations are encapsulated in the VFS:
//! "individual file systems do not have to change their code" (§1). This
//! crate provides that unchanged lower layer:
//!
//! - [`FileSystem`] — the VFS ⇄ file-system contract (the analog of Linux's
//!   `inode_operations`/`file_operations` for metadata).
//! - [`MemFs`] — an ext2-flavored file system whose superblock, bitmaps,
//!   inode table and block-local directory entries are genuinely serialized
//!   onto a [`dc_blockdev::CachedDisk`]. A directory-cache miss therefore
//!   pays real work: block reads (possibly device latency) plus a linear
//!   scan and deserialization of on-disk records — the miss cost structure
//!   that §5's hit-rate optimizations attack.
//! - [`PseudoFs`] — a procfs-like dynamic file system: entries are
//!   generated, there is no backing store, and (as in Linux) the baseline
//!   never creates negative dentries for it — the behavior §5.2 changes.
//! - [`FsError`] — errno-shaped errors shared by every layer above.
//!
//! # Examples
//!
//! ```
//! use dc_fs::{FileSystem, MemFs, FileType};
//! use dc_blockdev::{CachedDisk, DiskConfig};
//! use std::sync::Arc;
//!
//! let disk = Arc::new(CachedDisk::new(DiskConfig::default()));
//! let fs = MemFs::mkfs(disk, Default::default()).unwrap();
//! let root = fs.root_ino();
//! let dir = fs.mkdir(root, "etc", 0o755, 0, 0).unwrap();
//! let file = fs.create(dir.ino, "passwd", 0o644, 0, 0).unwrap();
//! assert_eq!(fs.lookup(dir.ino, "passwd").unwrap().ino, file.ino);
//! assert_eq!(fs.lookup(dir.ino, "shadow").unwrap_err(), dc_fs::FsError::NoEnt);
//! assert_eq!(file.ftype, FileType::Regular);
//! ```

mod api;
mod error;
pub mod memfs;
pub mod pseudofs;

pub use api::{
    DirEntry, FileSystem, FileType, FsStats, InodeAttr, SetAttr, StatFs, MODE_SGID, MODE_STICKY,
    MODE_SUID,
};
pub use error::{FsError, FsResult};
pub use memfs::{
    fsck, FsckError, FsckReport, JournalStats, MemFs, MemFsConfig, ReplayInfo, WarmEntry, WarmLoad,
    WarmReject,
};
pub use pseudofs::{PseudoFs, PseudoNode};
