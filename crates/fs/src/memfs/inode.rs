//! On-disk inode records and logical→physical block mapping.

use super::layout::{Geometry, Reader, Writer, INODE_SIZE, NDIRECT};
use super::store::MetaStore;
use crate::api::{FileType, InodeAttr};
use crate::error::{FsError, FsResult};

/// Bytes of inline storage available for short symlink targets (the
/// pointer area of the record).
pub const INLINE_TARGET_MAX: usize = (NDIRECT + 1) * 8;

/// In-memory image of one on-disk inode record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskInode {
    /// Object type; `None` encodes a free record.
    pub ftype: FileType,
    /// Permission bits.
    pub mode: u16,
    /// Hard link count.
    pub nlink: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Size in bytes.
    pub size: u64,
    /// Modification time (ticks).
    pub mtime: u64,
    /// Change time (ticks).
    pub ctime: u64,
    /// Direct block pointers (0 = hole/unallocated).
    pub direct: [u64; NDIRECT],
    /// Single indirect pointer block (0 = none).
    pub indirect: u64,
    /// Inline symlink target, stored in the pointer area on disk.
    pub inline_target: Option<String>,
}

impl DiskInode {
    /// A fresh inode of the given type.
    pub fn new(ftype: FileType, mode: u16, uid: u32, gid: u32, now: u64) -> Self {
        DiskInode {
            ftype,
            mode,
            nlink: if ftype == FileType::Directory { 2 } else { 1 },
            uid,
            gid,
            size: 0,
            mtime: now,
            ctime: now,
            direct: [0; NDIRECT],
            indirect: 0,
            inline_target: None,
        }
    }

    /// Converts to the VFS-level attribute view.
    pub fn attr(&self, ino: u64) -> InodeAttr {
        InodeAttr {
            ino,
            ftype: self.ftype,
            mode: self.mode,
            uid: self.uid,
            gid: self.gid,
            nlink: self.nlink,
            size: self.size,
            mtime: self.mtime,
            ctime: self.ctime,
        }
    }

    /// Serializes into a 128-byte record.
    pub fn encode(&self) -> [u8; INODE_SIZE] {
        let mut buf = [0u8; INODE_SIZE];
        let mut w = Writer::new(&mut buf);
        w.u8(self.ftype.as_u8());
        w.u8(0); // reserved
        w.u16(self.mode);
        w.u32(self.nlink);
        w.u32(self.uid);
        w.u32(self.gid);
        w.u64(self.size);
        w.u64(self.mtime);
        w.u64(self.ctime);
        // Pointer area: inline symlink target or block pointers.
        if let Some(t) = &self.inline_target {
            debug_assert!(t.len() <= INLINE_TARGET_MAX);
            w.bytes(t.as_bytes());
        } else {
            for d in self.direct {
                w.u64(d);
            }
            w.u64(self.indirect);
        }
        buf
    }

    /// Deserializes a record; `Ok(None)` for a free slot.
    pub fn decode(buf: &[u8]) -> FsResult<Option<DiskInode>> {
        let mut r = Reader::new(buf);
        let ft = r.u8()?;
        if ft == 0 {
            return Ok(None);
        }
        let ftype = FileType::from_u8(ft).ok_or(FsError::Io)?;
        let _ = r.u8()?;
        let mode = r.u16()?;
        let nlink = r.u32()?;
        let uid = r.u32()?;
        let gid = r.u32()?;
        let size = r.u64()?;
        let mtime = r.u64()?;
        let ctime = r.u64()?;
        let mut direct = [0u64; NDIRECT];
        let mut indirect = 0;
        let mut inline_target = None;
        if ftype == FileType::Symlink && (size as usize) <= INLINE_TARGET_MAX {
            let raw = r.bytes(size as usize)?;
            inline_target = Some(String::from_utf8(raw.to_vec()).map_err(|_| FsError::Io)?);
        } else {
            for d in direct.iter_mut() {
                *d = r.u64()?;
            }
            indirect = r.u64()?;
        }
        Ok(Some(DiskInode {
            ftype,
            mode,
            nlink,
            uid,
            gid,
            size,
            mtime,
            ctime,
            direct,
            indirect,
            inline_target,
        }))
    }
}

/// Reads inode `ino` from the table; `Err(NoEnt)` if the slot is free.
pub fn read_inode<S: MetaStore + ?Sized>(
    disk: &S,
    geo: &Geometry,
    ino: u64,
) -> FsResult<DiskInode> {
    if ino >= geo.max_inodes {
        return Err(FsError::Inval);
    }
    let (block, off) = geo.inode_location(ino);
    let data = disk.read_block(block)?;
    DiskInode::decode(&data[off..off + INODE_SIZE])?.ok_or(FsError::NoEnt)
}

/// Writes inode `ino` into the table.
pub fn write_inode<S: MetaStore + ?Sized>(
    disk: &S,
    geo: &Geometry,
    ino: u64,
    di: &DiskInode,
) -> FsResult<()> {
    let (block, off) = geo.inode_location(ino);
    let data = disk.read_block(block)?;
    let mut copy = data.to_vec();
    copy[off..off + INODE_SIZE].copy_from_slice(&di.encode());
    disk.write_block(block, &copy)?;
    Ok(())
}

/// Clears inode `ino`'s record (marks the slot free).
pub fn clear_inode<S: MetaStore + ?Sized>(disk: &S, geo: &Geometry, ino: u64) -> FsResult<()> {
    let (block, off) = geo.inode_location(ino);
    let data = disk.read_block(block)?;
    let mut copy = data.to_vec();
    copy[off..off + INODE_SIZE].fill(0);
    disk.write_block(block, &copy)?;
    Ok(())
}

/// Maximum logical blocks addressable by one inode.
pub fn max_logical_blocks(geo: &Geometry) -> u64 {
    NDIRECT as u64 + (geo.block_size / 8) as u64
}

/// Resolves logical block `lblk` of an inode to a physical block, or
/// `Ok(None)` for a hole.
pub fn bmap<S: MetaStore + ?Sized>(
    disk: &S,
    geo: &Geometry,
    di: &DiskInode,
    lblk: u64,
) -> FsResult<Option<u64>> {
    if lblk < NDIRECT as u64 {
        let p = di.direct[lblk as usize];
        return Ok(if p == 0 { None } else { Some(p) });
    }
    let idx = lblk - NDIRECT as u64;
    if idx >= (geo.block_size / 8) as u64 {
        return Err(FsError::NoSpc); // beyond maximum file size
    }
    if di.indirect == 0 {
        return Ok(None);
    }
    let blk = disk.read_block(di.indirect)?;
    let off = idx as usize * 8;
    let p = u64::from_le_bytes(blk[off..off + 8].try_into().unwrap());
    Ok(if p == 0 { None } else { Some(p) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let mut di = DiskInode::new(FileType::Regular, 0o640, 1000, 100, 42);
        di.size = 9999;
        di.direct[3] = 77;
        di.indirect = 123;
        let buf = di.encode();
        let back = DiskInode::decode(&buf).unwrap().unwrap();
        assert_eq!(di, back);
    }

    #[test]
    fn free_slot_decodes_none() {
        let buf = [0u8; INODE_SIZE];
        assert_eq!(DiskInode::decode(&buf).unwrap(), None);
    }

    #[test]
    fn inline_symlink_round_trip() {
        let mut di = DiskInode::new(FileType::Symlink, 0o777, 0, 0, 1);
        let target = "../lib/x86_64/libc.so".to_string();
        di.size = target.len() as u64;
        di.inline_target = Some(target.clone());
        let back = DiskInode::decode(&di.encode()).unwrap().unwrap();
        assert_eq!(back.inline_target.as_deref(), Some(target.as_str()));
    }

    #[test]
    fn directory_starts_with_nlink_2() {
        let di = DiskInode::new(FileType::Directory, 0o755, 0, 0, 0);
        assert_eq!(di.nlink, 2);
        let f = DiskInode::new(FileType::Regular, 0o644, 0, 0, 0);
        assert_eq!(f.nlink, 1);
    }

    #[test]
    fn attr_projection() {
        let di = DiskInode::new(FileType::Regular, 0o600, 7, 8, 5);
        let a = di.attr(33);
        assert_eq!(a.ino, 33);
        assert_eq!(a.mode, 0o600);
        assert_eq!(a.uid, 7);
        assert_eq!(a.mtime, 5);
    }

    #[test]
    fn corrupt_type_is_io_error() {
        let mut buf = [0u8; INODE_SIZE];
        buf[0] = 99; // invalid type code
        assert_eq!(DiskInode::decode(&buf), Err(FsError::Io));
    }
}
