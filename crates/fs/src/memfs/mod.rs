//! An ext2-flavored file system serialized onto the simulated block device.
//!
//! Layout (all sizes in 4 KiB blocks by default):
//!
//! ```text
//! block 0          superblock
//! ibmap_start..    inode allocation bitmap
//! bbmap_start..    block allocation bitmap
//! itab_start..     inode table (128-byte records, 32 per block)
//! journal_start..  metadata write-ahead journal
//! warmidx_start..  warm-restart directory index (A/B checkpoints)
//! data_start..     data blocks: file content and directory entry streams
//! ```
//!
//! Directories use ext2-style **block-local records** — `lookup` linearly
//! scans and deserializes directory blocks, so a directory-cache miss costs
//! real work proportional to directory size even when every block is in the
//! page cache. This reproduces the miss-cost structure that the paper's
//! directory-completeness and negative-dentry optimizations (§5) avoid.

mod bitmap;
mod dir;
mod fs;
mod fsck;
mod inode;
mod journal;
mod layout;
mod store;
mod warmidx;

pub use fs::{MemFs, MemFsConfig};
pub use fsck::{fsck, FsckError, FsckReport};
pub use journal::{JournalStats, ReplayInfo};
pub use warmidx::{WarmEntry, WarmLoad, WarmReject};
