//! Warm-restart directory index: a journal-style checkpoint of the
//! directory cache's signature→dentry mapping, persisted so a remount
//! can rehydrate the DLHT instead of re-missing its way warm.
//!
//! On-disk format, all little-endian inside `warmidx_start..data_start`:
//!
//! ```text
//! warmidx_start + 0   header copy A ┐  dual headers, generation-stamped:
//! warmidx_start + 1   header copy B ┘  the best valid copy wins at mount
//! warmidx_start + 2.. payload half 0 (warmidx_half blocks)
//! …                   payload half 1 (warmidx_half blocks)
//! ```
//!
//! Header fields: magic, format version, generation, `bound_seq` (the
//! journal transaction the checkpoint is consistent with — never newer
//! than the durable journal tail), entry count, payload byte length,
//! and an FNV-1a checksum over the payload, all sealed by a header
//! checksum. Checkpoint `gen` writes its payload into half `gen % 2`
//! and flushes it **before** either header names it, so a torn
//! checkpoint can lose at most the new generation — the previous
//! generation's header still points at the untouched other half.
//!
//! Reading walks the fallback ladder: newest valid header first; if its
//! payload fails the checksum (torn checkpoint), the older header copy
//! is tried; if no header validates the index is simply absent. Every
//! outcome is typed — corruption degrades to a cold mount, never to a
//! wrong answer. Entry *contents* are deliberately not trusted either:
//! the rehydrator (vfs) re-validates every entry against the recovered
//! inode table and recomputes signatures under the boot hash key before
//! publication.

use super::journal::fnv64;
use super::layout::{Geometry, Reader, Writer};
use crate::error::FsResult;
use dc_blockdev::CachedDisk;

const WI_MAGIC: u64 = 0x4443_5749_4844_5231; // "DCWIHDR1"

/// Current format version; a mismatch rejects the whole index.
pub const WARMIDX_VERSION: u64 = 1;

/// Longest name an entry may carry (matches the fs name limit).
const NAME_MAX: usize = 255;

/// Bytes of one encoded entry before its name.
const ENTRY_FIXED: usize = 32 + 8 + 8 + 32 + 4 + 2;

/// One persisted directory-index entry: a full-path signature and
/// everything needed to revalidate and republish it after a remount.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmEntry {
    /// Full 256-bit signature wire form (`Signature::to_wire` order).
    pub sig: [u64; 4],
    /// Inode the path resolved to at checkpoint time.
    pub ino: u64,
    /// Inode of the parent directory.
    pub parent: u64,
    /// Hash-state accumulator lanes at this path (resume point).
    pub state_acc: [u64; 4],
    /// Hash-state stream position in 32-bit words.
    pub state_pos: u32,
    /// Final path component under `parent`.
    pub name: String,
}

/// Why a present-but-unusable index was rejected wholesale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmReject {
    /// A valid header carries an unknown format version.
    BadVersion {
        /// The version the header claims.
        found: u64,
    },
    /// Every valid header points at a payload that fails its checksum
    /// (torn checkpoint with no intact older generation).
    TornPayload,
    /// The payload passed its checksum but an entry failed to decode
    /// (writer bug or undetected corruption); nothing is trusted.
    Malformed,
    /// The index claims consistency with a journal transaction newer
    /// than what recovery could reconstruct — it describes a future
    /// this disk never reached.
    FutureSeq {
        /// The transaction the index claims to be consistent with.
        bound_seq: u64,
        /// The highest transaction recovery actually recovered.
        recovered_seq: u64,
    },
}

impl std::fmt::Display for WarmReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WarmReject::BadVersion { found } => write!(f, "unknown index version {found}"),
            WarmReject::TornPayload => write!(f, "payload checksum mismatch (torn checkpoint)"),
            WarmReject::Malformed => write!(f, "entry stream undecodable"),
            WarmReject::FutureSeq {
                bound_seq,
                recovered_seq,
            } => write!(
                f,
                "index bound to txn {bound_seq} but recovery reached only {recovered_seq}"
            ),
        }
    }
}

/// The typed outcome of reading the on-disk index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarmLoad {
    /// A consistent index was found.
    Loaded {
        /// Decoded entries, checkpoint order (parents before children).
        entries: Vec<WarmEntry>,
        /// Journal transaction the index is consistent with.
        bound_seq: u64,
        /// Generation of the winning header.
        gen: u64,
    },
    /// No index has ever been written (or both headers are gone).
    Absent,
    /// An index exists but cannot be used; mount falls back cold.
    Rejected(WarmReject),
}

fn encode_header(
    block_size: usize,
    gen: u64,
    bound_seq: u64,
    entries: u64,
    payload_len: u64,
    payload_sum: u64,
) -> Vec<u8> {
    let mut buf = vec![0u8; block_size];
    let mut w = Writer::new(&mut buf);
    w.u64(WI_MAGIC);
    w.u64(WARMIDX_VERSION);
    w.u64(gen);
    w.u64(bound_seq);
    w.u64(entries);
    w.u64(payload_len);
    w.u64(payload_sum);
    let sum = fnv64(&[&buf[..56]]);
    let mut w = Writer::new(&mut buf);
    w.seek(56);
    w.u64(sum);
    buf
}

#[derive(Debug, Clone, Copy)]
struct Header {
    version: u64,
    gen: u64,
    bound_seq: u64,
    entries: u64,
    payload_len: u64,
    payload_sum: u64,
}

fn decode_header(buf: &[u8]) -> Option<Header> {
    let mut r = Reader::new(buf);
    if r.u64().ok()? != WI_MAGIC {
        return None;
    }
    let version = r.u64().ok()?;
    let gen = r.u64().ok()?;
    let bound_seq = r.u64().ok()?;
    let entries = r.u64().ok()?;
    let payload_len = r.u64().ok()?;
    let payload_sum = r.u64().ok()?;
    let sum = r.u64().ok()?;
    if fnv64(&[&buf[..56]]) != sum {
        return None;
    }
    Some(Header {
        version,
        gen,
        bound_seq,
        entries,
        payload_len,
        payload_sum,
    })
}

fn half_start(geo: &Geometry, gen: u64) -> u64 {
    geo.warmidx_start + 2 + (gen % 2) * geo.warmidx_half()
}

fn encode_entry(out: &mut Vec<u8>, e: &WarmEntry) {
    for lane in e.sig {
        out.extend_from_slice(&lane.to_le_bytes());
    }
    out.extend_from_slice(&e.ino.to_le_bytes());
    out.extend_from_slice(&e.parent.to_le_bytes());
    for lane in e.state_acc {
        out.extend_from_slice(&lane.to_le_bytes());
    }
    out.extend_from_slice(&e.state_pos.to_le_bytes());
    out.extend_from_slice(&(e.name.len() as u16).to_le_bytes());
    out.extend_from_slice(e.name.as_bytes());
}

fn decode_entries(payload: &[u8], count: u64) -> Option<Vec<WarmEntry>> {
    let mut r = Reader::new(payload);
    let mut out = Vec::with_capacity(count.min(payload.len() as u64 / ENTRY_FIXED as u64) as usize);
    for _ in 0..count {
        let mut sig = [0u64; 4];
        for lane in sig.iter_mut() {
            *lane = r.u64().ok()?;
        }
        let ino = r.u64().ok()?;
        let parent = r.u64().ok()?;
        let mut acc = [0u64; 4];
        for lane in acc.iter_mut() {
            *lane = r.u64().ok()?;
        }
        let state_pos = r.u32().ok()?;
        let name_len = r.u16().ok()? as usize;
        if name_len == 0 || name_len > NAME_MAX {
            return None;
        }
        let name = std::str::from_utf8(r.bytes(name_len).ok()?).ok()?;
        if ino == 0 || parent == 0 {
            return None;
        }
        out.push(WarmEntry {
            sig,
            ino,
            parent,
            state_acc: acc,
            state_pos,
            name: name.to_owned(),
        });
    }
    Some(out)
}

/// Bytes of payload the region can hold per checkpoint.
pub(crate) fn payload_capacity(geo: &Geometry) -> usize {
    geo.warmidx_half() as usize * geo.block_size
}

/// Invalidates both header copies (mkfs): a reformatted disk must not
/// resurrect a previous file system's index.
pub(crate) fn format(disk: &CachedDisk, geo: &Geometry) -> FsResult<()> {
    let zero = vec![0u8; geo.block_size];
    disk.write_block(geo.warmidx_start, &zero)?;
    disk.write_block(geo.warmidx_start + 1, &zero)?;
    Ok(())
}

/// Writes checkpoint generation `gen`: payload into half `gen % 2`,
/// flushed durable, then both headers, flushed durable. Entries beyond
/// the region's capacity are dropped from the tail (the caller orders
/// parents before children, so any prefix stays parent-closed); returns
/// how many entries were persisted.
pub(crate) fn checkpoint(
    disk: &CachedDisk,
    geo: &Geometry,
    entries: &[WarmEntry],
    bound_seq: u64,
    gen: u64,
) -> FsResult<usize> {
    let cap = payload_capacity(geo);
    let mut payload = Vec::with_capacity(cap.min(entries.len() * (ENTRY_FIXED + 16)));
    let mut kept = 0usize;
    for e in entries {
        debug_assert!(!e.name.is_empty() && e.name.len() <= NAME_MAX);
        let need = ENTRY_FIXED + e.name.len();
        if payload.len() + need > cap {
            break;
        }
        encode_entry(&mut payload, e);
        kept += 1;
    }
    let payload_len = payload.len() as u64;
    let payload_sum = fnv64(&[&payload]);
    let nblocks = payload_len.div_ceil(geo.block_size as u64);
    payload.resize(nblocks as usize * geo.block_size, 0);

    let start = half_start(geo, gen);
    let mut flushed = Vec::with_capacity(nblocks as usize);
    for (i, chunk) in payload.chunks(geo.block_size).enumerate() {
        let b = start + i as u64;
        disk.write_block(b, chunk)?;
        flushed.push(b);
    }
    // Payload durable strictly before any header names it: a cut here
    // leaves the old headers pointing at the untouched other half.
    if !flushed.is_empty() {
        disk.flush_blocks(&flushed)?;
    }
    let hdr = encode_header(
        geo.block_size,
        gen,
        bound_seq,
        kept as u64,
        payload_len,
        payload_sum,
    );
    disk.write_block(geo.warmidx_start, &hdr)?;
    disk.write_block(geo.warmidx_start + 1, &hdr)?;
    disk.flush_blocks(&[geo.warmidx_start, geo.warmidx_start + 1])?;
    Ok(kept)
}

/// Highest generation any valid header copy claims (0 when none do).
/// The next checkpoint continues above it.
pub(crate) fn last_gen(disk: &CachedDisk, geo: &Geometry) -> FsResult<u64> {
    let a = decode_header(&disk.read_block(geo.warmidx_start)?);
    let b = decode_header(&disk.read_block(geo.warmidx_start + 1)?);
    Ok(a.map(|h| h.gen).max(b.map(|h| h.gen)).unwrap_or(0))
}

/// Reads the index, walking the fallback ladder: headers best-gen
/// first, each validated against its payload half. `Err` only on
/// device I/O failure; every structural problem is a typed [`WarmLoad`].
pub(crate) fn read(disk: &CachedDisk, geo: &Geometry) -> FsResult<WarmLoad> {
    let a = decode_header(&disk.read_block(geo.warmidx_start)?);
    let b = decode_header(&disk.read_block(geo.warmidx_start + 1)?);
    let mut headers: Vec<Header> = [a, b].into_iter().flatten().collect();
    headers.sort_by_key(|h| std::cmp::Reverse(h.gen));
    headers.dedup_by_key(|h| h.gen);
    if headers.is_empty() {
        return Ok(WarmLoad::Absent);
    }
    let mut reject = WarmReject::TornPayload;
    for h in headers {
        if h.version != WARMIDX_VERSION {
            // Versioning outranks tearing in the report: the format is
            // simply unknown, whatever the payload says.
            return Ok(WarmLoad::Rejected(WarmReject::BadVersion {
                found: h.version,
            }));
        }
        if h.payload_len > payload_capacity(geo) as u64 {
            continue; // header lies about its own region; try the other
        }
        let start = half_start(geo, h.gen);
        let nblocks = h.payload_len.div_ceil(geo.block_size as u64);
        let mut payload = Vec::with_capacity((nblocks as usize) * geo.block_size);
        for i in 0..nblocks {
            payload.extend_from_slice(&disk.read_block(start + i)?);
        }
        payload.truncate(h.payload_len as usize);
        // Checksum gates decode: nothing in the payload is interpreted
        // until the bytes are proven to be exactly what was written.
        if fnv64(&[&payload]) != h.payload_sum {
            reject = WarmReject::TornPayload;
            continue;
        }
        let Some(entries) = decode_entries(&payload, h.entries) else {
            reject = WarmReject::Malformed;
            continue;
        };
        return Ok(WarmLoad::Loaded {
            entries,
            bound_seq: h.bound_seq,
            gen: h.gen,
        });
    }
    Ok(WarmLoad::Rejected(reject))
}

/// Reads the raw (header-validated, payload-checked) entries for fsck's
/// index pass without interpreting them. `None` when the index is
/// absent or rejected — fsck treats that as "nothing to check" (the
/// mount path already degrades it to a cold start).
pub(crate) fn read_for_fsck(disk: &CachedDisk, geo: &Geometry) -> FsResult<Option<Vec<WarmEntry>>> {
    match read(disk, geo)? {
        WarmLoad::Loaded { entries, .. } => Ok(Some(entries)),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_blockdev::{DiskConfig, LatencyModel};
    use std::sync::Arc;

    fn disk_and_geo() -> (Arc<CachedDisk>, Geometry) {
        let disk = Arc::new(CachedDisk::new(DiskConfig {
            block_size: 4096,
            capacity_blocks: 4096,
            latency: LatencyModel::free(),
            cache_pages: 1024,
        }));
        let geo = Geometry::compute(4096, 4096, 1024);
        (disk, geo)
    }

    fn entry(ino: u64, parent: u64, name: &str) -> WarmEntry {
        WarmEntry {
            sig: [ino, ino ^ 7, ino ^ 13, ino ^ 77],
            ino,
            parent,
            state_acc: [ino; 4],
            state_pos: 4 * ino as u32,
            name: name.to_owned(),
        }
    }

    #[test]
    fn fresh_region_is_absent() {
        let (disk, geo) = disk_and_geo();
        format(&disk, &geo).unwrap();
        assert_eq!(read(&disk, &geo).unwrap(), WarmLoad::Absent);
    }

    #[test]
    fn checkpoint_round_trips() {
        let (disk, geo) = disk_and_geo();
        let entries = vec![
            entry(2, 1, "usr"),
            entry(3, 2, "include"),
            entry(4, 2, "lib"),
        ];
        let kept = checkpoint(&disk, &geo, &entries, 42, 1).unwrap();
        assert_eq!(kept, 3);
        match read(&disk, &geo).unwrap() {
            WarmLoad::Loaded {
                entries: got,
                bound_seq,
                gen,
            } => {
                assert_eq!(got, entries);
                assert_eq!(bound_seq, 42);
                assert_eq!(gen, 1);
            }
            other => panic!("expected Loaded, got {other:?}"),
        }
        assert_eq!(last_gen(&disk, &geo).unwrap(), 1);
    }

    #[test]
    fn newer_generation_wins() {
        let (disk, geo) = disk_and_geo();
        checkpoint(&disk, &geo, &[entry(2, 1, "old")], 10, 1).unwrap();
        checkpoint(&disk, &geo, &[entry(3, 1, "new")], 20, 2).unwrap();
        match read(&disk, &geo).unwrap() {
            WarmLoad::Loaded {
                entries, bound_seq, ..
            } => {
                assert_eq!(entries[0].name, "new");
                assert_eq!(bound_seq, 20);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn torn_new_payload_falls_back_to_previous_generation() {
        let (disk, geo) = disk_and_geo();
        checkpoint(&disk, &geo, &[entry(2, 1, "stable")], 10, 1).unwrap();
        checkpoint(&disk, &geo, &[entry(3, 1, "doomed")], 20, 2).unwrap();
        // Tear generation 2's payload (half 0) behind the index's back;
        // both headers still advertise gen 2.
        let victim = geo.warmidx_start + 2;
        let mut blk = disk.read_block(victim).unwrap().to_vec();
        blk[5] ^= 0xff;
        disk.write_block(victim, &blk).unwrap();
        // Gen 2 is torn, but gen 2's headers overwrote both copies, so
        // no gen-1 header survives: whole-index rejection, typed.
        assert_eq!(
            read(&disk, &geo).unwrap(),
            WarmLoad::Rejected(WarmReject::TornPayload)
        );
    }

    #[test]
    fn torn_header_write_keeps_previous_generation() {
        let (disk, geo) = disk_and_geo();
        checkpoint(&disk, &geo, &[entry(2, 1, "stable")], 10, 1).unwrap();
        // Simulate a cut mid-checkpoint of gen 2: payload landed in the
        // other half and only header copy A was rewritten — torn.
        let mut torn = encode_header(geo.block_size, 2, 20, 1, 1, 0xdead);
        torn[60] ^= 0x01; // break the header checksum
        disk.write_block(geo.warmidx_start, &torn).unwrap();
        match read(&disk, &geo).unwrap() {
            WarmLoad::Loaded {
                entries, bound_seq, ..
            } => {
                assert_eq!(entries[0].name, "stable");
                assert_eq!(bound_seq, 10);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_version_is_typed() {
        let (disk, geo) = disk_and_geo();
        let mut buf = vec![0u8; geo.block_size];
        let mut w = Writer::new(&mut buf);
        w.u64(WI_MAGIC);
        w.u64(99); // future version
        w.u64(1);
        w.u64(0);
        w.u64(0);
        w.u64(0);
        w.u64(0);
        let sum = fnv64(&[&buf[..56]]);
        let mut w = Writer::new(&mut buf);
        w.seek(56);
        w.u64(sum);
        disk.write_block(geo.warmidx_start, &buf).unwrap();
        disk.write_block(geo.warmidx_start + 1, &buf).unwrap();
        assert_eq!(
            read(&disk, &geo).unwrap(),
            WarmLoad::Rejected(WarmReject::BadVersion { found: 99 })
        );
    }

    #[test]
    fn capacity_overflow_drops_tail_not_parents() {
        let (disk, geo) = disk_and_geo();
        // More entries than the half can hold; parents (low indices)
        // must survive, the tail must be dropped.
        let per = ENTRY_FIXED + 8;
        let fits = payload_capacity(&geo) / per;
        let entries: Vec<WarmEntry> = (0..fits as u64 + 100)
            .map(|i| entry(i + 2, 1, "cccccccc"))
            .collect();
        let kept = checkpoint(&disk, &geo, &entries, 1, 1).unwrap();
        assert!(kept <= fits + 1);
        assert!(kept >= fits - 1);
        match read(&disk, &geo).unwrap() {
            WarmLoad::Loaded { entries: got, .. } => {
                assert_eq!(got.len(), kept);
                assert_eq!(got[0], entries[0]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn format_invalidates_previous_index() {
        let (disk, geo) = disk_and_geo();
        checkpoint(&disk, &geo, &[entry(2, 1, "ghost")], 5, 1).unwrap();
        format(&disk, &geo).unwrap();
        assert_eq!(read(&disk, &geo).unwrap(), WarmLoad::Absent);
    }

    #[test]
    fn random_corruption_never_panics_and_is_typed() {
        // Seeded byte-flip campaign over the whole region: every read
        // must return a typed WarmLoad, never panic, and when it loads
        // it must load the exact committed entries.
        let entries = vec![entry(2, 1, "usr"), entry(3, 2, "share"), entry(4, 3, "man")];
        let mut x = 0x5EEDu64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _trial in 0..200 {
            let (disk, geo) = disk_and_geo();
            checkpoint(&disk, &geo, &entries, 7, 1).unwrap();
            let blk = geo.warmidx_start + rng() % geo.warmidx_blocks;
            let off = (rng() % geo.block_size as u64) as usize;
            let mut data = disk.read_block(blk).unwrap().to_vec();
            data[off] ^= (rng() % 255 + 1) as u8;
            disk.write_block(blk, &data).unwrap();
            match read(&disk, &geo).unwrap() {
                WarmLoad::Loaded { entries: got, .. } => assert_eq!(got, entries),
                WarmLoad::Absent | WarmLoad::Rejected(_) => {}
            }
        }
    }
}
