//! The metadata-store abstraction the journal interposes on.
//!
//! Every metadata helper (inode table, bitmaps, directory blocks) is
//! generic over [`MetaStore`] so the same code runs in two modes:
//! directly against the [`CachedDisk`] (read paths, journaling
//! disabled), or through a [`Tx`] that records each written block into
//! a transaction buffer for the journal to commit atomically.

use crate::error::FsResult;
use bytes::Bytes;
use dc_blockdev::CachedDisk;
use std::cell::RefCell;
use std::collections::HashMap;

/// Block-granular access to file-system metadata.
pub(crate) trait MetaStore {
    /// Reads one block (coherent with any writes buffered in this store).
    fn read_block(&self, block: u64) -> FsResult<Bytes>;
    /// Writes one block.
    fn write_block(&self, block: u64, data: &[u8]) -> FsResult<()>;
}

impl MetaStore for CachedDisk {
    fn read_block(&self, block: u64) -> FsResult<Bytes> {
        Ok(CachedDisk::read_block(self, block)?)
    }

    fn write_block(&self, block: u64, data: &[u8]) -> FsResult<()> {
        Ok(CachedDisk::write_block(self, block, data)?)
    }
}

/// The write set of one metadata transaction: final content per block,
/// in first-touch order (kept deterministic so seeded campaigns lay the
/// journal out identically every run).
#[derive(Default)]
pub(crate) struct TxnBuf {
    order: Vec<u64>,
    data: HashMap<u64, Vec<u8>>,
}

impl TxnBuf {
    fn record(&mut self, block: u64, data: &[u8]) {
        if !self.data.contains_key(&block) {
            self.order.push(block);
        }
        self.data.insert(block, data.to_vec());
    }

    fn get(&self, block: u64) -> Option<&Vec<u8>> {
        self.data.get(&block)
    }

    /// Number of distinct blocks written.
    pub(crate) fn len(&self) -> usize {
        self.order.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Blocks in first-touch order with their final content.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, &Vec<u8>)> {
        self.order.iter().map(|&b| (b, &self.data[&b]))
    }
}

/// A per-operation metadata store.
///
/// In *buffered* mode (journaling on) writes accumulate in a [`TxnBuf`]
/// and reads see the buffered content first, so the operation observes
/// its own uncommitted writes; nothing touches the shared page cache
/// until the journal commits the whole set. In *passthrough* mode
/// (journaling off) it is a thin shim over the disk, preserving the
/// original write-back behavior exactly.
pub(crate) struct Tx<'a> {
    disk: &'a CachedDisk,
    buf: Option<RefCell<TxnBuf>>,
}

impl<'a> Tx<'a> {
    pub(crate) fn passthrough(disk: &'a CachedDisk) -> Tx<'a> {
        Tx { disk, buf: None }
    }

    pub(crate) fn buffered(disk: &'a CachedDisk) -> Tx<'a> {
        Tx {
            disk,
            buf: Some(RefCell::new(TxnBuf::default())),
        }
    }

    /// Consumes the transaction, returning its write set (`None` in
    /// passthrough mode).
    pub(crate) fn into_buf(self) -> Option<TxnBuf> {
        self.buf.map(|b| b.into_inner())
    }
}

impl MetaStore for Tx<'_> {
    fn read_block(&self, block: u64) -> FsResult<Bytes> {
        if let Some(buf) = &self.buf {
            if let Some(data) = buf.borrow().get(block) {
                return Ok(Bytes::copy_from_slice(data));
            }
        }
        Ok(self.disk.read_block(block)?)
    }

    fn write_block(&self, block: u64, data: &[u8]) -> FsResult<()> {
        match &self.buf {
            Some(buf) => {
                buf.borrow_mut().record(block, data);
                Ok(())
            }
            None => Ok(self.disk.write_block(block, data)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_blockdev::{DiskConfig, LatencyModel};

    fn disk() -> CachedDisk {
        CachedDisk::new(DiskConfig {
            block_size: 512,
            capacity_blocks: 64,
            latency: LatencyModel::free(),
            cache_pages: 16,
        })
    }

    #[test]
    fn buffered_tx_sees_its_own_writes_but_disk_does_not() {
        let d = disk();
        let tx = Tx::buffered(&d);
        tx.write_block(3, &[7u8; 512]).unwrap();
        assert_eq!(MetaStore::read_block(&tx, 3).unwrap()[0], 7);
        // The shared cache is untouched until commit.
        assert_eq!(d.read_block(3).unwrap()[0], 0);
        let buf = tx.into_buf().unwrap();
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn txn_buf_keeps_first_touch_order_and_last_content() {
        let mut buf = TxnBuf::default();
        buf.record(9, &[1]);
        buf.record(4, &[2]);
        buf.record(9, &[3]);
        let got: Vec<(u64, u8)> = buf.iter().map(|(b, d)| (b, d[0])).collect();
        assert_eq!(got, vec![(9, 3), (4, 2)]);
    }

    #[test]
    fn passthrough_tx_writes_through() {
        let d = disk();
        let tx = Tx::passthrough(&d);
        tx.write_block(5, &[9u8; 512]).unwrap();
        assert_eq!(d.read_block(5).unwrap()[0], 9);
        assert!(tx.into_buf().is_none());
    }
}
