//! Block-local directory entry records (ext2-style).
//!
//! Each directory data block holds a chain of variable-length records that
//! always tile the whole block:
//!
//! ```text
//! +--------+---------+----------+-------+-----------------+---------+
//! | ino u64| rec u16 | nlen u8  | ft u8 | name bytes      | padding |
//! +--------+---------+----------+-------+-----------------+---------+
//! ```
//!
//! `ino == 0` marks a free record. Deletion merges the freed record into
//! its predecessor when possible, exactly like ext2. Lookup linearly scans
//! and decodes records — the real per-miss work a directory cache saves.

use crate::error::{FsError, FsResult};

/// Record header size in bytes.
pub const HEADER: usize = 12;

/// Longest permitted name (fits `name_len: u8`).
pub const NAME_MAX: usize = 255;

fn align4(n: usize) -> usize {
    (n + 3) & !3
}

/// Space a live record with `name_len` bytes of name actually needs.
pub fn needed(name_len: usize) -> usize {
    align4(HEADER + name_len)
}

/// A decoded record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawRecord<'a> {
    /// Byte offset of the record within the block.
    pub offset: usize,
    /// Inode number; 0 for a free record.
    pub ino: u64,
    /// Total record length including padding.
    pub rec_len: usize,
    /// Entry type (meaningless when free).
    pub ftype: u8,
    /// Name bytes (empty when free).
    pub name: &'a [u8],
}

/// Initializes an empty directory block: one free record covering it.
pub fn init_block(buf: &mut [u8]) {
    buf.fill(0);
    let len = buf.len();
    write_header(buf, 0, 0, len, 0, 0);
}

fn write_header(buf: &mut [u8], off: usize, ino: u64, rec_len: usize, name_len: u8, ftype: u8) {
    buf[off..off + 8].copy_from_slice(&ino.to_le_bytes());
    buf[off + 8..off + 10].copy_from_slice(&(rec_len as u16).to_le_bytes());
    buf[off + 10] = name_len;
    buf[off + 11] = ftype;
}

fn decode_at(buf: &[u8], off: usize) -> FsResult<RawRecord<'_>> {
    if off + HEADER > buf.len() {
        return Err(FsError::Io);
    }
    let ino = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
    let rec_len = u16::from_le_bytes(buf[off + 8..off + 10].try_into().unwrap()) as usize;
    let name_len = buf[off + 10] as usize;
    let ftype = buf[off + 11];
    if rec_len < HEADER || off + rec_len > buf.len() || HEADER + name_len > rec_len {
        return Err(FsError::Io);
    }
    let name = if ino == 0 {
        &buf[0..0]
    } else {
        &buf[off + HEADER..off + HEADER + name_len]
    };
    Ok(RawRecord {
        offset: off,
        ino,
        rec_len,
        ftype,
        name,
    })
}

/// Iterator over every record (free ones included) in one block.
pub struct RecordIter<'a> {
    buf: &'a [u8],
    off: usize,
    failed: bool,
}

impl<'a> RecordIter<'a> {
    /// Iterates `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        RecordIter {
            buf,
            off: 0,
            failed: false,
        }
    }

    /// Iterates `buf` starting at record offset `off` (must be a record
    /// boundary, e.g. a cursor previously returned by this module).
    pub fn from_offset(buf: &'a [u8], off: usize) -> Self {
        RecordIter {
            buf,
            off,
            failed: false,
        }
    }
}

impl<'a> Iterator for RecordIter<'a> {
    type Item = FsResult<RawRecord<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.off >= self.buf.len() {
            return None;
        }
        match decode_at(self.buf, self.off) {
            Ok(rec) => {
                self.off += rec.rec_len;
                Some(Ok(rec))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Finds a live record by name; returns `(offset, ino, ftype)`.
pub fn find(buf: &[u8], name: &[u8]) -> FsResult<Option<(usize, u64, u8)>> {
    for rec in RecordIter::new(buf) {
        let rec = rec?;
        if rec.ino != 0 && rec.name == name {
            return Ok(Some((rec.offset, rec.ino, rec.ftype)));
        }
    }
    Ok(None)
}

/// Inserts a record, splitting free space; returns `false` if the block
/// has no room. The caller has already checked the name does not exist.
pub fn insert(buf: &mut [u8], name: &[u8], ino: u64, ftype: u8) -> FsResult<bool> {
    debug_assert!(ino != 0);
    debug_assert!(!name.is_empty() && name.len() <= NAME_MAX);
    let want = needed(name.len());
    // First pass (immutable): find a slot.
    let mut slot: Option<(usize, usize, usize, u8, u64)> = None; // off, rec_len, used, kind
    for rec in RecordIter::new(buf) {
        let rec = rec?;
        if rec.ino == 0 {
            if rec.rec_len >= want {
                slot = Some((rec.offset, rec.rec_len, 0, 0, 0));
                break;
            }
        } else {
            let used = needed(rec.name.len());
            if rec.rec_len - used >= want {
                slot = Some((rec.offset, rec.rec_len, used, rec.ftype, rec.ino));
                break;
            }
        }
    }
    let Some((off, rec_len, used, old_ftype, old_ino)) = slot else {
        return Ok(false);
    };
    if used == 0 {
        // Take over the free record wholesale.
        write_header(buf, off, ino, rec_len, name.len() as u8, ftype);
        buf[off + HEADER..off + HEADER + name.len()].copy_from_slice(name);
    } else {
        // Shrink the live record to `used`, put the new one in its slack.
        let old_name_len = buf[off + 10];
        write_header(buf, off, old_ino, used, old_name_len, old_ftype);
        let noff = off + used;
        write_header(buf, noff, ino, rec_len - used, name.len() as u8, ftype);
        buf[noff + HEADER..noff + HEADER + name.len()].copy_from_slice(name);
    }
    Ok(true)
}

/// A located record: offset, rec_len, ino, and the predecessor's
/// (offset, rec_len) when one exists.
type FoundRecord = (usize, usize, u64, Option<(usize, usize)>);

/// Removes the record named `name`; returns its ino, or `None` if absent.
pub fn remove(buf: &mut [u8], name: &[u8]) -> FsResult<Option<u64>> {
    let mut prev: Option<RawRecord<'_>> = None;
    let mut hit: Option<FoundRecord> = None;
    for rec in RecordIter::new(buf) {
        let rec = rec?;
        if rec.ino != 0 && rec.name == name {
            let prev_info = prev.map(|p| (p.offset, p.rec_len));
            hit = Some((rec.offset, rec.rec_len, rec.ino, prev_info));
            break;
        }
        prev = Some(rec);
    }
    let Some((off, rec_len, ino, prev_info)) = hit else {
        return Ok(None);
    };
    match prev_info {
        Some((poff, plen)) => {
            // Merge into the predecessor: extend its rec_len.
            let pino = u64::from_le_bytes(buf[poff..poff + 8].try_into().unwrap());
            let pnlen = buf[poff + 10];
            let pft = buf[poff + 11];
            write_header(buf, poff, pino, plen + rec_len, pnlen, pft);
        }
        None => {
            // First record in the block: just mark free.
            write_header(buf, off, 0, rec_len, 0, 0);
        }
    }
    Ok(Some(ino))
}

/// True when the block contains no live records.
pub fn is_empty(buf: &[u8]) -> FsResult<bool> {
    for rec in RecordIter::new(buf) {
        if rec?.ino != 0 {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Counts live records.
#[cfg_attr(not(test), allow(dead_code))]
pub fn count_live(buf: &[u8]) -> FsResult<usize> {
    let mut n = 0;
    for rec in RecordIter::new(buf) {
        if rec?.ino != 0 {
            n += 1;
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> Vec<u8> {
        let mut b = vec![0u8; 512];
        init_block(&mut b);
        b
    }

    #[test]
    fn fresh_block_is_empty() {
        let b = block();
        assert!(is_empty(&b).unwrap());
        assert_eq!(count_live(&b).unwrap(), 0);
        assert_eq!(find(&b, b"x").unwrap(), None);
    }

    #[test]
    fn insert_find_remove() {
        let mut b = block();
        assert!(insert(&mut b, b"hello", 42, 1).unwrap());
        assert_eq!(
            find(&b, b"hello").unwrap().map(|(_, i, t)| (i, t)),
            Some((42, 1))
        );
        assert_eq!(remove(&mut b, b"hello").unwrap(), Some(42));
        assert!(is_empty(&b).unwrap());
        assert_eq!(remove(&mut b, b"hello").unwrap(), None);
    }

    #[test]
    fn many_inserts_tile_block() {
        let mut b = block();
        let mut n = 0;
        loop {
            let name = format!("file{n:03}");
            if !insert(&mut b, name.as_bytes(), n + 1, 1).unwrap() {
                break;
            }
            n += 1;
        }
        // 512-byte block, 20-byte records → 25 entries.
        assert_eq!(n, 25);
        assert_eq!(count_live(&b).unwrap(), 25);
        for i in 0..n {
            let name = format!("file{i:03}");
            assert!(find(&b, name.as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn remove_middle_merges_and_space_is_reusable() {
        let mut b = block();
        assert!(insert(&mut b, b"aa", 1, 1).unwrap());
        assert!(insert(&mut b, b"bb", 2, 1).unwrap());
        assert!(insert(&mut b, b"cc", 3, 1).unwrap());
        assert_eq!(remove(&mut b, b"bb").unwrap(), Some(2));
        assert_eq!(count_live(&b).unwrap(), 2);
        assert!(find(&b, b"aa").unwrap().is_some());
        assert!(find(&b, b"cc").unwrap().is_some());
        // The freed space is reusable through the predecessor's slack.
        assert!(insert(&mut b, b"dd", 4, 1).unwrap());
        assert!(find(&b, b"dd").unwrap().is_some());
        assert_eq!(count_live(&b).unwrap(), 3);
    }

    #[test]
    fn remove_first_record() {
        let mut b = block();
        assert!(insert(&mut b, b"first", 1, 1).unwrap());
        assert!(insert(&mut b, b"second", 2, 1).unwrap());
        assert_eq!(remove(&mut b, b"first").unwrap(), Some(1));
        assert!(find(&b, b"first").unwrap().is_none());
        assert!(find(&b, b"second").unwrap().is_some());
        // Freed head record is reusable.
        assert!(insert(&mut b, b"third", 3, 1).unwrap());
        assert!(find(&b, b"third").unwrap().is_some());
    }

    #[test]
    fn full_block_rejects_insert() {
        let mut b = block();
        let long = [b'x'; 100];
        let mut n = 0u64;
        while insert(&mut b, &long[..(90 + (n as usize % 10))], n + 1, 1).unwrap() {
            n += 1;
        }
        assert!(n > 0);
        assert!(!insert(&mut b, &[b'y'; 200], 999, 1).unwrap());
    }

    #[test]
    fn corrupt_block_reports_io() {
        let mut b = block();
        insert(&mut b, b"ok", 5, 1).unwrap();
        // Smash a rec_len to zero.
        b[8] = 0;
        b[9] = 0;
        assert_eq!(find(&b, b"ok"), Err(FsError::Io));
    }

    #[test]
    fn iterator_resumes_from_offset() {
        let mut b = block();
        insert(&mut b, b"aaa", 1, 1).unwrap();
        insert(&mut b, b"bbb", 2, 1).unwrap();
        insert(&mut b, b"ccc", 3, 1).unwrap();
        // Find bbb's offset, then resume from its end.
        let (off, _, _) = find(&b, b"bbb").unwrap().unwrap();
        let rec = decode_at(&b, off).unwrap();
        let mut rest = RecordIter::from_offset(&b, off + rec.rec_len)
            .filter_map(|r| r.ok())
            .filter(|r| r.ino != 0);
        assert_eq!(rest.next().unwrap().name, b"ccc");
        assert!(rest.next().is_none());
    }
}
