//! The memfs [`FileSystem`] implementation.

use super::bitmap::Bitmap;
use super::dir;
use super::inode::{
    bmap, clear_inode, max_logical_blocks, read_inode, write_inode, DiskInode, INLINE_TARGET_MAX,
};
use super::journal::{Journal, JournalStats, ReplayInfo};
use super::layout::{Geometry, NDIRECT};
use super::store::{MetaStore, Tx};
use super::warmidx::{self, WarmEntry, WarmLoad, WarmReject};
use crate::api::{DirEntry, FileSystem, FileType, FsStats, InodeAttr, SetAttr, StatFs};
use crate::error::{FsError, FsResult};
use bytes::Bytes;
use dc_blockdev::CachedDisk;
use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of inode-lock shards.
const LOCK_SHARDS: usize = 64;

/// The root directory's inode number.
const ROOT_INO: u64 = 1;

/// memfs creation parameters.
#[derive(Debug, Clone, Copy)]
pub struct MemFsConfig {
    /// Maximum number of inodes.
    pub max_inodes: u64,
    /// Mode bits of the root directory.
    pub root_mode: u16,
    /// Owner of the root directory.
    pub root_uid: u32,
    /// Group of the root directory.
    pub root_gid: u32,
    /// Whether metadata mutations go through the write-ahead journal.
    /// Off reproduces the pre-journal write-back behavior (the ablation
    /// baseline for the overhead experiment).
    pub journal: bool,
}

impl Default for MemFsConfig {
    fn default() -> Self {
        MemFsConfig {
            max_inodes: 1 << 20,
            root_mode: 0o755,
            root_uid: 0,
            root_gid: 0,
            journal: true,
        }
    }
}

#[derive(Clone, Copy)]
struct AllocState {
    ino_hint: u64,
    blk_hint: u64,
    free_inodes: u64,
    free_blocks: u64,
}

/// An ext2-flavored file system over a simulated block device.
///
/// See the [module docs](super) for the on-disk layout. All metadata and
/// directory content round-trips through the device's page cache, so every
/// directory-cache miss exercised by the benchmarks performs genuine block
/// reads and record deserialization.
///
/// # Crash consistency
///
/// With journaling on (the default), every mutating operation buffers its
/// metadata block writes in a per-operation [`Tx`] and commits them as one
/// transaction: the write set is logged to the reserved journal region,
/// sealed by a checksummed commit record (payload flushed strictly before
/// the record), and only then applied in place through the page cache.
/// Nothing uncommitted ever reaches the shared cache, and the in-place
/// apply runs while the operation's inode shard locks are still held,
/// so neither LRU eviction, a power cut, nor a concurrent reader can
/// observe a half-applied operation. Mount
/// replays committed transactions and discards the torn tail, making each
/// operation atomic across crashes. File *content* is write-back (the
/// ext3 `data=writeback` analogy): crash recovery guarantees the metadata
/// tree, not data block payloads.
pub struct MemFs {
    disk: Arc<CachedDisk>,
    geo: Geometry,
    ibmap: Bitmap,
    bbmap: Bitmap,
    alloc: Mutex<AllocState>,
    locks: Vec<Mutex<()>>,
    clock: AtomicU64,
    stats: FsStats,
    journal: Option<Journal>,
    /// Serializes journaled mutations: buffered transactions are invisible
    /// to each other (e.g. a bitmap bit set only in a buffer), so two
    /// concurrent ops could both claim it. Taken before the shard locks.
    big_op: Mutex<()>,
    replay: ReplayInfo,
    /// Generation of the most recent warm-index checkpoint (continues
    /// above whatever the on-disk headers claim at mount).
    warm_gen: AtomicU64,
}

impl MemFs {
    /// Formats `disk` and returns the mounted file system.
    pub fn mkfs(disk: Arc<CachedDisk>, config: MemFsConfig) -> FsResult<Arc<MemFs>> {
        let geo = Geometry::compute(disk.block_size(), disk.capacity_blocks(), config.max_inodes);
        if geo.data_start >= geo.capacity_blocks {
            return Err(FsError::NoSpc);
        }
        disk.write_block(0, &geo.encode_superblock())?;
        let ibmap = Bitmap::new(geo.ibmap_start, geo.max_inodes, geo.block_size);
        let bbmap = Bitmap::new(geo.bbmap_start, geo.capacity_blocks, geo.block_size);
        // Reserve ino 0 (invalid) and all metadata blocks (journal included).
        ibmap.set(disk.as_ref(), 0, true)?;
        for b in 0..geo.data_start {
            bbmap.set(disk.as_ref(), b, true)?;
        }
        // Root directory.
        ibmap.set(disk.as_ref(), ROOT_INO, true)?;
        let root = DiskInode::new(
            FileType::Directory,
            config.root_mode,
            config.root_uid,
            config.root_gid,
            0,
        );
        write_inode(disk.as_ref(), &geo, ROOT_INO, &root)?;
        // The journal region is always formatted (recovery runs on every
        // mount, journaling enabled or not), and the freshly formatted
        // image is made durable so a cut at any later point recovers to
        // at worst an empty root. The warm-index headers are invalidated
        // too: reformatting must not resurrect a previous file system's
        // directory index.
        Journal::format(&disk, &geo)?;
        warmidx::format(&disk, &geo)?;
        disk.sync()?;
        Self::mount_with(disk, config.journal)
    }

    /// Mounts an already-formatted disk with journaling on.
    pub fn mount(disk: Arc<CachedDisk>) -> FsResult<Arc<MemFs>> {
        Self::mount_with(disk, true)
    }

    /// Mounts an already-formatted disk. Recovery (replay of committed
    /// journal transactions, discard of the torn tail) always runs;
    /// `journal` only controls whether *new* mutations are journaled.
    pub fn mount_with(disk: Arc<CachedDisk>, journal: bool) -> FsResult<Arc<MemFs>> {
        let geo = Geometry::read_superblock(&disk)?;
        let replay = Journal::recover(&disk, &geo)?;
        let ibmap = Bitmap::new(geo.ibmap_start, geo.max_inodes, geo.block_size);
        let bbmap = Bitmap::new(geo.bbmap_start, geo.capacity_blocks, geo.block_size);
        let used_inodes = ibmap.count_set(disk.as_ref())?;
        let used_blocks = bbmap.count_set(disk.as_ref())?;
        let alloc = AllocState {
            ino_hint: ROOT_INO + 1,
            blk_hint: geo.data_start,
            free_inodes: geo.max_inodes - used_inodes,
            free_blocks: geo.capacity_blocks - used_blocks,
        };
        let warm_gen = warmidx::last_gen(&disk, &geo)?;
        Ok(Arc::new(MemFs {
            disk,
            geo,
            ibmap,
            bbmap,
            alloc: Mutex::new(alloc),
            locks: (0..LOCK_SHARDS).map(|_| Mutex::new(())).collect(),
            clock: AtomicU64::new(1),
            stats: FsStats::default(),
            journal: journal.then(|| Journal::open(&geo, &replay)),
            big_op: Mutex::new(()),
            replay,
            warm_gen: AtomicU64::new(warm_gen),
        }))
    }

    /// The backing disk (benchmarks use this to drop caches).
    pub fn disk(&self) -> &Arc<CachedDisk> {
        &self.disk
    }

    /// The computed on-disk geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Journal counters; `None` when journaling is off.
    pub fn journal_stats(&self) -> Option<JournalStats> {
        self.journal.as_ref().map(|j| j.stats())
    }

    /// Zeroes the journal counters; no-op when journaling is off.
    pub fn reset_journal_stats(&self) {
        if let Some(j) = self.journal.as_ref() {
            j.reset_stats();
        }
    }

    /// Sequence number of the most recently committed transaction;
    /// `None` when journaling is off.
    pub fn journal_seq(&self) -> Option<u64> {
        self.journal.as_ref().map(|j| j.committed_seq())
    }

    /// Highest committed transaction found (and replayed if needed) by
    /// mount-time recovery.
    pub fn recovered_seq(&self) -> u64 {
        self.replay.last_seq
    }

    /// Transactions mount-time recovery actually replayed.
    pub fn replayed_txns(&self) -> u64 {
        self.replay.replayed
    }

    /// Checkpoints the warm-restart directory index: journal-checkpoints
    /// first (so everything the index may reference is durable in
    /// place), then persists `entries` bound to the durable tail
    /// sequence, under the big-op lock so no transaction can slip in
    /// between — the index can never reference a transaction newer than
    /// the durable tail. Entries must be ordered parents-before-children
    /// (any capacity-truncated prefix stays parent-closed). Returns how
    /// many entries were persisted.
    pub fn warm_checkpoint(&self, entries: &[WarmEntry]) -> FsResult<usize> {
        let _big = self.big_op.lock();
        let bound_seq = match &self.journal {
            Some(j) => {
                j.checkpoint(&self.disk)?;
                j.committed_seq()
            }
            None => {
                self.disk.sync()?;
                0
            }
        };
        let gen = self.warm_gen.fetch_add(1, Ordering::Relaxed) + 1;
        let kept = warmidx::checkpoint(&self.disk, &self.geo, entries, bound_seq, gen)?;
        if let Some(obs) = self.disk.recorder() {
            obs.event(|| dc_obs::TraceEvent::WarmCheckpoint {
                entries: kept as u32,
            });
        }
        Ok(kept)
    }

    /// Reads the warm-restart index, typed. On top of the on-disk
    /// validation (headers, generations, checksums) this rejects an
    /// index bound to a journal transaction newer than anything this
    /// file system has committed — such an index describes a future the
    /// disk never reached and nothing in it can be trusted. Right after
    /// mount the committed horizon is exactly what recovery
    /// reconstructed, so a torn or misordered checkpoint from the
    /// previous incarnation is caught here.
    pub fn read_warm_index(&self) -> FsResult<WarmLoad> {
        let load = warmidx::read(&self.disk, &self.geo)?;
        if let WarmLoad::Loaded { bound_seq, .. } = &load {
            let committed = self
                .journal
                .as_ref()
                .map(|j| j.committed_seq())
                .unwrap_or(self.replay.last_seq);
            if *bound_seq > committed {
                return Ok(WarmLoad::Rejected(WarmReject::FutureSeq {
                    bound_seq: *bound_seq,
                    recovered_seq: committed,
                }));
            }
        }
        Ok(load)
    }

    /// Runs one mutating operation under the shard locks covering
    /// `inos`. With journaling on, the operation's metadata writes
    /// accumulate in a buffered [`Tx`] and commit as one journal
    /// transaction *while the shard locks are still held* — the
    /// commit's in-place apply is what makes the operation visible in
    /// the shared page cache, so dropping the locks first would let a
    /// concurrent lookup/readdir observe a half-applied operation. An
    /// operation (or commit) error discards the buffer and rolls the
    /// allocator counters back, so failed operations leave no trace.
    /// With journaling off the `Tx` is a passthrough shim.
    fn with_tx<T>(&self, inos: &[u64], f: impl FnOnce(&Tx<'_>) -> FsResult<T>) -> FsResult<T> {
        match &self.journal {
            None => {
                let _g = self.lock_many(inos);
                f(&Tx::passthrough(&self.disk))
            }
            Some(j) => {
                let _big = self.big_op.lock();
                let _g = self.lock_many(inos);
                // Allocator counters mutate eagerly inside the op, but
                // the matching bitmap bits live only in the tx buffer
                // until commit: if either fails, restore the snapshot
                // so counters and on-disk bitmaps stay in agreement.
                let snap = *self.alloc.lock();
                let tx = Tx::buffered(&self.disk);
                let res = f(&tx).and_then(|out| match tx.into_buf() {
                    Some(buf) if !buf.is_empty() => j.commit(&self.disk, &buf).map(|_| out),
                    _ => Ok(out),
                });
                if res.is_err() {
                    *self.alloc.lock() = snap;
                }
                res
            }
        }
    }

    fn now(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Locks the shards covering `inos`, in shard order (deadlock-free).
    fn lock_many(&self, inos: &[u64]) -> Vec<MutexGuard<'_, ()>> {
        let mut shards: Vec<usize> = inos.iter().map(|i| (*i as usize) % LOCK_SHARDS).collect();
        shards.sort_unstable();
        shards.dedup();
        shards.into_iter().map(|s| self.locks[s].lock()).collect()
    }

    fn alloc_ino<S: MetaStore + ?Sized>(&self, store: &S) -> FsResult<u64> {
        let mut a = self.alloc.lock();
        if a.free_inodes == 0 {
            return Err(FsError::NoSpc);
        }
        let ino = self.ibmap.alloc(store, a.ino_hint)?;
        a.ino_hint = ino + 1;
        a.free_inodes -= 1;
        Ok(ino)
    }

    fn free_ino<S: MetaStore + ?Sized>(&self, store: &S, ino: u64) -> FsResult<()> {
        let mut a = self.alloc.lock();
        self.ibmap.set(store, ino, false)?;
        a.free_inodes += 1;
        Ok(())
    }

    fn alloc_block<S: MetaStore + ?Sized>(&self, store: &S) -> FsResult<u64> {
        let mut a = self.alloc.lock();
        if a.free_blocks == 0 {
            return Err(FsError::NoSpc);
        }
        let blk = self.bbmap.alloc(store, a.blk_hint)?;
        a.blk_hint = blk + 1;
        a.free_blocks -= 1;
        Ok(blk)
    }

    fn free_block<S: MetaStore + ?Sized>(&self, store: &S, blk: u64) -> FsResult<()> {
        let mut a = self.alloc.lock();
        self.bbmap.set(store, blk, false)?;
        a.free_blocks += 1;
        Ok(())
    }

    fn read_di<S: MetaStore + ?Sized>(&self, store: &S, ino: u64) -> FsResult<DiskInode> {
        read_inode(store, &self.geo, ino)
    }

    fn write_di<S: MetaStore + ?Sized>(&self, store: &S, ino: u64, di: &DiskInode) -> FsResult<()> {
        write_inode(store, &self.geo, ino, di)
    }

    fn read_dir_di<S: MetaStore + ?Sized>(&self, store: &S, ino: u64) -> FsResult<DiskInode> {
        let di = self.read_di(store, ino)?;
        if di.ftype != FileType::Directory {
            return Err(FsError::NotDir);
        }
        Ok(di)
    }

    /// Maps logical block `lblk`, allocating (and wiring up the indirect
    /// block) if needed.
    fn bmap_alloc<S: MetaStore + ?Sized>(
        &self,
        store: &S,
        ino: u64,
        di: &mut DiskInode,
        lblk: u64,
    ) -> FsResult<u64> {
        if let Some(p) = bmap(store, &self.geo, di, lblk)? {
            return Ok(p);
        }
        let phys = self.alloc_block(store)?;
        if lblk < NDIRECT as u64 {
            di.direct[lblk as usize] = phys;
        } else {
            let idx = (lblk - NDIRECT as u64) as usize;
            if idx >= self.geo.block_size / 8 {
                self.free_block(store, phys)?;
                return Err(FsError::NoSpc);
            }
            if di.indirect == 0 {
                di.indirect = self.alloc_block(store)?;
                store.write_block(di.indirect, &vec![0u8; self.geo.block_size])?;
            }
            let blk = store.read_block(di.indirect)?;
            let mut copy = blk.to_vec();
            copy[idx * 8..idx * 8 + 8].copy_from_slice(&phys.to_le_bytes());
            store.write_block(di.indirect, &copy)?;
        }
        self.write_di(store, ino, di)?;
        Ok(phys)
    }

    /// Frees every data block of an inode (truncate to zero / deletion).
    fn free_all_blocks<S: MetaStore + ?Sized>(
        &self,
        store: &S,
        di: &mut DiskInode,
    ) -> FsResult<()> {
        for d in di.direct.iter_mut() {
            if *d != 0 {
                self.free_block(store, *d)?;
                *d = 0;
            }
        }
        if di.indirect != 0 {
            let blk = store.read_block(di.indirect)?;
            for chunk in blk.chunks_exact(8) {
                let mut ptr = [0u8; 8];
                ptr.copy_from_slice(chunk);
                let p = u64::from_le_bytes(ptr);
                if p != 0 {
                    self.free_block(store, p)?;
                }
            }
            self.free_block(store, di.indirect)?;
            di.indirect = 0;
        }
        Ok(())
    }

    /// Scans a directory for `name`; returns `(ino, ftype)`.
    fn dir_find<S: MetaStore + ?Sized>(
        &self,
        store: &S,
        di: &DiskInode,
        name: &str,
    ) -> FsResult<Option<(u64, u8)>> {
        let nblocks = di.size / self.geo.block_size as u64;
        for lblk in 0..nblocks {
            let Some(phys) = bmap(store, &self.geo, di, lblk)? else {
                continue;
            };
            let data = store.read_block(phys)?;
            if let Some((_, ino, ftype)) = dir::find(&data, name.as_bytes())? {
                return Ok(Some((ino, ftype)));
            }
        }
        Ok(None)
    }

    /// Inserts an entry, extending the directory by a block if needed.
    fn dir_insert<S: MetaStore + ?Sized>(
        &self,
        store: &S,
        dirino: u64,
        di: &mut DiskInode,
        name: &str,
        ino: u64,
        ftype: FileType,
    ) -> FsResult<()> {
        let nblocks = di.size / self.geo.block_size as u64;
        for lblk in 0..nblocks {
            let Some(phys) = bmap(store, &self.geo, di, lblk)? else {
                continue;
            };
            let data = store.read_block(phys)?;
            let mut copy = data.to_vec();
            if dir::insert(&mut copy, name.as_bytes(), ino, ftype.as_u8())? {
                store.write_block(phys, &copy)?;
                return Ok(());
            }
        }
        // All blocks full: extend.
        if nblocks >= max_logical_blocks(&self.geo) {
            return Err(FsError::NoSpc);
        }
        let phys = self.bmap_alloc(store, dirino, di, nblocks)?;
        let mut fresh = vec![0u8; self.geo.block_size];
        dir::init_block(&mut fresh);
        if !dir::insert(&mut fresh, name.as_bytes(), ino, ftype.as_u8())? {
            return Err(FsError::NameTooLong);
        }
        store.write_block(phys, &fresh)?;
        di.size += self.geo.block_size as u64;
        Ok(())
    }

    /// Removes an entry; returns its `(ino, ftype)`.
    fn dir_remove<S: MetaStore + ?Sized>(
        &self,
        store: &S,
        di: &DiskInode,
        name: &str,
    ) -> FsResult<Option<(u64, u8)>> {
        let nblocks = di.size / self.geo.block_size as u64;
        for lblk in 0..nblocks {
            let Some(phys) = bmap(store, &self.geo, di, lblk)? else {
                continue;
            };
            let data = store.read_block(phys)?;
            if let Some((_, _, ftype)) = dir::find(&data, name.as_bytes())? {
                let mut copy = data.to_vec();
                // find() just saw the entry in this same buffer; failing
                // to remove it means the block is corrupt, not a bug to
                // die on.
                let Some(ino) = dir::remove(&mut copy, name.as_bytes())? else {
                    return Err(FsError::Io);
                };
                store.write_block(phys, &copy)?;
                return Ok(Some((ino, ftype)));
            }
        }
        Ok(None)
    }

    fn dir_is_empty<S: MetaStore + ?Sized>(&self, store: &S, di: &DiskInode) -> FsResult<bool> {
        let nblocks = di.size / self.geo.block_size as u64;
        for lblk in 0..nblocks {
            let Some(phys) = bmap(store, &self.geo, di, lblk)? else {
                continue;
            };
            let data = store.read_block(phys)?;
            if !dir::is_empty(&data)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn validate_name(name: &str) -> FsResult<()> {
        if name.is_empty() || name == "." || name == ".." {
            return Err(FsError::Inval);
        }
        if name.len() > dir::NAME_MAX {
            return Err(FsError::NameTooLong);
        }
        if name.contains('/') || name.contains('\0') {
            return Err(FsError::Inval);
        }
        Ok(())
    }

    /// Shared creation path for regular files, directories, and
    /// symlinks. Caller (via [`MemFs::with_tx`]) holds `dirino`'s
    /// shard lock.
    fn create_entry<S: MetaStore + ?Sized>(
        &self,
        store: &S,
        dirino: u64,
        name: &str,
        mut child: DiskInode,
        inline_target: Option<&str>,
    ) -> FsResult<InodeAttr> {
        Self::validate_name(name)?;
        self.stats.mutations.fetch_add(1, Ordering::Relaxed);
        let mut dir_di = self.read_dir_di(store, dirino)?;
        if self.dir_find(store, &dir_di, name)?.is_some() {
            return Err(FsError::Exist);
        }
        let ino = self.alloc_ino(store)?;
        if let Some(t) = inline_target {
            child.size = t.len() as u64;
            if t.len() <= INLINE_TARGET_MAX {
                child.inline_target = Some(t.to_string());
            } else {
                // Long target: spill to a data block.
                let phys = self.alloc_block(store)?;
                let mut blockbuf = vec![0u8; self.geo.block_size];
                blockbuf[..t.len()].copy_from_slice(t.as_bytes());
                store.write_block(phys, &blockbuf)?;
                child.direct[0] = phys;
            }
        }
        self.write_di(store, ino, &child)?;
        if let Err(e) = self.dir_insert(store, dirino, &mut dir_di, name, ino, child.ftype) {
            // Roll back the inode on directory-insert failure.
            let _ = clear_inode(store, &self.geo, ino);
            let _ = self.free_ino(store, ino);
            return Err(e);
        }
        if child.ftype == FileType::Directory {
            dir_di.nlink += 1;
        }
        dir_di.mtime = self.now();
        self.write_di(store, dirino, &dir_di)?;
        Ok(child.attr(ino))
    }

    /// Drops one link on `ino`; frees the inode at zero links.
    fn drop_link<S: MetaStore + ?Sized>(&self, store: &S, ino: u64, is_dir: bool) -> FsResult<()> {
        let mut di = self.read_di(store, ino)?;
        let dead = if is_dir {
            true // rmdir always destroys
        } else {
            di.nlink -= 1;
            di.nlink == 0
        };
        if dead {
            self.free_all_blocks(store, &mut di)?;
            clear_inode(store, &self.geo, ino)?;
            self.free_ino(store, ino)?;
        } else {
            di.ctime = self.now();
            self.write_di(store, ino, &di)?;
        }
        Ok(())
    }
}

impl FileSystem for MemFs {
    fn fs_type(&self) -> &'static str {
        "memfs"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn root_ino(&self) -> u64 {
        ROOT_INO
    }

    fn getattr(&self, ino: u64) -> FsResult<InodeAttr> {
        self.stats.getattrs.fetch_add(1, Ordering::Relaxed);
        Ok(self.read_di(&*self.disk, ino)?.attr(ino))
    }

    fn lookup(&self, dirino: u64, name: &str) -> FsResult<InodeAttr> {
        self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        let _g = self.lock_many(&[dirino]);
        let disk = &*self.disk;
        let dir_di = self.read_dir_di(disk, dirino)?;
        match self.dir_find(disk, &dir_di, name)? {
            Some((ino, _)) => Ok(self.read_di(disk, ino)?.attr(ino)),
            None => Err(FsError::NoEnt),
        }
    }

    fn readdir(
        &self,
        dirino: u64,
        offset: u64,
        max: usize,
        out: &mut Vec<DirEntry>,
    ) -> FsResult<Option<u64>> {
        self.stats.readdirs.fetch_add(1, Ordering::Relaxed);
        let _g = self.lock_many(&[dirino]);
        let disk = &*self.disk;
        let di = self.read_dir_di(disk, dirino)?;
        let bs = self.geo.block_size as u64;
        let nblocks = di.size / bs;
        let mut lblk = offset / bs;
        let mut intra = (offset % bs) as usize;
        let mut emitted = 0usize;
        while lblk < nblocks {
            let Some(phys) = bmap(disk, &self.geo, &di, lblk)? else {
                lblk += 1;
                intra = 0;
                continue;
            };
            let data = disk.read_block(phys)?;
            for rec in dir::RecordIter::from_offset(&data, intra) {
                let rec = rec?;
                if rec.ino != 0 {
                    if emitted == max {
                        return Ok(Some(lblk * bs + rec.offset as u64));
                    }
                    out.push(DirEntry {
                        name: String::from_utf8_lossy(rec.name).into_owned(),
                        ino: rec.ino,
                        ftype: FileType::from_u8(rec.ftype).unwrap_or(FileType::Regular),
                    });
                    emitted += 1;
                }
            }
            lblk += 1;
            intra = 0;
        }
        Ok(None)
    }

    fn create(&self, dir: u64, name: &str, mode: u16, uid: u32, gid: u32) -> FsResult<InodeAttr> {
        let child = DiskInode::new(FileType::Regular, mode, uid, gid, self.now());
        self.with_tx(&[dir], |tx| self.create_entry(tx, dir, name, child, None))
    }

    fn mkdir(&self, dir: u64, name: &str, mode: u16, uid: u32, gid: u32) -> FsResult<InodeAttr> {
        let child = DiskInode::new(FileType::Directory, mode, uid, gid, self.now());
        self.with_tx(&[dir], |tx| self.create_entry(tx, dir, name, child, None))
    }

    fn symlink(
        &self,
        dir: u64,
        name: &str,
        target: &str,
        uid: u32,
        gid: u32,
    ) -> FsResult<InodeAttr> {
        if target.is_empty() || target.len() >= self.geo.block_size {
            return Err(FsError::Inval);
        }
        let child = DiskInode::new(FileType::Symlink, 0o777, uid, gid, self.now());
        self.with_tx(&[dir], |tx| {
            self.create_entry(tx, dir, name, child, Some(target))
        })
    }

    fn readlink(&self, ino: u64) -> FsResult<String> {
        let disk = &*self.disk;
        let di = self.read_di(disk, ino)?;
        if di.ftype != FileType::Symlink {
            return Err(FsError::Inval);
        }
        if let Some(t) = &di.inline_target {
            return Ok(t.clone());
        }
        let phys = bmap(disk, &self.geo, &di, 0)?.ok_or(FsError::Io)?;
        let data = disk.read_block(phys)?;
        String::from_utf8(data[..di.size as usize].to_vec()).map_err(|_| FsError::Io)
    }

    fn link(&self, dir: u64, name: &str, ino: u64) -> FsResult<InodeAttr> {
        Self::validate_name(name)?;
        self.stats.mutations.fetch_add(1, Ordering::Relaxed);
        self.with_tx(&[dir, ino], |tx| {
            let mut target = self.read_di(tx, ino)?;
            if target.ftype == FileType::Directory {
                return Err(FsError::Perm);
            }
            let mut dir_di = self.read_dir_di(tx, dir)?;
            if self.dir_find(tx, &dir_di, name)?.is_some() {
                return Err(FsError::Exist);
            }
            self.dir_insert(tx, dir, &mut dir_di, name, ino, target.ftype)?;
            dir_di.mtime = self.now();
            self.write_di(tx, dir, &dir_di)?;
            target.nlink += 1;
            target.ctime = self.now();
            self.write_di(tx, ino, &target)?;
            Ok(target.attr(ino))
        })
    }

    fn unlink(&self, dir: u64, name: &str) -> FsResult<()> {
        Self::validate_name(name)?;
        self.stats.mutations.fetch_add(1, Ordering::Relaxed);
        self.with_tx(&[dir], |tx| {
            let mut dir_di = self.read_dir_di(tx, dir)?;
            match self.dir_find(tx, &dir_di, name)? {
                None => Err(FsError::NoEnt),
                Some((_, ft)) if FileType::from_u8(ft) == Some(FileType::Directory) => {
                    Err(FsError::IsDir)
                }
                Some((ino, _)) => {
                    self.dir_remove(tx, &dir_di, name)?;
                    dir_di.mtime = self.now();
                    self.write_di(tx, dir, &dir_di)?;
                    self.drop_link(tx, ino, false)
                }
            }
        })
    }

    fn rmdir(&self, dir: u64, name: &str) -> FsResult<()> {
        Self::validate_name(name)?;
        self.stats.mutations.fetch_add(1, Ordering::Relaxed);
        self.with_tx(&[dir], |tx| {
            let mut dir_di = self.read_dir_di(tx, dir)?;
            match self.dir_find(tx, &dir_di, name)? {
                None => Err(FsError::NoEnt),
                Some((ino, ft)) => {
                    if FileType::from_u8(ft) != Some(FileType::Directory) {
                        return Err(FsError::NotDir);
                    }
                    let child = self.read_di(tx, ino)?;
                    if !self.dir_is_empty(tx, &child)? {
                        return Err(FsError::NotEmpty);
                    }
                    self.dir_remove(tx, &dir_di, name)?;
                    dir_di.nlink -= 1;
                    dir_di.mtime = self.now();
                    self.write_di(tx, dir, &dir_di)?;
                    self.drop_link(tx, ino, true)
                }
            }
        })
    }

    fn rename(&self, old_dir: u64, old_name: &str, new_dir: u64, new_name: &str) -> FsResult<()> {
        Self::validate_name(old_name)?;
        Self::validate_name(new_name)?;
        self.stats.mutations.fetch_add(1, Ordering::Relaxed);
        self.with_tx(&[old_dir, new_dir], |tx| {
            let mut odi = self.read_dir_di(tx, old_dir)?;
            let (src_ino, src_ft_raw) = self.dir_find(tx, &odi, old_name)?.ok_or(FsError::NoEnt)?;
            let src_ft = FileType::from_u8(src_ft_raw).ok_or(FsError::Io)?;
            let same_dir = old_dir == new_dir;
            if same_dir && old_name == new_name {
                return Ok(());
            }
            let mut ndi = if same_dir {
                odi.clone()
            } else {
                self.read_dir_di(tx, new_dir)?
            };
            // Handle an existing target per POSIX.
            if let Some((dst_ino, dst_ft_raw)) = self.dir_find(tx, &ndi, new_name)? {
                if dst_ino == src_ino {
                    return Ok(()); // hard links to the same inode
                }
                let dst_ft = FileType::from_u8(dst_ft_raw).ok_or(FsError::Io)?;
                match (src_ft.is_dir(), dst_ft.is_dir()) {
                    (true, false) => return Err(FsError::NotDir),
                    (false, true) => return Err(FsError::IsDir),
                    (true, true) => {
                        let dst = self.read_di(tx, dst_ino)?;
                        if !self.dir_is_empty(tx, &dst)? {
                            return Err(FsError::NotEmpty);
                        }
                        self.dir_remove(tx, &ndi, new_name)?;
                        ndi.nlink -= 1;
                        // Persist the nlink drop now: the same-directory path
                        // below re-reads the inode from the store.
                        self.write_di(tx, new_dir, &ndi)?;
                        self.drop_link(tx, dst_ino, true)?;
                    }
                    (false, false) => {
                        self.dir_remove(tx, &ndi, new_name)?;
                        self.drop_link(tx, dst_ino, false)?;
                    }
                }
                // Refresh the source view: removals may have rewritten blocks.
                if same_dir {
                    odi = self.read_dir_di(tx, old_dir)?;
                    ndi = odi.clone();
                }
            }
            self.dir_remove(tx, &odi, old_name)?;
            if same_dir {
                // Same-directory rename: re-read to see the removal, insert.
                let mut di = self.read_dir_di(tx, old_dir)?;
                self.dir_insert(tx, old_dir, &mut di, new_name, src_ino, src_ft)?;
                di.mtime = self.now();
                self.write_di(tx, old_dir, &di)?;
            } else {
                if src_ft.is_dir() {
                    odi.nlink -= 1;
                    ndi.nlink += 1;
                }
                odi.mtime = self.now();
                self.write_di(tx, old_dir, &odi)?;
                self.dir_insert(tx, new_dir, &mut ndi, new_name, src_ino, src_ft)?;
                ndi.mtime = self.now();
                self.write_di(tx, new_dir, &ndi)?;
            }
            Ok(())
        })
    }

    fn setattr(&self, ino: u64, changes: SetAttr) -> FsResult<InodeAttr> {
        self.stats.mutations.fetch_add(1, Ordering::Relaxed);
        self.with_tx(&[ino], |tx| {
            let mut di = self.read_di(tx, ino)?;
            if let Some(m) = changes.mode {
                di.mode = m & 0o7777;
            }
            if let Some(u) = changes.uid {
                di.uid = u;
            }
            if let Some(g) = changes.gid {
                di.gid = g;
            }
            if let Some(sz) = changes.size {
                if di.ftype == FileType::Directory {
                    return Err(FsError::IsDir);
                }
                if sz == 0 {
                    self.free_all_blocks(tx, &mut di)?;
                }
                // Shrinking to a mid-block size keeps blocks (lazy), growing
                // leaves holes; both match sparse-file semantics closely
                // enough for the workloads.
                di.size = sz;
            }
            if let Some(mt) = changes.mtime {
                di.mtime = mt;
            }
            di.ctime = self.now();
            self.write_di(tx, ino, &di)?;
            Ok(di.attr(ino))
        })
    }

    fn read(&self, ino: u64, offset: u64, len: usize) -> FsResult<Bytes> {
        let disk = &*self.disk;
        let di = self.read_di(disk, ino)?;
        if di.ftype == FileType::Directory {
            return Err(FsError::IsDir);
        }
        if offset >= di.size {
            return Ok(Bytes::new());
        }
        let len = len.min((di.size - offset) as usize);
        let bs = self.geo.block_size as u64;
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        while out.len() < len {
            let lblk = pos / bs;
            let intra = (pos % bs) as usize;
            let take = ((bs as usize) - intra).min(len - out.len());
            match bmap(disk, &self.geo, &di, lblk)? {
                Some(phys) => {
                    let data = disk.read_block(phys)?;
                    out.extend_from_slice(&data[intra..intra + take]);
                }
                None => out.extend(std::iter::repeat_n(0u8, take)),
            }
            pos += take as u64;
        }
        Ok(Bytes::from(out))
    }

    fn write(&self, ino: u64, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.stats.mutations.fetch_add(1, Ordering::Relaxed);
        self.with_tx(&[ino], |tx| {
            let mut di = self.read_di(tx, ino)?;
            if di.ftype == FileType::Directory {
                return Err(FsError::IsDir);
            }
            let bs = self.geo.block_size as u64;
            let mut pos = offset;
            let mut remaining = data;
            while !remaining.is_empty() {
                let lblk = pos / bs;
                let intra = (pos % bs) as usize;
                let take = ((bs as usize) - intra).min(remaining.len());
                let phys = self.bmap_alloc(tx, ino, &mut di, lblk)?;
                // File *content* is write-back (not journaled): data blocks
                // go straight to the page cache, matching ext3
                // data=writeback. Only the metadata (bitmap, indirect,
                // inode) rides the transaction.
                if take == bs as usize {
                    self.disk.write_block(phys, &remaining[..take])?;
                } else {
                    let old = self.disk.read_block(phys)?;
                    let mut copy = old.to_vec();
                    copy[intra..intra + take].copy_from_slice(&remaining[..take]);
                    self.disk.write_block(phys, &copy)?;
                }
                pos += take as u64;
                remaining = &remaining[take..];
            }
            di.size = di.size.max(offset + data.len() as u64);
            di.mtime = self.now();
            self.write_di(tx, ino, &di)?;
            Ok(data.len())
        })
    }

    fn statfs(&self) -> FsResult<StatFs> {
        let a = self.alloc.lock();
        Ok(StatFs {
            blocks: self.geo.capacity_blocks,
            bfree: a.free_blocks,
            files: self.geo.max_inodes,
            ffree: a.free_inodes,
            bsize: self.geo.block_size as u64,
        })
    }

    fn sync(&self) -> FsResult<()> {
        match &self.journal {
            // A checkpoint *is* a full sync, plus the tail advance that
            // reclaims log space.
            Some(j) => j.checkpoint(&self.disk),
            None => {
                self.disk.sync()?;
                Ok(())
            }
        }
    }

    fn stats(&self) -> &FsStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_blockdev::{DiskConfig, LatencyModel};

    fn newdisk() -> Arc<CachedDisk> {
        Arc::new(CachedDisk::new(DiskConfig {
            block_size: 4096,
            capacity_blocks: 8192,
            latency: LatencyModel::free(),
            cache_pages: 4096,
        }))
    }

    fn newfs() -> Arc<MemFs> {
        MemFs::mkfs(
            newdisk(),
            MemFsConfig {
                max_inodes: 4096,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn newfs_nojournal() -> Arc<MemFs> {
        MemFs::mkfs(
            newdisk(),
            MemFsConfig {
                max_inodes: 4096,
                journal: false,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn root_exists_as_directory() {
        let fs = newfs();
        let a = fs.getattr(fs.root_ino()).unwrap();
        assert_eq!(a.ftype, FileType::Directory);
        assert_eq!(a.mode, 0o755);
        assert_eq!(a.nlink, 2);
    }

    #[test]
    fn create_lookup_unlink_cycle() {
        let fs = newfs();
        let r = fs.root_ino();
        let f = fs.create(r, "a.txt", 0o644, 5, 6).unwrap();
        assert_eq!(f.uid, 5);
        let found = fs.lookup(r, "a.txt").unwrap();
        assert_eq!(found.ino, f.ino);
        fs.unlink(r, "a.txt").unwrap();
        assert_eq!(fs.lookup(r, "a.txt"), Err(FsError::NoEnt));
        assert_eq!(fs.getattr(f.ino), Err(FsError::NoEnt));
    }

    #[test]
    fn duplicate_create_is_eexist() {
        let fs = newfs();
        let r = fs.root_ino();
        fs.create(r, "x", 0o644, 0, 0).unwrap();
        assert_eq!(fs.create(r, "x", 0o644, 0, 0), Err(FsError::Exist));
        assert_eq!(fs.mkdir(r, "x", 0o755, 0, 0), Err(FsError::Exist));
    }

    #[test]
    fn mkdir_updates_parent_nlink() {
        let fs = newfs();
        let r = fs.root_ino();
        fs.mkdir(r, "d1", 0o755, 0, 0).unwrap();
        fs.mkdir(r, "d2", 0o755, 0, 0).unwrap();
        assert_eq!(fs.getattr(r).unwrap().nlink, 4);
        fs.rmdir(r, "d1").unwrap();
        assert_eq!(fs.getattr(r).unwrap().nlink, 3);
    }

    #[test]
    fn rmdir_nonempty_rejected() {
        let fs = newfs();
        let r = fs.root_ino();
        let d = fs.mkdir(r, "d", 0o755, 0, 0).unwrap();
        fs.create(d.ino, "inner", 0o644, 0, 0).unwrap();
        assert_eq!(fs.rmdir(r, "d"), Err(FsError::NotEmpty));
        fs.unlink(d.ino, "inner").unwrap();
        fs.rmdir(r, "d").unwrap();
    }

    #[test]
    fn unlink_of_directory_is_eisdir() {
        let fs = newfs();
        let r = fs.root_ino();
        fs.mkdir(r, "d", 0o755, 0, 0).unwrap();
        assert_eq!(fs.unlink(r, "d"), Err(FsError::IsDir));
        let f = fs.create(r, "f", 0o644, 0, 0).unwrap();
        let _ = f;
        assert_eq!(fs.rmdir(r, "f"), Err(FsError::NotDir));
    }

    #[test]
    fn hard_links_share_inode() {
        let fs = newfs();
        let r = fs.root_ino();
        let f = fs.create(r, "orig", 0o644, 0, 0).unwrap();
        let l = fs.link(r, "alias", f.ino).unwrap();
        assert_eq!(l.ino, f.ino);
        assert_eq!(l.nlink, 2);
        fs.unlink(r, "orig").unwrap();
        // Still alive through the second link.
        assert_eq!(fs.getattr(f.ino).unwrap().nlink, 1);
        fs.unlink(r, "alias").unwrap();
        assert_eq!(fs.getattr(f.ino), Err(FsError::NoEnt));
    }

    #[test]
    fn link_to_directory_rejected() {
        let fs = newfs();
        let r = fs.root_ino();
        let d = fs.mkdir(r, "d", 0o755, 0, 0).unwrap();
        assert_eq!(fs.link(r, "dlink", d.ino), Err(FsError::Perm));
    }

    #[test]
    fn symlink_round_trip_inline_and_long() {
        let fs = newfs();
        let r = fs.root_ino();
        let s = fs.symlink(r, "short", "/etc/passwd", 0, 0).unwrap();
        assert_eq!(fs.readlink(s.ino).unwrap(), "/etc/passwd");
        let long = "x/".repeat(120);
        let s2 = fs.symlink(r, "long", &long, 0, 0).unwrap();
        assert_eq!(fs.readlink(s2.ino).unwrap(), long);
        // readlink of a non-symlink fails.
        let f = fs.create(r, "f", 0o644, 0, 0).unwrap();
        assert_eq!(fs.readlink(f.ino), Err(FsError::Inval));
    }

    #[test]
    fn rename_within_and_across_directories() {
        let fs = newfs();
        let r = fs.root_ino();
        let d1 = fs.mkdir(r, "d1", 0o755, 0, 0).unwrap();
        let d2 = fs.mkdir(r, "d2", 0o755, 0, 0).unwrap();
        let f = fs.create(d1.ino, "f", 0o644, 0, 0).unwrap();
        fs.rename(d1.ino, "f", d1.ino, "g").unwrap();
        assert_eq!(fs.lookup(d1.ino, "g").unwrap().ino, f.ino);
        fs.rename(d1.ino, "g", d2.ino, "h").unwrap();
        assert_eq!(fs.lookup(d1.ino, "g"), Err(FsError::NoEnt));
        assert_eq!(fs.lookup(d2.ino, "h").unwrap().ino, f.ino);
    }

    #[test]
    fn rename_directory_updates_nlinks() {
        let fs = newfs();
        let r = fs.root_ino();
        let d1 = fs.mkdir(r, "d1", 0o755, 0, 0).unwrap();
        let d2 = fs.mkdir(r, "d2", 0o755, 0, 0).unwrap();
        fs.mkdir(d1.ino, "sub", 0o755, 0, 0).unwrap();
        assert_eq!(fs.getattr(d1.ino).unwrap().nlink, 3);
        fs.rename(d1.ino, "sub", d2.ino, "sub").unwrap();
        assert_eq!(fs.getattr(d1.ino).unwrap().nlink, 2);
        assert_eq!(fs.getattr(d2.ino).unwrap().nlink, 3);
    }

    #[test]
    fn rename_replaces_compatible_targets() {
        let fs = newfs();
        let r = fs.root_ino();
        let a = fs.create(r, "a", 0o644, 0, 0).unwrap();
        let _b = fs.create(r, "b", 0o644, 0, 0).unwrap();
        fs.rename(r, "a", r, "b").unwrap();
        assert_eq!(fs.lookup(r, "b").unwrap().ino, a.ino);
        assert_eq!(fs.lookup(r, "a"), Err(FsError::NoEnt));

        let d = fs.mkdir(r, "dir", 0o755, 0, 0).unwrap();
        assert_eq!(fs.rename(r, "b", r, "dir"), Err(FsError::IsDir));
        fs.create(d.ino, "x", 0o644, 0, 0).unwrap();
        let _e = fs.mkdir(r, "dir2", 0o755, 0, 0).unwrap();
        assert_eq!(fs.rename(r, "dir", r, "b"), Err(FsError::NotDir));
        assert_eq!(fs.rename(r, "dir2", r, "dir"), Err(FsError::NotEmpty));
        fs.unlink(d.ino, "x").unwrap();
        fs.rename(r, "dir2", r, "dir").unwrap();
    }

    #[test]
    fn readdir_pagination_is_stable() {
        let fs = newfs();
        let r = fs.root_ino();
        for i in 0..500 {
            fs.create(r, &format!("f{i:04}"), 0o644, 0, 0).unwrap();
        }
        let mut all = Vec::new();
        let mut cursor = 0u64;
        loop {
            let mut batch = Vec::new();
            let next = fs.readdir(r, cursor, 64, &mut batch).unwrap();
            all.extend(batch);
            match next {
                Some(c) => cursor = c,
                None => break,
            }
        }
        assert_eq!(all.len(), 500);
        let mut names: Vec<_> = all.iter().map(|e| e.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 500);
    }

    #[test]
    fn large_directory_lookup() {
        let fs = newfs();
        let r = fs.root_ino();
        let d = fs.mkdir(r, "big", 0o755, 0, 0).unwrap();
        for i in 0..2000 {
            fs.create(d.ino, &format!("entry-{i}"), 0o644, 0, 0)
                .unwrap();
        }
        assert!(fs.lookup(d.ino, "entry-1999").is_ok());
        assert_eq!(fs.lookup(d.ino, "entry-2000"), Err(FsError::NoEnt));
        // Remove everything; directory becomes empty and removable.
        for i in 0..2000 {
            fs.unlink(d.ino, &format!("entry-{i}")).unwrap();
        }
        fs.rmdir(r, "big").unwrap();
    }

    #[test]
    fn file_io_round_trip() {
        let fs = newfs();
        let r = fs.root_ino();
        let f = fs.create(r, "data", 0o644, 0, 0).unwrap();
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(fs.write(f.ino, 0, &payload).unwrap(), payload.len());
        let back = fs.read(f.ino, 0, payload.len()).unwrap();
        assert_eq!(&back[..], &payload[..]);
        // Unaligned read spanning blocks.
        let mid = fs.read(f.ino, 4000, 300).unwrap();
        assert_eq!(&mid[..], &payload[4000..4300]);
        // Reads past EOF truncate.
        let tail = fs.read(f.ino, payload.len() as u64 - 10, 100).unwrap();
        assert_eq!(tail.len(), 10);
    }

    #[test]
    fn sparse_files_read_zero_holes() {
        let fs = newfs();
        let r = fs.root_ino();
        let f = fs.create(r, "sparse", 0o644, 0, 0).unwrap();
        fs.write(f.ino, 100_000, b"tail").unwrap();
        let hole = fs.read(f.ino, 50_000, 16).unwrap();
        assert!(hole.iter().all(|&b| b == 0));
        let tail = fs.read(f.ino, 100_000, 4).unwrap();
        assert_eq!(&tail[..], b"tail");
    }

    #[test]
    fn setattr_chmod_chown_truncate() {
        let fs = newfs();
        let r = fs.root_ino();
        let f = fs.create(r, "f", 0o644, 0, 0).unwrap();
        fs.write(f.ino, 0, &[1u8; 10000]).unwrap();
        let a = fs
            .setattr(
                f.ino,
                SetAttr {
                    mode: Some(0o600),
                    uid: Some(9),
                    gid: Some(10),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!((a.mode, a.uid, a.gid), (0o600, 9, 10));
        let a = fs
            .setattr(
                f.ino,
                SetAttr {
                    size: Some(0),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(a.size, 0);
        assert_eq!(fs.read(f.ino, 0, 10).unwrap().len(), 0);
    }

    #[test]
    fn statfs_tracks_allocation() {
        let fs = newfs();
        // Force root's first directory block to exist so the snapshot
        // below isn't skewed by its one-time allocation.
        fs.create(fs.root_ino(), "warmup", 0o644, 0, 0).unwrap();
        let before = fs.statfs().unwrap();
        let f = fs.create(fs.root_ino(), "f", 0o644, 0, 0).unwrap();
        fs.write(f.ino, 0, &[0u8; 4096 * 3]).unwrap();
        let after = fs.statfs().unwrap();
        assert_eq!(before.ffree - after.ffree, 1);
        assert!(before.bfree > after.bfree);
        fs.unlink(fs.root_ino(), "f").unwrap();
        let freed = fs.statfs().unwrap();
        assert_eq!(freed.ffree, before.ffree);
        assert_eq!(freed.bfree, before.bfree);
    }

    #[test]
    fn remount_preserves_tree() {
        let fs = newfs();
        let r = fs.root_ino();
        let d = fs.mkdir(r, "persist", 0o755, 0, 0).unwrap();
        let f = fs.create(d.ino, "file", 0o640, 3, 4).unwrap();
        fs.write(f.ino, 0, b"durable").unwrap();
        fs.sync().unwrap();
        let disk = fs.disk().clone();
        drop(fs);
        let fs2 = MemFs::mount(disk).unwrap();
        let d2 = fs2.lookup(fs2.root_ino(), "persist").unwrap();
        let f2 = fs2.lookup(d2.ino, "file").unwrap();
        assert_eq!(f2.mode, 0o640);
        assert_eq!(&fs2.read(f2.ino, 0, 7).unwrap()[..], b"durable");
        // Allocation counters survive: creating more files works.
        fs2.create(d2.ino, "more", 0o644, 0, 0).unwrap();
    }

    #[test]
    fn cold_cache_reads_hit_device() {
        let fs = newfs();
        let r = fs.root_ino();
        fs.create(r, "cold", 0o644, 0, 0).unwrap();
        fs.sync().unwrap();
        fs.disk().drop_caches();
        fs.disk().reset_stats();
        fs.lookup(r, "cold").unwrap();
        let s = fs.disk().stats();
        assert!(
            s.device_reads > 0,
            "expected device reads after drop_caches"
        );
    }

    #[test]
    fn lookup_on_file_is_enotdir() {
        let fs = newfs();
        let r = fs.root_ino();
        let f = fs.create(r, "plain", 0o644, 0, 0).unwrap();
        assert_eq!(fs.lookup(f.ino, "x"), Err(FsError::NotDir));
    }

    #[test]
    fn invalid_names_rejected() {
        let fs = newfs();
        let r = fs.root_ino();
        assert_eq!(fs.create(r, "", 0o644, 0, 0), Err(FsError::Inval));
        assert_eq!(fs.create(r, ".", 0o644, 0, 0), Err(FsError::Inval));
        assert_eq!(fs.create(r, "..", 0o644, 0, 0), Err(FsError::Inval));
        assert_eq!(fs.create(r, "a/b", 0o644, 0, 0), Err(FsError::Inval));
        let long = "n".repeat(300);
        assert_eq!(fs.create(r, &long, 0o644, 0, 0), Err(FsError::NameTooLong));
    }

    #[test]
    fn rename_same_source_and_target_is_noop() {
        let fs = newfs();
        let r = fs.root_ino();
        let f = fs.create(r, "self", 0o644, 0, 0).unwrap();
        fs.rename(r, "self", r, "self").unwrap();
        assert_eq!(fs.lookup(r, "self").unwrap().ino, f.ino);
    }

    #[test]
    fn fs_stats_count_calls() {
        let fs = newfs();
        let r = fs.root_ino();
        fs.create(r, "f", 0o644, 0, 0).unwrap();
        fs.lookup(r, "f").unwrap();
        let _ = fs.lookup(r, "missing");
        let (lookups, _, _, mutations) = fs.stats().snapshot();
        assert_eq!(lookups, 2);
        assert_eq!(mutations, 1);
    }

    #[test]
    fn journal_commits_one_txn_per_mutation() {
        let fs = newfs();
        let r = fs.root_ino();
        let base = fs.journal_seq().unwrap();
        fs.create(r, "a", 0o644, 0, 0).unwrap();
        fs.mkdir(r, "d", 0o755, 0, 0).unwrap();
        fs.unlink(r, "a").unwrap();
        assert_eq!(fs.journal_seq().unwrap(), base + 3);
        // A failed op commits nothing.
        assert_eq!(fs.mkdir(r, "d", 0o755, 0, 0), Err(FsError::Exist));
        assert_eq!(fs.journal_seq().unwrap(), base + 3);
        let js = fs.journal_stats().unwrap();
        assert_eq!(js.commits, 3);
        assert!(js.blocks_logged >= 3);
    }

    #[test]
    fn nojournal_mode_commits_nothing() {
        let fs = newfs_nojournal();
        let r = fs.root_ino();
        fs.create(r, "a", 0o644, 0, 0).unwrap();
        assert_eq!(fs.journal_seq(), None);
        assert_eq!(fs.journal_stats(), None);
        assert_eq!(fs.lookup(r, "a").unwrap().mode, 0o644);
    }

    #[test]
    fn journaled_metadata_survives_power_cut_without_sync() {
        let fs = newfs();
        let r = fs.root_ino();
        fs.create(r, "committed", 0o640, 0, 0).unwrap();
        // No sync(): the in-place copies are dirty in the page cache, but
        // the journal slots were force-flushed by the commit protocol.
        let lost = fs.disk().power_cut();
        assert!(lost > 0, "expected dirty pages to be lost");
        let disk = fs.disk().clone();
        drop(fs);
        let fs2 = MemFs::mount(disk).unwrap();
        assert!(fs2.replayed_txns() > 0);
        assert_eq!(fs2.lookup(fs2.root_ino(), "committed").unwrap().mode, 0o640);
    }

    #[test]
    fn unjournaled_metadata_lost_on_power_cut() {
        let fs = newfs_nojournal();
        let r = fs.root_ino();
        fs.create(r, "volatile", 0o644, 0, 0).unwrap();
        fs.disk().power_cut();
        let disk = fs.disk().clone();
        drop(fs);
        let fs2 = MemFs::mount(disk).unwrap();
        // Without a journal the unsynced create vanishes entirely.
        assert_eq!(fs2.lookup(fs2.root_ino(), "volatile"), Err(FsError::NoEnt));
    }

    #[test]
    fn checkpoint_reclaims_log_space() {
        let fs = newfs();
        let r = fs.root_ino();
        // Far more transactions than the log has slots: forced
        // checkpoints must reclaim space along the way.
        for i in 0..300 {
            fs.create(r, &format!("n{i}"), 0o644, 0, 0).unwrap();
        }
        let js = fs.journal_stats().unwrap();
        assert_eq!(js.commits, 300);
        assert!(js.forced_checkpoints > 0, "log never wrapped: {js:?}");
        // And the tree is fully recoverable after a cut.
        fs.disk().power_cut();
        let disk = fs.disk().clone();
        drop(fs);
        let fs2 = MemFs::mount(disk).unwrap();
        for i in 0..300 {
            assert!(fs2.lookup(fs2.root_ino(), &format!("n{i}")).is_ok());
        }
    }

    #[test]
    fn recovery_is_idempotent() {
        let fs = newfs();
        let r = fs.root_ino();
        fs.create(r, "twice", 0o644, 0, 0).unwrap();
        fs.disk().power_cut();
        let disk = fs.disk().clone();
        drop(fs);
        let fs2 = MemFs::mount(disk.clone()).unwrap();
        let seq = fs2.recovered_seq();
        drop(fs2);
        // Mounting again finds the same committed chain already applied.
        let fs3 = MemFs::mount(disk).unwrap();
        assert_eq!(fs3.recovered_seq(), seq);
        assert_eq!(fs3.replayed_txns(), 0, "second recovery replayed anew");
        assert!(fs3.lookup(fs3.root_ino(), "twice").is_ok());
    }

    fn warm_entry(sig: u64, ino: u64, parent: u64, name: &str) -> WarmEntry {
        WarmEntry {
            sig: [sig, 0, 0, 0],
            ino,
            parent,
            state_acc: [0; 4],
            state_pos: 3,
            name: name.to_string(),
        }
    }

    #[test]
    fn warm_checkpoint_binds_durable_tail() {
        let fs = newfs();
        let r = fs.root_ino();
        let d = fs.mkdir(r, "d", 0o755, 0, 0).unwrap();
        let kept = fs
            .warm_checkpoint(&[warm_entry(11, d.ino, r, "d")])
            .unwrap();
        assert_eq!(kept, 1);
        // The checkpoint forces a journal checkpoint first, so the bound
        // sequence equals the durable tail, which after a checkpoint is
        // everything committed so far.
        match fs.read_warm_index().unwrap() {
            WarmLoad::Loaded {
                entries, bound_seq, ..
            } => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].ino, d.ino);
                assert_eq!(entries[0].name, "d");
                assert_eq!(bound_seq, fs.journal_stats().unwrap().commits);
            }
            other => panic!("expected Loaded, got {other:?}"),
        }
    }

    #[test]
    fn warm_index_survives_power_cut_and_remount() {
        let fs = newfs();
        let r = fs.root_ino();
        let d = fs.mkdir(r, "keep", 0o755, 0, 0).unwrap();
        fs.warm_checkpoint(&[warm_entry(7, d.ino, r, "keep")])
            .unwrap();
        // Post-checkpoint mutations commit to the journal but don't
        // invalidate the (now slightly stale) index.
        fs.create(r, "later", 0o644, 0, 0).unwrap();
        fs.disk().power_cut();
        let disk = fs.disk().clone();
        drop(fs);
        let fs2 = MemFs::mount(disk).unwrap();
        match fs2.read_warm_index().unwrap() {
            WarmLoad::Loaded {
                entries, bound_seq, ..
            } => {
                assert_eq!(entries[0].name, "keep");
                assert!(
                    bound_seq <= fs2.recovered_seq(),
                    "index bound past the recovered tail"
                );
            }
            other => panic!("expected Loaded, got {other:?}"),
        }
    }

    #[test]
    fn index_bound_to_future_sequence_is_rejected() {
        let fs = newfs();
        let r = fs.root_ino();
        let d = fs.mkdir(r, "d", 0o755, 0, 0).unwrap();
        // Bypass warm_checkpoint and bind the index to a sequence the
        // journal never reached: a checkpoint-ordering bug's signature.
        let bogus = fs.recovered_seq() + 1_000;
        warmidx::checkpoint(
            fs.disk(),
            fs.geometry(),
            &[warm_entry(5, d.ino, r, "d")],
            bogus,
            1,
        )
        .unwrap();
        match fs.read_warm_index().unwrap() {
            WarmLoad::Rejected(WarmReject::FutureSeq { bound_seq, .. }) => {
                assert_eq!(bound_seq, bogus)
            }
            other => panic!("expected FutureSeq rejection, got {other:?}"),
        }
    }

    #[test]
    fn warm_checkpoint_works_without_journal() {
        let fs = newfs_nojournal();
        let r = fs.root_ino();
        let d = fs.mkdir(r, "d", 0o755, 0, 0).unwrap();
        fs.warm_checkpoint(&[warm_entry(3, d.ino, r, "d")]).unwrap();
        match fs.read_warm_index().unwrap() {
            WarmLoad::Loaded { bound_seq, .. } => assert_eq!(bound_seq, 0),
            other => panic!("expected Loaded, got {other:?}"),
        }
    }

    #[test]
    fn warm_generation_continues_across_remount() {
        let fs = newfs();
        let r = fs.root_ino();
        let d = fs.mkdir(r, "a", 0o755, 0, 0).unwrap();
        fs.warm_checkpoint(&[warm_entry(1, d.ino, r, "a")]).unwrap();
        fs.warm_checkpoint(&[warm_entry(2, d.ino, r, "a")]).unwrap();
        let disk = fs.disk().clone();
        drop(fs);
        // A checkpoint after remount must out-generation both on-disk
        // copies, or mount would resurrect the older index.
        let fs2 = MemFs::mount(disk).unwrap();
        let e = fs2.mkdir(fs2.root_ino(), "b", 0o755, 0, 0).unwrap();
        fs2.warm_checkpoint(&[warm_entry(9, e.ino, fs2.root_ino(), "b")])
            .unwrap();
        match fs2.read_warm_index().unwrap() {
            WarmLoad::Loaded { entries, gen, .. } => {
                assert_eq!(entries[0].name, "b");
                assert!(gen >= 3, "generation regressed: {gen}");
            }
            other => panic!("expected Loaded, got {other:?}"),
        }
    }

    #[test]
    fn mkfs_clears_stale_warm_index() {
        let fs = newfs();
        let r = fs.root_ino();
        let d = fs.mkdir(r, "old", 0o755, 0, 0).unwrap();
        fs.warm_checkpoint(&[warm_entry(4, d.ino, r, "old")])
            .unwrap();
        let disk = fs.disk().clone();
        drop(fs);
        let fs2 = MemFs::mkfs(
            disk,
            MemFsConfig {
                max_inodes: 4096,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(matches!(fs2.read_warm_index().unwrap(), WarmLoad::Absent));
    }
}
