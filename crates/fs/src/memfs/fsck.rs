//! Full-image consistency checker — the crash-campaign oracle.
//!
//! Walks the entire on-disk structure from the root directory and
//! cross-checks every invariant the file system maintains:
//!
//! - every directory entry points at an in-range, allocated, live inode
//!   whose type matches the entry's type byte;
//! - no directory is reachable twice (no cycles, no hard-linked dirs);
//! - link counts: files carry one link per referencing entry, directories
//!   carry `2 + subdirectories`;
//! - no data block is claimed by two inodes, lies outside the data
//!   region, or is reachable while marked free in the block bitmap;
//! - every block the bitmap marks allocated is either metadata (incl.
//!   the journal region) or reachable from some inode — no leaks;
//! - the inode bitmap agrees exactly with the set of live inode records.
//!
//! `fsck` only *reads*; it never repairs. A crash campaign mounts the
//! image first (running journal recovery) and then expects a clean
//! report — any error here means recovery broke an invariant.

use super::inode::DiskInode;
use super::layout::{Geometry, INODE_SIZE};
use crate::api::FileType;
use crate::error::FsResult;
use dc_blockdev::CachedDisk;
use std::collections::{HashMap, HashSet};

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckError {
    /// A directory entry names an out-of-range or free inode.
    DanglingEntry {
        /// Directory holding the entry.
        dir: u64,
        /// Entry name.
        name: String,
        /// The bad inode number.
        ino: u64,
    },
    /// An entry's type byte disagrees with the inode it points at.
    TypeMismatch {
        /// Directory holding the entry.
        dir: u64,
        /// Entry name.
        name: String,
        /// The inode in question.
        ino: u64,
    },
    /// A directory is reachable through more than one entry (cycle or
    /// hard-linked directory).
    DirReentered {
        /// The multiply-reachable directory.
        ino: u64,
    },
    /// An inode's recorded link count disagrees with the tree.
    WrongNlink {
        /// The inode.
        ino: u64,
        /// Links the tree implies.
        expected: u32,
        /// Links the record claims.
        found: u32,
    },
    /// A block pointer escapes the data region.
    BlockOutOfRange {
        /// Owning inode.
        ino: u64,
        /// The bad pointer.
        block: u64,
    },
    /// Two inodes (or one inode twice) claim the same data block.
    BlockDoubleClaimed {
        /// The block claimed twice.
        block: u64,
        /// The second claimant.
        ino: u64,
    },
    /// A reachable block is marked free in the block bitmap.
    BlockNotAllocated {
        /// The block.
        block: u64,
        /// Owning inode.
        ino: u64,
    },
    /// An allocated data block is unreachable from every inode (leak).
    OrphanBlock {
        /// The leaked block.
        block: u64,
    },
    /// A metadata/journal block is marked free in the block bitmap.
    MetaNotAllocated {
        /// The block.
        block: u64,
    },
    /// A live inode record is unreachable from the root (leak).
    OrphanInode {
        /// The leaked inode.
        ino: u64,
    },
    /// A live inode record whose inode-bitmap bit is clear.
    InodeNotAllocated {
        /// The inode.
        ino: u64,
    },
    /// An allocated inode-bitmap bit with a free (zeroed) record.
    InodeBitmapGhost {
        /// The inode.
        ino: u64,
    },
    /// An inode record that fails to deserialize.
    UnreadableInode {
        /// The inode.
        ino: u64,
    },
    /// Two warm-index entries carry the same path signature.
    WarmIndexDuplicateKey {
        /// Inode of the second entry with the repeated signature.
        ino: u64,
    },
    /// A warm-index entry references an out-of-range inode number.
    WarmIndexOrphanSig {
        /// The bad inode number.
        ino: u64,
    },
    /// A warm-index entry's parent is neither the root nor an index
    /// entry appearing earlier in the (parents-first) entry stream.
    WarmIndexDanglingParent {
        /// The entry's inode.
        ino: u64,
        /// The missing or misordered parent.
        parent: u64,
    },
}

impl std::fmt::Display for FsckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsckError::DanglingEntry { dir, name, ino } => {
                write!(f, "dir {dir}: entry {name:?} -> dangling inode {ino}")
            }
            FsckError::TypeMismatch { dir, name, ino } => {
                write!(
                    f,
                    "dir {dir}: entry {name:?} type byte mismatches inode {ino}"
                )
            }
            FsckError::DirReentered { ino } => write!(f, "directory {ino} reachable twice"),
            FsckError::WrongNlink {
                ino,
                expected,
                found,
            } => write!(f, "inode {ino}: nlink {found}, tree implies {expected}"),
            FsckError::BlockOutOfRange { ino, block } => {
                write!(f, "inode {ino}: block pointer {block} outside data region")
            }
            FsckError::BlockDoubleClaimed { block, ino } => {
                write!(f, "block {block} double-claimed (second owner inode {ino})")
            }
            FsckError::BlockNotAllocated { block, ino } => {
                write!(f, "block {block} (inode {ino}) reachable but marked free")
            }
            FsckError::OrphanBlock { block } => write!(f, "block {block} allocated but orphaned"),
            FsckError::MetaNotAllocated { block } => {
                write!(f, "metadata block {block} marked free")
            }
            FsckError::OrphanInode { ino } => write!(f, "inode {ino} live but unreachable"),
            FsckError::InodeNotAllocated { ino } => {
                write!(f, "inode {ino} live but bitmap bit clear")
            }
            FsckError::InodeBitmapGhost { ino } => {
                write!(f, "inode {ino} allocated in bitmap but record is free")
            }
            FsckError::UnreadableInode { ino } => write!(f, "inode {ino} undecodable"),
            FsckError::WarmIndexDuplicateKey { ino } => {
                write!(f, "warm index: duplicate signature (entry for inode {ino})")
            }
            FsckError::WarmIndexOrphanSig { ino } => {
                write!(f, "warm index: entry references out-of-range inode {ino}")
            }
            FsckError::WarmIndexDanglingParent { ino, parent } => {
                write!(
                    f,
                    "warm index: entry for inode {ino} has dangling parent {parent}"
                )
            }
        }
    }
}

/// The outcome of a full consistency walk.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Every violated invariant, in discovery order.
    pub errors: Vec<FsckError>,
    /// Live inodes reachable from the root.
    pub inodes_reachable: u64,
    /// Directories among them.
    pub dirs: u64,
    /// Data blocks reachable from inodes (indirect blocks included).
    pub blocks_reachable: u64,
    /// Whether a checksum-valid warm-restart index was present.
    pub warm_index_present: bool,
    /// Entries in that index (0 when absent).
    pub warm_entries: u64,
}

impl FsckReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Loads a bitmap region into memory for O(1) bit tests.
fn load_bits(disk: &CachedDisk, start: u64, nbits: u64, block_size: usize) -> FsResult<Vec<u8>> {
    let bits_per_block = (block_size * 8) as u64;
    let nblocks = nbits.div_ceil(bits_per_block);
    let mut out = Vec::with_capacity((nblocks as usize) * block_size);
    for b in 0..nblocks {
        out.extend_from_slice(&disk.read_block(start + b)?);
    }
    Ok(out)
}

fn bit(bits: &[u8], idx: u64) -> bool {
    bits[(idx / 8) as usize] & (1 << (idx % 8)) != 0
}

fn read_raw_inode(disk: &CachedDisk, geo: &Geometry, ino: u64) -> FsResult<Option<DiskInode>> {
    let (block, off) = geo.inode_location(ino);
    let data = disk.read_block(block)?;
    DiskInode::decode(&data[off..off + INODE_SIZE])
}

/// Every physical block an inode owns (direct, indirect contents, and the
/// indirect block itself). Inline symlinks own nothing.
fn blocks_of(disk: &CachedDisk, di: &DiskInode) -> FsResult<Vec<u64>> {
    if di.inline_target.is_some() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for &d in &di.direct {
        if d != 0 {
            out.push(d);
        }
    }
    if di.indirect != 0 {
        out.push(di.indirect);
        let blk = disk.read_block(di.indirect)?;
        for chunk in blk.chunks_exact(8) {
            let p = u64::from_le_bytes(chunk.try_into().unwrap());
            if p != 0 {
                out.push(p);
            }
        }
    }
    Ok(out)
}

/// Runs the full consistency check over a formatted disk. Errors out only
/// on an unreadable superblock; structural damage lands in the report.
pub fn fsck(disk: &CachedDisk) -> FsResult<FsckReport> {
    let geo = Geometry::read_superblock(disk)?;
    let mut report = FsckReport::default();
    let ibits = load_bits(disk, geo.ibmap_start, geo.max_inodes, geo.block_size)?;
    let bbits = load_bits(disk, geo.bbmap_start, geo.capacity_blocks, geo.block_size)?;

    // Metadata (superblock, bitmaps, inode table, journal) must all be
    // marked allocated — a recovery bug could never expose them for reuse.
    for b in 0..geo.data_start {
        if !bit(&bbits, b) {
            report.errors.push(FsckError::MetaNotAllocated { block: b });
        }
    }

    // Breadth-first walk from the root.
    let root = 1u64;
    let mut entry_links: HashMap<u64, u32> = HashMap::new(); // non-dir refs
    let mut subdirs: HashMap<u64, u32> = HashMap::new(); // child dirs per dir
    let mut seen_dirs: HashMap<u64, ()> = HashMap::new();
    let mut reachable: HashMap<u64, DiskInode> = HashMap::new();
    let mut block_owner: HashMap<u64, u64> = HashMap::new();
    let mut queue: Vec<u64> = Vec::new();

    match read_raw_inode(disk, &geo, root) {
        Ok(Some(di)) if di.ftype == FileType::Directory => {
            seen_dirs.insert(root, ());
            reachable.insert(root, di);
            queue.push(root);
        }
        Ok(_) => {
            report.errors.push(FsckError::DanglingEntry {
                dir: 0,
                name: "/".into(),
                ino: root,
            });
            return Ok(report);
        }
        Err(_) => {
            report.errors.push(FsckError::UnreadableInode { ino: root });
            return Ok(report);
        }
    }

    while let Some(dirino) = queue.pop() {
        let di = reachable[&dirino].clone();
        let nblocks = di.size / geo.block_size as u64;
        for lblk in 0..nblocks {
            let Some(phys) = super::inode::bmap(disk, &geo, &di, lblk)? else {
                continue;
            };
            let data = disk.read_block(phys)?;
            for rec in super::dir::RecordIter::new(&data) {
                let Ok(rec) = rec else {
                    // A corrupt record chain: charge it to the directory.
                    report
                        .errors
                        .push(FsckError::UnreadableInode { ino: dirino });
                    break;
                };
                if rec.ino == 0 {
                    continue;
                }
                let name = String::from_utf8_lossy(rec.name).into_owned();
                if rec.ino >= geo.max_inodes {
                    report.errors.push(FsckError::DanglingEntry {
                        dir: dirino,
                        name,
                        ino: rec.ino,
                    });
                    continue;
                }
                let child = match read_raw_inode(disk, &geo, rec.ino) {
                    Ok(Some(c)) => c,
                    Ok(None) => {
                        report.errors.push(FsckError::DanglingEntry {
                            dir: dirino,
                            name,
                            ino: rec.ino,
                        });
                        continue;
                    }
                    Err(_) => {
                        report
                            .errors
                            .push(FsckError::UnreadableInode { ino: rec.ino });
                        continue;
                    }
                };
                if FileType::from_u8(rec.ftype) != Some(child.ftype) {
                    report.errors.push(FsckError::TypeMismatch {
                        dir: dirino,
                        name,
                        ino: rec.ino,
                    });
                }
                if child.ftype == FileType::Directory {
                    *subdirs.entry(dirino).or_insert(0) += 1;
                    if seen_dirs.insert(rec.ino, ()).is_some() {
                        report.errors.push(FsckError::DirReentered { ino: rec.ino });
                        continue; // don't re-walk: would loop forever
                    }
                    reachable.insert(rec.ino, child);
                    queue.push(rec.ino);
                } else {
                    *entry_links.entry(rec.ino).or_insert(0) += 1;
                    reachable.entry(rec.ino).or_insert(child);
                }
            }
        }
    }

    // Per-inode invariants: link counts, bitmap agreement, block claims.
    for (&ino, di) in &reachable {
        report.inodes_reachable += 1;
        let expected = if di.ftype == FileType::Directory {
            report.dirs += 1;
            2 + subdirs.get(&ino).copied().unwrap_or(0)
        } else {
            entry_links.get(&ino).copied().unwrap_or(0)
        };
        if di.nlink != expected {
            report.errors.push(FsckError::WrongNlink {
                ino,
                expected,
                found: di.nlink,
            });
        }
        if !bit(&ibits, ino) {
            report.errors.push(FsckError::InodeNotAllocated { ino });
        }
        for blk in blocks_of(disk, di)? {
            if blk < geo.data_start || blk >= geo.capacity_blocks {
                report
                    .errors
                    .push(FsckError::BlockOutOfRange { ino, block: blk });
                continue;
            }
            if let Some(_prev) = block_owner.insert(blk, ino) {
                report
                    .errors
                    .push(FsckError::BlockDoubleClaimed { block: blk, ino });
            }
            if !bit(&bbits, blk) {
                report
                    .errors
                    .push(FsckError::BlockNotAllocated { block: blk, ino });
            }
        }
    }
    report.blocks_reachable = block_owner.len() as u64;

    // Sweep the whole inode table: live-but-unreachable records (orphans),
    // bitmap bits with no record behind them (ghosts).
    for ino in 0..geo.max_inodes {
        let live = match read_raw_inode(disk, &geo, ino) {
            Ok(opt) => opt.is_some(),
            Err(_) => {
                report.errors.push(FsckError::UnreadableInode { ino });
                continue;
            }
        };
        let allocated = bit(&ibits, ino);
        if live && !reachable.contains_key(&ino) {
            report.errors.push(FsckError::OrphanInode { ino });
        }
        if allocated && !live && ino != 0 {
            report.errors.push(FsckError::InodeBitmapGhost { ino });
        }
        if live && !allocated {
            // Already reported for reachable inodes; catch orphans too.
            if reachable.contains_key(&ino) {
                continue;
            }
            report.errors.push(FsckError::InodeNotAllocated { ino });
        }
    }

    // Sweep the data region: allocated blocks nobody references leak.
    for blk in geo.data_start..geo.capacity_blocks {
        if bit(&bbits, blk) && !block_owner.contains_key(&blk) {
            report.errors.push(FsckError::OrphanBlock { block: blk });
        }
    }

    // Warm-restart index pass: internal consistency only. The index may
    // legitimately lag the tree (operations commit after a checkpoint),
    // so staleness against the directory walk above is the mount path's
    // per-entry fallback, not damage; likewise a checksum-invalid index
    // is mount's whole-index fallback and is simply skipped here.
    if let Some(entries) = super::warmidx::read_for_fsck(disk, &geo)? {
        report.warm_index_present = true;
        report.warm_entries = entries.len() as u64;
        let mut keys: HashSet<[u64; 4]> = HashSet::with_capacity(entries.len());
        let mut seen_inos: HashSet<u64> = HashSet::with_capacity(entries.len() + 1);
        seen_inos.insert(root);
        for e in &entries {
            if !keys.insert(e.sig) {
                report
                    .errors
                    .push(FsckError::WarmIndexDuplicateKey { ino: e.ino });
            }
            if e.ino >= geo.max_inodes {
                report
                    .errors
                    .push(FsckError::WarmIndexOrphanSig { ino: e.ino });
            }
            // Entries are written parents-first, and capacity truncation
            // drops a suffix, so a valid index always introduces a parent
            // before any of its children.
            if !seen_inos.contains(&e.parent) {
                report.errors.push(FsckError::WarmIndexDanglingParent {
                    ino: e.ino,
                    parent: e.parent,
                });
            }
            seen_inos.insert(e.ino);
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::super::fs::{MemFs, MemFsConfig};
    use super::*;
    use crate::api::FileSystem;
    use dc_blockdev::{CachedDisk, DiskConfig, LatencyModel};
    use std::sync::Arc;

    fn newfs() -> Arc<MemFs> {
        let disk = Arc::new(CachedDisk::new(DiskConfig {
            block_size: 4096,
            capacity_blocks: 8192,
            latency: LatencyModel::free(),
            cache_pages: 4096,
        }));
        MemFs::mkfs(
            disk,
            MemFsConfig {
                max_inodes: 4096,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn fresh_fs_is_clean() {
        let fs = newfs();
        let report = fsck(fs.disk()).unwrap();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
        assert_eq!(report.inodes_reachable, 1);
        assert_eq!(report.dirs, 1);
    }

    #[test]
    fn busy_tree_is_clean() {
        let fs = newfs();
        let r = fs.root_ino();
        let d = fs.mkdir(r, "d", 0o755, 0, 0).unwrap();
        let f = fs.create(d.ino, "f", 0o644, 0, 0).unwrap();
        fs.write(f.ino, 0, &[7u8; 50_000]).unwrap();
        fs.symlink(r, "s", "d/f", 0, 0).unwrap();
        fs.link(d.ino, "f2", f.ino).unwrap();
        fs.rename(d.ino, "f", r, "moved").unwrap();
        fs.unlink(r, "moved").unwrap();
        let report = fsck(fs.disk()).unwrap();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
        assert!(report.blocks_reachable >= 12, "file blocks counted");
    }

    #[test]
    fn detects_dangling_entry_and_bad_nlink() {
        let fs = newfs();
        let r = fs.root_ino();
        let f = fs.create(r, "victim", 0o644, 0, 0).unwrap();
        // Corrupt: zero the victim's inode record behind the fs's back.
        let geo = *fs.geometry();
        let (blk, off) = geo.inode_location(f.ino);
        let data = fs.disk().read_block(blk).unwrap();
        let mut copy = data.to_vec();
        copy[off..off + INODE_SIZE].fill(0);
        fs.disk().write_block(blk, &copy).unwrap();
        let report = fsck(fs.disk()).unwrap();
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, FsckError::DanglingEntry { ino, .. } if *ino == f.ino)));
    }

    #[test]
    fn detects_leaked_block() {
        let fs = newfs();
        let geo = *fs.geometry();
        // Set an allocated bit in the data region with no owner.
        let victim = geo.capacity_blocks - 3;
        let bblk = geo.bbmap_start + victim / (geo.block_size as u64 * 8);
        let data = fs.disk().read_block(bblk).unwrap();
        let mut copy = data.to_vec();
        let bit_in_block = victim % (geo.block_size as u64 * 8);
        copy[(bit_in_block / 8) as usize] |= 1 << (bit_in_block % 8);
        fs.disk().write_block(bblk, &copy).unwrap();
        let report = fsck(fs.disk()).unwrap();
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, FsckError::OrphanBlock { block } if *block == victim)));
    }

    fn warm_entry(sig: u64, ino: u64, parent: u64, name: &str) -> super::super::WarmEntry {
        super::super::WarmEntry {
            sig: [sig, sig ^ 1, sig ^ 2, sig ^ 3],
            ino,
            parent,
            state_acc: [0; 4],
            state_pos: 3,
            name: name.to_string(),
        }
    }

    #[test]
    fn clean_warm_index_passes_and_is_counted() {
        let fs = newfs();
        let r = fs.root_ino();
        let d = fs.mkdir(r, "d", 0o755, 0, 0).unwrap();
        let f = fs.create(d.ino, "f", 0o644, 0, 0).unwrap();
        let entries = vec![
            warm_entry(10, d.ino, r, "d"),
            warm_entry(20, f.ino, d.ino, "f"),
        ];
        assert_eq!(fs.warm_checkpoint(&entries).unwrap(), 2);
        let report = fsck(fs.disk()).unwrap();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
        assert!(report.warm_index_present);
        assert_eq!(report.warm_entries, 2);
    }

    #[test]
    fn absent_warm_index_is_not_an_error() {
        let fs = newfs();
        let report = fsck(fs.disk()).unwrap();
        assert!(report.is_clean());
        assert!(!report.warm_index_present);
        assert_eq!(report.warm_entries, 0);
    }

    #[test]
    fn detects_warm_index_duplicate_key() {
        let fs = newfs();
        let r = fs.root_ino();
        let d = fs.mkdir(r, "d", 0o755, 0, 0).unwrap();
        let e = fs.mkdir(r, "e", 0o755, 0, 0).unwrap();
        let entries = vec![warm_entry(10, d.ino, r, "d"), warm_entry(10, e.ino, r, "e")];
        fs.warm_checkpoint(&entries).unwrap();
        let report = fsck(fs.disk()).unwrap();
        assert!(report
            .errors
            .iter()
            .any(|x| matches!(x, FsckError::WarmIndexDuplicateKey { ino } if *ino == e.ino)));
    }

    #[test]
    fn detects_warm_index_orphan_and_dangling_parent() {
        let fs = newfs();
        let r = fs.root_ino();
        let d = fs.mkdir(r, "d", 0o755, 0, 0).unwrap();
        let geo = *fs.geometry();
        let entries = vec![
            // Out-of-range inode number.
            warm_entry(10, geo.max_inodes + 7, r, "ghost"),
            // Parent not introduced by any earlier entry (misordered or
            // missing — either way the prefix is not parent-closed).
            warm_entry(20, d.ino, 999, "d"),
        ];
        fs.warm_checkpoint(&entries).unwrap();
        let report = fsck(fs.disk()).unwrap();
        assert!(report.errors.iter().any(
            |x| matches!(x, FsckError::WarmIndexOrphanSig { ino } if *ino == geo.max_inodes + 7)
        ));
        assert!(report
            .errors
            .iter()
            .any(|x| matches!(x, FsckError::WarmIndexDanglingParent { parent: 999, .. })));
    }

    #[test]
    fn detects_wrong_nlink() {
        let fs = newfs();
        let r = fs.root_ino();
        let f = fs.create(r, "f", 0o644, 0, 0).unwrap();
        let geo = *fs.geometry();
        let (blk, off) = geo.inode_location(f.ino);
        let data = fs.disk().read_block(blk).unwrap();
        let mut copy = data.to_vec();
        // nlink lives at offset 4 (u32) in the record.
        copy[off + 4..off + 8].copy_from_slice(&9u32.to_le_bytes());
        fs.disk().write_block(blk, &copy).unwrap();
        let report = fsck(fs.disk()).unwrap();
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, FsckError::WrongNlink { ino, found: 9, .. } if *ino == f.ino)));
    }
}
