//! On-disk allocation bitmaps (inode and block).

use super::store::MetaStore;
use crate::error::{FsError, FsResult};

/// A view over an on-disk bitmap region.
///
/// Bit `i` set means object `i` is allocated. All accesses go through the
/// page cache, so allocation does realistic read-modify-write block I/O.
/// Callers serialize concurrent allocation with their own lock (memfs uses
/// its allocator mutex).
pub struct Bitmap {
    start_block: u64,
    nbits: u64,
    block_size: usize,
}

impl Bitmap {
    /// A bitmap of `nbits` bits beginning at `start_block`.
    pub fn new(start_block: u64, nbits: u64, block_size: usize) -> Self {
        Bitmap {
            start_block,
            nbits,
            block_size,
        }
    }

    fn locate(&self, idx: u64) -> (u64, usize, u8) {
        let bits_per_block = (self.block_size * 8) as u64;
        let block = self.start_block + idx / bits_per_block;
        let bit_in_block = idx % bits_per_block;
        (block, (bit_in_block / 8) as usize, 1 << (bit_in_block % 8))
    }

    /// Tests bit `idx`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn get<S: MetaStore + ?Sized>(&self, disk: &S, idx: u64) -> FsResult<bool> {
        if idx >= self.nbits {
            return Err(FsError::Inval);
        }
        let (block, byte, mask) = self.locate(idx);
        let data = disk.read_block(block)?;
        Ok(data[byte] & mask != 0)
    }

    /// Sets bit `idx` to `val`, returning the previous value.
    pub fn set<S: MetaStore + ?Sized>(&self, disk: &S, idx: u64, val: bool) -> FsResult<bool> {
        if idx >= self.nbits {
            return Err(FsError::Inval);
        }
        let (block, byte, mask) = self.locate(idx);
        let data = disk.read_block(block)?;
        let prev = data[byte] & mask != 0;
        if prev != val {
            let mut copy = data.to_vec();
            if val {
                copy[byte] |= mask;
            } else {
                copy[byte] &= !mask;
            }
            disk.write_block(block, &copy)?;
        }
        Ok(prev)
    }

    /// Finds and claims the first clear bit at or after `hint`, wrapping
    /// around once. Returns the claimed index or `Err(NoSpc)`.
    pub fn alloc<S: MetaStore + ?Sized>(&self, disk: &S, hint: u64) -> FsResult<u64> {
        let hint = if hint >= self.nbits { 0 } else { hint };
        if let Some(idx) = self.scan_from(disk, hint, self.nbits)? {
            self.set(disk, idx, true)?;
            return Ok(idx);
        }
        if let Some(idx) = self.scan_from(disk, 0, hint)? {
            self.set(disk, idx, true)?;
            return Ok(idx);
        }
        Err(FsError::NoSpc)
    }

    fn scan_from<S: MetaStore + ?Sized>(
        &self,
        disk: &S,
        lo: u64,
        hi: u64,
    ) -> FsResult<Option<u64>> {
        let bits_per_block = (self.block_size * 8) as u64;
        let mut idx = lo;
        while idx < hi {
            let (block, _, _) = self.locate(idx);
            let data = disk.read_block(block)?;
            let block_base = (idx / bits_per_block) * bits_per_block;
            let start_byte = ((idx - block_base) / 8) as usize;
            for (byte_off, &byte) in data.iter().enumerate().skip(start_byte) {
                if byte == 0xff {
                    continue;
                }
                for bit in 0..8u64 {
                    let candidate = block_base + (byte_off as u64) * 8 + bit;
                    if candidate < idx || candidate >= hi {
                        continue;
                    }
                    if byte & (1 << bit) == 0 {
                        return Ok(Some(candidate));
                    }
                }
            }
            idx = block_base + bits_per_block;
        }
        Ok(None)
    }

    /// Counts set bits (used to initialize free-space counters on mount).
    pub fn count_set<S: MetaStore + ?Sized>(&self, disk: &S) -> FsResult<u64> {
        let bits_per_block = (self.block_size * 8) as u64;
        let nblocks = self.nbits.div_ceil(bits_per_block);
        let mut total = 0u64;
        for b in 0..nblocks {
            let data = disk.read_block(self.start_block + b)?;
            let base = b * bits_per_block;
            for (i, &byte) in data.iter().enumerate() {
                if byte == 0 {
                    continue;
                }
                // Mask off bits beyond nbits in the final partial byte.
                let bit_base = base + (i as u64) * 8;
                if bit_base + 8 <= self.nbits {
                    total += byte.count_ones() as u64;
                } else if bit_base < self.nbits {
                    let valid = (self.nbits - bit_base) as u32;
                    total += (byte & ((1u16 << valid) - 1) as u8).count_ones() as u64;
                }
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_blockdev::{CachedDisk, DiskConfig, LatencyModel};

    fn disk() -> CachedDisk {
        CachedDisk::new(DiskConfig {
            block_size: 512,
            capacity_blocks: 256,
            latency: LatencyModel::free(),
            cache_pages: 64,
        })
    }

    #[test]
    fn set_get_round_trip() {
        let d = disk();
        let bm = Bitmap::new(2, 10_000, 512);
        assert!(!bm.get(&d, 5000).unwrap());
        assert!(!bm.set(&d, 5000, true).unwrap());
        assert!(bm.get(&d, 5000).unwrap());
        assert!(bm.set(&d, 5000, false).unwrap());
        assert!(!bm.get(&d, 5000).unwrap());
    }

    #[test]
    fn alloc_respects_hint_and_wraps() {
        let d = disk();
        let bm = Bitmap::new(2, 64, 512);
        assert_eq!(bm.alloc(&d, 10).unwrap(), 10);
        assert_eq!(bm.alloc(&d, 10).unwrap(), 11);
        // Fill everything from 10..64, then wrap to 0.
        for _ in 12..64 {
            bm.alloc(&d, 10).unwrap();
        }
        assert_eq!(bm.alloc(&d, 10).unwrap(), 0);
    }

    #[test]
    fn alloc_exhaustion_is_nospc() {
        let d = disk();
        let bm = Bitmap::new(2, 8, 512);
        for _ in 0..8 {
            bm.alloc(&d, 0).unwrap();
        }
        assert_eq!(bm.alloc(&d, 0), Err(FsError::NoSpc));
    }

    #[test]
    fn out_of_range_rejected() {
        let d = disk();
        let bm = Bitmap::new(2, 8, 512);
        assert_eq!(bm.get(&d, 8), Err(FsError::Inval));
        assert_eq!(bm.set(&d, 100, true), Err(FsError::Inval));
    }

    #[test]
    fn count_set_handles_partial_bytes() {
        let d = disk();
        let bm = Bitmap::new(2, 13, 512);
        for i in [0u64, 7, 8, 12] {
            bm.set(&d, i, true).unwrap();
        }
        assert_eq!(bm.count_set(&d).unwrap(), 4);
    }

    #[test]
    fn bitmap_spans_multiple_blocks() {
        let d = disk();
        // 512-byte blocks → 4096 bits per block; use 10_000 bits.
        let bm = Bitmap::new(2, 10_000, 512);
        bm.set(&d, 4096, true).unwrap(); // first bit of second block
        bm.set(&d, 9999, true).unwrap(); // last valid bit
        assert!(bm.get(&d, 4096).unwrap());
        assert!(bm.get(&d, 9999).unwrap());
        assert_eq!(bm.count_set(&d).unwrap(), 2);
    }
}
