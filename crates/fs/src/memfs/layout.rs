//! Superblock and on-disk geometry.

use crate::error::{FsError, FsResult};
use dc_blockdev::CachedDisk;

/// Magic tag identifying a memfs superblock. Bumped to `S2` when the
/// reserved journal region was added to the geometry, and to `S3` when
/// the warm-restart index region followed it — older images are not
/// mountable (the layout shifted).
pub const MAGIC: u64 = 0x4443_4d45_4d46_5333; // "DCMEMFS3"

/// Bytes per on-disk inode record.
pub const INODE_SIZE: usize = 128;

/// Number of direct block pointers per inode.
pub const NDIRECT: usize = 10;

/// Computed on-disk geometry. All fields are in block numbers / counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Block size in bytes (copied from the device).
    pub block_size: usize,
    /// Total device blocks available to this file system.
    pub capacity_blocks: u64,
    /// Maximum number of inodes.
    pub max_inodes: u64,
    /// First block of the inode bitmap.
    pub ibmap_start: u64,
    /// Blocks in the inode bitmap.
    pub ibmap_blocks: u64,
    /// First block of the block bitmap.
    pub bbmap_start: u64,
    /// Blocks in the block bitmap.
    pub bbmap_blocks: u64,
    /// First block of the inode table.
    pub itab_start: u64,
    /// Blocks in the inode table.
    pub itab_blocks: u64,
    /// First block of the metadata journal (two header blocks, then the
    /// circular log region).
    pub journal_start: u64,
    /// Total journal blocks (headers + log region).
    pub journal_blocks: u64,
    /// First block of the warm-restart directory index (two A/B header
    /// blocks, then two alternating payload halves).
    pub warmidx_start: u64,
    /// Total warm-index blocks (headers + both payload halves).
    pub warmidx_blocks: u64,
    /// First data block.
    pub data_start: u64,
}

impl Geometry {
    /// Computes the layout for a device of `capacity_blocks` blocks.
    pub fn compute(block_size: usize, capacity_blocks: u64, max_inodes: u64) -> Geometry {
        let bits_per_block = (block_size * 8) as u64;
        let ibmap_blocks = max_inodes.div_ceil(bits_per_block);
        let bbmap_blocks = capacity_blocks.div_ceil(bits_per_block);
        let inodes_per_block = (block_size / INODE_SIZE) as u64;
        let itab_blocks = max_inodes.div_ceil(inodes_per_block);
        let ibmap_start = 1;
        let bbmap_start = ibmap_start + ibmap_blocks;
        let itab_start = bbmap_start + bbmap_blocks;
        let journal_start = itab_start + itab_blocks;
        // ~1.5% of the device, floored so the smallest test disks still
        // fit a useful log, capped so huge devices don't waste space.
        // +2 for the dual header blocks.
        let journal_blocks = (capacity_blocks / 64).clamp(16, 1024) + 2;
        let warmidx_start = journal_start + journal_blocks;
        // Two payload halves (checkpoints alternate between them so a
        // torn write can never destroy the previous generation), plus
        // the two header blocks. Sized like the journal: a floor for
        // tiny test disks, a cap for huge ones.
        let warmidx_half = (capacity_blocks / 128).clamp(8, 256);
        let warmidx_blocks = warmidx_half * 2 + 2;
        let data_start = warmidx_start + warmidx_blocks;
        Geometry {
            block_size,
            capacity_blocks,
            max_inodes,
            ibmap_start,
            ibmap_blocks,
            bbmap_start,
            bbmap_blocks,
            itab_start,
            itab_blocks,
            journal_start,
            journal_blocks,
            warmidx_start,
            warmidx_blocks,
            data_start,
        }
    }

    /// Blocks in one warm-index payload half.
    pub fn warmidx_half(&self) -> u64 {
        (self.warmidx_blocks - 2) / 2
    }

    /// Inode records per inode-table block.
    pub fn inodes_per_block(&self) -> u64 {
        (self.block_size / INODE_SIZE) as u64
    }

    /// Block and byte offset of inode `ino`'s record in the inode table.
    pub fn inode_location(&self, ino: u64) -> (u64, usize) {
        let per = self.inodes_per_block();
        (
            self.itab_start + ino / per,
            (ino % per) as usize * INODE_SIZE,
        )
    }

    /// Serializes the superblock into a block-sized buffer.
    pub fn encode_superblock(&self) -> Vec<u8> {
        let mut buf = vec![0u8; self.block_size];
        let mut w = Writer::new(&mut buf);
        w.u64(MAGIC);
        w.u64(self.block_size as u64);
        w.u64(self.capacity_blocks);
        w.u64(self.max_inodes);
        w.u64(self.ibmap_start);
        w.u64(self.ibmap_blocks);
        w.u64(self.bbmap_start);
        w.u64(self.bbmap_blocks);
        w.u64(self.itab_start);
        w.u64(self.itab_blocks);
        w.u64(self.journal_start);
        w.u64(self.journal_blocks);
        w.u64(self.warmidx_start);
        w.u64(self.warmidx_blocks);
        w.u64(self.data_start);
        buf
    }

    /// Reads and validates the superblock from `disk`.
    pub fn read_superblock(disk: &CachedDisk) -> FsResult<Geometry> {
        let block = disk.read_block(0)?;
        let mut r = Reader::new(&block);
        if r.u64()? != MAGIC {
            return Err(FsError::Inval);
        }
        let block_size = r.u64()? as usize;
        if block_size != disk.block_size() {
            return Err(FsError::Inval);
        }
        let g = Geometry {
            block_size,
            capacity_blocks: r.u64()?,
            max_inodes: r.u64()?,
            ibmap_start: r.u64()?,
            ibmap_blocks: r.u64()?,
            bbmap_start: r.u64()?,
            bbmap_blocks: r.u64()?,
            itab_start: r.u64()?,
            itab_blocks: r.u64()?,
            journal_start: r.u64()?,
            journal_blocks: r.u64()?,
            warmidx_start: r.u64()?,
            warmidx_blocks: r.u64()?,
            data_start: r.u64()?,
        };
        // Cross-check against a fresh computation to reject corruption.
        let expect = Geometry::compute(block_size, g.capacity_blocks, g.max_inodes);
        if expect != g {
            return Err(FsError::Inval);
        }
        Ok(g)
    }
}

/// Minimal little-endian writer over a byte buffer.
pub struct Writer<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> Writer<'a> {
    /// Wraps `buf`, writing from offset 0.
    pub fn new(buf: &'a mut [u8]) -> Self {
        Writer { buf, pos: 0 }
    }

    /// Seeks to an absolute offset.
    #[allow(dead_code)]
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf[self.pos..self.pos + 8].copy_from_slice(&v.to_le_bytes());
        self.pos += 8;
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf[self.pos..self.pos + 4].copy_from_slice(&v.to_le_bytes());
        self.pos += 4;
    }

    /// Writes a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf[self.pos..self.pos + 2].copy_from_slice(&v.to_le_bytes());
        self.pos += 2;
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf[self.pos] = v;
        self.pos += 1;
    }

    /// Writes raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf[self.pos..self.pos + v.len()].copy_from_slice(v);
        self.pos += v.len();
    }
}

/// Minimal little-endian reader over a byte buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `buf`, reading from offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Seeks to an absolute offset.
    #[allow(dead_code)]
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos;
    }

    fn take(&mut self, n: usize) -> FsResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(FsError::Io);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> FsResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> FsResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> FsResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> FsResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> FsResult<&'a [u8]> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_blockdev::{DiskConfig, LatencyModel};

    #[test]
    fn geometry_regions_are_disjoint_and_ordered() {
        let g = Geometry::compute(4096, 1 << 20, 1 << 16);
        assert!(g.ibmap_start < g.bbmap_start);
        assert!(g.bbmap_start < g.itab_start);
        assert!(g.itab_start < g.journal_start);
        assert!(g.journal_start < g.warmidx_start);
        assert_eq!(g.journal_start + g.journal_blocks, g.warmidx_start);
        assert_eq!(g.warmidx_start + g.warmidx_blocks, g.data_start);
        assert!(g.data_start < g.capacity_blocks);
        assert_eq!(g.ibmap_blocks, (1u64 << 16).div_ceil(4096 * 8));
    }

    #[test]
    fn warmidx_region_is_clamped_and_even() {
        // Tiny device: floor of 8 blocks per half + 2 headers.
        let tiny = Geometry::compute(4096, 512, 128);
        assert_eq!(tiny.warmidx_blocks, 18);
        assert_eq!(tiny.warmidx_half(), 8);
        // Huge device: cap of 256 blocks per half + 2 headers.
        let huge = Geometry::compute(4096, 1 << 22, 1 << 20);
        assert_eq!(huge.warmidx_blocks, 514);
        assert_eq!(huge.warmidx_half(), 256);
    }

    #[test]
    fn journal_region_is_clamped() {
        // Tiny device: floor of 16 log blocks + 2 headers.
        assert_eq!(Geometry::compute(4096, 512, 128).journal_blocks, 18);
        // Huge device: cap of 1024 log blocks + 2 headers.
        assert_eq!(
            Geometry::compute(4096, 1 << 22, 1 << 20).journal_blocks,
            1026
        );
    }

    #[test]
    fn superblock_round_trips() {
        let disk = CachedDisk::new(DiskConfig {
            block_size: 4096,
            capacity_blocks: 4096,
            latency: LatencyModel::free(),
            cache_pages: 64,
        });
        let g = Geometry::compute(4096, 4096, 1024);
        disk.write_block(0, &g.encode_superblock()).unwrap();
        assert_eq!(Geometry::read_superblock(&disk).unwrap(), g);
    }

    #[test]
    fn bad_magic_rejected() {
        let disk = CachedDisk::new(DiskConfig {
            block_size: 4096,
            capacity_blocks: 64,
            latency: LatencyModel::free(),
            cache_pages: 16,
        });
        assert_eq!(Geometry::read_superblock(&disk), Err(FsError::Inval));
    }

    #[test]
    fn inode_location_math() {
        let g = Geometry::compute(4096, 4096, 1024);
        let per = g.inodes_per_block(); // 32
        assert_eq!(per, 32);
        assert_eq!(g.inode_location(0), (g.itab_start, 0));
        assert_eq!(g.inode_location(31), (g.itab_start, 31 * 128));
        assert_eq!(g.inode_location(32), (g.itab_start + 1, 0));
    }

    #[test]
    fn reader_bounds_checked() {
        let buf = [0u8; 4];
        let mut r = Reader::new(&buf);
        assert!(r.u32().is_ok());
        assert_eq!(r.u8(), Err(FsError::Io));
    }
}
