//! Physical metadata write-ahead journal (jbd2-flavored redo log).
//!
//! Every metadata mutation becomes a transaction: the full final
//! content of each dirtied metadata block is logged to a reserved
//! circular region, sealed by a checksummed commit record, and only
//! then checkpointed in place through the write-back page cache. The
//! commit discipline rides the block layer's ordered-flush contract
//! (`flush_blocks(payload)` → `flush_blocks([commit])`), so a power cut
//! can never leave a commit record whose payload is missing.
//!
//! On-disk format, all little-endian inside `journal_start..data_start`:
//!
//! ```text
//! journal_start + 0   header copy A ┐  dual headers: a torn header
//! journal_start + 1   header copy B ┘  write can lose at most one copy
//! journal_start + 2.. circular log of transactions:
//!     [descriptor]  JD_MAGIC, seq, n, target block numbers
//!     [data × n]    full block images
//!     [commit]      JC_MAGIC, seq, n, fnv64(seq, n, targets, data)
//! ```
//!
//! Header fields: `tail_seq` (every txn ≤ it is checkpointed in place)
//! and `tail_slot` (log slot where txn `tail_seq + 1` begins). Recovery
//! replays the contiguous chain `tail_seq+1, tail_seq+2, …` from
//! `tail_slot` and stops at the first hole or checksum mismatch — the
//! torn tail. The tail advances **only** after a full checkpoint
//! (`sync`, or a forced one when the log fills), which also closes the
//! block-reuse hazard: a freed-then-reallocated block can only be
//! re-logged *after* the stale record fell behind the tail.

use super::layout::{Geometry, Reader, Writer};
use super::store::TxnBuf;
use crate::error::{FsError, FsResult};
use dc_blockdev::CachedDisk;
use dc_obs::TraceEvent;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

const JH_MAGIC: u64 = 0x4443_4a48_4452_5331; // "DCJHDRS1"
const JD_MAGIC: u64 = 0x4443_4a44_4553_4331; // "DCJDESC1"
const JC_MAGIC: u64 = 0x4443_4a43_4d54_5331; // "DCJCMTS1"

/// FNV-1a over a list of byte slices; shared with the warm-restart
/// index, whose headers use the same checksum discipline.
pub(crate) fn fnv64(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Counters exported through the metrics registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Transactions committed.
    pub commits: u64,
    /// Metadata block images logged (descriptor/commit blocks excluded).
    pub blocks_logged: u64,
    /// Checkpoints (tail advances), including forced ones.
    pub checkpoints: u64,
    /// Checkpoints forced by log-space pressure.
    pub forced_checkpoints: u64,
    /// Transactions replayed by recovery at mount.
    pub replayed_txns: u64,
}

/// What recovery found and redid at mount.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayInfo {
    /// Highest committed transaction recovered (0 = empty journal).
    pub last_seq: u64,
    /// Transactions actually replayed (those past the tail).
    pub replayed: u64,
    /// Log slot following the last recovered transaction.
    pub(crate) end_slot: u64,
    /// Header generation recovery wrote; the running journal continues
    /// from here so its checkpoints always outrank recovery's headers.
    pub(crate) gen: u64,
}

struct JState {
    /// Sequence number the next commit takes.
    next_seq: u64,
    /// Log slot the next commit starts at.
    head_slot: u64,
    /// Log slots occupied between tail and head.
    live_slots: u64,
    /// Monotonic header generation (higher valid copy wins at mount).
    gen: u64,
    /// All txns ≤ tail_seq are checkpointed in place.
    tail_seq: u64,
    /// Slot where txn `tail_seq + 1` begins.
    tail_slot: u64,
}

/// The running journal of one mounted memfs.
pub(crate) struct Journal {
    hdr_a: u64,
    hdr_b: u64,
    log_start: u64,
    log_slots: u64,
    block_size: usize,
    state: Mutex<JState>,
    commits: AtomicU64,
    blocks_logged: AtomicU64,
    checkpoints: AtomicU64,
    forced_checkpoints: AtomicU64,
    replayed_txns: AtomicU64,
}

impl Journal {
    fn region(geo: &Geometry) -> (u64, u64, u64, u64) {
        let hdr_a = geo.journal_start;
        let hdr_b = geo.journal_start + 1;
        let log_start = geo.journal_start + 2;
        let log_slots = geo.journal_blocks - 2;
        (hdr_a, hdr_b, log_start, log_slots)
    }

    fn encode_header(geo: &Geometry, gen: u64, tail_seq: u64, tail_slot: u64) -> Vec<u8> {
        let mut buf = vec![0u8; geo.block_size];
        let mut w = Writer::new(&mut buf);
        w.u64(JH_MAGIC);
        w.u64(gen);
        w.u64(tail_seq);
        w.u64(tail_slot);
        let sum = fnv64(&[&buf[..32]]);
        let mut w = Writer::new(&mut buf);
        w.seek(32);
        w.u64(sum);
        buf
    }

    fn decode_header(buf: &[u8]) -> Option<(u64, u64, u64)> {
        let mut r = Reader::new(buf);
        if r.u64().ok()? != JH_MAGIC {
            return None;
        }
        let gen = r.u64().ok()?;
        let tail_seq = r.u64().ok()?;
        let tail_slot = r.u64().ok()?;
        let sum = r.u64().ok()?;
        if fnv64(&[&buf[..32]]) != sum {
            return None;
        }
        Some((gen, tail_seq, tail_slot))
    }

    /// Initializes the journal region on a fresh file system (mkfs).
    pub(crate) fn format(disk: &CachedDisk, geo: &Geometry) -> FsResult<()> {
        let (hdr_a, hdr_b, _, _) = Self::region(geo);
        disk.write_block(hdr_a, &Self::encode_header(geo, 1, 0, 0))?;
        disk.write_block(hdr_b, &Self::encode_header(geo, 1, 0, 0))?;
        Ok(())
    }

    /// Reads the best valid header copy; a freshly-zeroed region (no
    /// valid copy) recovers as an empty journal.
    fn read_header(disk: &CachedDisk, geo: &Geometry) -> FsResult<(u64, u64, u64)> {
        let (hdr_a, hdr_b, _, _) = Self::region(geo);
        let a = Self::decode_header(&disk.read_block(hdr_a)?);
        let b = Self::decode_header(&disk.read_block(hdr_b)?);
        Ok(match (a, b) {
            (Some(a), Some(b)) => {
                if a.0 >= b.0 {
                    a
                } else {
                    b
                }
            }
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => (0, 0, 0),
        })
    }

    /// Recovers the journal at mount: replays every committed
    /// transaction past the tail (in sequence order), discards the torn
    /// tail, makes the replayed state durable, and advances the tail.
    /// Idempotent — a crash during recovery just replays again.
    pub(crate) fn recover(disk: &CachedDisk, geo: &Geometry) -> FsResult<ReplayInfo> {
        let (hdr_a, hdr_b, log_start, log_slots) = Self::region(geo);
        let (gen, tail_seq, tail_slot) = Self::read_header(disk, geo)?;
        let slot_block = |slot: u64| log_start + slot % log_slots;

        // Scan the contiguous committed chain from the tail.
        let mut txns: Vec<Vec<(u64, Vec<u8>)>> = Vec::new();
        let mut slot = tail_slot;
        let mut expected = tail_seq + 1;
        let mut consumed = 0u64;
        loop {
            if consumed >= log_slots {
                break; // wrapped the whole log: nothing further can be live
            }
            let desc = disk.read_block(slot_block(slot))?;
            let mut r = Reader::new(&desc);
            let Ok(magic) = r.u64() else { break };
            if magic != JD_MAGIC {
                break;
            }
            let (Ok(seq), Ok(n)) = (r.u64(), r.u32()) else {
                break;
            };
            if seq != expected || n == 0 || n as u64 + 2 > log_slots - consumed {
                break;
            }
            let mut targets = Vec::with_capacity(n as usize);
            let mut ok = true;
            for _ in 0..n {
                match r.u64() {
                    Ok(t)
                        if t != 0
                            && t < geo.capacity_blocks
                            && !(geo.journal_start..geo.data_start).contains(&t) =>
                    {
                        targets.push(t)
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                break;
            }
            let mut datas = Vec::with_capacity(n as usize);
            for i in 0..n as u64 {
                datas.push(disk.read_block(slot_block(slot + 1 + i))?);
            }
            // Validate the commit record before trusting anything.
            let commit = disk.read_block(slot_block(slot + 1 + n as u64))?;
            let mut c = Reader::new(&commit);
            let valid = (|| {
                if c.u64().ok()? != JC_MAGIC || c.u64().ok()? != seq || c.u32().ok()? != n {
                    return None;
                }
                let sum = c.u64().ok()?;
                let mut parts: Vec<&[u8]> = Vec::with_capacity(2 + datas.len());
                let seq_bytes = seq.to_le_bytes();
                let n_bytes = n.to_le_bytes();
                parts.push(&seq_bytes);
                parts.push(&n_bytes);
                let target_bytes: Vec<u8> = targets.iter().flat_map(|t| t.to_le_bytes()).collect();
                parts.push(&target_bytes);
                for d in &datas {
                    parts.push(d);
                }
                (fnv64(&parts) == sum).then_some(())
            })();
            if valid.is_none() {
                break; // torn tail: commit record never became durable
            }
            txns.push(
                targets
                    .into_iter()
                    .zip(datas.into_iter().map(|d| d.to_vec()))
                    .collect(),
            );
            slot += n as u64 + 2;
            consumed += n as u64 + 2;
            expected += 1;
        }

        // Redo in order (physical replay is idempotent), then make the
        // recovered state durable before advancing the tail — a crash
        // in between replays the same chain again.
        let replayed = txns.len() as u64;
        for txn in &txns {
            for (target, data) in txn {
                disk.write_block(*target, data)?;
            }
        }
        let last_seq = tail_seq + replayed;
        let outcome = disk.sync_report();
        if !outcome.is_clean() {
            return Err(FsError::Io);
        }
        let new_gen = gen + 1;
        disk.write_block(
            hdr_a,
            &Self::encode_header(geo, new_gen, last_seq, slot % log_slots),
        )?;
        disk.write_block(
            hdr_b,
            &Self::encode_header(geo, new_gen, last_seq, slot % log_slots),
        )?;
        disk.flush_blocks(&[hdr_a, hdr_b])?;
        if replayed > 0 {
            if let Some(obs) = disk.recorder() {
                obs.event(|| TraceEvent::JournalReplay {
                    txns: replayed as u32,
                });
            }
        }
        Ok(ReplayInfo {
            last_seq,
            replayed,
            end_slot: slot % log_slots,
            gen: new_gen,
        })
    }

    /// A running journal picking up after [`Journal::recover`].
    pub(crate) fn open(geo: &Geometry, info: &ReplayInfo) -> Journal {
        let (hdr_a, hdr_b, log_start, log_slots) = Self::region(geo);
        Journal {
            hdr_a,
            hdr_b,
            log_start,
            log_slots,
            block_size: geo.block_size,
            state: Mutex::new(JState {
                next_seq: info.last_seq + 1,
                head_slot: info.end_slot,
                live_slots: 0,
                gen: info.gen,
                tail_seq: info.last_seq,
                tail_slot: info.end_slot,
            }),
            commits: AtomicU64::new(0),
            blocks_logged: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            forced_checkpoints: AtomicU64::new(0),
            replayed_txns: AtomicU64::new(info.replayed),
        }
    }

    fn slot_block(&self, slot: u64) -> u64 {
        self.log_start + slot % self.log_slots
    }

    /// Flushes all in-place metadata and advances the tail (both header
    /// copies rewritten and flushed). The only operation that reclaims
    /// log space.
    pub(crate) fn checkpoint(&self, disk: &CachedDisk) -> FsResult<()> {
        let mut st = self.state.lock();
        self.checkpoint_locked(disk, &mut st, false)
    }

    fn checkpoint_locked(&self, disk: &CachedDisk, st: &mut JState, forced: bool) -> FsResult<()> {
        // Everything (journal slots included) must be durable before the
        // tail may move past the live transactions.
        let outcome = disk.sync_report();
        if !outcome.is_clean() {
            return Err(FsError::Io);
        }
        // Compute the advanced tail, but publish it to `st` only once
        // the header naming it is durable. If the header flush fails,
        // the in-memory state must keep treating the log slots as live:
        // reclaiming them here would let later commits overwrite
        // records the on-disk header still points recovery at, silently
        // losing durable transactions on an EIO-then-crash path. (The
        // candidate header itself is safe even if a dirty copy leaks
        // out later — the sync above already made everything it claims
        // checkpointed durable.)
        let gen = st.gen + 1;
        let tail_seq = st.next_seq - 1;
        let tail_slot = st.head_slot;
        let hdr = self.encode_header_for(gen, tail_seq, tail_slot);
        disk.write_block(self.hdr_a, &hdr)?;
        disk.write_block(self.hdr_b, &hdr)?;
        disk.flush_blocks(&[self.hdr_a, self.hdr_b])?;
        st.gen = gen;
        st.tail_seq = tail_seq;
        st.tail_slot = tail_slot;
        st.live_slots = 0;
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        if forced {
            self.forced_checkpoints.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(obs) = disk.recorder() {
            obs.event(|| TraceEvent::JournalCheckpoint);
        }
        Ok(())
    }

    fn encode_header_for(&self, gen: u64, tail_seq: u64, tail_slot: u64) -> Vec<u8> {
        let mut buf = vec![0u8; self.block_size];
        let mut w = Writer::new(&mut buf);
        w.u64(JH_MAGIC);
        w.u64(gen);
        w.u64(tail_seq);
        w.u64(tail_slot);
        let sum = fnv64(&[&buf[..32]]);
        let mut w = Writer::new(&mut buf);
        w.seek(32);
        w.u64(sum);
        buf
    }

    /// Commits one transaction: logs the write set, flushes payload
    /// then commit record (the ordering barrier), and only then applies
    /// the writes in place through the page cache. Returns the
    /// transaction's sequence number.
    pub(crate) fn commit(&self, disk: &CachedDisk, buf: &TxnBuf) -> FsResult<u64> {
        let n = buf.len() as u64;
        let need = n + 2;
        let mut st = self.state.lock();
        if need > self.log_slots {
            return Err(FsError::NoSpc); // single txn larger than the log
        }
        if st.live_slots + need > self.log_slots {
            self.checkpoint_locked(disk, &mut st, true)?;
        }
        let seq = st.next_seq;

        // Descriptor.
        let mut desc = vec![0u8; self.block_size];
        {
            let mut w = Writer::new(&mut desc);
            w.u64(JD_MAGIC);
            w.u64(seq);
            w.u32(n as u32);
            for (target, _) in buf.iter() {
                w.u64(target);
            }
        }
        let desc_block = self.slot_block(st.head_slot);
        disk.write_block(desc_block, &desc)?;

        // Data images.
        let mut payload_blocks = Vec::with_capacity(need as usize - 1);
        payload_blocks.push(desc_block);
        for (i, (_, data)) in buf.iter().enumerate() {
            let b = self.slot_block(st.head_slot + 1 + i as u64);
            disk.write_block(b, data)?;
            payload_blocks.push(b);
        }

        // The ordering barrier, part 1: the payload must be durable
        // before the commit record *exists anywhere the device could see
        // it* — so flush first, and only then let the record enter the
        // page cache (a dirty commit-record page could otherwise be
        // evicted to the device ahead of the payload).
        disk.flush_blocks(&payload_blocks)?;

        // Commit record sealing the payload.
        let seq_bytes = seq.to_le_bytes();
        let n_bytes = (n as u32).to_le_bytes();
        let target_bytes: Vec<u8> = buf.iter().flat_map(|(t, _)| t.to_le_bytes()).collect();
        let mut parts: Vec<&[u8]> = vec![&seq_bytes, &n_bytes, &target_bytes];
        for (_, data) in buf.iter() {
            parts.push(data);
        }
        let sum = fnv64(&parts);
        let mut commit = vec![0u8; self.block_size];
        {
            let mut w = Writer::new(&mut commit);
            w.u64(JC_MAGIC);
            w.u64(seq);
            w.u32(n as u32);
            w.u64(sum);
        }
        let commit_block = self.slot_block(st.head_slot + 1 + n);
        disk.write_block(commit_block, &commit)?;
        // Part 2: the record itself becomes durable, sealing the txn.
        disk.flush_blocks(&[commit_block])?;

        // Checkpoint in place (write-back: durability comes from the log).
        for (target, data) in buf.iter() {
            disk.write_block(target, data)?;
        }

        st.head_slot += need;
        st.live_slots += need;
        st.next_seq += 1;
        drop(st);
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.blocks_logged.fetch_add(n, Ordering::Relaxed);
        if let Some(obs) = disk.recorder() {
            obs.event(|| TraceEvent::JournalCommit { blocks: n as u32 });
        }
        Ok(seq)
    }

    /// Highest committed sequence number.
    pub(crate) fn committed_seq(&self) -> u64 {
        self.state.lock().next_seq - 1
    }

    /// Zeroes the counters (the mount-time replay count included), so
    /// `Kernel::reset_stats` can discard construction-phase samples
    /// across every metric source at once and the `journal_commit` /
    /// `journal_replay` event totals keep reconciling with these.
    pub(crate) fn reset_stats(&self) {
        self.commits.store(0, Ordering::Relaxed);
        self.blocks_logged.store(0, Ordering::Relaxed);
        self.checkpoints.store(0, Ordering::Relaxed);
        self.forced_checkpoints.store(0, Ordering::Relaxed);
        self.replayed_txns.store(0, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub(crate) fn stats(&self) -> JournalStats {
        JournalStats {
            commits: self.commits.load(Ordering::Relaxed),
            blocks_logged: self.blocks_logged.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            forced_checkpoints: self.forced_checkpoints.load(Ordering::Relaxed),
            replayed_txns: self.replayed_txns.load(Ordering::Relaxed),
        }
    }
}
