//! Errno-shaped error type shared by every layer of the stack.

/// POSIX-style errors returned by file systems, the directory cache, and
/// the VFS syscall surface.
///
/// Variants correspond one-to-one with the errno values the paper's
/// workloads observe; [`FsError::errno_name`] yields the classic spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsError {
    /// ENOENT: no such file or directory.
    NoEnt,
    /// ENOTDIR: a non-directory was used as a directory.
    NotDir,
    /// EISDIR: a directory was used where a file is required.
    IsDir,
    /// EACCES: permission denied.
    Access,
    /// EPERM: operation not permitted.
    Perm,
    /// EEXIST: file exists.
    Exist,
    /// ENOTEMPTY: directory not empty.
    NotEmpty,
    /// ELOOP: too many levels of symbolic links.
    Loop,
    /// ENAMETOOLONG: path or component too long.
    NameTooLong,
    /// EINVAL: invalid argument.
    Inval,
    /// EROFS: read-only file system.
    RoFs,
    /// ENOSPC: no space left on device.
    NoSpc,
    /// EXDEV: cross-device link or rename.
    XDev,
    /// EBADF: bad file descriptor.
    BadF,
    /// EMFILE: too many open files.
    MFile,
    /// ENOSYS: operation not supported by this file system.
    NoSys,
    /// EBUSY: resource busy (e.g. unmounting a busy mount).
    Busy,
    /// EIO: low-level I/O error.
    Io,
    /// ESRCH: no such process (pseudo file systems).
    Srch,
    /// ERANGE: result does not fit in the supplied buffer.
    Range,
}

impl FsError {
    /// The classic errno spelling, e.g. `"ENOENT"`.
    pub fn errno_name(self) -> &'static str {
        match self {
            FsError::NoEnt => "ENOENT",
            FsError::NotDir => "ENOTDIR",
            FsError::IsDir => "EISDIR",
            FsError::Access => "EACCES",
            FsError::Perm => "EPERM",
            FsError::Exist => "EEXIST",
            FsError::NotEmpty => "ENOTEMPTY",
            FsError::Loop => "ELOOP",
            FsError::NameTooLong => "ENAMETOOLONG",
            FsError::Inval => "EINVAL",
            FsError::RoFs => "EROFS",
            FsError::NoSpc => "ENOSPC",
            FsError::XDev => "EXDEV",
            FsError::BadF => "EBADF",
            FsError::MFile => "EMFILE",
            FsError::NoSys => "ENOSYS",
            FsError::Busy => "EBUSY",
            FsError::Io => "EIO",
            FsError::Srch => "ESRCH",
            FsError::Range => "ERANGE",
        }
    }

    /// Whether a path walk failing with this error names a *definitive*
    /// absence that is legal to cache as a negative dentry (`ENOENT`) or a
    /// structural misuse cacheable as an `ENOTDIR` dentry (§5.2).
    pub fn is_negative_cacheable(self) -> bool {
        matches!(self, FsError::NoEnt | FsError::NotDir)
    }
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.errno_name())
    }
}

impl std::error::Error for FsError {}

impl From<dc_blockdev::BlockError> for FsError {
    fn from(_: dc_blockdev::BlockError) -> Self {
        FsError::Io
    }
}

/// Result alias used across the stack.
pub type FsResult<T> = Result<T, FsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_names_match() {
        assert_eq!(FsError::NoEnt.errno_name(), "ENOENT");
        assert_eq!(FsError::NotEmpty.to_string(), "ENOTEMPTY");
    }

    #[test]
    fn negative_cacheability() {
        assert!(FsError::NoEnt.is_negative_cacheable());
        assert!(FsError::NotDir.is_negative_cacheable());
        assert!(!FsError::Access.is_negative_cacheable());
        assert!(!FsError::Loop.is_negative_cacheable());
    }

    #[test]
    fn block_errors_map_to_eio() {
        let e: FsError = dc_blockdev::BlockError::BadLength { got: 1, want: 2 }.into();
        assert_eq!(e, FsError::Io);
    }
}
