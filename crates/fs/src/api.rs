//! The VFS ⇄ file-system contract.

use crate::error::FsResult;
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};

/// Inode number within one file system instance.
pub type Ino = u64;

/// Set-user-ID mode bit.
pub const MODE_SUID: u16 = 0o4000;
/// Set-group-ID mode bit.
pub const MODE_SGID: u16 = 0o2000;
/// Sticky mode bit.
pub const MODE_STICKY: u16 = 0o1000;

/// Object types, mirroring `d_type` values exposed by `readdir`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
    /// Character device node.
    CharDev,
    /// Block device node.
    BlockDev,
    /// Named pipe.
    Fifo,
    /// Unix-domain socket.
    Socket,
}

impl FileType {
    /// Encoding used in on-disk records and readdir results.
    pub fn as_u8(self) -> u8 {
        match self {
            FileType::Regular => 1,
            FileType::Directory => 2,
            FileType::Symlink => 3,
            FileType::CharDev => 4,
            FileType::BlockDev => 5,
            FileType::Fifo => 6,
            FileType::Socket => 7,
        }
    }

    /// Decodes the on-disk encoding.
    pub fn from_u8(v: u8) -> Option<FileType> {
        Some(match v {
            1 => FileType::Regular,
            2 => FileType::Directory,
            3 => FileType::Symlink,
            4 => FileType::CharDev,
            5 => FileType::BlockDev,
            6 => FileType::Fifo,
            7 => FileType::Socket,
            _ => return None,
        })
    }

    /// True for [`FileType::Directory`].
    pub fn is_dir(self) -> bool {
        self == FileType::Directory
    }
}

/// Metadata for one inode, as reported by the low-level file system.
///
/// This is the `struct kstat`-level view the VFS caches in its in-memory
/// inodes; `mode` holds the permission bits (plus suid/sgid/sticky), not
/// the file type, which lives in `ftype`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InodeAttr {
    /// Inode number.
    pub ino: Ino,
    /// Object type.
    pub ftype: FileType,
    /// Permission bits (0o7777 mask).
    pub mode: u16,
    /// Owning user.
    pub uid: u32,
    /// Owning group.
    pub gid: u32,
    /// Hard link count.
    pub nlink: u32,
    /// Size in bytes (for directories: size of the entry stream).
    pub size: u64,
    /// Modification time (abstract ticks).
    pub mtime: u64,
    /// Attribute-change time (abstract ticks).
    pub ctime: u64,
}

/// One `readdir` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (no slashes).
    pub name: String,
    /// Inode number of the target.
    pub ino: Ino,
    /// Target type as recorded in the directory.
    pub ftype: FileType,
}

/// Attribute changes for `setattr` (chmod/chown/truncate/utimes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetAttr {
    /// New permission bits.
    pub mode: Option<u16>,
    /// New owner.
    pub uid: Option<u32>,
    /// New group.
    pub gid: Option<u32>,
    /// New size (truncate/extend).
    pub size: Option<u64>,
    /// New modification time.
    pub mtime: Option<u64>,
}

/// `statfs`-level totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatFs {
    /// Total data blocks.
    pub blocks: u64,
    /// Free data blocks.
    pub bfree: u64,
    /// Total inodes.
    pub files: u64,
    /// Free inodes.
    pub ffree: u64,
    /// Block size in bytes.
    pub bsize: u64,
}

/// Call counters a file system keeps so experiments can report how often
/// the directory cache had to reach below the VFS.
#[derive(Debug, Default)]
pub struct FsStats {
    /// `lookup` calls (cache misses reaching the file system).
    pub lookups: AtomicU64,
    /// `readdir` calls.
    pub readdirs: AtomicU64,
    /// `getattr` calls.
    pub getattrs: AtomicU64,
    /// Mutating calls (create/unlink/rename/setattr/…).
    pub mutations: AtomicU64,
}

impl FsStats {
    /// Snapshot as plain numbers `(lookups, readdirs, getattrs, mutations)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.lookups.load(Ordering::Relaxed),
            self.readdirs.load(Ordering::Relaxed),
            self.getattrs.load(Ordering::Relaxed),
            self.mutations.load(Ordering::Relaxed),
        )
    }

    /// Resets all counters.
    pub fn reset(&self) {
        self.lookups.store(0, Ordering::Relaxed);
        self.readdirs.store(0, Ordering::Relaxed);
        self.getattrs.store(0, Ordering::Relaxed);
        self.mutations.store(0, Ordering::Relaxed);
    }
}

/// The low-level file system interface the VFS drives.
///
/// Everything is inode-number based; path knowledge lives entirely in the
/// VFS/dcache above (the Linux division of labor, §2.2–2.3). All methods
/// must be safe for concurrent use; implementations do their own internal
/// locking, while the VFS additionally serializes directory mutations via
/// per-dentry locks.
pub trait FileSystem: Send + Sync {
    /// A short type name, e.g. `"memfs"`.
    fn fs_type(&self) -> &'static str;

    /// Downcasting access (the VFS uses this for file-system-specific
    /// maintenance like page-cache drops on cold-cache resets).
    fn as_any(&self) -> &dyn std::any::Any;

    /// The root directory's inode number.
    fn root_ino(&self) -> Ino;

    /// Reads an inode's metadata.
    fn getattr(&self, ino: Ino) -> FsResult<InodeAttr>;

    /// Finds `name` in directory `dir`. `Err(NoEnt)` means definitively
    /// absent; `Err(NotDir)` means `dir` is not a directory.
    fn lookup(&self, dir: Ino, name: &str) -> FsResult<InodeAttr>;

    /// Reads directory entries starting at cursor `offset`, appending at
    /// most `max` entries to `out`. Returns the next cursor, or `None` at
    /// end-of-directory. `.` and `..` are not reported (the VFS
    /// synthesizes them).
    fn readdir(
        &self,
        dir: Ino,
        offset: u64,
        max: usize,
        out: &mut Vec<DirEntry>,
    ) -> FsResult<Option<u64>>;

    /// Creates a regular file.
    fn create(&self, dir: Ino, name: &str, mode: u16, uid: u32, gid: u32) -> FsResult<InodeAttr>;

    /// Creates a directory.
    fn mkdir(&self, dir: Ino, name: &str, mode: u16, uid: u32, gid: u32) -> FsResult<InodeAttr>;

    /// Creates a symbolic link containing `target`.
    fn symlink(
        &self,
        dir: Ino,
        name: &str,
        target: &str,
        uid: u32,
        gid: u32,
    ) -> FsResult<InodeAttr>;

    /// Reads a symbolic link's target.
    fn readlink(&self, ino: Ino) -> FsResult<String>;

    /// Creates a hard link to `ino` named `name` in `dir`.
    fn link(&self, dir: Ino, name: &str, ino: Ino) -> FsResult<InodeAttr>;

    /// Removes a non-directory entry. The inode is freed when its link
    /// count reaches zero (the VFS is responsible for open-handle
    /// semantics above this layer).
    fn unlink(&self, dir: Ino, name: &str) -> FsResult<()>;

    /// Removes an empty directory.
    fn rmdir(&self, dir: Ino, name: &str) -> FsResult<()>;

    /// Renames `old_dir/old_name` to `new_dir/new_name`, replacing a
    /// compatible existing target (POSIX rename semantics).
    fn rename(&self, old_dir: Ino, old_name: &str, new_dir: Ino, new_name: &str) -> FsResult<()>;

    /// Applies attribute changes and returns the updated attributes.
    fn setattr(&self, ino: Ino, changes: SetAttr) -> FsResult<InodeAttr>;

    /// Reads file content.
    fn read(&self, ino: Ino, offset: u64, len: usize) -> FsResult<Bytes>;

    /// Writes file content, returning bytes written.
    fn write(&self, ino: Ino, offset: u64, data: &[u8]) -> FsResult<usize>;

    /// File-system totals.
    fn statfs(&self) -> FsResult<StatFs>;

    /// Flushes metadata and data to the backing store, if any.
    fn sync(&self) -> FsResult<()> {
        Ok(())
    }

    /// Call counters for evaluation.
    fn stats(&self) -> &FsStats;

    /// True for pseudo file systems (proc/sys/dev-like). In baseline mode
    /// the dcache does not create negative dentries for these (§5.2).
    fn is_pseudo(&self) -> bool {
        false
    }

    /// Whether lookups on this file system may use the direct-lookup
    /// fastpath at all. Network file systems needing per-component
    /// revalidation return `false` (§4.3, "Network File Systems").
    fn supports_fastpath(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_type_round_trips() {
        for t in [
            FileType::Regular,
            FileType::Directory,
            FileType::Symlink,
            FileType::CharDev,
            FileType::BlockDev,
            FileType::Fifo,
            FileType::Socket,
        ] {
            assert_eq!(FileType::from_u8(t.as_u8()), Some(t));
        }
        assert_eq!(FileType::from_u8(0), None);
        assert_eq!(FileType::from_u8(8), None);
    }

    #[test]
    fn stats_snapshot_and_reset() {
        let s = FsStats::default();
        s.lookups.fetch_add(3, Ordering::Relaxed);
        s.mutations.fetch_add(1, Ordering::Relaxed);
        assert_eq!(s.snapshot(), (3, 0, 0, 1));
        s.reset();
        assert_eq!(s.snapshot(), (0, 0, 0, 0));
    }
}
