//! A fast keyed hasher for the per-directory child maps.
//!
//! The default `HashMap` hasher is SipHash-1-3 — cryptographic-strength
//! flooding resistance paid for on every `d_lookup`, visible in the
//! fig-3 attribution as per-component table time. Child maps do not
//! need that strength: they are bounded by the dcache capacity,
//! per-directory (an attacker floods one directory's map, not a global
//! table), and keyed by a per-boot seed below, the same randomization
//! argument the signature hash makes (§3.3, DESIGN.md §13).
//!
//! The mix is the signature hash's finisher family: one golden-ratio
//! multiply per 8 bytes of name plus an avalanche at the end — roughly
//! 4× cheaper than SipHash for short component names.

use std::hash::{BuildHasher, Hasher};
use std::sync::OnceLock;

/// Golden-ratio multiplier (same constant as the sighash wrap salt).
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// Per-process hasher seed, drawn once from OS entropy (via the std
/// `RandomState` entropy source — no new dependencies).
fn boot_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        use std::hash::RandomState;
        RandomState::new().build_hasher().finish() | 1
    })
}

/// The hasher state: multiply-rotate over 8-byte words.
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(29) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            // Fold the length in so zero-padding cannot alias a longer
            // input ending in NULs.
            self.mix(u64::from_le_bytes(last) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, b: u8) {
        self.mix(b as u64 | 0x100);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // fmix64-style avalanche: HashMap takes the high bits for its
        // control bytes, so the last multiply alone is not enough.
        let mut z = self.hash;
        z = (z ^ (z >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
        z ^ (z >> 29)
    }
}

/// `BuildHasher` handing out boot-seeded [`FastHasher`]s.
#[derive(Clone, Default)]
pub struct FastBuildHasher;

impl BuildHasher for FastBuildHasher {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher { hash: boot_seed() }
    }
}

/// A `HashMap` using the fast keyed hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn h(bytes: &[u8]) -> u64 {
        let mut hasher = FastBuildHasher.build_hasher();
        hasher.write(bytes);
        hasher.finish()
    }

    #[test]
    fn distinct_names_hash_apart() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(h(format!("file-{i}").as_bytes())));
        }
    }

    #[test]
    fn padding_does_not_alias() {
        assert_ne!(h(b"abc"), h(b"abc\0"));
        assert_ne!(h(b"abcdefgh"), h(b"abcdefgh\0"));
        assert_ne!(h(b""), h(b"\0"));
    }

    #[test]
    fn deterministic_within_process() {
        assert_eq!(h(b"etc"), h(b"etc"));
    }

    #[test]
    fn map_round_trips_strs() {
        let mut m: FastMap<std::sync::Arc<str>, u64> = FastMap::default();
        for i in 0..500u64 {
            m.insert(std::sync::Arc::from(format!("n{i}").as_str()), i);
        }
        for i in 0..500u64 {
            assert_eq!(m.get(format!("n{i}").as_str()), Some(&i));
        }
        assert!(!m.contains_key("absent"));
    }
}
