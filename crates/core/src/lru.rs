//! LRU bookkeeping for dentry eviction.
//!
//! Linux evicts dentries bottom-up along the hierarchy to preserve the
//! invariant that every cached dentry's ancestors are cached (§2.2). The
//! same invariant holds here structurally: only *leaf* dentries (no cached
//! children) with no external references are evictable, so repeated scans
//! peel a subtree from the bottom.

use crate::dentry::Dentry;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

/// Decision returned by an eviction callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictOutcome {
    /// The dentry was evicted; drop it from the queue.
    Evicted,
    /// Keep the dentry cached; rotate it to the back of the queue.
    Keep,
}

/// Sharded FIFO-with-rotation queue of eviction candidates.
///
/// Recency is approximated: lookups stamp `last_used` on the dentry
/// instead of relocating queue nodes (relocation on every hit would
/// serialize the read path), and the scan rotates still-hot entries to
/// the back. This is the standard clock-ish approximation of LRU.
pub struct DentryLru {
    shards: Vec<Mutex<VecDeque<Weak<Dentry>>>>,
    next_insert: AtomicUsize,
    next_scan: AtomicUsize,
}

impl DentryLru {
    /// A queue with `shards` independent lock domains.
    pub fn new(shards: usize) -> DentryLru {
        DentryLru {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            next_insert: AtomicUsize::new(0),
            next_scan: AtomicUsize::new(0),
        }
    }

    /// Registers a dentry as an eviction candidate.
    pub fn insert(&self, d: &Arc<Dentry>) {
        let i = self.next_insert.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[i].lock().push_back(Arc::downgrade(d));
    }

    /// Total queued candidates (including dead weak entries).
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no candidates are queued.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scans up to `max_scan` candidates in approximate LRU order,
    /// invoking `decide` on each live one. Returns how many were evicted.
    pub fn scan(
        &self,
        max_scan: usize,
        mut decide: impl FnMut(&Arc<Dentry>) -> EvictOutcome,
    ) -> usize {
        let mut evicted = 0;
        let mut scanned = 0;
        let nshards = self.shards.len();
        let start = self.next_scan.fetch_add(1, Ordering::Relaxed);
        'outer: for off in 0..nshards {
            let shard = &self.shards[(start + off) % nshards];
            let mut q = shard.lock();
            let mut rotations = q.len();
            while scanned < max_scan && rotations > 0 {
                let Some(weak) = q.pop_front() else { break };
                rotations -= 1;
                let Some(d) = weak.upgrade() else {
                    continue; // dentry already gone
                };
                if d.is_dead() {
                    continue; // unhashed elsewhere; drop from queue
                }
                scanned += 1;
                match decide(&d) {
                    EvictOutcome::Evicted => evicted += 1,
                    EvictOutcome::Keep => q.push_back(Arc::downgrade(&d)),
                }
            }
            if scanned >= max_scan {
                break 'outer;
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dentry::{DentryState, NegKind};

    fn dentry(id: u64) -> Arc<Dentry> {
        Dentry::new(id, 1, "x", None, DentryState::Negative(NegKind::Enoent), 0)
    }

    #[test]
    fn scan_visits_in_insertion_order() {
        let lru = DentryLru::new(1);
        let keep: Vec<_> = (0..5).map(dentry).collect();
        for d in &keep {
            lru.insert(d);
        }
        let mut seen = Vec::new();
        lru.scan(10, |d| {
            seen.push(d.id());
            EvictOutcome::Keep
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn evicted_entries_leave_the_queue() {
        let lru = DentryLru::new(1);
        let keep: Vec<_> = (0..4).map(dentry).collect();
        for d in &keep {
            lru.insert(d);
        }
        let n = lru.scan(10, |d| {
            if d.id() % 2 == 0 {
                EvictOutcome::Evicted
            } else {
                EvictOutcome::Keep
            }
        });
        assert_eq!(n, 2);
        let mut rest = Vec::new();
        lru.scan(10, |d| {
            rest.push(d.id());
            EvictOutcome::Keep
        });
        assert_eq!(rest, vec![1, 3]);
    }

    #[test]
    fn dropped_dentries_are_skipped() {
        let lru = DentryLru::new(1);
        {
            let d = dentry(7);
            lru.insert(&d);
        }
        let live = dentry(8);
        lru.insert(&live);
        let mut seen = Vec::new();
        lru.scan(10, |d| {
            seen.push(d.id());
            EvictOutcome::Keep
        });
        assert_eq!(seen, vec![8]);
    }

    #[test]
    fn dead_flag_purges_without_callback() {
        let lru = DentryLru::new(1);
        let d = dentry(9);
        lru.insert(&d);
        d.set_flag(crate::dentry::FLAG_DEAD);
        let mut called = false;
        lru.scan(10, |_| {
            called = true;
            EvictOutcome::Keep
        });
        assert!(!called);
        assert_eq!(lru.len(), 0);
    }

    #[test]
    fn scan_respects_max_scan() {
        let lru = DentryLru::new(1);
        let keep: Vec<_> = (0..10).map(dentry).collect();
        for d in &keep {
            lru.insert(d);
        }
        let mut seen = 0;
        lru.scan(3, |_| {
            seen += 1;
            EvictOutcome::Keep
        });
        assert_eq!(seen, 3);
    }
}
