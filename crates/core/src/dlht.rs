//! The Direct Lookup Hash Table (§3.1, §3.3).

use crate::dentry::Dentry;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// One chained entry: the 240-bit signature lanes + a weak dentry ref.
type Chain = Vec<([u64; 4], Weak<Dentry>)>;

/// A system-wide (per mount namespace) hash table mapping full-path
/// signatures directly to dentries.
///
/// - Indexed by the low 16 signature bits; chains compare the remaining
///   240 bits instead of path strings (§3.3).
/// - Lazily populated by slowpath walks; entries are weak, and coherence
///   shootdowns precede any structural change (§3.2).
/// - A dentry lives in at most **one** DLHT under **one** signature at a
///   time — the rule that makes mount aliases and namespaces tractable
///   (§4.3). The membership record lives in the dentry and is maintained
///   by [`crate::Dcache`], which owns the insert/remove protocol; this
///   type only provides the raw chains.
pub struct Dlht {
    /// Namespace id this table serves (diagnostics).
    ns: u64,
    buckets: Vec<RwLock<Chain>>,
    mask: usize,
    entries: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Dlht {
    /// A table with `buckets` chains (power of two ≤ 2^16).
    pub fn new(ns: u64, buckets: usize) -> Arc<Dlht> {
        assert!(buckets.is_power_of_two() && buckets <= (1 << 16));
        Arc::new(Dlht {
            ns,
            buckets: (0..buckets).map(|_| RwLock::new(Vec::new())).collect(),
            mask: buckets - 1,
            entries: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The namespace this table serves.
    pub fn ns(&self) -> u64 {
        self.ns
    }

    fn bucket(&self, sig: &crate::Signature) -> &RwLock<Vec<([u64; 4], Weak<Dentry>)>> {
        &self.buckets[sig.bucket_index_for(self.mask + 1)]
    }

    /// Looks up a dentry by signature (the fastpath's first step).
    pub fn lookup(&self, sig: &crate::Signature) -> Option<Arc<Dentry>> {
        let want = sig.sig240();
        let chain = self.bucket(sig).read();
        for (s, weak) in chain.iter() {
            if *s == want {
                if let Some(d) = weak.upgrade() {
                    if !d.is_dead() {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Some(d);
                    }
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Raw chain insert. The caller (the dcache) holds the dentry's
    /// membership lock and has already removed any previous entry.
    pub(crate) fn insert_raw(&self, sig: crate::Signature, dentry: &Arc<Dentry>) {
        let mut chain = self.bucket(&sig).write();
        // Replace a dead or duplicate entry under the same signature.
        let before = chain.len();
        let want = sig.sig240();
        chain.retain(|(s, w)| {
            *s != want
                || w.upgrade()
                    .is_some_and(|d| !d.is_dead() && d.id() != dentry.id())
        });
        let pruned = before - chain.len();
        chain.push((want, Arc::downgrade(dentry)));
        drop(chain);
        if pruned == 0 {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Raw chain removal by signature + dentry id.
    pub(crate) fn remove_raw(&self, sig: &crate::Signature, id: crate::DentryId) {
        let mut chain = self.bucket(sig).write();
        let want = sig.sig240();
        let before = chain.len();
        chain.retain(|(s, w)| {
            if *s != want {
                return true;
            }
            match w.upgrade() {
                Some(d) => d.id() != id,
                None => false, // prune dead weak entries opportunistically
            }
        });
        let removed = (before - chain.len()) as u64;
        if removed > 0 {
            self.entries.fetch_sub(removed, Ordering::Relaxed);
        }
    }

    /// Approximate number of live entries.
    pub fn len(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters.
    pub fn hit_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Bucket occupancy histogram: `[empty, 1, 2, 3+]` (the §6.5 hash
    /// table discussion).
    pub fn occupancy(&self) -> [u64; 4] {
        let mut h = [0u64; 4];
        for b in &self.buckets {
            let n = b.read().len();
            h[n.min(3)] += 1;
        }
        h
    }

    /// Memory footprint estimate in bytes (space-overhead reporting).
    pub fn approx_bytes(&self) -> usize {
        let per_entry = std::mem::size_of::<([u64; 4], Weak<Dentry>)>();
        self.buckets.len() * std::mem::size_of::<RwLock<Vec<u8>>>()
            + self.len() as usize * per_entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dentry::{DentryState, NegKind};
    use crate::HashKey;

    fn dentry(id: u64) -> Arc<Dentry> {
        Dentry::new(id, 1, "n", None, DentryState::Negative(NegKind::Enoent), 0)
    }

    #[test]
    fn insert_lookup_remove_cycle() {
        let key = HashKey::from_seed(1);
        let t = Dlht::new(0, 1 << 8);
        let d = dentry(1);
        let sig = key.hash_components([b"etc".as_slice(), b"passwd".as_slice()]);
        t.insert_raw(sig, &d);
        assert_eq!(t.lookup(&sig).unwrap().id(), 1);
        assert_eq!(t.len(), 1);
        t.remove_raw(&sig, d.id());
        assert!(t.lookup(&sig).is_none());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn same_signature_reinsert_does_not_duplicate() {
        let key = HashKey::from_seed(2);
        let t = Dlht::new(0, 1 << 8);
        let d = dentry(1);
        let sig = key.hash_components([b"a".as_slice()]);
        t.insert_raw(sig, &d);
        t.insert_raw(sig, &d);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&sig).unwrap().id(), 1);
    }

    #[test]
    fn dead_dentries_are_not_returned() {
        let key = HashKey::from_seed(3);
        let t = Dlht::new(0, 1 << 8);
        let d = dentry(1);
        let sig = key.hash_components([b"x".as_slice()]);
        t.insert_raw(sig, &d);
        d.set_flag(crate::dentry::FLAG_DEAD);
        assert!(t.lookup(&sig).is_none());
    }

    #[test]
    fn dropped_dentries_vanish() {
        let key = HashKey::from_seed(4);
        let t = Dlht::new(0, 1 << 8);
        let sig = key.hash_components([b"gone".as_slice()]);
        {
            let d = dentry(9);
            t.insert_raw(sig, &d);
        } // d dropped; weak can no longer upgrade
        assert!(t.lookup(&sig).is_none());
    }

    #[test]
    fn distinct_signatures_coexist_in_shared_chains() {
        let key = HashKey::from_seed(5);
        let t = Dlht::new(0, 1 << 4); // tiny table to force chain sharing
        let dentries: Vec<_> = (0..64).map(dentry).collect();
        let sigs: Vec<_> = (0..64)
            .map(|i| key.hash_components([format!("f{i}").as_bytes()]))
            .collect();
        for (d, s) in dentries.iter().zip(&sigs) {
            t.insert_raw(*s, d);
        }
        for (d, s) in dentries.iter().zip(&sigs) {
            assert_eq!(t.lookup(s).unwrap().id(), d.id());
        }
        assert_eq!(t.len(), 64);
        let occ = t.occupancy();
        assert_eq!(occ.iter().sum::<u64>(), 16);
    }
}
