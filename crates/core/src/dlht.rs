//! The Direct Lookup Hash Table (§3.1, §3.3) — lock-free read side.
//!
//! Two memory layouts share one epoch/CAS publication discipline:
//!
//! - **Open-addressed bucket groups** (the default): each bucket head is
//!   an atomic pointer to one immutable, cache-line-aligned [`Group`]
//!   holding up to [`GROUP_SLOTS`] entries inline — the 240-bit
//!   signature tags and the entry slots live in the group itself, so a
//!   warm probe is one pointer dereference plus a bounded in-line scan,
//!   with no per-entry pointer chase. Buckets overflowing a group grow a
//!   rare `next` group.
//! - **Pointer-chained nodes** (the pre-overhaul layout, kept as the
//!   measurable "before" column of the layout-attribution table): each
//!   bucket head points at an immutable singly-linked node list.
//!
//! In both layouts `lookup` pins the epoch and traverses without any
//! lock — the RCU-analog probe the paper's flat Figure 8 read scaling
//! depends on. Mutators rebuild the affected bucket's groups (or chain)
//! as fresh allocations, publish with one CAS on the bucket head, and
//! retire the replaced blocks through the epoch collector
//! (`defer_destroy`); a failed CAS frees the speculative copy and
//! retries against the new head. Published groups and nodes are never
//! mutated, and ABA is impossible while pinned: a retired block's
//! address cannot be reused until every guard that could have observed
//! it unpins. The linearization point of every mutation is the single
//! bucket-head CAS — identical in both layouts, which is why the
//! `crates/dst` linearizability models hold for either.
//!
//! `Dlht::new_with_mode(.., lockfree: false)` keeps the same structure
//! but routes readers and writers through per-bucket `RwLock`s — the
//! pre-refactor locking discipline, preserved as the measurable "before"
//! column of the Figure 8 thread-scaling comparison.

use crate::dentry::Dentry;
use crate::dsync::{AtomicU64, Ordering};
use crossbeam_epoch::{self as epoch, Atomic, Owned, Shared};
use parking_lot::RwLock;
use std::sync::{Arc, Weak};

/// Entries stored inline per bucket group. With 2^16 buckets and a
/// lazily-populated table, almost every occupied bucket holds one or two
/// entries; four slots keep even collision buckets to a single group.
const GROUP_SLOTS: usize = 4;

/// One immutable chain node (chained layout): the 240-bit signature
/// lanes + a weak dentry ref + the next pointer. Published nodes are
/// never mutated; `next` is atomic only so chains can be assembled and
/// traversed under the epoch API.
struct Node {
    sig: [u64; 4],
    dentry: Weak<Dentry>,
    next: Atomic<Node>,
}

/// One entry slot of an open-addressed group: the remaining signature
/// lanes (lane 0 lives in the group's tag array) + the weak dentry ref.
struct Slot {
    rest: [u64; 3],
    dentry: Weak<Dentry>,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            rest: [0; 3],
            dentry: Weak::new(),
        }
    }
}

/// One immutable, cache-line-aligned bucket group (open layout).
///
/// Field order is load-bearing: the first 64 bytes hold everything a
/// failing probe needs — the four quick-reject tags (lane 0 of each
/// slot's masked signature), the live-slot count, and the overflow
/// pointer — so a bucket miss costs exactly one cache line after the
/// head dereference. Slots start at byte 64; a tag match reads one more
/// line to compare the remaining 192 signature bits and upgrade the
/// weak reference. Published groups are never mutated; `next` is atomic
/// only for assembly and traversal under the epoch API.
#[repr(C, align(64))]
struct Group {
    tags: [u64; GROUP_SLOTS],
    len: u32,
    _pad0: u32,
    next: Atomic<Group>,
    _pad1: [u64; 2],
    slots: [Slot; GROUP_SLOTS],
}

// The layout contract the cache-line argument rests on (DESIGN.md §13).
const _: () = {
    assert!(std::mem::size_of::<Group>() == 192);
    assert!(std::mem::align_of::<Group>() == 64);
    assert!(std::mem::offset_of!(Group, slots) == 64);
};

impl Group {
    fn from_chunk(chunk: &[Item]) -> Group {
        let mut g = Group {
            tags: [0; GROUP_SLOTS],
            len: chunk.len() as u32,
            _pad0: 0,
            next: Atomic::null(),
            _pad1: [0; 2],
            slots: [Slot::empty(), Slot::empty(), Slot::empty(), Slot::empty()],
        };
        for (i, (sig, dentry)) in chunk.iter().enumerate() {
            g.tags[i] = sig[0];
            g.slots[i] = Slot {
                rest: [sig[1], sig[2], sig[3]],
                dentry: dentry.clone(),
            };
        }
        g
    }
}

/// The bucket-head array, one variant per layout.
enum BucketArray {
    Chained(Box<[Atomic<Node>]>),
    Open(Box<[Atomic<Group>]>),
}

type Item = ([u64; 4], Weak<Dentry>);

/// Exact per-layout sizes for space-overhead reporting (`repro space`).
/// Every count is produced by walking the live structure under an epoch
/// guard — never estimated from counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DlhtFootprint {
    /// Bucket heads allocated.
    pub buckets: usize,
    /// Bytes per bucket head (one atomic pointer).
    pub bucket_bytes: usize,
    /// Live chain nodes (chained layout; zero under open addressing).
    pub nodes: u64,
    /// Bytes per chain node.
    pub node_bytes: usize,
    /// Live bucket groups (open layout; zero under chaining).
    pub groups: u64,
    /// Bytes per bucket group.
    pub group_bytes: usize,
    /// Live entries across all slots/nodes (walked).
    pub entries: u64,
    /// Per-bucket reader-writer locks, locked-ablation mode only.
    pub lock_bytes: usize,
}

impl DlhtFootprint {
    /// Total bytes of this layout.
    pub fn total_bytes(&self) -> usize {
        self.buckets * self.bucket_bytes
            + self.nodes as usize * self.node_bytes
            + self.groups as usize * self.group_bytes
            + self.lock_bytes
    }

    /// Bytes a shrink could reclaim: everything except the fixed bucket
    /// array (and the ablation locks, which live as long as the table).
    pub fn reclaimable_bytes(&self) -> u64 {
        self.nodes * self.node_bytes as u64 + self.groups * self.group_bytes as u64
    }
}

/// A system-wide (per mount namespace) hash table mapping full-path
/// signatures directly to dentries.
///
/// - Indexed by the low 16 signature bits; groups/chains compare the
///   remaining 240 bits instead of path strings (§3.3).
/// - Lazily populated by slowpath walks; entries are weak, and coherence
///   shootdowns precede any structural change (§3.2).
/// - A dentry lives in at most **one** DLHT under **one** signature at a
///   time — the rule that makes mount aliases and namespaces tractable
///   (§4.3). The membership record lives in the dentry and is maintained
///   by [`crate::Dcache`], which owns the insert/remove protocol; this
///   type only provides the raw buckets.
pub struct Dlht {
    /// Namespace id this table serves (diagnostics).
    ns: u64,
    buckets: BucketArray,
    /// Present only in the locked-reads ablation: readers share, writers
    /// exclude, per bucket — the pre-refactor discipline.
    locks: Option<Box<[RwLock<()>]>>,
    mask: usize,
    entries: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Dlht {
    /// A lock-free, open-addressed table with `buckets` heads (power of
    /// two ≤ 2^16).
    pub fn new(ns: u64, buckets: usize) -> Arc<Dlht> {
        Self::new_with_layout(ns, buckets, true, true)
    }

    /// A table with the read side lock-free (`lockfree`) or routed
    /// through per-bucket locks (the ablation's "before" column).
    pub fn new_with_mode(ns: u64, buckets: usize, lockfree: bool) -> Arc<Dlht> {
        Self::new_with_layout(ns, buckets, lockfree, true)
    }

    /// Full layout control: `open_addressed` selects the bucket-group
    /// layout (default) or the pre-overhaul pointer chains (the layout
    /// ablation's "before" column).
    pub fn new_with_layout(
        ns: u64,
        buckets: usize,
        lockfree: bool,
        open_addressed: bool,
    ) -> Arc<Dlht> {
        assert!(buckets.is_power_of_two() && buckets <= (1 << 16));
        Arc::new(Dlht {
            ns,
            buckets: if open_addressed {
                BucketArray::Open((0..buckets).map(|_| Atomic::null()).collect())
            } else {
                BucketArray::Chained((0..buckets).map(|_| Atomic::null()).collect())
            },
            locks: (!lockfree).then(|| (0..buckets).map(|_| RwLock::new(())).collect()),
            mask: buckets - 1,
            entries: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The namespace this table serves.
    pub fn ns(&self) -> u64 {
        self.ns
    }

    /// True when this table uses the open-addressed group layout.
    pub fn is_open_addressed(&self) -> bool {
        matches!(self.buckets, BucketArray::Open(_))
    }

    fn bucket_index(&self, sig: &crate::Signature) -> usize {
        sig.bucket_index_for(self.mask + 1)
    }

    /// Looks up a dentry by signature (the fastpath's first step).
    /// Lock-free: pins the epoch and scans the immutable group (or
    /// chain) published at the bucket head.
    pub fn lookup(&self, sig: &crate::Signature) -> Option<Arc<Dentry>> {
        let guard = epoch::pin();
        self.lookup_with(sig, &guard)
    }

    /// [`lookup`](Dlht::lookup) under a pin the caller already holds —
    /// the fastpath pins once per resolution, and re-entering the
    /// thread-local pin bookkeeping per probe is measurable at §13
    /// scale.
    pub fn lookup_with(&self, sig: &crate::Signature, guard: &epoch::Guard) -> Option<Arc<Dentry>> {
        let idx = self.bucket_index(sig);
        let _shared = self.locks.as_ref().map(|l| l[idx].read());
        let want = sig.sig240();
        let found = match &self.buckets {
            BucketArray::Open(heads) => {
                let mut cur = heads[idx].load(Ordering::Acquire, guard);
                'probe: loop {
                    let Some(g) = (unsafe { cur.as_ref() }) else {
                        break None;
                    };
                    for i in 0..g.len as usize {
                        if g.tags[i] == want[0] {
                            let s = &g.slots[i];
                            if s.rest == [want[1], want[2], want[3]] {
                                if let Some(d) = s.dentry.upgrade() {
                                    if !d.is_dead() {
                                        break 'probe Some(d);
                                    }
                                }
                            }
                        }
                    }
                    cur = g.next.load(Ordering::Acquire, guard);
                }
            }
            BucketArray::Chained(heads) => {
                let mut cur = heads[idx].load(Ordering::Acquire, guard);
                'walk: loop {
                    let Some(node) = (unsafe { cur.as_ref() }) else {
                        break None;
                    };
                    if node.sig == want {
                        if let Some(d) = node.dentry.upgrade() {
                            if !d.is_dead() {
                                break 'walk Some(d);
                            }
                        }
                    }
                    cur = node.next.load(Ordering::Acquire, guard);
                }
            }
        };
        match found {
            Some(d) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(d)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    // --- chained-layout helpers ----------------------------------------

    /// Assembles a fresh chain from `items` (front to back), returning
    /// the head (null for an empty list). Nodes are unpublished until
    /// the caller's CAS succeeds.
    fn build_chain<'g>(items: Vec<Item>, guard: &'g epoch::Guard) -> Shared<'g, Node> {
        let mut head = Shared::null();
        for (sig, dentry) in items.into_iter().rev() {
            let node = Owned::new(Node {
                sig,
                dentry,
                next: Atomic::null(),
            });
            node.next.store(head, Ordering::Relaxed);
            head = node.into_shared(guard);
        }
        head
    }

    /// Frees an unpublished speculative chain after a failed CAS.
    fn drop_unpublished_chain<'g>(mut head: Shared<'g, Node>, guard: &'g epoch::Guard) {
        while !head.is_null() {
            // Safety: these nodes were never published; we are the only
            // owner.
            let owned = unsafe { head.into_owned() };
            head = owned.next.load(Ordering::Relaxed, guard);
            drop(owned);
        }
    }

    /// Retires every node of a replaced (published) chain.
    fn retire_chain<'g>(mut head: Shared<'g, Node>, guard: &'g epoch::Guard) {
        while let Some(node) = unsafe { head.as_ref() } {
            let next = node.next.load(Ordering::Acquire, guard);
            // Safety: the chain was unlinked by a successful CAS; readers
            // still traversing it are protected by their own guards.
            unsafe { guard.defer_destroy(head) };
            head = next;
        }
    }

    fn collect_chain(head: Shared<'_, Node>, guard: &epoch::Guard) -> Vec<Item> {
        let mut items = Vec::new();
        let mut cur = head;
        while let Some(node) = unsafe { cur.as_ref() } {
            items.push((node.sig, node.dentry.clone()));
            cur = node.next.load(Ordering::Acquire, guard);
        }
        items
    }

    // --- open-layout helpers -------------------------------------------

    /// Assembles a fresh group list from `items`: full groups of
    /// [`GROUP_SLOTS`], overflow continuing in `next` groups. Unpublished
    /// until the caller's CAS succeeds.
    fn build_groups<'g>(items: Vec<Item>, guard: &'g epoch::Guard) -> Shared<'g, Group> {
        let mut head = Shared::null();
        for chunk in items.chunks(GROUP_SLOTS).rev() {
            let group = Owned::new(Group::from_chunk(chunk));
            group.next.store(head, Ordering::Relaxed);
            head = group.into_shared(guard);
        }
        head
    }

    /// Frees an unpublished speculative group list after a failed CAS.
    fn drop_unpublished_groups<'g>(mut head: Shared<'g, Group>, guard: &'g epoch::Guard) {
        while !head.is_null() {
            // Safety: never published; we are the only owner.
            let owned = unsafe { head.into_owned() };
            head = owned.next.load(Ordering::Relaxed, guard);
            drop(owned);
        }
    }

    /// Retires every group of a replaced (published) list.
    fn retire_groups<'g>(mut head: Shared<'g, Group>, guard: &'g epoch::Guard) {
        while let Some(g) = unsafe { head.as_ref() } {
            let next = g.next.load(Ordering::Acquire, guard);
            // Safety: unlinked by a successful CAS; concurrent readers
            // hold their own guards.
            unsafe { guard.defer_destroy(head) };
            head = next;
        }
    }

    fn collect_groups(head: Shared<'_, Group>, guard: &epoch::Guard) -> Vec<Item> {
        let mut items = Vec::new();
        let mut cur = head;
        while let Some(g) = unsafe { cur.as_ref() } {
            for i in 0..g.len as usize {
                let s = &g.slots[i];
                items.push((
                    [g.tags[i], s.rest[0], s.rest[1], s.rest[2]],
                    s.dentry.clone(),
                ));
            }
            cur = g.next.load(Ordering::Acquire, guard);
        }
        items
    }

    // --- shared mutation discipline ------------------------------------

    /// The copy-edit-publish loop both layouts share: snapshot the
    /// bucket's items, let `edit` produce the replacement set (or `None`
    /// to abort without publishing), build a fresh immutable copy, CAS
    /// the bucket head, retire the old blocks. `edit` also returns the
    /// entry-counter delta to apply on success.
    fn mutate(&self, idx: usize, edit: impl Fn(Vec<Item>) -> Option<(Vec<Item>, i64)>) {
        let _excl = self.locks.as_ref().map(|l| l[idx].write());
        let guard = epoch::pin();
        match &self.buckets {
            BucketArray::Chained(heads) => loop {
                let head = heads[idx].load(Ordering::Acquire, &guard);
                let items = Self::collect_chain(head, &guard);
                let Some((kept, delta)) = edit(items) else {
                    return;
                };
                let fresh = Self::build_chain(kept, &guard);
                match heads[idx].compare_exchange(
                    head,
                    fresh,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    &guard,
                ) {
                    Ok(_) => {
                        Self::retire_chain(head, &guard);
                        self.apply_delta(delta);
                        return;
                    }
                    Err(_) => Self::drop_unpublished_chain(fresh, &guard),
                }
            },
            BucketArray::Open(heads) => loop {
                let head = heads[idx].load(Ordering::Acquire, &guard);
                let items = Self::collect_groups(head, &guard);
                let Some((kept, delta)) = edit(items) else {
                    return;
                };
                let fresh = Self::build_groups(kept, &guard);
                match heads[idx].compare_exchange(
                    head,
                    fresh,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    &guard,
                ) {
                    Ok(_) => {
                        Self::retire_groups(head, &guard);
                        self.apply_delta(delta);
                        return;
                    }
                    Err(_) => Self::drop_unpublished_groups(fresh, &guard),
                }
            },
        }
    }

    fn apply_delta(&self, delta: i64) {
        match delta.cmp(&0) {
            std::cmp::Ordering::Greater => {
                self.entries.fetch_add(delta as u64, Ordering::Relaxed);
            }
            std::cmp::Ordering::Less => {
                self.entries.fetch_sub((-delta) as u64, Ordering::Relaxed);
            }
            std::cmp::Ordering::Equal => {}
        }
    }

    /// Raw bucket insert. The caller (the dcache) holds the dentry's
    /// membership lock and has already removed any previous entry.
    pub(crate) fn insert_raw(&self, sig: crate::Signature, dentry: &Arc<Dentry>) {
        let idx = self.bucket_index(&sig);
        let want = sig.sig240();
        self.mutate(idx, |items| {
            // Copy the bucket, replacing dead or duplicate entries under
            // the same signature.
            let mut kept: Vec<Item> = Vec::with_capacity(items.len() + 1);
            let mut pruned = 0u64;
            for (isig, weak) in items {
                let keep = isig != want
                    || weak
                        .upgrade()
                        .is_some_and(|d| !d.is_dead() && d.id() != dentry.id());
                if keep {
                    kept.push((isig, weak));
                } else {
                    pruned += 1;
                }
            }
            kept.push((want, Arc::downgrade(dentry)));
            Some((kept, if pruned == 0 { 1 } else { 0 }))
        });
    }

    /// Raw bucket removal by signature + dentry id.
    pub(crate) fn remove_raw(&self, sig: &crate::Signature, id: crate::DentryId) {
        let idx = self.bucket_index(sig);
        let want = sig.sig240();
        self.mutate(idx, |items| {
            let mut kept: Vec<Item> = Vec::with_capacity(items.len());
            let mut removed = 0i64;
            for (isig, weak) in items {
                let keep = if isig != want {
                    true
                } else {
                    match weak.upgrade() {
                        Some(d) => d.id() != id,
                        None => false, // prune dead weak entries opportunistically
                    }
                };
                if keep {
                    kept.push((isig, weak));
                } else {
                    removed += 1;
                }
            }
            if removed == 0 {
                return None;
            }
            Some((kept, -removed))
        });
    }

    /// Approximate number of live entries.
    pub fn len(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters.
    pub fn hit_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// `(entries, nodes_or_groups)` in bucket `idx`, by walking it.
    fn bucket_census(&self, idx: usize, guard: &epoch::Guard) -> (u64, u64) {
        match &self.buckets {
            BucketArray::Chained(heads) => {
                let mut entries = 0;
                let mut cur = heads[idx].load(Ordering::Acquire, guard);
                while let Some(node) = unsafe { cur.as_ref() } {
                    entries += 1;
                    cur = node.next.load(Ordering::Acquire, guard);
                }
                (entries, entries)
            }
            BucketArray::Open(heads) => {
                let mut entries = 0;
                let mut groups = 0;
                let mut cur = heads[idx].load(Ordering::Acquire, guard);
                while let Some(g) = unsafe { cur.as_ref() } {
                    entries += g.len as u64;
                    groups += 1;
                    cur = g.next.load(Ordering::Acquire, guard);
                }
                (entries, groups)
            }
        }
    }

    /// Bucket occupancy histogram over *entries*: `[empty, 1, 2, 3+]`
    /// (the §6.5 hash table discussion).
    pub fn occupancy(&self) -> [u64; 4] {
        let guard = epoch::pin();
        let mut h = [0u64; 4];
        for idx in 0..=self.mask {
            let (entries, _) = self.bucket_census(idx, &guard);
            h[(entries as usize).min(3)] += 1;
        }
        h
    }

    /// Exact footprint of this table's layout: nodes, groups, and
    /// entries are counted by walking every bucket, not estimated from
    /// the entry counter.
    pub fn footprint(&self) -> DlhtFootprint {
        let guard = epoch::pin();
        let mut entries = 0;
        let mut blocks = 0;
        for idx in 0..=self.mask {
            let (e, b) = self.bucket_census(idx, &guard);
            entries += e;
            blocks += b;
        }
        let open = self.is_open_addressed();
        DlhtFootprint {
            buckets: self.mask + 1,
            bucket_bytes: std::mem::size_of::<Atomic<Node>>(),
            nodes: if open { 0 } else { blocks },
            node_bytes: std::mem::size_of::<Node>(),
            groups: if open { blocks } else { 0 },
            group_bytes: std::mem::size_of::<Group>(),
            entries,
            lock_bytes: self
                .locks
                .as_ref()
                .map_or(0, |l| l.len() * std::mem::size_of::<RwLock<()>>()),
        }
    }

    /// Memory footprint in bytes (space-overhead reporting).
    pub fn approx_bytes(&self) -> usize {
        self.footprint().total_bytes()
    }
}

impl Drop for Dlht {
    fn drop(&mut self) {
        // &mut self: the table is unreachable; free blocks directly.
        unsafe {
            let guard = epoch::unprotected();
            match &self.buckets {
                BucketArray::Chained(heads) => {
                    for bucket in heads.iter() {
                        let mut cur = bucket.swap(Shared::null(), Ordering::AcqRel, guard);
                        while !cur.is_null() {
                            let owned = cur.into_owned();
                            cur = owned.next.load(Ordering::Relaxed, guard);
                            drop(owned);
                        }
                    }
                }
                BucketArray::Open(heads) => {
                    for bucket in heads.iter() {
                        let mut cur = bucket.swap(Shared::null(), Ordering::AcqRel, guard);
                        while !cur.is_null() {
                            let owned = cur.into_owned();
                            cur = owned.next.load(Ordering::Relaxed, guard);
                            drop(owned);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dentry::{DentryState, NegKind};
    use crate::HashKey;

    fn dentry(id: u64) -> Arc<Dentry> {
        Dentry::new(id, 1, "n", None, DentryState::Negative(NegKind::Enoent), 0)
    }

    /// Both layouts, same lockfree mode — every behavioral test runs
    /// against each.
    fn both_layouts(buckets: usize) -> [Arc<Dlht>; 2] {
        [
            Dlht::new_with_layout(0, buckets, true, true),
            Dlht::new_with_layout(0, buckets, true, false),
        ]
    }

    #[test]
    fn insert_lookup_remove_cycle() {
        let key = HashKey::from_seed(1);
        for t in both_layouts(1 << 8) {
            let d = dentry(1);
            let sig = key.hash_components([b"etc".as_slice(), b"passwd".as_slice()]);
            t.insert_raw(sig, &d);
            assert_eq!(t.lookup(&sig).unwrap().id(), 1);
            assert_eq!(t.len(), 1);
            t.remove_raw(&sig, d.id());
            assert!(t.lookup(&sig).is_none());
            assert_eq!(t.len(), 0);
        }
    }

    #[test]
    fn same_signature_reinsert_does_not_duplicate() {
        let key = HashKey::from_seed(2);
        for t in both_layouts(1 << 8) {
            let d = dentry(1);
            let sig = key.hash_components([b"a".as_slice()]);
            t.insert_raw(sig, &d);
            t.insert_raw(sig, &d);
            assert_eq!(t.len(), 1);
            assert_eq!(t.lookup(&sig).unwrap().id(), 1);
        }
    }

    #[test]
    fn dead_dentries_are_not_returned() {
        let key = HashKey::from_seed(3);
        for t in both_layouts(1 << 8) {
            let d = dentry(1);
            let sig = key.hash_components([b"x".as_slice()]);
            t.insert_raw(sig, &d);
            d.set_flag(crate::dentry::FLAG_DEAD);
            assert!(t.lookup(&sig).is_none());
            d.clear_flag(crate::dentry::FLAG_DEAD);
        }
    }

    #[test]
    fn dropped_dentries_vanish() {
        let key = HashKey::from_seed(4);
        for t in both_layouts(1 << 8) {
            let sig = key.hash_components([b"gone".as_slice()]);
            {
                let d = dentry(9);
                t.insert_raw(sig, &d);
            } // d dropped; weak can no longer upgrade
            assert!(t.lookup(&sig).is_none());
        }
    }

    #[test]
    fn distinct_signatures_coexist_in_shared_buckets() {
        let key = HashKey::from_seed(5);
        for t in both_layouts(1 << 4) {
            // tiny table to force bucket sharing and overflow groups
            let dentries: Vec<_> = (0..64).map(dentry).collect();
            let sigs: Vec<_> = (0..64)
                .map(|i| key.hash_components([format!("f{i}").as_bytes()]))
                .collect();
            for (d, s) in dentries.iter().zip(&sigs) {
                t.insert_raw(*s, d);
            }
            for (d, s) in dentries.iter().zip(&sigs) {
                assert_eq!(t.lookup(s).unwrap().id(), d.id());
            }
            assert_eq!(t.len(), 64);
            let occ = t.occupancy();
            assert_eq!(occ.iter().sum::<u64>(), 16);
        }
    }

    #[test]
    fn overflow_groups_preserve_every_entry() {
        // 64 entries over 4 buckets: every bucket needs multiple groups
        // (4 slots each). Entries must survive interleaved removal.
        let key = HashKey::from_seed(55);
        let t = Dlht::new(0, 1 << 2);
        let dentries: Vec<_> = (0..64).map(dentry).collect();
        let sigs: Vec<_> = (0..64)
            .map(|i| key.hash_components([format!("ov{i}").as_bytes()]))
            .collect();
        for (d, s) in dentries.iter().zip(&sigs) {
            t.insert_raw(*s, d);
        }
        let fp = t.footprint();
        assert_eq!(fp.entries, 64);
        assert!(fp.groups > 16, "4 buckets x 4 slots must overflow");
        // Remove every other entry; the rest must remain reachable.
        for i in (0..64).step_by(2) {
            t.remove_raw(&sigs[i], dentries[i].id());
        }
        for i in 0..64 {
            if i % 2 == 0 {
                assert!(t.lookup(&sigs[i]).is_none());
            } else {
                assert_eq!(t.lookup(&sigs[i]).unwrap().id(), dentries[i].id());
            }
        }
        assert_eq!(t.len(), 32);
        assert_eq!(t.footprint().entries, 32);
    }

    #[test]
    fn locked_mode_behaves_identically() {
        let key = HashKey::from_seed(6);
        for open in [true, false] {
            let t = Dlht::new_with_layout(0, 1 << 8, false, open);
            let d = dentry(1);
            let sig = key.hash_components([b"ab".as_slice()]);
            t.insert_raw(sig, &d);
            assert_eq!(t.lookup(&sig).unwrap().id(), 1);
            t.remove_raw(&sig, d.id());
            assert!(t.lookup(&sig).is_none());
            assert!(t.footprint().lock_bytes > 0);
        }
    }

    #[test]
    fn footprint_counts_real_blocks() {
        let key = HashKey::from_seed(7);
        // Open layout: groups are walked, nodes are zero.
        let t = Dlht::new(0, 1 << 4);
        let held: Vec<_> = (0..10u64).map(dentry).collect();
        for (i, d) in held.iter().enumerate() {
            t.insert_raw(key.hash_components([format!("f{i}").as_bytes()]), d);
        }
        let fp = t.footprint();
        assert_eq!(fp.entries, 10);
        assert_eq!(fp.nodes, 0);
        assert!(fp.groups > 0 && fp.groups <= 10);
        assert_eq!(fp.buckets, 16);
        assert_eq!(fp.group_bytes, 192);
        assert_eq!(fp.lock_bytes, 0);
        assert_eq!(
            fp.total_bytes(),
            16 * fp.bucket_bytes + fp.groups as usize * fp.group_bytes
        );
        assert_eq!(fp.reclaimable_bytes(), fp.groups * fp.group_bytes as u64);
        assert_eq!(t.approx_bytes(), fp.total_bytes());
        // Chained layout: nodes are walked, groups are zero.
        let t = Dlht::new_with_layout(0, 1 << 4, true, false);
        for (i, d) in held.iter().enumerate() {
            t.insert_raw(key.hash_components([format!("f{i}").as_bytes()]), d);
        }
        let fp = t.footprint();
        assert_eq!(fp.nodes, 10);
        assert_eq!(fp.entries, 10);
        assert_eq!(fp.groups, 0);
        assert_eq!(fp.total_bytes(), 16 * fp.bucket_bytes + 10 * fp.node_bytes);
        assert_eq!(fp.reclaimable_bytes(), 10 * fp.node_bytes as u64);
    }

    #[test]
    fn concurrent_mutators_and_readers_converge() {
        let key = HashKey::from_seed(8);
        for t in both_layouts(1 << 4) {
            let dentries: Vec<_> = (0..32u64).map(dentry).collect();
            let sigs: Vec<_> = (0..32)
                .map(|i| key.hash_components([format!("s{i}").as_bytes()]))
                .collect();
            std::thread::scope(|s| {
                for chunk in 0..4 {
                    let t = &t;
                    let dentries = &dentries;
                    let sigs = &sigs;
                    s.spawn(move || {
                        for round in 0..200 {
                            for i in (chunk * 8)..(chunk * 8 + 8) {
                                if round % 2 == 0 {
                                    t.insert_raw(sigs[i], &dentries[i]);
                                } else {
                                    t.remove_raw(&sigs[i], dentries[i].id());
                                }
                            }
                        }
                        // End on an insert so the final state is full.
                        for i in (chunk * 8)..(chunk * 8 + 8) {
                            t.insert_raw(sigs[i], &dentries[i]);
                        }
                    });
                }
                for _ in 0..4 {
                    let t = &t;
                    let sigs = &sigs;
                    let dentries = &dentries;
                    s.spawn(move || {
                        for _ in 0..2000 {
                            for (i, sig) in sigs.iter().enumerate() {
                                if let Some(d) = t.lookup(sig) {
                                    assert_eq!(d.id(), dentries[i].id());
                                }
                            }
                        }
                    });
                }
            });
            for (i, sig) in sigs.iter().enumerate() {
                assert_eq!(t.lookup(sig).unwrap().id(), dentries[i].id());
            }
            assert_eq!(t.len(), 32);
        }
    }
}
