//! The Direct Lookup Hash Table (§3.1, §3.3) — lock-free read side.
//!
//! The table is an array of epoch-protected chains: each bucket head is
//! an atomic pointer to an immutable singly-linked node list. `lookup`
//! pins the epoch and traverses without any lock — the RCU-analog probe
//! the paper's flat Figure 8 read scaling depends on. Mutators rebuild
//! the affected chain as fresh nodes, publish it with one CAS on the
//! bucket head, and retire the replaced nodes through the epoch
//! collector (`defer_destroy`); a failed CAS frees the speculative chain
//! and retries against the new head. ABA is impossible while pinned:
//! a retired node's address cannot be reused until every guard that
//! could have observed it unpins.
//!
//! `Dlht::new_with_mode(.., lockfree: false)` keeps the same structure
//! but routes readers and writers through per-bucket `RwLock`s — the
//! pre-refactor locking discipline, preserved as the measurable "before"
//! column of the Figure 8 thread-scaling comparison.

use crate::dentry::Dentry;
use crate::dsync::{AtomicU64, Ordering};
use crossbeam_epoch::{self as epoch, Atomic, Owned, Shared};
use parking_lot::RwLock;
use std::sync::{Arc, Weak};

/// One immutable chain node: the 240-bit signature lanes + a weak dentry
/// ref + the next pointer. Published nodes are never mutated; `next` is
/// atomic only so chains can be assembled and traversed under the epoch
/// API.
struct Node {
    sig: [u64; 4],
    dentry: Weak<Dentry>,
    next: Atomic<Node>,
}

/// Exact per-layout sizes for space-overhead reporting (`repro space`).
#[derive(Debug, Clone, Copy, Default)]
pub struct DlhtFootprint {
    /// Bucket heads allocated.
    pub buckets: usize,
    /// Bytes per bucket head (one atomic pointer).
    pub bucket_bytes: usize,
    /// Live chain nodes (walked, not estimated).
    pub nodes: u64,
    /// Bytes per chain node.
    pub node_bytes: usize,
    /// Per-bucket reader-writer locks, locked-ablation mode only.
    pub lock_bytes: usize,
}

impl DlhtFootprint {
    /// Total bytes of this layout.
    pub fn total_bytes(&self) -> usize {
        self.buckets * self.bucket_bytes + self.nodes as usize * self.node_bytes + self.lock_bytes
    }
}

/// A system-wide (per mount namespace) hash table mapping full-path
/// signatures directly to dentries.
///
/// - Indexed by the low 16 signature bits; chains compare the remaining
///   240 bits instead of path strings (§3.3).
/// - Lazily populated by slowpath walks; entries are weak, and coherence
///   shootdowns precede any structural change (§3.2).
/// - A dentry lives in at most **one** DLHT under **one** signature at a
///   time — the rule that makes mount aliases and namespaces tractable
///   (§4.3). The membership record lives in the dentry and is maintained
///   by [`crate::Dcache`], which owns the insert/remove protocol; this
///   type only provides the raw chains.
pub struct Dlht {
    /// Namespace id this table serves (diagnostics).
    ns: u64,
    buckets: Box<[Atomic<Node>]>,
    /// Present only in the locked-reads ablation: readers share, writers
    /// exclude, per bucket — the pre-refactor discipline.
    locks: Option<Box<[RwLock<()>]>>,
    mask: usize,
    entries: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Dlht {
    /// A lock-free table with `buckets` chains (power of two ≤ 2^16).
    pub fn new(ns: u64, buckets: usize) -> Arc<Dlht> {
        Self::new_with_mode(ns, buckets, true)
    }

    /// A table with the read side lock-free (`lockfree`) or routed
    /// through per-bucket locks (the ablation's "before" column).
    pub fn new_with_mode(ns: u64, buckets: usize, lockfree: bool) -> Arc<Dlht> {
        assert!(buckets.is_power_of_two() && buckets <= (1 << 16));
        Arc::new(Dlht {
            ns,
            buckets: (0..buckets).map(|_| Atomic::null()).collect(),
            locks: (!lockfree).then(|| (0..buckets).map(|_| RwLock::new(())).collect()),
            mask: buckets - 1,
            entries: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The namespace this table serves.
    pub fn ns(&self) -> u64 {
        self.ns
    }

    fn bucket_index(&self, sig: &crate::Signature) -> usize {
        sig.bucket_index_for(self.mask + 1)
    }

    /// Looks up a dentry by signature (the fastpath's first step).
    /// Lock-free: pins the epoch and traverses the immutable chain.
    pub fn lookup(&self, sig: &crate::Signature) -> Option<Arc<Dentry>> {
        let idx = self.bucket_index(sig);
        let _shared = self.locks.as_ref().map(|l| l[idx].read());
        let want = sig.sig240();
        let guard = epoch::pin();
        let mut cur = self.buckets[idx].load(Ordering::Acquire, &guard);
        while let Some(node) = unsafe { cur.as_ref() } {
            if node.sig == want {
                if let Some(d) = node.dentry.upgrade() {
                    if !d.is_dead() {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Some(d);
                    }
                }
            }
            cur = node.next.load(Ordering::Acquire, &guard);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Assembles a fresh chain from `items` (front to back), returning
    /// the head (null for an empty list). Nodes are unpublished until
    /// the caller's CAS succeeds.
    fn build_chain<'g>(
        items: Vec<([u64; 4], Weak<Dentry>)>,
        guard: &'g epoch::Guard,
    ) -> Shared<'g, Node> {
        let mut head = Shared::null();
        for (sig, dentry) in items.into_iter().rev() {
            let node = Owned::new(Node {
                sig,
                dentry,
                next: Atomic::null(),
            });
            node.next.store(head, Ordering::Relaxed);
            head = node.into_shared(guard);
        }
        head
    }

    /// Frees an unpublished speculative chain after a failed CAS.
    fn drop_unpublished<'g>(mut head: Shared<'g, Node>, guard: &'g epoch::Guard) {
        while !head.is_null() {
            // Safety: these nodes were never published; we are the only
            // owner.
            let owned = unsafe { head.into_owned() };
            head = owned.next.load(Ordering::Relaxed, guard);
            drop(owned);
        }
    }

    /// Retires every node of a replaced (published) chain.
    fn retire_chain<'g>(mut head: Shared<'g, Node>, guard: &'g epoch::Guard) {
        while let Some(node) = unsafe { head.as_ref() } {
            let next = node.next.load(Ordering::Acquire, guard);
            // Safety: the chain was unlinked by a successful CAS; readers
            // still traversing it are protected by their own guards.
            unsafe { guard.defer_destroy(head) };
            head = next;
        }
    }

    /// Raw chain insert. The caller (the dcache) holds the dentry's
    /// membership lock and has already removed any previous entry.
    pub(crate) fn insert_raw(&self, sig: crate::Signature, dentry: &Arc<Dentry>) {
        let idx = self.bucket_index(&sig);
        let _excl = self.locks.as_ref().map(|l| l[idx].write());
        let want = sig.sig240();
        let guard = epoch::pin();
        loop {
            let head = self.buckets[idx].load(Ordering::Acquire, &guard);
            // Copy the chain, replacing dead or duplicate entries under
            // the same signature.
            let mut kept: Vec<([u64; 4], Weak<Dentry>)> = Vec::new();
            let mut pruned = 0u64;
            let mut cur = head;
            while let Some(node) = unsafe { cur.as_ref() } {
                let keep = node.sig != want
                    || node
                        .dentry
                        .upgrade()
                        .is_some_and(|d| !d.is_dead() && d.id() != dentry.id());
                if keep {
                    kept.push((node.sig, node.dentry.clone()));
                } else {
                    pruned += 1;
                }
                cur = node.next.load(Ordering::Acquire, &guard);
            }
            kept.push((want, Arc::downgrade(dentry)));
            let fresh = Self::build_chain(kept, &guard);
            match self.buckets[idx].compare_exchange(
                head,
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(_) => {
                    Self::retire_chain(head, &guard);
                    if pruned == 0 {
                        self.entries.fetch_add(1, Ordering::Relaxed);
                    }
                    return;
                }
                Err(_) => Self::drop_unpublished(fresh, &guard),
            }
        }
    }

    /// Raw chain removal by signature + dentry id.
    pub(crate) fn remove_raw(&self, sig: &crate::Signature, id: crate::DentryId) {
        let idx = self.bucket_index(sig);
        let _excl = self.locks.as_ref().map(|l| l[idx].write());
        let want = sig.sig240();
        let guard = epoch::pin();
        loop {
            let head = self.buckets[idx].load(Ordering::Acquire, &guard);
            let mut kept: Vec<([u64; 4], Weak<Dentry>)> = Vec::new();
            let mut removed = 0u64;
            let mut cur = head;
            while let Some(node) = unsafe { cur.as_ref() } {
                let keep = if node.sig != want {
                    true
                } else {
                    match node.dentry.upgrade() {
                        Some(d) => d.id() != id,
                        None => false, // prune dead weak entries opportunistically
                    }
                };
                if keep {
                    kept.push((node.sig, node.dentry.clone()));
                } else {
                    removed += 1;
                }
                cur = node.next.load(Ordering::Acquire, &guard);
            }
            if removed == 0 {
                return;
            }
            let fresh = Self::build_chain(kept, &guard);
            match self.buckets[idx].compare_exchange(
                head,
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(_) => {
                    Self::retire_chain(head, &guard);
                    self.entries.fetch_sub(removed, Ordering::Relaxed);
                    return;
                }
                Err(_) => Self::drop_unpublished(fresh, &guard),
            }
        }
    }

    /// Approximate number of live entries.
    pub fn len(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters.
    pub fn hit_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn chain_len(&self, idx: usize, guard: &epoch::Guard) -> u64 {
        let mut n = 0;
        let mut cur = self.buckets[idx].load(Ordering::Acquire, guard);
        while let Some(node) = unsafe { cur.as_ref() } {
            n += 1;
            cur = node.next.load(Ordering::Acquire, guard);
        }
        n
    }

    /// Bucket occupancy histogram: `[empty, 1, 2, 3+]` (the §6.5 hash
    /// table discussion).
    pub fn occupancy(&self) -> [u64; 4] {
        let guard = epoch::pin();
        let mut h = [0u64; 4];
        for idx in 0..self.buckets.len() {
            let n = self.chain_len(idx, &guard);
            h[(n as usize).min(3)] += 1;
        }
        h
    }

    /// Exact footprint of this table's layout: the nodes are counted by
    /// walking every chain, not estimated from the entry counter.
    pub fn footprint(&self) -> DlhtFootprint {
        let guard = epoch::pin();
        let nodes = (0..self.buckets.len())
            .map(|idx| self.chain_len(idx, &guard))
            .sum();
        DlhtFootprint {
            buckets: self.buckets.len(),
            bucket_bytes: std::mem::size_of::<Atomic<Node>>(),
            nodes,
            node_bytes: std::mem::size_of::<Node>(),
            lock_bytes: self
                .locks
                .as_ref()
                .map_or(0, |l| l.len() * std::mem::size_of::<RwLock<()>>()),
        }
    }

    /// Memory footprint in bytes (space-overhead reporting).
    pub fn approx_bytes(&self) -> usize {
        self.footprint().total_bytes()
    }
}

impl Drop for Dlht {
    fn drop(&mut self) {
        // &mut self: the table is unreachable; free chains directly.
        unsafe {
            let guard = epoch::unprotected();
            for bucket in self.buckets.iter() {
                let mut cur = bucket.swap(Shared::null(), Ordering::AcqRel, guard);
                while !cur.is_null() {
                    let owned = cur.into_owned();
                    cur = owned.next.load(Ordering::Relaxed, guard);
                    drop(owned);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dentry::{DentryState, NegKind};
    use crate::HashKey;

    fn dentry(id: u64) -> Arc<Dentry> {
        Dentry::new(id, 1, "n", None, DentryState::Negative(NegKind::Enoent), 0)
    }

    #[test]
    fn insert_lookup_remove_cycle() {
        let key = HashKey::from_seed(1);
        let t = Dlht::new(0, 1 << 8);
        let d = dentry(1);
        let sig = key.hash_components([b"etc".as_slice(), b"passwd".as_slice()]);
        t.insert_raw(sig, &d);
        assert_eq!(t.lookup(&sig).unwrap().id(), 1);
        assert_eq!(t.len(), 1);
        t.remove_raw(&sig, d.id());
        assert!(t.lookup(&sig).is_none());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn same_signature_reinsert_does_not_duplicate() {
        let key = HashKey::from_seed(2);
        let t = Dlht::new(0, 1 << 8);
        let d = dentry(1);
        let sig = key.hash_components([b"a".as_slice()]);
        t.insert_raw(sig, &d);
        t.insert_raw(sig, &d);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&sig).unwrap().id(), 1);
    }

    #[test]
    fn dead_dentries_are_not_returned() {
        let key = HashKey::from_seed(3);
        let t = Dlht::new(0, 1 << 8);
        let d = dentry(1);
        let sig = key.hash_components([b"x".as_slice()]);
        t.insert_raw(sig, &d);
        d.set_flag(crate::dentry::FLAG_DEAD);
        assert!(t.lookup(&sig).is_none());
    }

    #[test]
    fn dropped_dentries_vanish() {
        let key = HashKey::from_seed(4);
        let t = Dlht::new(0, 1 << 8);
        let sig = key.hash_components([b"gone".as_slice()]);
        {
            let d = dentry(9);
            t.insert_raw(sig, &d);
        } // d dropped; weak can no longer upgrade
        assert!(t.lookup(&sig).is_none());
    }

    #[test]
    fn distinct_signatures_coexist_in_shared_chains() {
        let key = HashKey::from_seed(5);
        let t = Dlht::new(0, 1 << 4); // tiny table to force chain sharing
        let dentries: Vec<_> = (0..64).map(dentry).collect();
        let sigs: Vec<_> = (0..64)
            .map(|i| key.hash_components([format!("f{i}").as_bytes()]))
            .collect();
        for (d, s) in dentries.iter().zip(&sigs) {
            t.insert_raw(*s, d);
        }
        for (d, s) in dentries.iter().zip(&sigs) {
            assert_eq!(t.lookup(s).unwrap().id(), d.id());
        }
        assert_eq!(t.len(), 64);
        let occ = t.occupancy();
        assert_eq!(occ.iter().sum::<u64>(), 16);
    }

    #[test]
    fn locked_mode_behaves_identically() {
        let key = HashKey::from_seed(6);
        let t = Dlht::new_with_mode(0, 1 << 8, false);
        let d = dentry(1);
        let sig = key.hash_components([b"ab".as_slice()]);
        t.insert_raw(sig, &d);
        assert_eq!(t.lookup(&sig).unwrap().id(), 1);
        t.remove_raw(&sig, d.id());
        assert!(t.lookup(&sig).is_none());
        assert!(t.footprint().lock_bytes > 0);
    }

    #[test]
    fn footprint_counts_real_nodes() {
        let key = HashKey::from_seed(7);
        let t = Dlht::new(0, 1 << 4);
        for (i, d) in (0..10u64).map(dentry).enumerate() {
            t.insert_raw(key.hash_components([format!("f{i}").as_bytes()]), &d);
            std::mem::forget(d); // keep weak refs upgradeable
        }
        let fp = t.footprint();
        assert_eq!(fp.nodes, 10);
        assert_eq!(fp.buckets, 16);
        assert!(fp.bucket_bytes > 0 && fp.node_bytes > 0);
        assert_eq!(fp.lock_bytes, 0);
        assert_eq!(fp.total_bytes(), 16 * fp.bucket_bytes + 10 * fp.node_bytes);
        assert_eq!(t.approx_bytes(), fp.total_bytes());
    }

    #[test]
    fn concurrent_mutators_and_readers_converge() {
        let key = HashKey::from_seed(8);
        let t = Dlht::new(0, 1 << 4);
        let dentries: Vec<_> = (0..32u64).map(dentry).collect();
        let sigs: Vec<_> = (0..32)
            .map(|i| key.hash_components([format!("s{i}").as_bytes()]))
            .collect();
        std::thread::scope(|s| {
            for chunk in 0..4 {
                let t = &t;
                let dentries = &dentries;
                let sigs = &sigs;
                s.spawn(move || {
                    for round in 0..200 {
                        for i in (chunk * 8)..(chunk * 8 + 8) {
                            if round % 2 == 0 {
                                t.insert_raw(sigs[i], &dentries[i]);
                            } else {
                                t.remove_raw(&sigs[i], dentries[i].id());
                            }
                        }
                    }
                    // End on an insert so the final state is full.
                    for i in (chunk * 8)..(chunk * 8 + 8) {
                        t.insert_raw(sigs[i], &dentries[i]);
                    }
                });
            }
            for _ in 0..4 {
                let t = &t;
                let sigs = &sigs;
                let dentries = &dentries;
                s.spawn(move || {
                    for _ in 0..2000 {
                        for (i, sig) in sigs.iter().enumerate() {
                            if let Some(d) = t.lookup(sig) {
                                assert_eq!(d.id(), dentries[i].id());
                            }
                        }
                    }
                });
            }
        });
        for (i, sig) in sigs.iter().enumerate() {
            assert_eq!(t.lookup(sig).unwrap().id(), dentries[i].id());
        }
        assert_eq!(t.len(), 32);
    }
}
