//! Memory-budget admission control for serving tiers.
//!
//! The PR-4 shrinker machinery ([`crate::ShrinkerRegistry`],
//! [`crate::Dcache::shrink_to_bytes`]) reclaims cache memory once asked;
//! what a front-end still needs is the *asking* policy: notice that the
//! cache footprint has outgrown its budget, shed new work with a typed
//! `EAGAIN`-style rejection instead of queueing it, and re-open once
//! reclaim has brought the footprint back down.
//!
//! [`MemoryGate`] packages that policy:
//!
//! - **Hysteresis.** The gate trips when the sampled footprint exceeds
//!   `budget` and re-opens only once it falls to `low_water`
//!   (⅞ · budget by default), so a footprint hovering at the budget
//!   does not flap admit/reject on every batch.
//! - **Sampled probing.** Computing the footprint
//!   ([`crate::Dcache::reclaimable_bytes`] walks DLHT footprints and PCC
//!   byte counts) is too expensive per admission. While open, the gate
//!   probes once every `sample_every` admissions; while tripped it
//!   probes on every call, because re-opening promptly matters more
//!   than probe cost when work is already being shed.
//! - **Trip edge detection.** Exactly one caller observes
//!   [`Verdict::Shed`] with `just_tripped == true` per trip, making it
//!   the natural place to trigger `Kernel::memory_pressure` without a
//!   thundering herd of shrink calls.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Outcome of [`MemoryGate::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The work may proceed.
    Admit,
    /// The memory budget is tripped: shed this work with a typed
    /// overload error. `just_tripped` is true for exactly one caller
    /// per open→tripped transition — that caller should kick reclaim.
    Shed { just_tripped: bool },
}

impl Verdict {
    /// Convenience predicate for callers that do not care about edges.
    pub fn admitted(self) -> bool {
        matches!(self, Verdict::Admit)
    }
}

/// Hysteretic memory-budget gate (see module docs).
///
/// All methods are lock-free and callable concurrently; the worst race
/// outcome is one extra footprint probe or one batch admitted/shed on
/// the stale side of a transition, both benign.
#[derive(Debug)]
pub struct MemoryGate {
    budget: u64,
    low_water: u64,
    sample_every: u64,
    tripped: AtomicBool,
    calls: AtomicU64,
    trips: AtomicU64,
}

impl MemoryGate {
    /// Default re-open threshold as a fraction of the budget (⅞).
    fn default_low_water(budget: u64) -> u64 {
        budget - budget / 8
    }

    /// Gate with `budget` bytes, ⅞-budget low water, probing every 64
    /// admissions while open.
    pub fn new(budget: u64) -> MemoryGate {
        MemoryGate::with_params(budget, MemoryGate::default_low_water(budget), 64)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics if `low_water > budget` or `sample_every == 0`.
    pub fn with_params(budget: u64, low_water: u64, sample_every: u64) -> MemoryGate {
        assert!(low_water <= budget, "low water above budget");
        assert!(sample_every > 0, "sample_every must be nonzero");
        MemoryGate {
            budget,
            low_water,
            sample_every,
            tripped: AtomicBool::new(false),
            calls: AtomicU64::new(0),
            trips: AtomicU64::new(0),
        }
    }

    /// The configured budget in bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The re-open threshold in bytes.
    pub fn low_water(&self) -> u64 {
        self.low_water
    }

    /// Whether the gate is currently shedding load.
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Acquire)
    }

    /// Open→tripped transitions so far.
    pub fn trip_count(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Decides admission for one unit of work, probing the footprint via
    /// `footprint` (bytes) according to the sampling policy above.
    pub fn admit(&self, footprint: impl FnOnce() -> u64) -> Verdict {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.tripped.load(Ordering::Acquire) {
            // Tripped: probe every call so recovery is prompt.
            if footprint() <= self.low_water {
                self.tripped.store(false, Ordering::Release);
                return Verdict::Admit;
            }
            return Verdict::Shed {
                just_tripped: false,
            };
        }
        if !call.is_multiple_of(self.sample_every) {
            return Verdict::Admit;
        }
        if footprint() > self.budget {
            let just_tripped = !self.tripped.swap(true, Ordering::AcqRel);
            if just_tripped {
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
            return Verdict::Shed { just_tripped };
        }
        Verdict::Admit
    }

    /// Resets the gate to open and zeroes its counters.
    pub fn reset(&self) {
        self.tripped.store(false, Ordering::Release);
        self.calls.store(0, Ordering::Relaxed);
        self.trips.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn admits_under_budget() {
        let gate = MemoryGate::with_params(1000, 875, 1);
        for _ in 0..100 {
            assert_eq!(gate.admit(|| 500), Verdict::Admit);
        }
        assert!(!gate.is_tripped());
        assert_eq!(gate.trip_count(), 0);
    }

    #[test]
    fn trips_once_and_sheds_until_low_water() {
        let gate = MemoryGate::with_params(1000, 875, 1);
        assert_eq!(gate.admit(|| 1500), Verdict::Shed { just_tripped: true });
        // Subsequent calls shed without re-reporting the edge.
        assert_eq!(
            gate.admit(|| 1500),
            Verdict::Shed {
                just_tripped: false
            }
        );
        // Still above low water: keep shedding even though below budget.
        assert_eq!(
            gate.admit(|| 900),
            Verdict::Shed {
                just_tripped: false
            }
        );
        // At low water: re-open and admit this very call.
        assert_eq!(gate.admit(|| 875), Verdict::Admit);
        assert!(!gate.is_tripped());
        assert_eq!(gate.trip_count(), 1);
    }

    #[test]
    fn probes_are_sampled_while_open() {
        let gate = MemoryGate::with_params(1000, 875, 8);
        let probes = AtomicU64::new(0);
        for _ in 0..64 {
            gate.admit(|| {
                probes.fetch_add(1, Ordering::Relaxed);
                0
            });
        }
        assert_eq!(probes.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn probes_every_call_while_tripped() {
        let gate = MemoryGate::with_params(1000, 875, 64);
        assert!(!gate.admit(|| 2000).admitted()); // call 0 samples, trips
        let probes = AtomicU64::new(0);
        for _ in 0..10 {
            gate.admit(|| {
                probes.fetch_add(1, Ordering::Relaxed);
                2000
            });
        }
        assert_eq!(probes.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn reset_reopens() {
        let gate = MemoryGate::with_params(1000, 875, 1);
        assert!(!gate.admit(|| 2000).admitted());
        assert!(gate.is_tripped());
        gate.reset();
        assert!(!gate.is_tripped());
        assert_eq!(gate.trip_count(), 0);
        assert!(gate.admit(|| 0).admitted());
    }

    #[test]
    fn default_low_water_is_seven_eighths() {
        let gate = MemoryGate::new(1 << 20);
        assert_eq!(gate.low_water(), (1 << 20) - (1 << 17));
    }
}
