//! Source switch for the atomics used by the lock-free read-path
//! protocols (seqlock, DLHT, PCC, dentry seq counters).
//!
//! Default build: plain re-exports of `std::sync::atomic` and
//! `std::hint::spin_loop` — zero overhead, identical semantics. With the
//! `dst` cargo feature the same names come from the `dst` sync facade:
//! inside a deterministic-schedule model execution every operation is a
//! scheduling point (and spin hints deprioritize the spinner), while
//! outside one the facade forwards to std, so enabling the feature does
//! not change the behavior of ordinary tests.
//!
//! Only protocol state routes through here. Statistics counters
//! (`stats.rs`, `cache.rs`, `lru.rs`) stay on `std::sync::atomic`: they
//! order nothing, and instrumenting them would multiply scheduling
//! points without adding any explorable interleaving of interest.

#[cfg(feature = "dst")]
pub use dst::hint::spin_loop;
#[cfg(feature = "dst")]
pub use dst::sync::atomic::{fence, AtomicU32, AtomicU64};

#[cfg(not(feature = "dst"))]
pub use std::hint::spin_loop;
#[cfg(not(feature = "dst"))]
pub use std::sync::atomic::{fence, AtomicU32, AtomicU64};

pub use std::sync::atomic::Ordering;
