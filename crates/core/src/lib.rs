//! The optimized directory cache — the primary contribution of
//! *How to Get More Value From Your File System Directory Cache* (SOSP '15).
//!
//! This crate contains the data structures and coherence machinery the
//! paper adds to (and around) a Linux-style dcache:
//!
//! | Paper concept | Here |
//! |---|---|
//! | `dentry` + hierarchy + per-parent hash index | [`Dentry`], [`DentryState`] |
//! | Direct Lookup Hash Table (DLHT), §3.1 | [`Dlht`] |
//! | Prefix Check Cache (PCC), §3.1 | [`Pcc`] |
//! | 240-bit path signatures, §3.3 | re-exported from `dc-sighash` |
//! | Coherence: per-dentry `seq`, global `invalidation` counter, `rename_lock`, subtree shootdowns, §3.2 | [`Dcache`], [`SeqLock`] |
//! | Directory completeness (`DIR_COMPLETE`), §5.1 | dentry flags + [`Dcache`] helpers |
//! | Negative and deep-negative dentries, §5.2 | [`DentryState::Negative`], [`NegKind`] |
//! | LRU + bottom-up eviction | [`Dcache::shrink`], [`Dcache::drop_unused`] |
//! | Memory-pressure reclaim (Linux shrinker analog) | [`Shrinker`], [`ShrinkerRegistry`], [`Dcache::shrink_to_bytes`] |
//! | Feature toggles (baseline ⇄ optimized ⇄ ablations) | [`DcacheConfig`] |
//!
//! The *policy* of when to walk which path lives in `dc-vfs`; this crate is
//! the mechanism layer and is deliberately independent of path-walk logic
//! so the same structures serve both the baseline (component-at-a-time)
//! and optimized (single-hash-lookup) walkers.

pub mod admission;
pub mod batch;
mod cache;
mod config;
mod dentry;
mod dlht;
pub mod dsync;
pub mod fasthash;
mod inode;
mod lru;
#[cfg(feature = "dst")]
pub mod model;
mod pcc;
mod seqlock;
mod shrinker;
pub mod snapslab;
mod stats;

pub use admission::{MemoryGate, Verdict};
pub use batch::{batch_pin_active, BatchPin};
pub use cache::{Dcache, NsId};
pub use config::DcacheConfig;
pub use dentry::{Dentry, DentryId, DentryState, NegKind, FLAG_DIR_COMPLETE};
pub use dlht::{Dlht, DlhtFootprint};
pub use inode::{Inode, SbId};
pub use lru::EvictOutcome;
pub use pcc::Pcc;
pub use seqlock::{SeqCell, SeqCount, SeqLock, SeqWriteGuard};
pub use shrinker::{Shrinker, ShrinkerRegistry};
pub use stats::{DcacheStats, SpaceReport};

pub use dc_sighash::{HashKey, HashState, Signature};
