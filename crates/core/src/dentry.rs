//! Dentries: cached path components, positive / negative / partial.

use crate::dsync::{AtomicU32, AtomicU64, Ordering};
use crate::fasthash::FastMap;
use crate::inode::{Inode, SbId};
use crossbeam_epoch::{self as epoch, Atomic, Owned, Shared};
use dc_fs::{DirEntry, FileType, FsError};
use dc_sighash::{HashState, Signature};
use parking_lot::{Mutex, RwLock};
use std::sync::{Arc, Weak};

/// Unique, never-reused dentry identity.
///
/// The paper keys the PCC by dentry pointer and detects reallocation with a
/// monotonically increasing initialization counter (§3.1); a 64-bit
/// never-reused id subsumes both and cannot wrap in practice.
pub type DentryId = u64;

/// Flag: every live child of this directory is in the cache (§5.1).
pub const FLAG_DIR_COMPLETE: u32 = 0b0001;
/// Flag: the dentry was unhashed (evicted or dropped); never re-cache it.
pub(crate) const FLAG_DEAD: u32 = 0b0010;
/// Flag: route read accessors through the field locks instead of the
/// epoch-published snapshot (`DcacheConfig::lockfree_reads = false`, the
/// pre-refactor ablation). Set at allocation, never changed.
pub(crate) const FLAG_LOCKED_READS: u32 = 0b0100;
/// Flag: republish snapshots as per-mutation `Box` allocations instead
/// of slab slots (`DcacheConfig::snap_slab = false`, the memory-layout
/// ablation's "before" column). Set at allocation, never changed;
/// provenance is additionally recorded per snapshot, so mixed histories
/// (the first snapshot predates the flag) reclaim correctly.
pub(crate) const FLAG_SNAP_BOXED: u32 = 0b1000;

/// What kind of absence a negative dentry records (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegKind {
    /// The path definitively does not exist → `ENOENT`.
    Enoent,
    /// A non-directory was used as a directory → `ENOTDIR`.
    Enotdir,
}

impl NegKind {
    /// The error a cached hit on this dentry reports.
    pub fn error(self) -> FsError {
        match self {
            NegKind::Enoent => FsError::NoEnt,
            NegKind::Enotdir => FsError::NotDir,
        }
    }
}

/// What a dentry currently maps its path onto.
pub enum DentryState {
    /// A live object with a full in-memory inode.
    Positive(Arc<Inode>),
    /// A cached absence.
    Negative(NegKind),
    /// Known to exist (from a `readdir` record, §5.1) but the full inode
    /// has not been fetched yet.
    Partial {
        /// Inode number reported by readdir.
        ino: u64,
        /// Entry type reported by readdir.
        ftype: FileType,
    },
    /// A cached symlink-traversal step (§4.2): a child of a symlink dentry
    /// redirecting to the real dentry reached through the link.
    SymlinkAlias {
        /// The real dentry the aliased path resolves to.
        target: Arc<Dentry>,
        /// `target.seq()` when the alias was created; a mismatch means the
        /// translation may be stale.
        target_seq: u64,
    },
}

impl std::fmt::Debug for DentryState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DentryState::Positive(i) => write!(f, "Positive(ino={})", i.ino),
            DentryState::Negative(k) => write!(f, "Negative({k:?})"),
            DentryState::Partial { ino, ftype } => {
                write!(f, "Partial(ino={ino}, {ftype:?})")
            }
            DentryState::SymlinkAlias { target, .. } => {
                write!(f, "SymlinkAlias(→ dentry {})", target.id())
            }
        }
    }
}

/// Snapshot mirror of [`DentryState`] published for lock-free readers.
///
/// Dentry references are **weak**: epoch reclamation holds retired
/// snapshots for a grace period, and a strong reference there would
/// distort the `Arc::strong_count`-based eviction protocol
/// (`Dcache::try_evict`). A failed upgrade means the snapshot is stale;
/// readers fall back to the locked field, they never guess.
#[derive(Clone)]
pub(crate) enum SnapState {
    Positive(Arc<Inode>),
    Negative(NegKind),
    // `ino` is deliberately absent: lock-free readers take it from the
    // packed `listing_tag` atomic, not the snapshot.
    Partial {
        ftype: FileType,
    },
    SymlinkAlias {
        target: Weak<Dentry>,
        target_seq: u64,
    },
}

/// The hot dentry fields read during walks, published as one immutable
/// epoch-managed block (DESIGN.md §5). Writers rebuild and swap it after
/// every mutation; readers pin, load, and copy out the field they need —
/// no locks on the read side. Consistency across fields is validated by
/// the per-dentry `seq` counter exactly like the slowpath validates
/// against `rename_lock`.
///
/// Layout (`repr(C)`, DESIGN.md §13): the fields every walk touches —
/// `name`, `parent`, `state` — are packed into the first 64 bytes, so a
/// warm hit's snapshot read is one cache line; `hash_state`/`link_sig`
/// (resume and symlink-chain paths) and the provenance byte follow. The
/// compile-time asserts below pin the contract.
#[repr(C)]
pub(crate) struct DentrySnap {
    pub(crate) name: Arc<str>,
    pub(crate) parent: Option<Weak<Dentry>>,
    pub(crate) state: SnapState,
    pub(crate) hash_state: Option<HashState>,
    pub(crate) link_sig: Option<Signature>,
    /// Where this block's memory came from: the snapshot slab
    /// ([`crate::snapslab`]) or a `Box`. Read by the type-erased epoch
    /// destructor to return the memory to the right place.
    pub(crate) from_slab: bool,
}

// The cache-line contract: everything a warm walk reads from a snapshot
// lives in the first 64 bytes.
const _: () = {
    assert!(std::mem::offset_of!(DentrySnap, name) == 0);
    assert!(
        std::mem::offset_of!(DentrySnap, state) + std::mem::size_of::<SnapState>() <= 64,
        "hot snapshot fields (name/parent/state) must fit one cache line"
    );
};

/// One cached path component.
///
/// Ownership: a parent's `children` map holds the only long-lived strong
/// reference; each child holds a strong reference back to its parent, which
/// upholds the Linux invariant that all ancestors of a cached dentry are
/// cached. Unhashing (removing the child from the parent's map) is what
/// breaks the reference cycle, so every dentry is freed once unhashed and
/// unreferenced. DLHT and LRU hold weak references only.
pub struct Dentry {
    id: DentryId,
    sb: SbId,
    name: RwLock<Arc<str>>,
    parent: RwLock<Option<Arc<Dentry>>>,
    state: RwLock<DentryState>,
    /// Per-parent child index. Keyed by the boot-seeded fast hasher
    /// ([`crate::fasthash`]) instead of SipHash — `d_lookup` is on the
    /// per-component path the fig-3 attribution charges to "table" time.
    children: RwLock<FastMap<Arc<str>, Arc<Dentry>>>,
    /// Version counter: bumped whenever a cached prefix check through this
    /// dentry may have become stale (§3.2). PCC entries store the value
    /// they validated against.
    seq: AtomicU64,
    flags: AtomicU32,
    /// Bumped when any child is evicted to reclaim space; readdir uses it
    /// to detect that a completeness claim was broken mid-scan (§5.1).
    child_evict_gen: AtomicU64,
    /// Bumped on any change to what a listing of this directory would
    /// return (child added/removed, child flipped positive⇄negative).
    children_version: AtomicU64,
    /// Cached listing served while this directory is complete (§5.1) and
    /// the children version has not moved. The paper serves repeats from
    /// the dentry child list; the prebuilt snapshot is the constant-time
    /// equivalent.
    dir_snapshot: Mutex<Option<(u64, Arc<Vec<DirEntry>>)>>,
    /// Resumable signature-hash state for this dentry's canonical path
    /// (§3.1); cleared on rename and recomputed on demand.
    hash_state: Mutex<Option<HashState>>,
    /// Which DLHT holds this dentry, and under what signature (at most
    /// one at a time, §4.3). The table handle is weak: namespace
    /// teardown retires a table by dropping the dcache's reference, and
    /// a retired table must not be resurrected (or kept alive) just to
    /// unlink memberships — an upgrade failure means the whole table
    /// already died with its entries (DESIGN.md §14).
    dlht_entry: Mutex<Option<(Weak<crate::dlht::Dlht>, Signature)>>,
    /// For symlink dentries: the signature of the link target's canonical
    /// path, letting the fastpath chain through links without reading
    /// them (§4.2). Recorded by the slowpath after a successful follow.
    link_sig: Mutex<Option<Signature>>,
    /// Mount id recorded for fastpath mount-flag checks (§4.3).
    mount_hint: AtomicU64,
    /// LRU recency tick.
    last_used: AtomicU64,
    /// Packed listing info maintained alongside `state` so directory
    /// listings can classify children with one atomic load instead of a
    /// lock: `tag(2) | ftype(6) | ino(56)`; tag 0=positive, 1=negative,
    /// 2=partial, 3=other.
    listing_tag: AtomicU64,
    /// Serializes directory mutations and miss-instantiation under this
    /// dentry (the per-dentry `d_lock`/`i_mutex` analog). Never held
    /// across another dentry's `dir_lock` except parent→child under the
    /// global rename lock.
    dir_lock: Mutex<()>,
    /// Epoch-published snapshot of the hot read fields; never null after
    /// construction. See [`DentrySnap`].
    snap: Atomic<DentrySnap>,
    /// Serializes snapshot republication: without it, two racing writers
    /// could publish out of order and leave a stale snapshot installed
    /// after both field mutations landed.
    snap_lock: Mutex<()>,
}

impl Dentry {
    pub(crate) fn new(
        id: DentryId,
        sb: SbId,
        name: &str,
        parent: Option<Arc<Dentry>>,
        state: DentryState,
        seq_init: u64,
    ) -> Arc<Dentry> {
        let d = Arc::new(Dentry {
            id,
            sb,
            name: RwLock::new(Arc::from(name)),
            parent: RwLock::new(parent),
            state: RwLock::new(state),
            children: RwLock::new(FastMap::default()),
            seq: AtomicU64::new(seq_init),
            flags: AtomicU32::new(0),
            child_evict_gen: AtomicU64::new(0),
            children_version: AtomicU64::new(0),
            dir_snapshot: Mutex::new(None),
            hash_state: Mutex::new(None),
            dlht_entry: Mutex::new(None),
            link_sig: Mutex::new(None),
            mount_hint: AtomicU64::new(0),
            last_used: AtomicU64::new(0),
            listing_tag: AtomicU64::new(0),
            dir_lock: Mutex::new(()),
            snap: Atomic::null(),
            snap_lock: Mutex::new(()),
        });
        d.refresh_listing_tag();
        d.republish();
        d
    }

    /// True when this dentry's readers must use the field locks (the
    /// `lockfree_reads = false` ablation).
    #[inline]
    fn locked_reads(&self) -> bool {
        self.flag(FLAG_LOCKED_READS)
    }

    /// Loads the current snapshot under an epoch guard and runs `f`.
    #[inline]
    fn with_snap<R>(&self, f: impl FnOnce(&DentrySnap) -> R) -> R {
        let guard = epoch::pin();
        let shared = self.snap.load(Ordering::Acquire, &guard);
        // Invariant: published before `new` returns, replaced atomically,
        // freed only in Drop — never null while `&self` exists.
        f(unsafe { shared.deref() })
    }

    /// Rebuilds the published snapshot from the locked fields and swaps
    /// it in, retiring the previous block through the epoch collector.
    ///
    /// Every mutation of `name`, `parent`, `state`, `hash_state`, or
    /// `link_sig` calls this before returning (and, in coherence flows,
    /// before the corresponding `bump_seq`), so a reader that observes an
    /// unchanged `seq` across its read saw a current-or-newer snapshot.
    fn republish(&self) {
        let _serialize = self.snap_lock.lock();
        let from_slab = !self.flag(FLAG_SNAP_BOXED);
        let fresh = DentrySnap {
            name: self.name.read().clone(),
            parent: self.parent.read().as_ref().map(Arc::downgrade),
            state: match &*self.state.read() {
                DentryState::Positive(i) => SnapState::Positive(i.clone()),
                DentryState::Negative(k) => SnapState::Negative(*k),
                DentryState::Partial { ftype, .. } => SnapState::Partial { ftype: *ftype },
                DentryState::SymlinkAlias { target, target_seq } => SnapState::SymlinkAlias {
                    target: Arc::downgrade(target),
                    target_seq: *target_seq,
                },
            },
            hash_state: *self.hash_state.lock(),
            link_sig: *self.link_sig.lock(),
            from_slab,
        };
        let guard = epoch::pin();
        let new = if from_slab {
            crate::snapslab::alloc_snap(fresh, &guard)
        } else {
            Owned::new(fresh).into_shared(&guard)
        };
        let old = self.snap.swap(new, Ordering::AcqRel, &guard);
        // Safety: `old` was just unlinked by the swap; provenance-aware
        // retirement frees it to the slab or the heap after the grace
        // period.
        unsafe { crate::snapslab::retire(&guard, old) };
    }

    /// This dentry's unique id.
    pub fn id(&self) -> DentryId {
        self.id
    }

    /// The owning superblock.
    pub fn sb(&self) -> SbId {
        self.sb
    }

    /// Current component name (lock-free unless in the locked ablation).
    pub fn name(&self) -> Arc<str> {
        if self.locked_reads() {
            return self.name.read().clone();
        }
        self.with_snap(|s| s.name.clone())
    }

    /// Parent dentry (`None` for a superblock root).
    pub fn parent(&self) -> Option<Arc<Dentry>> {
        if !self.locked_reads() {
            enum P {
                Root,
                Live(Arc<Dentry>),
                Stale,
            }
            let p = self.with_snap(|s| match &s.parent {
                // `None` in the snapshot means a true root; a failed weak
                // upgrade means the snapshot is stale, never "root".
                None => P::Root,
                Some(w) => match w.upgrade() {
                    Some(parent) => P::Live(parent),
                    None => P::Stale,
                },
            });
            match p {
                P::Root => return None,
                P::Live(parent) => return Some(parent),
                P::Stale => {} // fall back to the locked field
            }
        }
        self.parent.read().clone()
    }

    /// Current version counter.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Invalidates every cached prefix check through this dentry.
    #[inline]
    pub fn bump_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::AcqRel) + 1
    }

    // --- state ---------------------------------------------------------

    /// Runs `f` over the current state.
    pub fn with_state<R>(&self, f: impl FnOnce(&DentryState) -> R) -> R {
        f(&self.state.read())
    }

    /// Replaces the state (unlink→negative, partial→positive, …).
    pub fn set_state(&self, state: DentryState) {
        *self.state.write() = state;
        self.refresh_listing_tag();
        self.republish();
    }

    fn refresh_listing_tag(&self) {
        let packed = match &*self.state.read() {
            DentryState::Positive(i) => {
                let a = i.attr();
                (a.ino & ((1 << 56) - 1)) | ((a.ftype.as_u8() as u64) << 56)
            }
            DentryState::Negative(_) => 1 << 62,
            DentryState::Partial { ino, ftype } => {
                (2 << 62) | (ino & ((1 << 56) - 1)) | ((ftype.as_u8() as u64) << 56)
            }
            DentryState::SymlinkAlias { .. } => 3 << 62,
        };
        self.listing_tag.store(packed, Ordering::Release);
    }

    /// Listing classification with a single atomic load: `Some((ino,
    /// ftype))` for entries a directory listing reports, `None` for
    /// negatives/aliases.
    pub fn listing_entry(&self) -> Option<(u64, FileType)> {
        let packed = self.listing_tag.load(Ordering::Acquire);
        match packed >> 62 {
            0 | 2 => {
                let ino = packed & ((1 << 56) - 1);
                let ftype =
                    FileType::from_u8(((packed >> 56) & 0x3f) as u8).unwrap_or(FileType::Regular);
                Some((ino, ftype))
            }
            _ => None,
        }
    }

    /// The inode, if positive (lock-free).
    pub fn inode(&self) -> Option<Arc<Inode>> {
        if self.locked_reads() {
            return match &*self.state.read() {
                DentryState::Positive(i) => Some(i.clone()),
                _ => None,
            };
        }
        self.with_snap(|s| match &s.state {
            SnapState::Positive(i) => Some(i.clone()),
            _ => None,
        })
    }

    /// True for any negative state (lock-free).
    pub fn is_negative(&self) -> bool {
        if self.locked_reads() {
            return matches!(&*self.state.read(), DentryState::Negative(_));
        }
        self.with_snap(|s| matches!(&s.state, SnapState::Negative(_)))
    }

    /// The negative kind, if negative (lock-free).
    pub fn neg_kind(&self) -> Option<NegKind> {
        if self.locked_reads() {
            return match &*self.state.read() {
                DentryState::Negative(k) => Some(*k),
                _ => None,
            };
        }
        self.with_snap(|s| match &s.state {
            SnapState::Negative(k) => Some(*k),
            _ => None,
        })
    }

    /// True when readdir reported this entry but the inode has not been
    /// instantiated yet — one atomic load off the listing tag.
    pub fn is_partial(&self) -> bool {
        self.listing_tag.load(Ordering::Acquire) >> 62 == 2
    }

    /// True when this dentry caches a positive directory (lock-free).
    pub fn is_dir(&self) -> bool {
        if self.locked_reads() {
            return match &*self.state.read() {
                DentryState::Positive(i) => i.is_dir(),
                DentryState::Partial { ftype, .. } => ftype.is_dir(),
                _ => false,
            };
        }
        self.with_snap(|s| match &s.state {
            SnapState::Positive(i) => i.is_dir(),
            SnapState::Partial { ftype, .. } => ftype.is_dir(),
            _ => false,
        })
    }

    /// Resolves a symlink alias to `(target, recorded_target_seq)`.
    pub fn alias_target(&self) -> Option<(Arc<Dentry>, u64)> {
        if !self.locked_reads() {
            enum A {
                NotAlias,
                Live(Arc<Dentry>, u64),
                Stale,
            }
            let a = self.with_snap(|s| match &s.state {
                SnapState::SymlinkAlias { target, target_seq } => match target.upgrade() {
                    Some(t) => A::Live(t, *target_seq),
                    None => A::Stale,
                },
                _ => A::NotAlias,
            });
            match a {
                A::NotAlias => return None,
                A::Live(t, s) => return Some((t, s)),
                A::Stale => {} // target freed or snapshot stale: locked read
            }
        }
        match &*self.state.read() {
            DentryState::SymlinkAlias { target, target_seq } => Some((target.clone(), *target_seq)),
            _ => None,
        }
    }

    // --- flags ---------------------------------------------------------

    /// Tests a flag bit.
    #[inline]
    pub fn flag(&self, bit: u32) -> bool {
        self.flags.load(Ordering::Acquire) & bit != 0
    }

    /// Sets a flag bit.
    #[inline]
    pub fn set_flag(&self, bit: u32) {
        self.flags.fetch_or(bit, Ordering::AcqRel);
    }

    /// Clears a flag bit.
    #[inline]
    pub fn clear_flag(&self, bit: u32) {
        self.flags.fetch_and(!bit, Ordering::AcqRel);
    }

    /// True once unhashed; such dentries must not be re-cached.
    pub fn is_dead(&self) -> bool {
        self.flag(FLAG_DEAD)
    }

    /// Eviction generation of this directory's children (§5.1).
    pub fn child_evict_gen(&self) -> u64 {
        self.child_evict_gen.load(Ordering::Acquire)
    }

    pub(crate) fn bump_child_evict_gen(&self) {
        self.child_evict_gen.fetch_add(1, Ordering::AcqRel);
    }

    // --- children ------------------------------------------------------

    /// Looks up a cached child (the per-parent hash index; the analog of
    /// Linux's `d_lookup` keyed by (parent, name)).
    pub fn get_child(&self, name: &str) -> Option<Arc<Dentry>> {
        self.children.read().get(name).cloned()
    }

    /// Inserts a child; the caller guarantees no *live* entry exists for
    /// `name`. A dead occupant (mid-eviction: `FLAG_DEAD` set, but the
    /// evictor has not yet reached `remove_child_if`) may be displaced —
    /// the evictor's removal is id-guarded, so it no-ops on the
    /// replacement.
    pub(crate) fn insert_child(&self, child: Arc<Dentry>) {
        let name = child.name();
        let prev = self.children.write().insert(name, child);
        debug_assert!(
            prev.as_ref().is_none_or(|p| p.is_dead()),
            "duplicate child insert"
        );
        self.bump_children_version();
    }

    /// Removes a child by name.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn remove_child(&self, name: &str) -> Option<Arc<Dentry>> {
        let out = self.children.write().remove(name);
        if out.is_some() {
            self.bump_children_version();
        }
        out
    }

    /// Removes the child named `name` only if it is still the dentry with
    /// id `id` (eviction may race with a rename that reused the name).
    pub(crate) fn remove_child_if(&self, name: &str, id: DentryId) -> bool {
        let mut children = self.children.write();
        match children.get(name) {
            Some(c) if c.id() == id => {
                children.remove(name);
                drop(children);
                self.bump_children_version();
                true
            }
            _ => false,
        }
    }

    /// The per-directory mutation lock; the VFS holds it while creating,
    /// removing, or miss-instantiating entries under this dentry.
    pub fn dir_lock(&self) -> &Mutex<()> {
        &self.dir_lock
    }

    /// Bumps the listing version: what a readdir of this directory would
    /// return has changed. Called automatically on child insert/remove;
    /// state flips (create-over-negative, unlink-to-negative) call it
    /// explicitly.
    pub fn bump_children_version(&self) {
        self.children_version.fetch_add(1, Ordering::AcqRel);
        // Drop any snapshot eagerly so memory is not held stale.
        *self.dir_snapshot.lock() = None;
    }

    /// Current listing version.
    pub fn children_version(&self) -> u64 {
        self.children_version.load(Ordering::Acquire)
    }

    /// The cached listing, if still valid for the current version.
    pub fn dir_snapshot(&self) -> Option<Arc<Vec<DirEntry>>> {
        let guard = self.dir_snapshot.lock();
        match &*guard {
            Some((ver, snap)) if *ver == self.children_version() => Some(snap.clone()),
            _ => None,
        }
    }

    /// Stores a listing snapshot taken at `version`.
    pub fn store_dir_snapshot(&self, version: u64, snap: Arc<Vec<DirEntry>>) {
        if version == self.children_version() {
            *self.dir_snapshot.lock() = Some((version, snap));
        }
    }

    /// Runs `f` over every cached child without cloning references.
    pub fn for_each_child(&self, mut f: impl FnMut(&Arc<Dentry>)) {
        for c in self.children.read().values() {
            f(c);
        }
    }

    /// Number of cached children.
    pub fn child_count(&self) -> usize {
        self.children.read().len()
    }

    /// Snapshot of all cached children.
    pub fn children_snapshot(&self) -> Vec<Arc<Dentry>> {
        self.children.read().values().cloned().collect()
    }

    /// True if the directory has no cached children.
    pub fn has_no_children(&self) -> bool {
        self.children.read().is_empty()
    }

    // --- naming / moves -------------------------------------------------

    /// Re-parents and renames the dentry (rename already holds the global
    /// rename lock, so this is never concurrent with other moves).
    pub(crate) fn set_name_parent(&self, name: &str, parent: Option<Arc<Dentry>>) {
        *self.name.write() = Arc::from(name);
        *self.parent.write() = parent;
        self.republish();
    }

    /// The path of this dentry within its superblock (no mount prefix).
    /// Used for path-sensitive LSMs and diagnostics.
    pub fn sb_path(self: &Arc<Self>) -> String {
        if self.parent().is_none() {
            return "/".to_string();
        }
        let mut parts: Vec<Arc<str>> = Vec::new();
        let mut node: Arc<Dentry> = self.clone();
        loop {
            let parent = node.parent();
            match parent {
                Some(p) => {
                    parts.push(node.name());
                    node = p;
                }
                None => break,
            }
        }
        let mut s = String::new();
        for p in parts.iter().rev() {
            s.push('/');
            s.push_str(p);
        }
        s
    }

    // --- fastpath bookkeeping -------------------------------------------

    /// Cached resumable hash state, if valid (lock-free).
    pub fn hash_state(&self) -> Option<HashState> {
        if self.locked_reads() {
            return *self.hash_state.lock();
        }
        self.with_snap(|s| s.hash_state)
    }

    /// Stores the resumable hash state.
    pub fn store_hash_state(&self, st: HashState) {
        *self.hash_state.lock() = Some(st);
        self.republish();
    }

    /// Invalidates the stored hash state (the path changed).
    pub fn clear_hash_state(&self) {
        *self.hash_state.lock() = None;
        self.republish();
    }

    /// The DLHT membership record.
    pub(crate) fn dlht_entry(&self) -> &Mutex<Option<(Weak<crate::dlht::Dlht>, Signature)>> {
        &self.dlht_entry
    }

    /// The recorded target-path signature (symlink dentries, §4.2;
    /// lock-free).
    pub fn link_sig(&self) -> Option<Signature> {
        if self.locked_reads() {
            return *self.link_sig.lock();
        }
        self.with_snap(|s| s.link_sig)
    }

    /// Records the target-path signature after a successful follow.
    pub fn store_link_sig(&self, sig: Signature) {
        *self.link_sig.lock() = Some(sig);
        self.republish();
    }

    /// Clears the recorded target signature (link changed or removed).
    pub fn clear_link_sig(&self) {
        *self.link_sig.lock() = None;
        self.republish();
    }

    /// Mount id recorded for the fastpath.
    pub fn mount_hint(&self) -> u64 {
        self.mount_hint.load(Ordering::Acquire)
    }

    /// Records the mount this dentry was most recently reached through.
    pub fn set_mount_hint(&self, mount: u64) {
        self.mount_hint.store(mount, Ordering::Release);
    }

    // --- LRU ------------------------------------------------------------

    pub(crate) fn touch(&self, tick: u64) {
        self.last_used.store(tick, Ordering::Relaxed);
    }

    #[cfg_attr(not(test), allow(dead_code))]
    #[allow(dead_code)]
    pub(crate) fn last_used(&self) -> u64 {
        self.last_used.load(Ordering::Relaxed)
    }
}

impl Drop for Dentry {
    fn drop(&mut self) {
        // &mut self: no reader can hold the snapshot pointer anymore
        // (readers borrow the dentry); free the current block directly
        // (unprotected guards run retirement immediately).
        unsafe {
            let guard = epoch::unprotected();
            let shared = self.snap.swap(Shared::null(), Ordering::AcqRel, guard);
            crate::snapslab::retire(guard, shared);
        }
    }
}

impl std::fmt::Debug for Dentry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dentry")
            .field("id", &self.id)
            .field("sb", &self.sb)
            .field("name", &self.name())
            .field("state", &*self.state.read())
            .field("seq", &self.seq())
            .field("children", &self.child_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detached(id: u64, name: &str, parent: Option<Arc<Dentry>>) -> Arc<Dentry> {
        Dentry::new(
            id,
            1,
            name,
            parent,
            DentryState::Negative(NegKind::Enoent),
            0,
        )
    }

    #[test]
    fn seq_bumps_monotonically() {
        let d = detached(1, "x", None);
        let s0 = d.seq();
        assert_eq!(d.bump_seq(), s0 + 1);
        assert_eq!(d.seq(), s0 + 1);
    }

    #[test]
    fn child_insert_lookup_remove() {
        let root = detached(1, "", None);
        let child = detached(2, "etc", Some(root.clone()));
        root.insert_child(child.clone());
        assert_eq!(root.get_child("etc").unwrap().id(), 2);
        assert_eq!(root.child_count(), 1);
        let removed = root.remove_child("etc").unwrap();
        assert_eq!(removed.id(), 2);
        assert!(root.has_no_children());
        assert!(root.get_child("etc").is_none());
    }

    #[test]
    fn sb_path_reconstruction() {
        let root = detached(1, "", None);
        let etc = detached(2, "etc", Some(root.clone()));
        root.insert_child(etc.clone());
        let passwd = detached(3, "passwd", Some(etc.clone()));
        etc.insert_child(passwd.clone());
        assert_eq!(root.sb_path(), "/");
        assert_eq!(etc.sb_path(), "/etc");
        assert_eq!(passwd.sb_path(), "/etc/passwd");
    }

    #[test]
    fn flags_are_independent_bits() {
        let d = detached(1, "x", None);
        assert!(!d.flag(FLAG_DIR_COMPLETE));
        d.set_flag(FLAG_DIR_COMPLETE);
        d.set_flag(FLAG_DEAD);
        assert!(d.flag(FLAG_DIR_COMPLETE));
        assert!(d.is_dead());
        d.clear_flag(FLAG_DIR_COMPLETE);
        assert!(!d.flag(FLAG_DIR_COMPLETE));
        assert!(d.is_dead());
    }

    #[test]
    fn negative_kinds_map_to_errors() {
        assert_eq!(NegKind::Enoent.error(), FsError::NoEnt);
        assert_eq!(NegKind::Enotdir.error(), FsError::NotDir);
        let d = detached(1, "gone", None);
        assert!(d.is_negative());
        assert_eq!(d.neg_kind(), Some(NegKind::Enoent));
        assert!(d.inode().is_none());
    }

    #[test]
    fn rename_updates_name_and_parent() {
        let root = detached(1, "", None);
        let a = detached(2, "a", Some(root.clone()));
        let b = detached(3, "b", Some(root.clone()));
        root.insert_child(a.clone());
        root.insert_child(b.clone());
        let f = detached(4, "f", Some(a.clone()));
        a.insert_child(f.clone());
        // Move /a/f → /b/g.
        a.remove_child("f");
        f.set_name_parent("g", Some(b.clone()));
        b.insert_child(f.clone());
        assert_eq!(f.sb_path(), "/b/g");
        assert_eq!(&*f.name(), "g");
    }

    #[test]
    fn alias_state_resolves() {
        let real = detached(5, "real", None);
        let alias = Dentry::new(
            6,
            1,
            "via-link",
            None,
            DentryState::SymlinkAlias {
                target: real.clone(),
                target_seq: real.seq(),
            },
            0,
        );
        let (t, s) = alias.alias_target().unwrap();
        assert_eq!(t.id(), 5);
        assert_eq!(s, real.seq());
        assert!(real.alias_target().is_none());
    }
}

#[cfg(test)]
mod listing_tests {
    use super::*;
    use dc_fs::DirEntry;

    fn neg(id: u64, name: &str, parent: Option<Arc<Dentry>>) -> Arc<Dentry> {
        Dentry::new(
            id,
            1,
            name,
            parent,
            DentryState::Negative(NegKind::Enoent),
            0,
        )
    }

    #[test]
    fn listing_tag_tracks_state() {
        let d = neg(1, "x", None);
        assert_eq!(d.listing_entry(), None);
        d.set_state(DentryState::Partial {
            ino: 42,
            ftype: FileType::Directory,
        });
        assert_eq!(d.listing_entry(), Some((42, FileType::Directory)));
        d.set_state(DentryState::Negative(NegKind::Enotdir));
        assert_eq!(d.listing_entry(), None);
        d.set_state(DentryState::Partial {
            ino: 7,
            ftype: FileType::Symlink,
        });
        assert_eq!(d.listing_entry(), Some((7, FileType::Symlink)));
    }

    #[test]
    fn children_version_bumps_on_membership_changes() {
        let root = neg(1, "", None);
        let v0 = root.children_version();
        let c = neg(2, "a", Some(root.clone()));
        root.insert_child(c.clone());
        let v1 = root.children_version();
        assert!(v1 > v0);
        root.remove_child_if("a", 2);
        assert!(root.children_version() > v1);
        // Removing something absent does not bump.
        let v2 = root.children_version();
        root.remove_child_if("a", 2);
        assert_eq!(root.children_version(), v2);
    }

    #[test]
    fn dir_snapshot_validates_version() {
        let root = neg(1, "", None);
        let v = root.children_version();
        let snap = Arc::new(vec![DirEntry {
            name: "a".into(),
            ino: 5,
            ftype: FileType::Regular,
        }]);
        root.store_dir_snapshot(v, snap.clone());
        assert!(root.dir_snapshot().is_some());
        // Any membership change invalidates.
        let c = neg(2, "b", Some(root.clone()));
        root.insert_child(c);
        assert!(root.dir_snapshot().is_none());
        // Storing against a stale version is refused.
        root.store_dir_snapshot(v, snap);
        assert!(root.dir_snapshot().is_none());
    }

    #[test]
    fn for_each_child_visits_all() {
        let root = neg(1, "", None);
        for i in 0..5 {
            let c = neg(10 + i, &format!("c{i}"), Some(root.clone()));
            root.insert_child(c);
        }
        let mut n = 0;
        root.for_each_child(|_| n += 1);
        assert_eq!(n, 5);
    }
}
