//! Entry points for the deterministic-schedule model tests in
//! `crates/dst/tests/` (compiled only with the `dst` feature).
//!
//! The models exercise internals whose production call sites sit behind
//! `Dcache`'s locking protocol (`pub(crate)` constructors and raw DLHT
//! chain ops). This module re-exposes exactly the handles the models
//! need, so the test crate can drive single protocol pieces — one
//! dentry, one table — without standing up a whole cache.

use crate::dentry::{Dentry, DentryState, NegKind};
use crate::dlht::Dlht;
use crate::{DentryId, Signature};
use std::sync::Arc;

/// A detached negative dentry (no parent, seq 0) for protocol models.
pub fn dentry(id: DentryId, name: &str) -> Arc<Dentry> {
    Dentry::new(id, 1, name, None, DentryState::Negative(NegKind::Enoent), 0)
}

/// The rename mutation alone: updates the name and republishes the
/// lock-free snapshot — deliberately *without* bumping the seq counter,
/// so models can compose the mutate → republish → bump-seq discipline
/// (and its deliberately broken permutations) themselves.
pub fn rename(d: &Dentry, name: &str) {
    d.set_name_parent(name, None);
}

/// Marks a dentry dead (the unhash flow's liveness flip), so models can
/// race it against lock-free lookups.
pub fn kill(d: &Dentry) {
    d.set_flag(crate::dentry::FLAG_DEAD);
}

/// Raw DLHT chain insert (production callers go through `Dcache`, which
/// owns the membership protocol).
pub fn dlht_insert(t: &Dlht, sig: Signature, d: &Arc<Dentry>) {
    t.insert_raw(sig, d);
}

/// Raw DLHT chain removal.
pub fn dlht_remove(t: &Dlht, sig: &Signature, id: DentryId) {
    t.remove_raw(sig, id);
}
