//! Sequence counters and a writer-excluding seqlock.
//!
//! The slowpath validates its optimistic traversals against the global
//! `rename_lock` exactly like Linux's RCU-walk (§2.2): readers sample the
//! counter, do their work with only shared accesses, and retry if a writer
//! ran concurrently. Writers serialize on an internal mutex.
//!
//! The memory-ordering argument for the protocol (why `Acquire` on
//! `read_begin`, an `Acquire` fence on `read_retry`, and `Release`
//! increments around the write section are sufficient, and what the
//! mutate → republish → bump-seq discipline in `dentry.rs` relies on) is
//! laid out in DESIGN.md §9; the interleaving-level invariants are
//! model-checked by `crates/dst/tests/seqlock_model.rs`.

use crate::dsync::{fence, AtomicU64, Ordering};
use parking_lot::{Mutex, MutexGuard};

/// A bare sequence counter (even = quiescent, odd = write in progress).
#[derive(Debug, Default)]
pub struct SeqCount(AtomicU64);

impl SeqCount {
    /// A fresh counter at sequence 0.
    pub fn new() -> Self {
        SeqCount(AtomicU64::new(0))
    }

    /// Begins an optimistic read: spins past in-flight writers and
    /// returns the sampled (even) sequence.
    #[inline]
    pub fn read_begin(&self) -> u64 {
        loop {
            let s = self.0.load(Ordering::Acquire);
            if s & 1 == 0 {
                return s;
            }
            crate::dsync::spin_loop();
        }
    }

    /// True if a writer ran since `start` — the read must be retried.
    #[inline]
    pub fn read_retry(&self, start: u64) -> bool {
        fence(Ordering::Acquire);
        self.0.load(Ordering::Relaxed) != start
    }

    /// Marks a write's start (caller provides mutual exclusion).
    #[inline]
    pub fn write_begin(&self) {
        let s = self.0.fetch_add(1, Ordering::Release);
        debug_assert!(s & 1 == 0, "nested seqcount write");
        fence(Ordering::Release);
    }

    /// Marks a write's end.
    #[inline]
    pub fn write_end(&self) {
        let s = self.0.fetch_add(1, Ordering::Release);
        debug_assert!(s & 1 == 1, "unbalanced seqcount write_end");
    }

    /// Current raw value (diagnostics).
    pub fn raw(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A seqlock: a [`SeqCount`] whose writers serialize on a mutex — the
/// shape of Linux's global `rename_lock`.
#[derive(Debug, Default)]
pub struct SeqLock {
    seq: SeqCount,
    writers: Mutex<()>,
}

/// Write-side guard; ends the write sequence on drop.
pub struct SeqWriteGuard<'a> {
    lock: &'a SeqLock,
    _guard: MutexGuard<'a, ()>,
}

impl SeqLock {
    /// A fresh unlocked seqlock.
    pub fn new() -> Self {
        SeqLock {
            seq: SeqCount::new(),
            writers: Mutex::new(()),
        }
    }

    /// Begins an optimistic read.
    #[inline]
    pub fn read_begin(&self) -> u64 {
        self.seq.read_begin()
    }

    /// True if the read must retry.
    #[inline]
    pub fn read_retry(&self, start: u64) -> bool {
        self.seq.read_retry(start)
    }

    /// Acquires the write side (excluding other writers and failing
    /// concurrent optimistic readers).
    pub fn write(&self) -> SeqWriteGuard<'_> {
        let guard = self.writers.lock();
        self.seq.write_begin();
        SeqWriteGuard {
            lock: self,
            _guard: guard,
        }
    }
}

impl Drop for SeqWriteGuard<'_> {
    fn drop(&mut self) {
        self.lock.seq.write_end();
    }
}

/// A seqlock-published value cell for small `Copy` data.
///
/// Readers copy the value word-by-word out of atomics between a
/// `read_begin`/`read_retry` pair — no locks, no tearing (a torn copy
/// fails validation and retries). Writers serialize on an internal
/// mutex. Backs `Inode` attributes on the lock-free read path: `stat`
/// reads attributes without touching the attr `RwLock`.
///
/// Every access is a plain atomic load/store, so ThreadSanitizer sees
/// properly synchronized accesses rather than a data race that seqlocks
/// built on volatile reads would exhibit.
pub struct SeqCell<T: Copy> {
    seq: SeqCount,
    writers: Mutex<()>,
    words: Box<[AtomicU64]>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Copy> SeqCell<T> {
    /// A cell holding `value`.
    pub fn new(value: T) -> Self {
        let nwords = std::mem::size_of::<T>().div_ceil(8).max(1);
        let cell = SeqCell {
            seq: SeqCount::new(),
            writers: Mutex::new(()),
            words: (0..nwords).map(|_| AtomicU64::new(0)).collect(),
            _marker: std::marker::PhantomData,
        };
        cell.store_words(&value);
        cell
    }

    fn store_words(&self, value: &T) {
        let size = std::mem::size_of::<T>();
        let src = value as *const T as *const u8;
        for (i, w) in self.words.iter().enumerate() {
            let off = i * 8;
            let n = (size - off).min(8);
            let mut bytes = [0u8; 8];
            // Safety: `off + n <= size_of::<T>()`; padding bytes are
            // copied as raw memory, which is fine for `Copy` data being
            // round-tripped through the same layout.
            unsafe { std::ptr::copy_nonoverlapping(src.add(off), bytes.as_mut_ptr(), n) };
            w.store(u64::from_ne_bytes(bytes), Ordering::Relaxed);
        }
    }

    /// Reads the value without locking; retries while writers run.
    #[inline]
    pub fn read(&self) -> T {
        let size = std::mem::size_of::<T>();
        loop {
            let start = self.seq.read_begin();
            let mut out = std::mem::MaybeUninit::<T>::uninit();
            let dst = out.as_mut_ptr() as *mut u8;
            for (i, w) in self.words.iter().enumerate() {
                let bytes = w.load(Ordering::Relaxed).to_ne_bytes();
                let off = i * 8;
                let n = (size - off).min(8);
                // Safety: writes exactly size_of::<T>() bytes into `out`.
                unsafe { std::ptr::copy_nonoverlapping(bytes.as_ptr(), dst.add(off), n) };
            }
            if !self.seq.read_retry(start) {
                // Safety: all bytes of `out` were written from a value
                // published in one write section (validated by the seq).
                return unsafe { out.assume_init() };
            }
            crate::dsync::spin_loop();
        }
    }

    /// Replaces the value.
    pub fn write(&self, value: T) {
        let _w = self.writers.lock();
        self.seq.write_begin();
        self.store_words(&value);
        self.seq.write_end();
    }

    /// Read-modify-write under the writer mutex.
    pub fn update(&self, f: impl FnOnce(&mut T)) {
        let _w = self.writers.lock();
        let mut value = self.read();
        f(&mut value);
        self.seq.write_begin();
        self.store_words(&value);
        self.seq.write_end();
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for SeqCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SeqCell").field(&self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn quiet_reads_do_not_retry() {
        let l = SeqLock::new();
        let s = l.read_begin();
        assert!(!l.read_retry(s));
    }

    #[test]
    fn write_invalidates_concurrent_read() {
        let l = SeqLock::new();
        let s = l.read_begin();
        {
            let _w = l.write();
        }
        assert!(l.read_retry(s));
        // A read started after the write is clean again.
        let s2 = l.read_begin();
        assert!(!l.read_retry(s2));
    }

    #[test]
    fn read_begin_waits_out_writers() {
        let l = Arc::new(SeqLock::new());
        let l2 = l.clone();
        let w = l.write();
        let h = std::thread::spawn(move || {
            let s = l2.read_begin();
            assert!(s & 1 == 0);
            s
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(w);
        let s = h.join().unwrap();
        assert!(!l.read_retry(s));
    }

    #[test]
    fn concurrent_writers_serialize() {
        let l = Arc::new(SeqLock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = l.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let _w = l.write();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 8 threads × 100 writes × 2 increments each.
        assert_eq!(l.seq.raw(), 1600);
    }

    #[test]
    fn seqcell_round_trips_odd_sizes() {
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct Odd {
            a: u64,
            b: u32,
            c: u8,
        }
        let c = SeqCell::new(Odd { a: 7, b: 8, c: 9 });
        assert_eq!(c.read(), Odd { a: 7, b: 8, c: 9 });
        c.write(Odd { a: 1, b: 2, c: 3 });
        assert_eq!(c.read(), Odd { a: 1, b: 2, c: 3 });
        c.update(|v| v.a = 100);
        assert_eq!(c.read().a, 100);
    }

    #[test]
    fn seqcell_readers_never_observe_torn_values() {
        // The two halves are kept equal by writers; a torn read would
        // surface as a mismatch.
        let c = Arc::new(SeqCell::new((0u64, 0u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            {
                let c = c.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    for i in 1..20_000u64 {
                        c.write((i, i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
                    }
                    stop.store(true, Ordering::SeqCst);
                });
            }
            for _ in 0..3 {
                let c = c.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let (a, b) = c.read();
                        assert_eq!(b, a.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    }
                });
            }
        });
    }
}
