//! Sequence counters and a writer-excluding seqlock.
//!
//! The slowpath validates its optimistic traversals against the global
//! `rename_lock` exactly like Linux's RCU-walk (§2.2): readers sample the
//! counter, do their work with only shared accesses, and retry if a writer
//! ran concurrently. Writers serialize on an internal mutex.

use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, Ordering};

/// A bare sequence counter (even = quiescent, odd = write in progress).
#[derive(Debug, Default)]
pub struct SeqCount(AtomicU64);

impl SeqCount {
    /// A fresh counter at sequence 0.
    pub fn new() -> Self {
        SeqCount(AtomicU64::new(0))
    }

    /// Begins an optimistic read: spins past in-flight writers and
    /// returns the sampled (even) sequence.
    #[inline]
    pub fn read_begin(&self) -> u64 {
        loop {
            let s = self.0.load(Ordering::Acquire);
            if s & 1 == 0 {
                return s;
            }
            std::hint::spin_loop();
        }
    }

    /// True if a writer ran since `start` — the read must be retried.
    #[inline]
    pub fn read_retry(&self, start: u64) -> bool {
        std::sync::atomic::fence(Ordering::Acquire);
        self.0.load(Ordering::Relaxed) != start
    }

    /// Marks a write's start (caller provides mutual exclusion).
    #[inline]
    pub fn write_begin(&self) {
        let s = self.0.fetch_add(1, Ordering::Release);
        debug_assert!(s & 1 == 0, "nested seqcount write");
        std::sync::atomic::fence(Ordering::Release);
    }

    /// Marks a write's end.
    #[inline]
    pub fn write_end(&self) {
        let s = self.0.fetch_add(1, Ordering::Release);
        debug_assert!(s & 1 == 1, "unbalanced seqcount write_end");
    }

    /// Current raw value (diagnostics).
    pub fn raw(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A seqlock: a [`SeqCount`] whose writers serialize on a mutex — the
/// shape of Linux's global `rename_lock`.
#[derive(Debug, Default)]
pub struct SeqLock {
    seq: SeqCount,
    writers: Mutex<()>,
}

/// Write-side guard; ends the write sequence on drop.
pub struct SeqWriteGuard<'a> {
    lock: &'a SeqLock,
    _guard: MutexGuard<'a, ()>,
}

impl SeqLock {
    /// A fresh unlocked seqlock.
    pub fn new() -> Self {
        SeqLock {
            seq: SeqCount::new(),
            writers: Mutex::new(()),
        }
    }

    /// Begins an optimistic read.
    #[inline]
    pub fn read_begin(&self) -> u64 {
        self.seq.read_begin()
    }

    /// True if the read must retry.
    #[inline]
    pub fn read_retry(&self, start: u64) -> bool {
        self.seq.read_retry(start)
    }

    /// Acquires the write side (excluding other writers and failing
    /// concurrent optimistic readers).
    pub fn write(&self) -> SeqWriteGuard<'_> {
        let guard = self.writers.lock();
        self.seq.write_begin();
        SeqWriteGuard {
            lock: self,
            _guard: guard,
        }
    }
}

impl Drop for SeqWriteGuard<'_> {
    fn drop(&mut self) {
        self.lock.seq.write_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn quiet_reads_do_not_retry() {
        let l = SeqLock::new();
        let s = l.read_begin();
        assert!(!l.read_retry(s));
    }

    #[test]
    fn write_invalidates_concurrent_read() {
        let l = SeqLock::new();
        let s = l.read_begin();
        {
            let _w = l.write();
        }
        assert!(l.read_retry(s));
        // A read started after the write is clean again.
        let s2 = l.read_begin();
        assert!(!l.read_retry(s2));
    }

    #[test]
    fn read_begin_waits_out_writers() {
        let l = Arc::new(SeqLock::new());
        let l2 = l.clone();
        let w = l.write();
        let h = std::thread::spawn(move || {
            let s = l2.read_begin();
            assert!(s & 1 == 0);
            s
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(w);
        let s = h.join().unwrap();
        assert!(!l.read_retry(s));
    }

    #[test]
    fn concurrent_writers_serialize() {
        let l = Arc::new(SeqLock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = l.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let _w = l.write();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 8 threads × 100 writes × 2 increments each.
        assert_eq!(l.seq.raw(), 1600);
    }
}
