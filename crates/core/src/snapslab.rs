//! Slab arena for epoch-published [`DentrySnap`] blocks (DESIGN.md §13).
//!
//! Every dentry mutation republishes its snapshot; with `Box` that is a
//! malloc per mutation plus a free inside the epoch collector — allocator
//! traffic and cache-cold blocks on the very pointers the warm read path
//! dereferences. The slab hands out fixed-size slots from leaked blocks
//! instead: retired snapshots return to the free list after their grace
//! period (via [`crossbeam_epoch::Guard::defer_with`]) and are reused
//! hot, so steady-state republication performs zero allocator calls and
//! keeps the snapshot working set dense.
//!
//! Slot recycling is split across two structures so the measured read
//! path stays lock-free (asserted by `tests/lockfree_read.rs`'s
//! zero-lock and zero-allocation counters). Epoch collection is
//! amortized into `pin()` — deferred destructors can run on a *reader's*
//! pin — so [`destroy_snap`] must not lock: it pushes the slot onto a
//! lock-free Treiber stack (push-only, so no ABA hazard), reusing the
//! dead slot's first word as the link. Allocating mutators — which
//! already serialize per dentry on `snap_lock` — drain that stack with
//! a single `swap` into the mutex-guarded free list.
//!
//! Blocks are never returned to the OS (classic slab behavior); the
//! exact footprint — blocks, slot size, free slots — is walked by
//! [`footprint`] and reported through `repro space`.
//!
//! Provenance: boxed and slab snapshots coexist (the `snap_slab: false`
//! ablation publishes boxed ones), so each `DentrySnap` records where it
//! came from and [`retire`] dispatches on that record, never on global
//! state.

use crate::dentry::DentrySnap;
use crossbeam_epoch::{Guard, Shared};
use parking_lot::Mutex;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Slots per leaked block. 64 snapshots ≈ one small directory tree's
/// worth of churn per allocator round-trip.
const BLOCK_SLOTS: usize = 64;

/// Retired slots awaiting reuse: a Treiber stack linked through the
/// dead slot's own first word (a `DentrySnap` is comfortably larger
/// than a pointer — asserted below). Pushed lock-free by the epoch
/// collector, drained wholesale by [`pop_slot`].
static RETURNED: AtomicPtr<DentrySnap> = AtomicPtr::new(std::ptr::null_mut());

/// Slots currently on the [`RETURNED`] stack (footprint accounting).
static RETURNED_LEN: AtomicUsize = AtomicUsize::new(0);

const _: () = assert!(std::mem::size_of::<DentrySnap>() >= std::mem::size_of::<*mut DentrySnap>());
const _: () =
    assert!(std::mem::align_of::<DentrySnap>() >= std::mem::align_of::<*mut DentrySnap>());

/// Pushes a dead slot onto the return stack. Lock-free: runs inside
/// epoch collection, which may execute on a reader's `pin()`.
///
/// # Safety
///
/// `slot` must be a slab slot whose contents are already dropped and
/// which no other thread can reach.
unsafe fn push_returned(slot: *mut DentrySnap) {
    let link = slot as *mut *mut DentrySnap;
    let mut head = RETURNED.load(Ordering::Relaxed);
    loop {
        link.write(head);
        match RETURNED.compare_exchange_weak(head, slot, Ordering::Release, Ordering::Relaxed) {
            Ok(_) => break,
            Err(h) => head = h,
        }
    }
    RETURNED_LEN.fetch_add(1, Ordering::Relaxed);
}

/// Moves every slot on the return stack into `into`. One `swap` takes
/// the whole list, so the pop side never races the ABA way.
fn drain_returned(into: &mut Vec<*mut DentrySnap>) {
    let mut p = RETURNED.swap(std::ptr::null_mut(), Ordering::Acquire);
    let mut n = 0usize;
    while !p.is_null() {
        // Safety: we own the detached list exclusively after the swap.
        let next = unsafe { (p as *mut *mut DentrySnap).read() };
        into.push(p);
        p = next;
        n += 1;
    }
    if n > 0 {
        RETURNED_LEN.fetch_sub(n, Ordering::Relaxed);
    }
}

struct SlabInner {
    free: Vec<*mut DentrySnap>,
    blocks: usize,
}

// Raw slot pointers are only ever handed to one owner at a time; the
// mutex serializes list access itself.
unsafe impl Send for SlabInner {}

fn slab() -> &'static Mutex<SlabInner> {
    static SLAB: OnceLock<Mutex<SlabInner>> = OnceLock::new();
    SLAB.get_or_init(|| {
        Mutex::new(SlabInner {
            free: Vec::new(),
            blocks: 0,
        })
    })
}

#[inline]
fn track_alloc(ptr: *const DentrySnap) {
    #[cfg(feature = "dst")]
    dst::alloc::track_alloc(ptr as *const ());
    #[cfg(not(feature = "dst"))]
    let _ = ptr;
}

#[inline]
fn track_free(ptr: *const DentrySnap) {
    #[cfg(feature = "dst")]
    dst::alloc::track_free(ptr as *const ());
    #[cfg(not(feature = "dst"))]
    let _ = ptr;
}

/// Pops a free slot, growing the arena by one leaked block when both
/// the free list and the return stack are empty.
fn pop_slot() -> *mut DentrySnap {
    let mut inner = slab().lock();
    if let Some(p) = inner.free.pop() {
        return p;
    }
    drain_returned(&mut inner.free);
    if let Some(p) = inner.free.pop() {
        return p;
    }
    let block: &'static mut [MaybeUninit<DentrySnap>] = Box::leak(
        (0..BLOCK_SLOTS)
            .map(|_| MaybeUninit::uninit())
            .collect::<Vec<_>>()
            .into_boxed_slice(),
    );
    inner.blocks += 1;
    let mut iter = block.iter_mut();
    let first = iter.next().expect("BLOCK_SLOTS > 0").as_mut_ptr();
    for slot in iter {
        inner.free.push(slot.as_mut_ptr());
    }
    first
}

/// Writes `snap` into a slab slot and returns the published-ready
/// pointer. The caller owns the slot until it is retired.
pub(crate) fn alloc_snap<'g>(snap: DentrySnap, _guard: &'g Guard) -> Shared<'g, DentrySnap> {
    debug_assert!(snap.from_slab, "slab slots must be marked from_slab");
    let p = pop_slot();
    unsafe { p.write(snap) };
    track_alloc(p);
    // Safety: freshly initialized, exclusively owned until published.
    unsafe { Shared::from_raw(p) }
}

/// The type-erased destructor the epoch collector runs once the grace
/// period elapses: drop the snapshot's contents, then return the memory
/// to wherever it came from — the slab free list or the heap.
unsafe fn destroy_snap(p: *mut ()) {
    let snap = p as *mut DentrySnap;
    if (*snap).from_slab {
        std::ptr::drop_in_place(snap);
        track_free(snap);
        push_returned(snap);
    } else {
        track_free(snap);
        drop(Box::from_raw(snap));
    }
}

/// Retires a replaced snapshot through the epoch collector, dispatching
/// on its recorded provenance. Null pointers (a dentry that never
/// published) are ignored; on an unprotected guard the destructor runs
/// immediately (the `Drop` path).
///
/// # Safety
///
/// `old` must have been unlinked from its `Atomic` (no new reader can
/// load it) and must not be retired twice.
pub(crate) unsafe fn retire(guard: &Guard, old: Shared<'_, DentrySnap>) {
    guard.defer_with(old.as_raw() as *mut (), destroy_snap);
}

/// Exact arena footprint, walked from the slab's own bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct SnapSlabFootprint {
    /// Leaked blocks.
    pub blocks: usize,
    /// Slots per block.
    pub block_slots: usize,
    /// Bytes per slot.
    pub slot_bytes: usize,
    /// Slots currently on the free list.
    pub free_slots: usize,
}

impl SnapSlabFootprint {
    /// Total bytes held by the arena (live + free slots; blocks are
    /// never returned to the OS).
    pub fn total_bytes(&self) -> usize {
        self.blocks * self.block_slots * self.slot_bytes
    }

    /// Slots currently holding a published (or grace-period) snapshot.
    pub fn live_slots(&self) -> usize {
        self.blocks * self.block_slots - self.free_slots
    }
}

/// The current arena footprint. Free slots count both the drained list
/// and slots still parked on the lock-free return stack.
pub fn footprint() -> SnapSlabFootprint {
    let inner = slab().lock();
    SnapSlabFootprint {
        blocks: inner.blocks,
        block_slots: BLOCK_SLOTS,
        slot_bytes: std::mem::size_of::<DentrySnap>(),
        free_slots: inner.free.len() + RETURNED_LEN.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dentry::{Dentry, DentryState, NegKind};
    use std::sync::Arc;

    fn dentry(id: u64) -> Arc<Dentry> {
        Dentry::new(id, 1, "s", None, DentryState::Negative(NegKind::Enoent), 0)
    }

    #[test]
    fn republish_cycles_reuse_slots() {
        // Dentries in the default config publish from the slab; a burst
        // of republishes must not grow the arena once warm (retired
        // slots come back after the grace period). The slab is global
        // and the test harness runs in parallel, so assert on *growth*
        // with headroom for concurrent tests: 10k republishes with no
        // reuse would leak ~156 blocks by themselves.
        let d = dentry(1);
        let before = footprint().blocks;
        for i in 0..10_000u64 {
            d.store_hash_state(crate::HashKey::from_seed(i % 7).root_state());
        }
        // Everything retired eventually returns; flush the collector.
        crossbeam_epoch::pin().flush();
        crossbeam_epoch::pin().flush();
        let fp = footprint();
        assert!(fp.blocks > 0);
        assert!(
            fp.blocks - before <= 60,
            "10k republishes must reuse slots, not leak blocks (grew {})",
            fp.blocks - before
        );
        assert_eq!(fp.total_bytes(), fp.blocks * BLOCK_SLOTS * fp.slot_bytes);
    }

    #[test]
    fn footprint_is_walked() {
        let before = footprint();
        let held: Vec<_> = (0..200u64).map(dentry).collect();
        let after = footprint();
        // 200 fresh snapshots need slots: free count dropped or blocks
        // grew — either way the numbers come from the real lists.
        assert!(
            after.blocks > before.blocks
                || after.free_slots < before.free_slots
                || before.free_slots >= 200
        );
        assert!(after.live_slots() >= held.len());
        drop(held);
    }
}
