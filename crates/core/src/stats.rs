//! Directory-cache statistics and space-overhead reporting.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$sm:meta])* $name:ident),* $(,)?) => {
        /// Counters describing directory-cache behavior. Every field is a
        /// relaxed atomic bumped on the relevant event; the evaluation
        /// harness snapshots them to compute hit rates and negative-dentry
        /// rates (Tables 1 and 2).
        #[derive(Debug, Default)]
        pub struct DcacheStats {
            $($(#[$sm])* pub $name: AtomicU64,)*
        }

        impl DcacheStats {
            /// Resets every counter to zero.
            pub fn reset(&self) {
                $(self.$name.store(0, Ordering::Relaxed);)*
            }

            /// Snapshot as `(name, value)` pairs, for reports.
            pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($name), self.$name.load(Ordering::Relaxed)),)*]
            }
        }
    };
}

counters! {
    /// Path lookups requested of the VFS (one per path-based syscall).
    lookups,
    /// Fastpath attempts (optimized configuration only).
    fast_attempts,
    /// Fastpath successes: DLHT hit + PCC hit + valid seq.
    fast_hits,
    /// Fastpath successes that resolved to a negative dentry.
    fast_neg_hits,
    /// Fastpath failures at the DLHT (signature not present).
    fast_miss_dlht,
    /// Fastpath failures at the PCC (no memoized prefix check).
    fast_miss_pcc,
    /// PCC misses recovered by re-executing the prefix check over the
    /// in-memory ancestor chain instead of a full slowpath walk.
    fast_revalidations,
    /// Fastpath failures from version-counter mismatches.
    fast_miss_seq,
    /// Slowpath component-at-a-time walks.
    slow_walks,
    /// Total components stepped by slowpath walks.
    slow_steps,
    /// Slowpath retries due to concurrent rename (seqlock invalidation).
    slow_retries,
    /// Lock-free fastpath restarts from per-dentry seq mismatches (a
    /// writer republished a dentry snapshot mid-read).
    read_retries,
    /// Epoch pins taken by lock-free fastpath resolutions.
    epoch_pins,
    /// Lookups that terminated at a cached positive dentry.
    hit_positive,
    /// Lookups that terminated at a cached negative dentry.
    hit_negative,
    /// Lookups that had to call the low-level file system.
    miss_fs,
    /// Misses answered negatively *without* an FS call because the parent
    /// directory was complete (§5.1).
    complete_neg_avoided,
    /// Directories marked `DIR_COMPLETE`.
    complete_sets,
    /// Completeness claims broken by eviction.
    complete_breaks,
    /// `readdir` requests served from the dcache.
    readdir_cached,
    /// `readdir` requests forwarded to the file system.
    readdir_fs,
    /// Negative dentries created (all causes).
    neg_created,
    /// Deep negative dentries created (§5.2).
    neg_deep_created,
    /// Dentries evicted for space.
    evictions,
    /// Subtree shootdowns executed (rename/chmod/chown of directories).
    shootdowns,
    /// Dentries visited by shootdowns (the Figure 7 cost driver).
    shootdown_visits,
    /// Symlink alias dentries created (§4.2).
    symlink_aliases,
    /// Memory-pressure shrink operations ([`shrink_to_bytes`] calls that
    /// found work to do).
    ///
    /// [`shrink_to_bytes`]: crate::Dcache::shrink_to_bytes
    shrinks,
    /// Bytes reclaimed by memory-pressure shrinks.
    shrink_bytes_freed,
    /// Cold PCCs detached from their credential by the resident-PCC cap
    /// ([`pcc_max_resident`]).
    ///
    /// [`pcc_max_resident`]: crate::DcacheConfig::pcc_max_resident
    pcc_evictions,
    /// PCC instances detached by namespace teardown.
    pccs_detached,
    /// Mount namespaces torn down ([`retire_dlht`] + PCC detach).
    ///
    /// [`retire_dlht`]: crate::Dcache::retire_dlht
    ns_teardowns,
    /// Live DLHT entries retired with their namespace's table.
    teardown_entries,
    /// Warm-restart index checkpoints persisted to disk.
    warm_checkpoints,
    /// Index entries examined by warm-restart rehydration.
    warm_restart_attempts,
    /// Rehydrated dentries validated against the recovered tree and
    /// published into the dcache/DLHT.
    warm_restart_published,
    /// Index entries rejected by per-entry validation (stale name,
    /// missing inode, or a parent that was itself rejected).
    warm_restart_rejected,
    /// Warm restarts that fell back to an entirely cold cache (index
    /// absent, corrupt, wrong version, or bound to a future sequence).
    warm_restart_fallbacks,
}

impl DcacheStats {
    /// Overall hit rate: fraction of lookups that never called the file
    /// system (the `hit%` column of Tables 1–2).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups.load(Ordering::Relaxed);
        if lookups == 0 {
            return 0.0;
        }
        let miss = self.miss_fs.load(Ordering::Relaxed);
        // Multi-component paths can miss more than once per lookup; floor
        // the rate at zero for reporting.
        (1.0 - (miss as f64 / lookups as f64)).max(0.0)
    }

    /// Fraction of fastpath attempts that succeeded outright (DLHT hit +
    /// PCC hit + valid seq). Zero when the fastpath never ran (baseline
    /// configurations).
    pub fn fastpath_rate(&self) -> f64 {
        let attempts = self.fast_attempts.load(Ordering::Relaxed);
        if attempts == 0 {
            return 0.0;
        }
        self.fast_hits.load(Ordering::Relaxed) as f64 / attempts as f64
    }

    /// Fraction of lookups answered by a negative dentry (the `neg%`
    /// column of Tables 1–2).
    pub fn neg_hit_rate(&self) -> f64 {
        let lookups = self.lookups.load(Ordering::Relaxed);
        if lookups == 0 {
            return 0.0;
        }
        let neg = self.hit_negative.load(Ordering::Relaxed)
            + self.fast_neg_hits.load(Ordering::Relaxed)
            + self.complete_neg_avoided.load(Ordering::Relaxed);
        neg as f64 / lookups as f64
    }
}

/// Space-overhead summary (§6.1, "Space Overhead").
#[derive(Debug, Clone, Copy)]
pub struct SpaceReport {
    /// `size_of::<Dentry>()` in this implementation.
    pub dentry_bytes: usize,
    /// Live (hashed) dentries.
    pub live_dentries: u64,
    /// DLHT footprint across namespaces, bytes.
    pub dlht_bytes: usize,
    /// Exact size of one DLHT bucket head (an epoch-managed atomic
    /// chain pointer).
    pub dlht_bucket_bytes: usize,
    /// Exact size of one DLHT chain node (signature lanes + weak dentry
    /// reference + next pointer).
    pub dlht_node_bytes: usize,
    /// Exact size of one open-addressed DLHT bucket group (tag array +
    /// count + overflow pointer + inline slots, cache-line aligned).
    pub dlht_group_bytes: usize,
    /// Total DLHT buckets across namespaces.
    pub dlht_buckets: usize,
    /// Total DLHT chain nodes across namespaces (chained layout).
    pub dlht_nodes: u64,
    /// Total DLHT bucket groups across namespaces (open layout).
    pub dlht_groups: u64,
    /// Live DLHT entries across namespaces, walked.
    pub dlht_entries: u64,
    /// Bytes held by the snapshot slab arena (blocks, walked — includes
    /// free slots awaiting reuse).
    pub snap_slab_bytes: usize,
    /// Per-credential PCC footprint, bytes.
    pub pcc_bytes_each: usize,
    /// Live PCC instances.
    pub pccs: usize,
}

impl std::fmt::Display for SpaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "dentry size:      {} bytes", self.dentry_bytes)?;
        writeln!(f, "live dentries:    {}", self.live_dentries)?;
        writeln!(f, "DLHT footprint:   {} bytes", self.dlht_bytes)?;
        writeln!(
            f,
            "  buckets:        {} x {} bytes",
            self.dlht_buckets, self.dlht_bucket_bytes
        )?;
        writeln!(
            f,
            "  chain nodes:    {} x {} bytes",
            self.dlht_nodes, self.dlht_node_bytes
        )?;
        writeln!(
            f,
            "  bucket groups:  {} x {} bytes",
            self.dlht_groups, self.dlht_group_bytes
        )?;
        writeln!(f, "  entries:        {}", self.dlht_entries)?;
        writeln!(f, "snap slab:        {} bytes", self.snap_slab_bytes)?;
        writeln!(f, "PCC (each):       {} bytes", self.pcc_bytes_each)?;
        write!(f, "PCC instances:    {}", self.pccs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_compute_from_counters() {
        let s = DcacheStats::default();
        s.lookups.store(100, Ordering::Relaxed);
        s.miss_fs.store(10, Ordering::Relaxed);
        s.hit_negative.store(5, Ordering::Relaxed);
        s.fast_neg_hits.store(15, Ordering::Relaxed);
        s.fast_attempts.store(80, Ordering::Relaxed);
        s.fast_hits.store(60, Ordering::Relaxed);
        assert!((s.hit_rate() - 0.9).abs() < 1e-9);
        assert!((s.neg_hit_rate() - 0.2).abs() < 1e-9);
        assert!((s.fastpath_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn zero_lookups_yield_zero_rates() {
        let s = DcacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.neg_hit_rate(), 0.0);
        assert_eq!(s.fastpath_rate(), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let s = DcacheStats::default();
        s.lookups.store(5, Ordering::Relaxed);
        s.evictions.store(3, Ordering::Relaxed);
        s.reset();
        assert!(s.snapshot().iter().all(|(_, v)| *v == 0));
    }

    #[test]
    fn snapshot_carries_names() {
        let s = DcacheStats::default();
        s.fast_hits.store(2, Ordering::Relaxed);
        let snap = s.snapshot();
        assert!(snap.contains(&("fast_hits", 2)));
    }
}
