//! The directory-cache facade: allocation, hashing tables, coherence.

use crate::batch::BatchPin;
use crate::config::DcacheConfig;
use crate::dentry::{
    Dentry, DentryId, DentryState, NegKind, FLAG_DEAD, FLAG_DIR_COMPLETE, FLAG_LOCKED_READS,
    FLAG_SNAP_BOXED,
};
use crate::dlht::{Dlht, DlhtFootprint};
use crate::inode::{Inode, SbId};
use crate::lru::{DentryLru, EvictOutcome};
use crate::pcc::Pcc;
use crate::seqlock::SeqLock;
use crate::stats::{DcacheStats, SpaceReport};
use dc_cred::Cred;
use dc_obs::{Recorder, TraceEvent};
use dc_rcu::SnapMap;
use dc_sighash::HashKey;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Mount-namespace identity (each namespace owns a private DLHT, §4.3).
pub type NsId = u64;

/// The directory cache.
///
/// One instance per kernel. Owns dentry allocation, the per-namespace
/// direct-lookup tables, per-credential prefix check caches, the LRU, and
/// the coherence machinery of §3.2: the global `rename_lock` seqlock, the
/// global `invalidation` counter, and recursive subtree shootdowns.
pub struct Dcache {
    /// Feature configuration (baseline / optimized / ablations).
    pub config: DcacheConfig,
    /// Boot-time signature hash key (§3.3).
    pub key: HashKey,
    /// Behavior counters.
    pub stats: DcacheStats,
    /// Observability hook: DLHT probes and PCC checks report here (a
    /// disabled recorder — the default — drops them for free).
    pub obs: Recorder,
    /// Global rename seqlock: writers are structural mutations, readers
    /// are optimistic slowpath walks (§3.2).
    pub rename_lock: SeqLock,
    dlhts: SnapMap<NsId, Arc<Dlht>>,
    /// Namespaces whose DLHT was retired by teardown. Consulted (under
    /// the same mutex that serializes retirement) before lazily creating
    /// a table, so a walker racing teardown cannot resurrect a dead
    /// namespace's table into the map — it gets a private orphan table
    /// that dies with its last holder instead (DESIGN.md §14). A few
    /// bytes per destroyed namespace, ever.
    retired_ns: Mutex<HashSet<NsId>>,
    lru: DentryLru,
    /// Global shootdown counter: slowpath results may only be published to
    /// DLHT/PCC if this did not move during the walk (§3.2).
    invalidation: AtomicU64,
    next_id: AtomicU64,
    live: AtomicU64,
    tick: AtomicU64,
    pccs: Mutex<Vec<PccSlot>>,
}

/// Registry entry for one resident PCC: which credential it is attached
/// to (weak — creds drop freely), which namespace keys it, and the PCC
/// itself (weak — the cred's cache map holds the only strong reference,
/// so detaching it there is how eviction frees memory).
struct PccSlot {
    cred: Weak<Cred>,
    ns: NsId,
    pcc: Weak<Pcc>,
}

impl Dcache {
    /// Builds a cache from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DcacheConfig::validate`].
    pub fn new(config: DcacheConfig) -> Arc<Dcache> {
        Dcache::new_with_obs(config, Recorder::disabled())
    }

    /// Builds a cache that reports DLHT probes and PCC checks to `obs`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DcacheConfig::validate`].
    pub fn new_with_obs(config: DcacheConfig, obs: Recorder) -> Arc<Dcache> {
        config.validate().expect("invalid dcache config");
        let key = match config.hash_seed {
            Some(seed) => HashKey::from_seed(seed),
            None => HashKey::from_entropy(),
        }
        .with_wide(config.sighash_wide);
        Arc::new(Dcache {
            config,
            key,
            stats: DcacheStats::default(),
            obs,
            rename_lock: SeqLock::new(),
            dlhts: SnapMap::new(),
            retired_ns: Mutex::new(HashSet::new()),
            lru: DentryLru::new(8),
            invalidation: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            live: AtomicU64::new(0),
            tick: AtomicU64::new(1),
            pccs: Mutex::new(Vec::new()),
        })
    }

    fn alloc_id(&self) -> DentryId {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Live (hashed) dentries.
    pub fn live(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// Pins the reclamation epoch for a whole batch of lookups.
    ///
    /// While the returned guard is alive, per-lookup epoch pins on this
    /// thread collapse to re-entrant nesting (no publication fence) and
    /// skip their per-pin stats/trace accounting — this pin is the one
    /// `EpochPin` recorded for the batch. See [`crate::batch`].
    pub fn batch_pin(&self) -> BatchPin {
        let already_nested = crate::batch::batch_pin_active();
        let guard = crossbeam_epoch::pin();
        if !already_nested {
            self.stats.epoch_pins.fetch_add(1, Ordering::Relaxed);
            self.obs.event(|| TraceEvent::EpochPin);
        }
        BatchPin::new(guard)
    }

    // --- allocation ------------------------------------------------------

    /// Creates the root dentry of a superblock. Root dentries are pinned
    /// by their superblock and never enter the LRU.
    pub fn new_root(&self, sb: SbId, inode: Arc<Inode>) -> Arc<Dentry> {
        let d = Dentry::new(
            self.alloc_id(),
            sb,
            "",
            None,
            DentryState::Positive(inode),
            0,
        );
        if !self.config.lockfree_reads {
            d.set_flag(FLAG_LOCKED_READS);
        }
        if !self.config.snap_slab {
            d.set_flag(FLAG_SNAP_BOXED);
        }
        d.store_hash_state(self.key.root_state());
        self.live.fetch_add(1, Ordering::Relaxed);
        d
    }

    /// Allocates and hashes a child dentry under `parent`.
    ///
    /// The caller holds `parent.dir_lock()` and has verified no live child
    /// exists for `name`.
    pub fn d_alloc(&self, parent: &Arc<Dentry>, name: &str, state: DentryState) -> Arc<Dentry> {
        let d = Dentry::new(
            self.alloc_id(),
            parent.sb(),
            name,
            Some(parent.clone()),
            state,
            0,
        );
        if !self.config.lockfree_reads {
            d.set_flag(FLAG_LOCKED_READS);
        }
        if !self.config.snap_slab {
            d.set_flag(FLAG_SNAP_BOXED);
        }
        parent.insert_child(d.clone());
        d.touch(self.tick.fetch_add(1, Ordering::Relaxed));
        self.live.fetch_add(1, Ordering::Relaxed);
        self.lru.insert(&d);
        self.maybe_shrink();
        d
    }

    /// Per-parent cached-child lookup (`d_lookup`).
    pub fn d_lookup(&self, parent: &Dentry, name: &str) -> Option<Arc<Dentry>> {
        let child = parent.get_child(name)?;
        child.touch(self.tick.fetch_add(1, Ordering::Relaxed));
        Some(child)
    }

    // --- state transitions ------------------------------------------------

    /// Converts a dentry to a negative entry of the given kind, keeping it
    /// hashed so future lookups hit the cached absence (§5.2). Any cached
    /// children (e.g. deep `ENOTDIR` children of an unlinked file) are
    /// unhashed, since their cause is gone.
    pub fn make_negative(&self, d: &Arc<Dentry>, kind: NegKind) {
        for child in d.children_snapshot() {
            self.unhash_subtree(&child);
        }
        d.set_state(DentryState::Negative(kind));
        // A stale target signature must not outlive the object (the path
        // may be recreated as a different symlink).
        d.clear_link_sig();
        // Listings of the parent change: the entry vanished.
        if let Some(p) = d.parent() {
            p.bump_children_version();
        }
        self.stats.neg_created.fetch_add(1, Ordering::Relaxed);
    }

    /// Unhashes a dentry: removes it from its parent, the DLHT, and the
    /// accounting. The dentry stays usable through existing references
    /// (Linux `d_drop` semantics) but is never returned by lookups again.
    ///
    /// `reclaim` marks space-pressure eviction, which additionally breaks
    /// the parent's completeness claim (§5.1); removals that mirror a real
    /// file-system deletion keep completeness intact.
    pub fn unhash(&self, d: &Arc<Dentry>, reclaim: bool) {
        // Only the transition into DEAD does the bookkeeping.
        if d.flag(FLAG_DEAD) {
            return;
        }
        d.set_flag(FLAG_DEAD);
        if let Some(parent) = d.parent() {
            if reclaim {
                // Break the completeness claim BEFORE the child leaves
                // the parent: a racing lookup that misses the child must
                // not see DIR_COMPLETE still set and fabricate ENOENT
                // for a file the file system still has. (The child-map
                // lock orders the flag clear before any post-removal
                // miss.)
                parent.bump_child_evict_gen();
                if parent.flag(FLAG_DIR_COMPLETE) {
                    parent.clear_flag(FLAG_DIR_COMPLETE);
                    self.stats.complete_breaks.fetch_add(1, Ordering::Relaxed);
                }
            }
            parent.remove_child_if(&d.name(), d.id());
        }
        self.dlht_remove(d);
        d.bump_seq();
        self.live.fetch_sub(1, Ordering::Relaxed);
    }

    /// Moves a dentry to a new parent and/or name (the cache half of
    /// `rename`). The caller holds the global rename lock and both
    /// directories' `dir_lock`s, and has already shot down the subtree.
    ///
    /// Any dentry currently hashed at the destination must have been
    /// unhashed or converted by the caller beforehand.
    pub fn d_move(&self, d: &Arc<Dentry>, new_parent: &Arc<Dentry>, new_name: &str) {
        if let Some(old_parent) = d.parent() {
            old_parent.remove_child_if(&d.name(), d.id());
        }
        debug_assert!(
            new_parent.get_child(new_name).is_none_or(|p| p.is_dead()),
            "destination name still hashed"
        );
        d.set_name_parent(new_name, Some(new_parent.clone()));
        new_parent.insert_child(d.clone());
    }

    /// Unhashes a dentry and every cached descendant (rmdir of a directory
    /// with cached negative children, symlink retargeting, …).
    pub fn unhash_subtree(&self, d: &Arc<Dentry>) {
        let mut stack = vec![d.clone()];
        while let Some(n) = stack.pop() {
            stack.extend(n.children_snapshot());
            self.unhash(&n, false);
        }
    }

    // --- DLHT -------------------------------------------------------------

    fn make_dlht(&self, ns: NsId) -> Arc<Dlht> {
        // Tenant sharding (DESIGN.md §14): the init namespace gets the
        // full-size table; tenant namespaces get the (typically much
        // smaller) per-tenant size so 1000+ namespaces don't cost 1000
        // full bucket arrays — and one tenant's churn stays confined to
        // its own table.
        let buckets = match self.config.dlht_tenant_buckets {
            Some(tb) if ns != 0 => tb,
            _ => self.config.dlht_buckets,
        };
        Dlht::new_with_layout(
            ns,
            buckets,
            self.config.lockfree_reads,
            self.config.dlht_open_addressed,
        )
    }

    /// The DLHT serving namespace `ns`, created on first use. The hit
    /// path is an epoch-protected snapshot scan — no lock.
    ///
    /// A namespace whose table was [retired](Dcache::retire_dlht) gets a
    /// fresh *orphan* table (never registered in the map): a walker
    /// racing teardown publishes into it harmlessly and the table dies
    /// with the walker's handle, instead of leaking a map entry for a
    /// dead namespace forever.
    pub fn dlht_for(&self, ns: NsId) -> Arc<Dlht> {
        if let Some(t) = self.dlhts.get(ns) {
            return t;
        }
        // Serialize lazy creation against retirement: holding the
        // retired-set mutex across the check *and* the insert means a
        // concurrent `retire_dlht` either sees our entry (and removes
        // it) or we see its tombstone (and stay out of the map).
        let retired = self.retired_ns.lock();
        if retired.contains(&ns) {
            return self.make_dlht(ns);
        }
        self.dlhts.get_or_insert_with(ns, || self.make_dlht(ns))
    }

    /// Retires namespace `ns`'s DLHT: unregisters it and tombstones the
    /// namespace id so no racing walker re-creates a map entry. Returns
    /// the table so the caller can account its final footprint; entries
    /// die when the last handle (ours, plus any namespace-memoized
    /// fastpath handles still held by in-flight readers) drops — no
    /// per-entry unlinking, which is what makes teardown O(tenant
    /// table) rather than O(fleet) (DESIGN.md §14).
    pub fn retire_dlht(&self, ns: NsId) -> Option<Arc<Dlht>> {
        let mut retired = self.retired_ns.lock();
        retired.insert(ns);
        self.dlhts.remove(ns)
    }

    /// Live per-namespace tables (diagnostics; the init namespace's
    /// table counts once created).
    pub fn dlht_count(&self) -> usize {
        self.dlhts.len()
    }

    /// Per-namespace DLHT footprints, walked (the `repro space` top-K
    /// tenant report).
    pub fn ns_footprints(&self) -> Vec<(NsId, DlhtFootprint)> {
        self.dlhts
            .entries()
            .into_iter()
            .map(|(ns, t)| (ns, t.footprint()))
            .collect()
    }

    /// Per-namespace DLHT hit/miss counters, as `(ns, hits, misses)`.
    pub fn ns_hit_stats(&self) -> Vec<(NsId, u64, u64)> {
        self.dlhts
            .entries()
            .into_iter()
            .map(|(ns, t)| {
                let (h, m) = t.hit_stats();
                (ns, h, m)
            })
            .collect()
    }

    /// Direct lookup by full-path signature in namespace `ns`.
    pub fn dlht_lookup(&self, ns: NsId, sig: &crate::Signature) -> Option<Arc<Dentry>> {
        let guard = crossbeam_epoch::pin();
        self.dlht_lookup_in(&self.dlht_for(ns), sig, &guard)
    }

    /// Direct lookup against an already-resolved namespace table (the
    /// fastpath's memoized handle — skips the per-namespace map scan of
    /// [`dlht_lookup`](Dcache::dlht_lookup) while keeping its probe
    /// accounting).
    pub fn dlht_lookup_in(
        &self,
        dlht: &Dlht,
        sig: &crate::Signature,
        guard: &crossbeam_epoch::Guard,
    ) -> Option<Arc<Dentry>> {
        let found = dlht.lookup_with(sig, guard);
        let hit = found.is_some();
        self.obs.event(|| TraceEvent::DlhtProbe { hit });
        found
    }

    /// Publishes `dentry` under `sig` in namespace `ns`'s DLHT, evicting
    /// any previous membership (one table, one signature at a time; §4.3).
    /// Returns `false` if the dentry died concurrently.
    pub fn dlht_insert(&self, ns: NsId, sig: crate::Signature, dentry: &Arc<Dentry>) -> bool {
        self.dlht_insert_in(&self.dlht_for(ns), sig, dentry)
    }

    /// [`dlht_insert`](Dcache::dlht_insert) against an already-resolved
    /// table handle (the walk's namespace-memoized one — skips the
    /// per-namespace map scan on every publish).
    pub fn dlht_insert_in(
        &self,
        table: &Arc<Dlht>,
        sig: crate::Signature,
        dentry: &Arc<Dentry>,
    ) -> bool {
        let mut membership = dentry.dlht_entry().lock();
        if dentry.is_dead() {
            return false;
        }
        if let Some((old_table, old_sig)) = membership.take() {
            // An upgrade failure means the old table was retired with
            // its namespace and the entry already died with it.
            if let Some(old) = old_table.upgrade() {
                old.remove_raw(&old_sig, dentry.id());
            }
        }
        table.insert_raw(sig, dentry);
        *membership = Some((Arc::downgrade(table), sig));
        true
    }

    /// Removes `dentry` from whichever DLHT holds it, if any. A no-op
    /// when that table was already retired wholesale by namespace
    /// teardown.
    pub fn dlht_remove(&self, dentry: &Arc<Dentry>) {
        let mut membership = dentry.dlht_entry().lock();
        if let Some((table, sig)) = membership.take() {
            if let Some(t) = table.upgrade() {
                t.remove_raw(&sig, dentry.id());
            }
        }
    }

    // --- PCC ---------------------------------------------------------------

    /// The prefix check cache for `(cred, ns)`, created on first use and
    /// shared by every process with the same credential in the same
    /// namespace (§3.1, §4.1).
    ///
    /// Creation past the configured
    /// [`pcc_max_resident`](DcacheConfig::pcc_max_resident) cap detaches
    /// the least-recently-used resident PCC from its credential — the
    /// cred-count pressure policy of DESIGN.md §14. The recency stamp is
    /// refreshed here (once per slowpath attach, not on the lock-free
    /// fastpath borrow), so fleet-hot creds keep their caches while a
    /// burst of one-shot creds churns through the tail.
    pub fn pcc_for(&self, cred: &Arc<Cred>, ns: NsId) -> Arc<Pcc> {
        let bytes = self.config.pcc_bytes;
        let mut created = false;
        let any = cred.cache_for(ns, || {
            created = true;
            Arc::new(Pcc::new_with_obs(bytes, self.obs.clone()))
        });
        let pcc = any
            .downcast::<Pcc>()
            .expect("cred cache slot held a non-PCC value");
        pcc.touch(self.tick.fetch_add(1, Ordering::Relaxed));
        if created {
            let mut list = self.pccs.lock();
            list.push(PccSlot {
                cred: Arc::downgrade(cred),
                ns,
                pcc: Arc::downgrade(&pcc),
            });
            self.enforce_pcc_cap(&mut list);
        }
        pcc
    }

    /// Detaches the coldest resident PCCs until the registry fits the
    /// configured cap. Caller holds the registry lock.
    fn enforce_pcc_cap(&self, list: &mut Vec<PccSlot>) {
        let Some(cap) = self.config.pcc_max_resident else {
            return;
        };
        if list.len() <= cap {
            return;
        }
        // Dead slots (cred dropped, or cache detached elsewhere) go
        // first and cost nothing.
        list.retain(|s| s.pcc.strong_count() > 0 && s.cred.strong_count() > 0);
        while list.len() > cap {
            let coldest = list
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.pcc.upgrade().map(|p| (i, p.last_used())))
                .min_by_key(|&(_, t)| t);
            let Some((idx, _)) = coldest else { break };
            let slot = list.swap_remove(idx);
            if let Some(cred) = slot.cred.upgrade() {
                cred.remove_cache(slot.ns);
            }
            self.stats.pcc_evictions.fetch_add(1, Ordering::Relaxed);
            self.obs.event(|| TraceEvent::PccEvict);
        }
    }

    /// Detaches every resident PCC keyed by namespace `ns` from its
    /// credential (namespace teardown). Returns `(instances, lines)`:
    /// PCCs detached and the occupied lines they held.
    pub fn detach_pccs_for_ns(&self, ns: NsId) -> (u64, u64) {
        let mut instances = 0u64;
        let mut lines = 0u64;
        let mut list = self.pccs.lock();
        list.retain(|slot| {
            if slot.ns != ns {
                return slot.pcc.strong_count() > 0;
            }
            if let Some(pcc) = slot.pcc.upgrade() {
                instances += 1;
                lines += pcc.occupancy() as u64;
                if let Some(cred) = slot.cred.upgrade() {
                    cred.remove_cache(ns);
                }
            }
            false
        });
        self.stats
            .pccs_detached
            .fetch_add(instances, Ordering::Relaxed);
        (instances, lines)
    }

    /// Resident PCC instances (diagnostics; prunes dead slots).
    pub fn resident_pccs(&self) -> usize {
        let mut list = self.pccs.lock();
        list.retain(|s| s.pcc.strong_count() > 0);
        list.len()
    }

    /// Resident PCC instances and occupied bytes for namespace `ns`
    /// (the `repro space` per-tenant report).
    pub fn pcc_stats_for_ns(&self, ns: NsId) -> (usize, u64) {
        let list = self.pccs.lock();
        let mut n = 0usize;
        let mut bytes = 0u64;
        for slot in list.iter().filter(|s| s.ns == ns) {
            if let Some(pcc) = slot.pcc.upgrade() {
                n += 1;
                bytes += pcc.occupied_bytes() as u64;
            }
        }
        (n, bytes)
    }

    /// Borrows the PCC for `(cred, ns)` under a caller-held epoch guard —
    /// the fastpath variant of [`pcc_for`](Dcache::pcc_for): no nested
    /// pin, no `Arc` clones, no downcast allocation. `None` when no PCC
    /// is attached yet; the caller runs `pcc_for` once to create it.
    pub fn pcc_ref<'g>(
        &self,
        cred: &Cred,
        ns: NsId,
        guard: &'g crossbeam_epoch::Guard,
    ) -> Option<&'g Pcc> {
        let any = cred.cache_ref(ns, guard)?;
        any.downcast_ref::<Pcc>()
    }

    /// Flushes every live PCC (the paper's version-wraparound handling;
    /// also used by cold-cache experiment resets).
    pub fn flush_all_pccs(&self) {
        let mut list = self.pccs.lock();
        list.retain(|slot| match slot.pcc.upgrade() {
            Some(pcc) => {
                pcc.invalidate_all();
                true
            }
            None => false,
        });
    }

    /// Flushes resident PCCs coldest-first until roughly `need_bytes` of
    /// occupied lines have been emptied. Returns the bytes flushed. The
    /// memory-pressure path prefers this to an indiscriminate
    /// [`flush_all_pccs`](Dcache::flush_all_pccs): batch tenants' idle
    /// caches drain before a hot tenant loses a single line.
    fn flush_cold_pccs(&self, need_bytes: u64) -> u64 {
        let mut list = self.pccs.lock();
        let mut live: Vec<(u64, Arc<Pcc>)> = Vec::with_capacity(list.len());
        list.retain(|slot| match slot.pcc.upgrade() {
            Some(pcc) => {
                live.push((pcc.last_used(), pcc));
                true
            }
            None => false,
        });
        drop(list);
        live.sort_unstable_by_key(|&(t, _)| t);
        let mut freed = 0u64;
        for (_, pcc) in live {
            if freed >= need_bytes {
                break;
            }
            let occupied = pcc.occupied_bytes() as u64;
            if occupied == 0 {
                continue;
            }
            pcc.invalidate_all();
            freed += occupied;
        }
        freed
    }

    // --- coherence ----------------------------------------------------------

    /// Current shootdown counter value.
    #[inline]
    pub fn invalidation_counter(&self) -> u64 {
        self.invalidation.load(Ordering::Acquire)
    }

    /// Advances the shootdown counter, preventing concurrent slowpath
    /// walks from publishing stale results (§3.2).
    #[inline]
    pub fn bump_invalidation(&self) -> u64 {
        self.invalidation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Invalidates cached prefix checks for `d` and every cached
    /// descendant by bumping their version counters; with `structural`
    /// also evicts them from the DLHT and clears their resumable hash
    /// states (rename / mount changes — the path strings themselves became
    /// stale). Returns the number of dentries visited — the linear cost
    /// the paper measures in Figure 7.
    pub fn shoot_subtree(&self, d: &Arc<Dentry>, structural: bool) -> u64 {
        let mut visited = 0u64;
        let mut stack = vec![d.clone()];
        while let Some(n) = stack.pop() {
            visited += 1;
            // Mutate (and republish the snapshot) before bumping the seq:
            // a lock-free reader that validates against the post-bump seq
            // must observe the post-shootdown snapshot.
            if structural {
                self.dlht_remove(&n);
                n.clear_hash_state();
            }
            n.bump_seq();
            stack.extend(n.children_snapshot());
        }
        self.stats.shootdowns.fetch_add(1, Ordering::Relaxed);
        self.stats
            .shootdown_visits
            .fetch_add(visited, Ordering::Relaxed);
        visited
    }

    // --- eviction -------------------------------------------------------------

    fn maybe_shrink(&self) {
        let live = self.live() as usize;
        if live > self.config.capacity {
            self.shrink(live - self.config.capacity + 64);
        }
        if let Some(budget) = self.config.mem_budget_bytes {
            // Cheap under-estimate (dentry structs only — no DLHT walk on
            // the alloc path). Once it trips, `shrink_to_bytes` does exact
            // accounting and evicts well below the trip point, so this
            // does not retrigger on every allocation.
            if live * std::mem::size_of::<Dentry>() > budget {
                self.shrink_to_bytes(budget as u64);
            }
        }
    }

    /// Evicts up to `target` unused leaf dentries in approximate LRU
    /// order. Returns how many were evicted.
    pub fn shrink(&self, target: usize) -> usize {
        let mut evicted_total = 0;
        // A few passes peel subtrees bottom-up: evicting leaves exposes
        // their parents as the next pass's leaves.
        for _ in 0..4 {
            if evicted_total >= target {
                break;
            }
            let budget = (target - evicted_total) * 8 + 32;
            let evicted = self.lru.scan(budget, |d| {
                if self.try_evict(d) {
                    EvictOutcome::Evicted
                } else {
                    EvictOutcome::Keep
                }
            });
            if evicted == 0 {
                break;
            }
            evicted_total += evicted;
        }
        evicted_total
    }

    fn try_evict(&self, d: &Arc<Dentry>) -> bool {
        // Evictable: hashed, a leaf, with no external references. The two
        // expected strong references are the parent's children map and the
        // scan's own handle. Root dentries (no parent) are pinned.
        if d.parent().is_none() || !d.has_no_children() {
            return false;
        }
        if Arc::strong_count(d) != 2 {
            return false;
        }
        self.unhash(d, true);
        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// The cache's *reclaimable* footprint in bytes: dentry structs, DLHT
    /// chain nodes or bucket groups (walked — the fixed bucket arrays
    /// survive any shrink and are excluded; see [`Dcache::space_report`]
    /// for the full footprint), and occupied PCC lines. This is what a
    /// memory-pressure shrink can actually free, minus the pinned floor
    /// (roots, cwds, open files).
    pub fn reclaimable_bytes(&self) -> u64 {
        let mut node_bytes = 0u64;
        for t in self.dlhts.values() {
            node_bytes += t.footprint().reclaimable_bytes();
        }
        let mut pcc_bytes = 0u64;
        {
            let mut list = self.pccs.lock();
            list.retain(|s| s.pcc.strong_count() > 0);
            for slot in list.iter() {
                if let Some(pcc) = slot.pcc.upgrade() {
                    pcc_bytes += pcc.occupied_bytes() as u64;
                }
            }
        }
        self.live() * std::mem::size_of::<Dentry>() as u64 + node_bytes + pcc_bytes
    }

    /// Memory-pressure entry point: reclaims until the footprint measured
    /// by [`Dcache::reclaimable_bytes`] is at most `target_bytes`, or
    /// nothing evictable remains. Dentries go first (leaf-first LRU passes
    /// through the ordinary `unhash(reclaim)` coherence path — their DLHT
    /// chain nodes go with them); if the cache is still over budget the
    /// PCCs are flushed. Returns the bytes actually freed.
    ///
    /// This is the [`Shrinker`](crate::Shrinker) callback the kernel's
    /// registry drives; it is also safe to call directly.
    pub fn shrink_to_bytes(&self, target_bytes: u64) -> u64 {
        let before = self.reclaimable_bytes();
        if before <= target_bytes {
            return 0;
        }
        let per = std::mem::size_of::<Dentry>() as u64;
        // Bounded passes: pinned dentries can make the target unreachable.
        for _ in 0..8 {
            let now = self.reclaimable_bytes();
            if now <= target_bytes {
                break;
            }
            let goal = ((now - target_bytes) / per + 1) as usize;
            if self.shrink(goal) == 0 {
                break;
            }
        }
        let over = self.reclaimable_bytes().saturating_sub(target_bytes);
        if over > 0 {
            // Dentries alone couldn't get there (pinned floor): drain
            // PCC lines, coldest caches first, falling back to a full
            // flush only if the cold tail wasn't enough.
            self.flush_cold_pccs(over);
            if self.reclaimable_bytes() > target_bytes {
                self.flush_all_pccs();
            }
        }
        let freed = before.saturating_sub(self.reclaimable_bytes());
        self.stats.shrinks.fetch_add(1, Ordering::Relaxed);
        self.stats
            .shrink_bytes_freed
            .fetch_add(freed, Ordering::Relaxed);
        self.obs.event(|| TraceEvent::Shrink {
            target_bytes,
            freed_bytes: freed,
        });
        freed
    }

    /// Evicts everything evictable (the dcache half of a cold-cache
    /// reset). Pinned dentries (roots, cwds, open files) survive.
    pub fn drop_unused(&self) -> usize {
        let mut total = 0;
        loop {
            let n = self.shrink(usize::MAX / 16);
            if n == 0 {
                return total;
            }
            total += n;
        }
    }

    // --- reporting ---------------------------------------------------------

    /// Space-overhead report (§6.1). DLHT numbers come from walking the
    /// real buckets: exact head, node, and group sizes, not stand-ins.
    pub fn space_report(&self) -> SpaceReport {
        let mut dlht_bytes = 0usize;
        let mut dlht_buckets = 0usize;
        let mut dlht_nodes = 0u64;
        let mut dlht_groups = 0u64;
        let mut dlht_entries = 0u64;
        let mut dlht_bucket_bytes = 0usize;
        let mut dlht_node_bytes = 0usize;
        let mut dlht_group_bytes = 0usize;
        for t in self.dlhts.values() {
            let fp = t.footprint();
            dlht_bytes += fp.total_bytes();
            dlht_buckets += fp.buckets;
            dlht_nodes += fp.nodes;
            dlht_groups += fp.groups;
            dlht_entries += fp.entries;
            dlht_bucket_bytes = fp.bucket_bytes;
            dlht_node_bytes = fp.node_bytes;
            dlht_group_bytes = fp.group_bytes;
        }
        let pccs = {
            let mut list = self.pccs.lock();
            list.retain(|s| s.pcc.strong_count() > 0);
            list.len()
        };
        SpaceReport {
            dentry_bytes: std::mem::size_of::<Dentry>(),
            live_dentries: self.live(),
            dlht_bytes,
            dlht_bucket_bytes,
            dlht_node_bytes,
            dlht_group_bytes,
            dlht_buckets,
            dlht_nodes,
            dlht_groups,
            dlht_entries,
            snap_slab_bytes: crate::snapslab::footprint().total_bytes(),
            pcc_bytes_each: Pcc::new(self.config.pcc_bytes).approx_bytes(),
            pccs,
        }
    }

    /// DLHT bucket occupancy aggregated over namespaces (§6.5).
    pub fn dlht_occupancy(&self) -> [u64; 4] {
        let mut total = [0u64; 4];
        for t in self.dlhts.values() {
            let o = t.occupancy();
            for i in 0..4 {
                total[i] += o[i];
            }
        }
        total
    }
}

impl crate::shrinker::Shrinker for Dcache {
    fn name(&self) -> &'static str {
        "dcache"
    }

    fn count_bytes(&self) -> u64 {
        self.reclaimable_bytes()
    }

    fn shrink(&self, target_bytes: u64) -> u64 {
        self.shrink_to_bytes(target_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_blockdev::{CachedDisk, DiskConfig};
    use dc_fs::{FileSystem, MemFs};

    fn cache(config: DcacheConfig) -> Arc<Dcache> {
        Dcache::new(config.with_seed(42))
    }

    fn root_inode(dc: &Dcache) -> Arc<Inode> {
        let disk = Arc::new(CachedDisk::new(DiskConfig {
            capacity_blocks: 4096,
            ..Default::default()
        }));
        let fs = MemFs::mkfs(
            disk,
            dc_fs::MemFsConfig {
                max_inodes: 4096,
                ..Default::default()
            },
        )
        .unwrap();
        let attr = fs.getattr(fs.root_ino()).unwrap();
        let _ = dc;
        Inode::new(1, fs, attr)
    }

    fn neg(dc: &Dcache, parent: &Arc<Dentry>, name: &str) -> Arc<Dentry> {
        dc.d_alloc(parent, name, DentryState::Negative(NegKind::Enoent))
    }

    #[test]
    fn alloc_and_lookup_children() {
        let dc = cache(DcacheConfig::optimized());
        let root = dc.new_root(1, root_inode(&dc));
        let etc = neg(&dc, &root, "etc");
        assert_eq!(dc.d_lookup(&root, "etc").unwrap().id(), etc.id());
        assert!(dc.d_lookup(&root, "usr").is_none());
        assert_eq!(dc.live(), 2);
    }

    #[test]
    fn unhash_removes_and_is_idempotent() {
        let dc = cache(DcacheConfig::optimized());
        let root = dc.new_root(1, root_inode(&dc));
        let d = neg(&dc, &root, "x");
        dc.unhash(&d, false);
        assert!(dc.d_lookup(&root, "x").is_none());
        assert!(d.is_dead());
        let live = dc.live();
        dc.unhash(&d, false);
        assert_eq!(dc.live(), live, "double unhash must not double count");
    }

    #[test]
    fn reclaim_unhash_breaks_completeness() {
        let dc = cache(DcacheConfig::optimized());
        let root = dc.new_root(1, root_inode(&dc));
        let d = neg(&dc, &root, "x");
        root.set_flag(FLAG_DIR_COMPLETE);
        let gen_before = root.child_evict_gen();
        dc.unhash(&d, true);
        assert!(!root.flag(FLAG_DIR_COMPLETE));
        assert!(root.child_evict_gen() > gen_before);
        // A deletion-driven unhash leaves completeness alone.
        let e = neg(&dc, &root, "y");
        root.set_flag(FLAG_DIR_COMPLETE);
        dc.unhash(&e, false);
        assert!(root.flag(FLAG_DIR_COMPLETE));
    }

    #[test]
    fn dlht_membership_moves_between_signatures() {
        let dc = cache(DcacheConfig::optimized());
        let root = dc.new_root(1, root_inode(&dc));
        let d = neg(&dc, &root, "f");
        let sig_a = dc.key.hash_components([b"a".as_slice()]);
        let sig_b = dc.key.hash_components([b"b".as_slice()]);
        assert!(dc.dlht_insert(0, sig_a, &d));
        assert!(dc.dlht_lookup(0, &sig_a).is_some());
        // Re-publishing under another namespace moves the single entry.
        assert!(dc.dlht_insert(7, sig_b, &d));
        assert!(dc.dlht_lookup(0, &sig_a).is_none());
        assert_eq!(dc.dlht_lookup(7, &sig_b).unwrap().id(), d.id());
        dc.dlht_remove(&d);
        assert!(dc.dlht_lookup(7, &sig_b).is_none());
    }

    #[test]
    fn shoot_subtree_counts_and_invalidates() {
        let dc = cache(DcacheConfig::optimized());
        let root = dc.new_root(1, root_inode(&dc));
        let a = neg(&dc, &root, "a");
        let b = neg(&dc, &a, "b");
        let c = neg(&dc, &b, "c");
        let sig = dc.key.hash_components([b"a".as_slice(), b"b".as_slice()]);
        dc.dlht_insert(0, sig, &b);
        b.store_hash_state(dc.key.root_state());
        let seqs = [a.seq(), b.seq(), c.seq()];
        let visited = dc.shoot_subtree(&a, true);
        assert_eq!(visited, 3);
        assert_eq!(a.seq(), seqs[0] + 1);
        assert_eq!(b.seq(), seqs[1] + 1);
        assert_eq!(c.seq(), seqs[2] + 1);
        assert!(dc.dlht_lookup(0, &sig).is_none());
        assert!(b.hash_state().is_none());
        // Non-structural shootdown bumps seqs but keeps DLHT entries.
        dc.dlht_insert(0, sig, &b);
        dc.shoot_subtree(&a, false);
        assert!(dc.dlht_lookup(0, &sig).is_some());
    }

    #[test]
    fn make_negative_drops_stale_children() {
        let dc = cache(DcacheConfig::optimized());
        let root = dc.new_root(1, root_inode(&dc));
        let f = neg(&dc, &root, "file");
        let deep = dc.d_alloc(&f, "below", DentryState::Negative(NegKind::Enotdir));
        dc.make_negative(&f, NegKind::Enoent);
        assert_eq!(f.neg_kind(), Some(NegKind::Enoent));
        assert!(deep.is_dead());
        assert!(f.get_child("below").is_none());
    }

    #[test]
    fn capacity_pressure_evicts_leaves_only() {
        let dc = cache(DcacheConfig::optimized().with_capacity(64));
        let root = dc.new_root(1, root_inode(&dc));
        // Build 16 dirs × 16 children; interior dirs must survive while
        // they have cached children.
        let mut dirs = Vec::new();
        for i in 0..16 {
            let d = neg(&dc, &root, &format!("d{i}"));
            for j in 0..16 {
                neg(&dc, &d, &format!("f{j}"));
            }
            dirs.push(d);
        }
        assert!(
            dc.live() <= 64 + 64 + 1,
            "eviction kept the cache near capacity (live={})",
            dc.live()
        );
        // Held references (dirs vec) are never evicted.
        for d in &dirs {
            assert!(!d.is_dead());
        }
    }

    #[test]
    fn drop_unused_empties_everything_unpinned() {
        let dc = cache(DcacheConfig::optimized());
        let root = dc.new_root(1, root_inode(&dc));
        {
            let a = neg(&dc, &root, "a");
            let _b = neg(&dc, &a, "b");
            let _c = neg(&dc, &root, "c");
        }
        assert_eq!(dc.live(), 4);
        let evicted = dc.drop_unused();
        assert_eq!(evicted, 3);
        assert_eq!(dc.live(), 1, "only the pinned root remains");
        assert!(!root.is_dead());
    }

    #[test]
    fn shrink_to_bytes_reclaims_to_budget() {
        let dc = cache(DcacheConfig::optimized());
        let root = dc.new_root(1, root_inode(&dc));
        for i in 0..512 {
            neg(&dc, &root, &format!("f{i}"));
        }
        let before = dc.reclaimable_bytes();
        let budget = before / 4;
        let freed = dc.shrink_to_bytes(budget);
        assert!(freed > 0);
        assert!(dc.reclaimable_bytes() <= budget);
        assert!(!root.is_dead(), "pinned root survives pressure");
        assert_eq!(dc.stats.shrinks.load(Ordering::Relaxed), 1);
        assert_eq!(
            dc.stats.shrink_bytes_freed.load(Ordering::Relaxed),
            freed,
            "freed-bytes counter matches the return value"
        );
    }

    #[test]
    fn shrink_to_bytes_under_budget_is_free() {
        let dc = cache(DcacheConfig::optimized());
        let root = dc.new_root(1, root_inode(&dc));
        neg(&dc, &root, "only");
        assert_eq!(dc.shrink_to_bytes(u64::MAX), 0);
        assert_eq!(dc.stats.shrinks.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn shrink_to_bytes_flushes_pccs_as_last_resort() {
        let dc = cache(DcacheConfig::optimized());
        let root = dc.new_root(1, root_inode(&dc));
        let held: Vec<_> = (0..64).map(|i| neg(&dc, &root, &format!("f{i}"))).collect();
        let cred = dc_cred::Cred::user(1000, 1000);
        let pcc = dc.pcc_for(&cred, 0);
        for d in &held {
            pcc.insert(d.id(), d.seq());
        }
        assert!(pcc.occupied_bytes() > 0);
        // Every dentry is pinned by `held`, so only the PCC can give
        // memory back.
        dc.shrink_to_bytes(0);
        assert_eq!(pcc.occupied_bytes(), 0, "PCC lines were reclaimed");
        for d in &held {
            assert!(!d.is_dead(), "pinned dentries survive");
        }
    }

    #[test]
    fn mem_budget_triggers_auto_shrink() {
        let budget = 64 * 1024;
        let dc = cache(DcacheConfig::optimized().with_mem_budget(budget));
        let root = dc.new_root(1, root_inode(&dc));
        for i in 0..4096 {
            neg(&dc, &root, &format!("f{i}"));
        }
        assert!(
            dc.stats.shrinks.load(Ordering::Relaxed) > 0,
            "budget pressure fired at least once"
        );
        assert!(
            dc.live() as usize * std::mem::size_of::<Dentry>() <= budget,
            "cache stayed within budget (live={})",
            dc.live()
        );
    }

    #[test]
    fn dcache_serves_the_shrinker_trait() {
        use crate::shrinker::{Shrinker, ShrinkerRegistry};
        let dc = cache(DcacheConfig::optimized());
        let root = dc.new_root(1, root_inode(&dc));
        for i in 0..256 {
            neg(&dc, &root, &format!("f{i}"));
        }
        let reg = ShrinkerRegistry::new();
        reg.register(dc.clone());
        assert_eq!(reg.count_bytes(), dc.reclaimable_bytes());
        let before = dc.reclaimable_bytes();
        let freed = reg.pressure(before / 2);
        assert!(freed > 0);
        assert!(dc.reclaimable_bytes() <= before / 2);
        assert_eq!(Shrinker::name(&*dc), "dcache");
    }

    #[test]
    fn pcc_sharing_follows_cred_and_namespace() {
        let dc = cache(DcacheConfig::optimized());
        let cred = dc_cred::Cred::user(1000, 1000);
        let p1 = dc.pcc_for(&cred, 0);
        let p2 = dc.pcc_for(&cred, 0);
        assert!(Arc::ptr_eq(&p1, &p2), "same cred+ns share a PCC");
        let p3 = dc.pcc_for(&cred, 1);
        assert!(!Arc::ptr_eq(&p1, &p3), "namespaces get private PCCs");
        let other = dc_cred::Cred::user(1000, 1000);
        let p4 = dc.pcc_for(&other, 0);
        assert!(
            !Arc::ptr_eq(&p1, &p4),
            "distinct cred objects get their own"
        );
        // Global flush reaches them all.
        p1.insert(5, 1);
        p4.insert(6, 1);
        dc.flush_all_pccs();
        assert!(!p1.check(5, 1));
        assert!(!p4.check(6, 1));
    }

    #[test]
    fn invalidation_counter_monotone() {
        let dc = cache(DcacheConfig::optimized());
        let a = dc.invalidation_counter();
        let b = dc.bump_invalidation();
        assert!(b > a);
        assert_eq!(dc.invalidation_counter(), b);
    }
}
