//! Batch-scoped epoch pinning.
//!
//! A lock-free fastpath resolution pins the reclamation epoch for its
//! own duration ([`crate::Dcache`] read paths). That is the right
//! granularity for a syscall, but a network server executing a batch of
//! N lookups would pay the pin publication (a `SeqCst` store + fence on
//! first entry) and the per-pin accounting N times. [`Dcache::batch_pin`]
//! amortizes it: the worker pins once around the whole batch, and every
//! nested per-lookup pin collapses to a thread-local nesting increment
//! inside the vendored epoch implementation while the per-pin
//! stats/trace accounting is skipped entirely (the batch pin recorded
//! one `EpochPin` for all of them).
//!
//! The guard is strictly RAII and thread-local: it must be dropped on
//! the thread that created it (enforced by `!Send`), and nesting batch
//! pins is allowed (only the outermost records).
//!
//! [`Dcache::batch_pin`]: crate::Dcache::batch_pin

use std::cell::Cell;
use std::marker::PhantomData;

thread_local! {
    /// Depth of active [`BatchPin`]s on this thread.
    static BATCH_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Whether the calling thread is inside a [`BatchPin`] scope. Read by
/// the per-lookup fastpath to skip per-pin accounting (the epoch itself
/// is still pinned re-entrantly — nested pins are a nesting-counter
/// bump, not a fence).
#[inline]
pub fn batch_pin_active() -> bool {
    BATCH_DEPTH.with(|d| d.get() > 0)
}

/// RAII guard for a batch-scoped epoch pin (see [`Dcache::batch_pin`]).
///
/// Holds the reclamation epoch pinned: retired dentry snapshots and
/// DLHT nodes observed by any lookup inside the scope stay allocated
/// until the guard drops. Do not hold across blocking waits — a pinned
/// epoch delays reclamation globally.
///
/// [`Dcache::batch_pin`]: crate::Dcache::batch_pin
pub struct BatchPin {
    guard: Option<crossbeam_epoch::Guard>,
    /// `Guard` is already `!Send`, but make the contract explicit and
    /// independent of the vendored implementation.
    _not_send: PhantomData<*const ()>,
}

impl BatchPin {
    pub(crate) fn new(guard: crossbeam_epoch::Guard) -> BatchPin {
        BATCH_DEPTH.with(|d| d.set(d.get() + 1));
        BatchPin {
            guard: Some(guard),
            _not_send: PhantomData,
        }
    }
}

impl Drop for BatchPin {
    fn drop(&mut self) {
        self.guard.take();
        BATCH_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

impl std::fmt::Debug for BatchPin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchPin").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dcache, DcacheConfig};
    use std::sync::atomic::Ordering;

    #[test]
    fn batch_pin_nests_and_unwinds() {
        let dc = Dcache::new(DcacheConfig::optimized());
        assert!(!batch_pin_active());
        {
            let _outer = dc.batch_pin();
            assert!(batch_pin_active());
            {
                let _inner = dc.batch_pin();
                assert!(batch_pin_active());
            }
            assert!(batch_pin_active());
        }
        assert!(!batch_pin_active());
    }

    #[test]
    fn only_outermost_batch_pin_is_accounted() {
        let dc = Dcache::new(DcacheConfig::optimized());
        let before = dc.stats.epoch_pins.load(Ordering::Relaxed);
        {
            let _outer = dc.batch_pin();
            let _inner = dc.batch_pin();
        }
        let after = dc.stats.epoch_pins.load(Ordering::Relaxed);
        assert_eq!(after - before, 1, "nested batch pins double-count");
    }

    #[test]
    fn other_threads_are_unaffected() {
        let dc = Dcache::new(DcacheConfig::optimized());
        let _pin = dc.batch_pin();
        std::thread::scope(|s| {
            s.spawn(|| assert!(!batch_pin_active()));
        });
    }
}
