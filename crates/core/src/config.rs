//! Feature toggles: baseline ⇄ optimized ⇄ ablations.

/// Directory-cache configuration.
///
/// The defaults of [`DcacheConfig::baseline`] model the unmodified Linux
/// 3.14 dcache the paper compares against; [`DcacheConfig::optimized`]
/// enables every optimization from the paper. Individual flags support the
/// ablations in the evaluation (e.g. running the fastpath without deep
/// negative dentries reproduces the `neg-d` discussion in §6.1).
#[derive(Debug, Clone)]
pub struct DcacheConfig {
    /// Direct-lookup fastpath: DLHT + PCC + signatures (§3).
    pub fastpath: bool,
    /// Directory completeness caching (§5.1).
    pub dir_completeness: bool,
    /// Keep negative dentries after `unlink`/`rename`, even of in-use
    /// files (§5.2, "Renaming and Deletion").
    pub neg_on_unlink: bool,
    /// Create negative dentries on pseudo file systems (§5.2).
    pub neg_in_pseudo: bool,
    /// Deep negative dentries: negative children under negative dentries
    /// and `ENOTDIR` children under regular files (§5.2).
    pub deep_negative: bool,
    /// Plan 9 lexical dot-dot semantics instead of POSIX per-component
    /// re-checking (§4.2; compared in Figure 6).
    pub lexical_dotdot: bool,
    /// Negative dentries at all (all Linux versions have them; disabling
    /// approximates a much older kernel for the Figure 2 sweep).
    pub negative_dentries: bool,
    /// Force the slowpath to take per-dentry locks hand-over-hand instead
    /// of seqlock-validated shared reads (approximates pre-RCU-walk
    /// kernels in the Figure 2 sweep).
    pub lock_walk: bool,
    /// Prefix check cache size in bytes per credential (paper: 64 KB).
    pub pcc_bytes: usize,
    /// DLHT bucket count per namespace (paper: 2^16); must be a power of
    /// two ≤ 2^16.
    pub dlht_buckets: usize,
    /// DLHT bucket count for *non-init* namespaces (tenant sharding,
    /// DESIGN.md §14). `None` sizes every namespace's table with
    /// [`dlht_buckets`](DcacheConfig::dlht_buckets); at container-fleet
    /// scale a full-size bucket array per tenant is untenable (2^16
    /// buckets × 8 B × 1000 namespaces = 512 MB of fixed arrays), so
    /// fleets set a smaller power of two here.
    pub dlht_tenant_buckets: Option<usize>,
    /// Cap on resident PCC instances across all credentials (the
    /// cred-count pressure policy, DESIGN.md §14). `None` is unbounded —
    /// fine for a handful of creds, not for 10k. Past the cap, creating
    /// a PCC detaches the least-recently-attached cold one from its
    /// credential.
    pub pcc_max_resident: Option<usize>,
    /// Maximum cached dentries before LRU eviction kicks in.
    pub capacity: usize,
    /// Soft byte budget for the cache's reclaimable footprint (dentries +
    /// DLHT chain nodes + occupied PCC lines). `None` disables budget
    /// tracking; with a budget set, allocations that push past it trigger
    /// [`Dcache::shrink_to_bytes`](crate::Dcache::shrink_to_bytes), the
    /// same path a registered memory-pressure shrinker drives.
    pub mem_budget_bytes: Option<usize>,
    /// Signature hash key seed; `None` draws boot-time entropy.
    pub hash_seed: Option<u64>,
    /// Synthetic worst case for Figure 6: execute the fastpath but force
    /// a PCC miss, paying hash + DLHT probe + full slowpath every time.
    pub fastpath_always_miss: bool,
    /// Lock-free read side: epoch-protected DLHT probes and snapshot
    /// dentry field reads validated by per-dentry sequence counters (the
    /// RCU analog, DESIGN.md §5). Disabling it routes readers through the
    /// per-bucket/per-field locks — the pre-refactor behavior, kept as an
    /// ablation for the Figure 8 before/after columns.
    pub lockfree_reads: bool,
    /// Wide sighash mixing: process 8 path bytes per multiply-accumulate
    /// step across all four lanes over the interleaved key schedule
    /// (DESIGN.md §13). Disabling falls back to the byte-at-a-time
    /// oracle — the layout ablation's "before" column; signatures are
    /// bit-identical either way.
    pub sighash_wide: bool,
    /// Open-addressed DLHT layout: cache-line-aligned bucket groups with
    /// inline signature tags instead of per-entry pointer-chained nodes
    /// (DESIGN.md §13). Both layouts share the epoch/CAS discipline.
    pub dlht_open_addressed: bool,
    /// Slab-allocated `DentrySnap` snapshots: republished snapshots come
    /// from a lock-free slab instead of per-mutation `Box` allocations,
    /// and the hot fields are packed into the first cache line
    /// (DESIGN.md §13).
    pub snap_slab: bool,
    /// Per-thread lookup scratch arena: path components and the pending
    /// stack in the fastwalk live in thread-local inline buffers, so a
    /// warm hit performs zero heap allocation (DESIGN.md §13).
    pub scratch_arena: bool,
}

impl DcacheConfig {
    /// The unmodified-kernel comparison point (Linux 3.14 behavior).
    pub fn baseline() -> Self {
        DcacheConfig {
            fastpath: false,
            dir_completeness: false,
            neg_on_unlink: false,
            neg_in_pseudo: false,
            deep_negative: false,
            lexical_dotdot: false,
            negative_dentries: true,
            lock_walk: false,
            pcc_bytes: 64 * 1024,
            dlht_buckets: 1 << 16,
            dlht_tenant_buckets: None,
            pcc_max_resident: None,
            capacity: 1 << 20,
            mem_budget_bytes: None,
            hash_seed: None,
            fastpath_always_miss: false,
            lockfree_reads: true,
            sighash_wide: true,
            dlht_open_addressed: true,
            snap_slab: true,
            scratch_arena: true,
        }
    }

    /// Disables the lock-free read side (pre-refactor locked reads).
    pub fn with_locked_reads(mut self) -> Self {
        self.lockfree_reads = false;
        self
    }

    /// Selects the wide (8-bytes-per-step) or byte-at-a-time oracle
    /// sighash mixing path (layout ablation).
    pub fn with_sighash_wide(mut self, enabled: bool) -> Self {
        self.sighash_wide = enabled;
        self
    }

    /// Selects the open-addressed bucket-group or pointer-chained DLHT
    /// layout (layout ablation).
    pub fn with_open_addressed(mut self, enabled: bool) -> Self {
        self.dlht_open_addressed = enabled;
        self
    }

    /// Selects slab-allocated packed snapshots or per-mutation boxed
    /// snapshots (layout ablation).
    pub fn with_snap_slab(mut self, enabled: bool) -> Self {
        self.snap_slab = enabled;
        self
    }

    /// Selects the thread-local scratch arena or per-lookup heap vectors
    /// in the fastwalk (layout ablation).
    pub fn with_scratch_arena(mut self, enabled: bool) -> Self {
        self.scratch_arena = enabled;
        self
    }

    /// All four memory-layout overhauls disabled — the pre-overhaul
    /// hot path, the "before" row of the layout-attribution table.
    pub fn pre_layout(self) -> Self {
        self.with_sighash_wide(false)
            .with_open_addressed(false)
            .with_snap_slab(false)
            .with_scratch_arena(false)
    }

    /// Every optimization from the paper enabled.
    pub fn optimized() -> Self {
        DcacheConfig {
            fastpath: true,
            dir_completeness: true,
            neg_on_unlink: true,
            neg_in_pseudo: true,
            deep_negative: true,
            ..Self::baseline()
        }
    }

    /// Optimized, with Plan 9 lexical dot-dot semantics (the `*` variants
    /// in Figure 6).
    pub fn optimized_lexical() -> Self {
        DcacheConfig {
            lexical_dotdot: true,
            ..Self::optimized()
        }
    }

    /// The Figure 6 "fastpath miss + slowpath" synthetic.
    pub fn optimized_always_miss() -> Self {
        DcacheConfig {
            fastpath_always_miss: true,
            ..Self::optimized()
        }
    }

    /// Approximates a pre-RCU-walk kernel (hand-over-hand locking on every
    /// lookup) for the Figure 2 version sweep.
    pub fn legacy_lock_walk() -> Self {
        DcacheConfig {
            lock_walk: true,
            ..Self::baseline()
        }
    }

    /// Fixes the signature hash seed (tests).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.hash_seed = Some(seed);
        self
    }

    /// Caps the dentry cache (eviction experiments).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets a soft byte budget for the cache's reclaimable footprint
    /// (memory-pressure experiments).
    pub fn with_mem_budget(mut self, bytes: usize) -> Self {
        self.mem_budget_bytes = Some(bytes);
        self
    }

    /// Sizes non-init namespaces' DLHTs at `buckets` (tenant sharding;
    /// the init namespace keeps the full `dlht_buckets` table).
    pub fn with_tenant_buckets(mut self, buckets: usize) -> Self {
        self.dlht_tenant_buckets = Some(buckets);
        self
    }

    /// Caps resident PCC instances fleet-wide (cred-count pressure).
    pub fn with_pcc_max_resident(mut self, cap: usize) -> Self {
        self.pcc_max_resident = Some(cap);
        self
    }

    /// Validates invariants (power-of-two tables, sane sizes).
    pub fn validate(&self) -> Result<(), String> {
        if !self.dlht_buckets.is_power_of_two() || self.dlht_buckets > (1 << 16) {
            return Err(format!(
                "dlht_buckets must be a power of two ≤ 65536, got {}",
                self.dlht_buckets
            ));
        }
        if let Some(tb) = self.dlht_tenant_buckets {
            if !tb.is_power_of_two() || tb > (1 << 16) {
                return Err(format!(
                    "dlht_tenant_buckets must be a power of two <= 65536, got {tb}"
                ));
            }
        }
        if self.pcc_max_resident == Some(0) {
            return Err("pcc_max_resident must be at least 1".to_string());
        }
        if self.pcc_bytes < 1024 {
            return Err(format!("pcc_bytes too small: {}", self.pcc_bytes));
        }
        if self.capacity < 16 {
            return Err(format!("capacity too small: {}", self.capacity));
        }
        if let Some(budget) = self.mem_budget_bytes {
            if budget < 4096 {
                return Err(format!("mem_budget_bytes too small: {budget}"));
            }
        }
        Ok(())
    }
}

impl Default for DcacheConfig {
    fn default() -> Self {
        Self::optimized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        let b = DcacheConfig::baseline();
        let o = DcacheConfig::optimized();
        assert!(!b.fastpath && o.fastpath);
        assert!(!b.dir_completeness && o.dir_completeness);
        assert!(b.negative_dentries && o.negative_dentries);
        assert!(!o.lexical_dotdot);
        assert!(DcacheConfig::optimized_lexical().lexical_dotdot);
        assert!(DcacheConfig::legacy_lock_walk().lock_walk);
        // Both presets default to lock-free reads; the ablation helper
        // switches a config back to locked reads.
        assert!(b.lockfree_reads && o.lockfree_reads);
        assert!(!DcacheConfig::optimized().with_locked_reads().lockfree_reads);
        // Layout overhauls default on everywhere; pre_layout turns all
        // four off for the attribution table's "before" row.
        assert!(b.sighash_wide && b.dlht_open_addressed && b.snap_slab && b.scratch_arena);
        let pre = DcacheConfig::optimized().pre_layout();
        assert!(
            !pre.sighash_wide && !pre.dlht_open_addressed && !pre.snap_slab && !pre.scratch_arena
        );
        assert!(pre.fastpath, "pre_layout keeps the paper features");
    }

    #[test]
    fn validation_catches_bad_tables() {
        let mut c = DcacheConfig::baseline();
        assert!(c.validate().is_ok());
        c.dlht_buckets = 1000;
        assert!(c.validate().is_err());
        c.dlht_buckets = 1 << 17;
        assert!(c.validate().is_err());
        c.dlht_buckets = 1 << 10;
        assert!(c.validate().is_ok());
        c.pcc_bytes = 8;
        assert!(c.validate().is_err());
        c.pcc_bytes = 64 * 1024;
        c.mem_budget_bytes = Some(100);
        assert!(c.validate().is_err());
        c.mem_budget_bytes = Some(64 * 1024);
        assert!(c.validate().is_ok());
    }
}
