//! The VFS-level in-memory inode.

use crate::seqlock::SeqCell;
use dc_fs::{FileSystem, FileType, FsResult, InodeAttr, SetAttr};
use std::sync::Arc;

/// Identity of a mounted superblock instance.
pub type SbId = u64;

/// An in-memory inode: the VFS's cached view of one file-system object.
///
/// Dentries map paths onto these (§2.2). The attribute block is refreshed
/// from the low-level file system on metadata-changing operations, so
/// `stat` on a cache hit never calls below the VFS — the property that
/// makes dcache hit latency the dominant cost the paper attacks.
pub struct Inode {
    /// Owning superblock.
    pub sb: SbId,
    /// Inode number within the file system.
    pub ino: u64,
    /// The low-level file system.
    pub fs: Arc<dyn FileSystem>,
    // Seqlock-published so `stat` on the lock-free read path copies the
    // attribute block without acquiring any lock (DESIGN.md §5).
    attr: SeqCell<InodeAttr>,
}

impl Inode {
    /// Wraps freshly-fetched attributes.
    pub fn new(sb: SbId, fs: Arc<dyn FileSystem>, attr: InodeAttr) -> Arc<Inode> {
        Arc::new(Inode {
            sb,
            ino: attr.ino,
            fs,
            attr: SeqCell::new(attr),
        })
    }

    /// Snapshot of the current attributes (lock-free).
    pub fn attr(&self) -> InodeAttr {
        self.attr.read()
    }

    /// The object type (immutable over an inode's life).
    pub fn ftype(&self) -> FileType {
        self.attr.read().ftype
    }

    /// True for directories.
    pub fn is_dir(&self) -> bool {
        self.ftype() == FileType::Directory
    }

    /// Overwrites the cached attributes (after a low-level refresh).
    pub fn store_attr(&self, attr: InodeAttr) {
        debug_assert_eq!(attr.ino, self.ino);
        self.attr.write(attr);
    }

    /// Applies `setattr` on the file system and refreshes the cache.
    pub fn setattr(&self, changes: SetAttr) -> FsResult<InodeAttr> {
        let fresh = self.fs.setattr(self.ino, changes)?;
        self.store_attr(fresh);
        Ok(fresh)
    }
}

impl std::fmt::Debug for Inode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let a = self.attr();
        f.debug_struct("Inode")
            .field("sb", &self.sb)
            .field("ino", &self.ino)
            .field("ftype", &a.ftype)
            .field("mode", &format_args!("{:o}", a.mode))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_blockdev::{CachedDisk, DiskConfig};
    use dc_fs::MemFs;

    fn fs_with_file() -> (Arc<MemFs>, InodeAttr) {
        let disk = Arc::new(CachedDisk::new(DiskConfig {
            capacity_blocks: 4096,
            ..Default::default()
        }));
        let fs = MemFs::mkfs(
            disk,
            dc_fs::MemFsConfig {
                max_inodes: 4096,
                ..Default::default()
            },
        )
        .unwrap();
        let a = fs.create(fs.root_ino(), "f", 0o644, 7, 7).unwrap();
        (fs, a)
    }

    #[test]
    fn snapshot_and_type() {
        let (fs, a) = fs_with_file();
        let ino = Inode::new(1, fs, a);
        assert_eq!(ino.attr().mode, 0o644);
        assert_eq!(ino.ftype(), FileType::Regular);
        assert!(!ino.is_dir());
    }

    #[test]
    fn setattr_refreshes_cache() {
        let (fs, a) = fs_with_file();
        let ino = Inode::new(1, fs, a);
        ino.setattr(SetAttr {
            mode: Some(0o600),
            ..Default::default()
        })
        .unwrap();
        assert_eq!(ino.attr().mode, 0o600);
    }
}
