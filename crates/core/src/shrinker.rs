//! Memory-pressure shrinkers: Linux-`register_shrinker`-style callbacks
//! that reclaim cache memory down to a byte budget.
//!
//! The dcache is the canonical client ([`crate::Dcache`] implements
//! [`Shrinker`]): under pressure it LRU-evicts leaf dentries — which
//! drops their DLHT chain nodes with them — and, if still over budget,
//! forgets PCC lines. Every reclaim path goes through the ordinary
//! coherence machinery (`unhash(reclaim = true)`: descendants before
//! ancestors, completeness breaks, DLHT removal *then* seq bump), so a
//! lock-free reader racing a shrink either validates a pre-eviction
//! snapshot or retries — never observes freed memory (the model test in
//! `crates/dst/tests/shrink_model.rs` explores those interleavings).

use parking_lot::Mutex;
use std::sync::{Arc, Weak};

/// A reclaimable cache. The two methods mirror the kernel's
/// `count_objects`/`scan_objects` split, in bytes rather than objects.
pub trait Shrinker: Send + Sync {
    /// Short stable name for reports.
    fn name(&self) -> &'static str;

    /// Approximate *reclaimable* footprint right now, in bytes. Fixed
    /// allocations that survive a full shrink (bucket arrays, pinned
    /// roots) are excluded — this is what `shrink` can actually get rid
    /// of.
    fn count_bytes(&self) -> u64;

    /// Reclaims toward a reclaimable footprint of at most
    /// `target_bytes`. Best effort (pinned objects stay); returns the
    /// bytes actually freed.
    fn shrink(&self, target_bytes: u64) -> u64;
}

/// Registered shrinkers, held weakly so registration never extends a
/// cache's lifetime (the kernel's `unregister_shrinker` is our `Drop`).
#[derive(Default)]
pub struct ShrinkerRegistry {
    entries: Mutex<Vec<Weak<dyn Shrinker>>>,
}

impl ShrinkerRegistry {
    pub fn new() -> ShrinkerRegistry {
        ShrinkerRegistry::default()
    }

    /// Registers a shrinker for future pressure events.
    pub fn register(&self, shrinker: Arc<dyn Shrinker>) {
        self.entries.lock().push(Arc::downgrade(&shrinker));
    }

    /// Live registered shrinkers.
    pub fn len(&self) -> usize {
        let mut entries = self.entries.lock();
        entries.retain(|w| w.strong_count() > 0);
        entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total reclaimable bytes across live shrinkers.
    pub fn count_bytes(&self) -> u64 {
        self.live().iter().map(|s| s.count_bytes()).sum()
    }

    /// Applies memory pressure: asks every live shrinker to reclaim so
    /// the *combined* reclaimable footprint fits `budget_bytes`, each
    /// shrinker targeting a share of the budget proportional to its
    /// current footprint. Returns total bytes freed.
    pub fn pressure(&self, budget_bytes: u64) -> u64 {
        let live = self.live();
        let counts: Vec<u64> = live.iter().map(|s| s.count_bytes()).collect();
        let total: u64 = counts.iter().sum();
        if total <= budget_bytes {
            return 0;
        }
        let mut freed = 0u64;
        for (shrinker, count) in live.iter().zip(&counts) {
            // Proportional share; u128 so total * budget cannot overflow.
            let target = if total == 0 {
                0
            } else {
                ((*count as u128) * (budget_bytes as u128) / (total as u128)) as u64
            };
            freed += shrinker.shrink(target);
        }
        freed
    }

    fn live(&self) -> Vec<Arc<dyn Shrinker>> {
        let mut entries = self.entries.lock();
        entries.retain(|w| w.strong_count() > 0);
        entries.iter().filter_map(|w| w.upgrade()).collect()
    }
}

impl std::fmt::Debug for ShrinkerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShrinkerRegistry")
            .field("registered", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct FakeCache {
        bytes: AtomicU64,
        floor: u64,
    }

    impl Shrinker for FakeCache {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn count_bytes(&self) -> u64 {
            self.bytes.load(Ordering::Relaxed)
        }
        fn shrink(&self, target: u64) -> u64 {
            let cur = self.bytes.load(Ordering::Relaxed);
            let next = target.max(self.floor).min(cur);
            self.bytes.store(next, Ordering::Relaxed);
            cur - next
        }
    }

    fn fake(bytes: u64, floor: u64) -> Arc<FakeCache> {
        Arc::new(FakeCache {
            bytes: AtomicU64::new(bytes),
            floor,
        })
    }

    #[test]
    fn no_pressure_under_budget() {
        let reg = ShrinkerRegistry::new();
        let c = fake(1000, 0);
        reg.register(c.clone());
        assert_eq!(reg.pressure(2000), 0);
        assert_eq!(c.count_bytes(), 1000);
    }

    #[test]
    fn pressure_splits_budget_proportionally() {
        let reg = ShrinkerRegistry::new();
        let big = fake(3000, 0);
        let small = fake(1000, 0);
        reg.register(big.clone());
        reg.register(small.clone());
        let freed = reg.pressure(1000);
        assert_eq!(freed, 3000);
        assert_eq!(big.count_bytes(), 750);
        assert_eq!(small.count_bytes(), 250);
    }

    #[test]
    fn pinned_floor_limits_reclaim() {
        let reg = ShrinkerRegistry::new();
        let c = fake(1000, 600);
        reg.register(c.clone());
        let freed = reg.pressure(100);
        assert_eq!(freed, 400);
        assert_eq!(c.count_bytes(), 600);
    }

    #[test]
    fn dropped_shrinkers_are_forgotten() {
        let reg = ShrinkerRegistry::new();
        let c = fake(1000, 0);
        reg.register(c.clone());
        assert_eq!(reg.len(), 1);
        drop(c);
        assert_eq!(reg.len(), 0);
        assert_eq!(reg.pressure(0), 0);
    }
}
