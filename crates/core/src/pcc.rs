//! The Prefix Check Cache (§3.1).

use crate::dentry::DentryId;
use crate::dsync::{AtomicU32, AtomicU64, Ordering};
use dc_obs::{Recorder, TraceEvent};
use parking_lot::Mutex;

/// Associativity of each PCC set.
const WAYS: usize = 8;

/// Logical bytes per entry used for sizing: a dentry id and a sequence
/// number (the paper's entries are 16 bytes after pointer-bit compression;
/// ours store the full 64-bit never-reused id, which plays the role of
/// pointer + reallocation generation). The per-entry version word adds a
/// small constant overhead reported by [`Pcc::approx_bytes`].
const ENTRY_BYTES: usize = 16;

/// Sentinel id marking an empty entry.
const INVALID: u64 = 0;

struct Entry {
    /// Per-entry seqlock: odd = write in progress.
    ver: AtomicU32,
    id: AtomicU64,
    seq: AtomicU64,
}

impl Entry {
    /// Consistent snapshot of `(id, seq)`, or `None` if a writer is active.
    #[inline]
    fn read(&self) -> Option<(u64, u64)> {
        let v1 = self.ver.load(Ordering::Acquire);
        if v1 & 1 != 0 {
            return None;
        }
        let id = self.id.load(Ordering::Acquire);
        let seq = self.seq.load(Ordering::Acquire);
        let v2 = self.ver.load(Ordering::Acquire);
        (v1 == v2).then_some((id, seq))
    }

    /// Publishes `(id, seq)`; the caller holds the set's writer lock.
    #[inline]
    fn write(&self, id: u64, seq: u64) {
        self.ver.fetch_add(1, Ordering::AcqRel); // odd: writer active
        self.id.store(id, Ordering::Release);
        self.seq.store(seq, Ordering::Release);
        self.ver.fetch_add(1, Ordering::Release); // even: published
    }
}

struct Set {
    ways: [Entry; WAYS],
    /// Round-robin victim pointer (cheap LRU approximation).
    clock: AtomicU32,
    /// Serializes writers within the set; readers never take it.
    write_lock: Mutex<()>,
}

/// A per-credential cache of successful prefix checks.
///
/// An entry `(dentry_id, seq)` asserts: *at the moment the owning
/// credential last walked to this dentry from the root, it held search
/// permission on every ancestor directory, and the dentry's version
/// counter was `seq`.* The fastpath accepts the memoized result only if
/// the dentry's **current** counter still equals `seq`; any permission or
/// structure change along the path bumps the counter and thereby
/// invalidates every PCC entry for the subtree without touching the PCCs
/// themselves (§3.2).
///
/// The table is set-associative. Reads are lock-free (per-entry version
/// validation guarantees a consistent `(id, seq)` pair or a retry-as-miss);
/// writes serialize per set on a tiny mutex, which is off the lookup
/// critical path — exactly the paper's trade of penalizing infrequent
/// mutations to keep hits cheap.
pub struct Pcc {
    sets: Box<[Set]>,
    mask: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Monotonic attach stamp maintained by the dcache's eviction policy
    /// (bumped only on the `pcc_for` slowpath, never on fastpath borrows).
    last_used: AtomicU64,
    obs: Recorder,
}

impl Pcc {
    /// A PCC of roughly `bytes` logical capacity (the paper uses 64 KB).
    pub fn new(bytes: usize) -> Pcc {
        Pcc::new_with_obs(bytes, Recorder::disabled())
    }

    /// A PCC that additionally reports each check to `obs` as a
    /// `PccCheck { hit, stale }` span.
    pub fn new_with_obs(bytes: usize, obs: Recorder) -> Pcc {
        let entries = (bytes / ENTRY_BYTES).max(WAYS);
        let nsets = (entries / WAYS).next_power_of_two();
        let sets = (0..nsets)
            .map(|_| Set {
                ways: std::array::from_fn(|_| Entry {
                    ver: AtomicU32::new(0),
                    id: AtomicU64::new(INVALID),
                    seq: AtomicU64::new(0),
                }),
                clock: AtomicU32::new(0),
                write_lock: Mutex::new(()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Pcc {
            sets,
            mask: (nsets - 1) as u64,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            last_used: AtomicU64::new(0),
            obs,
        }
    }

    #[inline]
    fn set_of(&self, id: DentryId) -> &Set {
        // Fibonacci hashing spreads sequential ids across sets.
        let h = id.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32;
        &self.sets[(h & self.mask) as usize]
    }

    /// Is a prefix check for `id` memoized at exactly version `cur_seq`?
    #[inline]
    pub fn check(&self, id: DentryId, cur_seq: u64) -> bool {
        debug_assert_ne!(id, INVALID);
        let set = self.set_of(id);
        let mut stale = false;
        for e in &set.ways {
            if let Some((eid, eseq)) = e.read() {
                if eid == id {
                    if eseq == cur_seq {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.obs.event(|| TraceEvent::PccCheck {
                            hit: true,
                            stale: false,
                        });
                        return true;
                    }
                    // Stale version: a definitive miss for this dentry.
                    stale = true;
                    break;
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.obs
            .event(|| TraceEvent::PccCheck { hit: false, stale });
        false
    }

    /// Memoizes a successful prefix check for `id` at version `seq`.
    pub fn insert(&self, id: DentryId, seq: u64) {
        debug_assert_ne!(id, INVALID);
        let set = self.set_of(id);
        let _g = set.write_lock.lock();
        // Refresh in place if the dentry already has a way; otherwise use
        // an empty way; otherwise evict round-robin.
        let mut victim = None;
        for (i, e) in set.ways.iter().enumerate() {
            let eid = e.id.load(Ordering::Acquire);
            if eid == id {
                victim = Some(i);
                break;
            }
            if eid == INVALID && victim.is_none() {
                victim = Some(i);
            }
        }
        let victim =
            victim.unwrap_or_else(|| (set.clock.fetch_add(1, Ordering::Relaxed) as usize) % WAYS);
        set.ways[victim].write(id, seq);
    }

    /// Removes any memoized result for `id` (used when a directory
    /// reference loses access and must not be re-validated, §3.2).
    pub fn forget(&self, id: DentryId) {
        let set = self.set_of(id);
        let _g = set.write_lock.lock();
        for e in &set.ways {
            if e.id.load(Ordering::Acquire) == id {
                e.write(INVALID, 0);
            }
        }
    }

    /// Drops every memoized result (the paper's wraparound flush).
    pub fn invalidate_all(&self) {
        for set in self.sets.iter() {
            let _g = set.write_lock.lock();
            for e in &set.ways {
                e.write(INVALID, 0);
            }
        }
    }

    /// Total logical entries this PCC can hold.
    pub fn capacity(&self) -> usize {
        self.sets.len() * WAYS
    }

    /// Memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.sets.len() * std::mem::size_of::<Set>()
    }

    /// `(hits, misses)` counters.
    pub fn hit_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Resets the hit/miss counters.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Records a use of this PCC at logical time `t` (a dcache-global
    /// attach tick). Called from the slowpath attach only so the
    /// lock-free check path stays store-free.
    #[inline]
    pub fn touch(&self, t: u64) {
        self.last_used.store(t, Ordering::Relaxed);
    }

    /// Logical time of the last [`touch`](Pcc::touch) — the LRU key the
    /// dcache's resident-PCC cap evicts by.
    pub fn last_used(&self) -> u64 {
        self.last_used.load(Ordering::Relaxed)
    }

    /// Logical bytes held by currently-published entries — the
    /// reclaimable share of this PCC under memory pressure (the table
    /// itself is fixed; flushing only empties the ways). O(capacity).
    pub fn occupied_bytes(&self) -> usize {
        self.occupancy() * ENTRY_BYTES
    }

    /// Number of currently-published entries (diagnostics; O(capacity)).
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.ways.iter())
            .filter(|e| e.id.load(Ordering::Relaxed) != INVALID)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_check_hits_on_matching_seq() {
        let pcc = Pcc::new(64 * 1024);
        pcc.insert(42, 7);
        assert!(pcc.check(42, 7));
        assert!(!pcc.check(42, 8), "stale seq must miss");
        assert!(!pcc.check(43, 7), "unknown dentry must miss");
    }

    #[test]
    fn refresh_updates_seq_in_place() {
        let pcc = Pcc::new(64 * 1024);
        pcc.insert(42, 1);
        pcc.insert(42, 2);
        assert!(!pcc.check(42, 1));
        assert!(pcc.check(42, 2));
        // In-place refresh should not consume extra ways.
        assert_eq!(pcc.occupancy(), 1);
    }

    #[test]
    fn forget_removes_entry() {
        let pcc = Pcc::new(4096);
        pcc.insert(5, 9);
        assert!(pcc.check(5, 9));
        pcc.forget(5);
        assert!(!pcc.check(5, 9));
    }

    #[test]
    fn capacity_matches_requested_bytes() {
        let pcc = Pcc::new(64 * 1024);
        assert_eq!(pcc.capacity(), 4096); // 64 KB / 16 B
        let small = Pcc::new(1024);
        assert_eq!(small.capacity(), 64);
    }

    #[test]
    fn eviction_within_a_set_is_bounded() {
        let pcc = Pcc::new(1024); // 8 sets × 8 ways
        for id in 1..=1000u64 {
            pcc.insert(id, 0);
        }
        assert!(pcc.occupancy() <= pcc.capacity());
        let resident = (990..=1000u64).filter(|&id| pcc.check(id, 0)).count();
        assert!(resident >= 5, "only {resident} of the last ids resident");
    }

    #[test]
    fn invalidate_all_flushes() {
        let pcc = Pcc::new(4096);
        for id in 1..100u64 {
            pcc.insert(id, 3);
        }
        pcc.invalidate_all();
        assert_eq!(pcc.occupancy(), 0);
        assert!(!pcc.check(50, 3));
    }

    #[test]
    fn concurrent_check_insert_never_validates_wrong_pair() {
        use std::sync::Arc;
        let pcc = Arc::new(Pcc::new(1024));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        // Writer: republishes id=7 only ever with seq=100, interleaved
        // with churn on other ids (including seq=99 values) that recycle
        // the same ways.
        let w = {
            let pcc = pcc.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    pcc.insert(7, 100);
                    pcc.insert(8 + (i % 64), 99);
                    i += 1;
                }
            })
        };
        // Reader: (7, 99) was never inserted and must never validate.
        for _ in 0..200_000 {
            assert!(
                !pcc.check(7, 99),
                "validated a (id, seq) pair that was never inserted"
            );
        }
        stop.store(true, Ordering::Relaxed);
        w.join().unwrap();
        assert!(pcc.check(7, 100));
    }
}
