//! Fault plans and the runtime injector compiled from them.

use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::rng::SplitMix64;

/// Which side of the device an access is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoOp {
    Read,
    Write,
}

/// What the injector did to an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The access fails, but the block heals after a bounded burst:
    /// a retry loop deeper than the burst always recovers.
    Transient,
    /// The block is broken for good; every later access fails too.
    Permanent,
    /// The read "succeeds" but returns fewer bytes than a block —
    /// a torn read the page cache must detect and treat as transient.
    ShortRead,
    /// The access succeeds after an extra simulated delay of this many
    /// nanoseconds (a stalled device, not an error).
    LatencySpikeNs(u64),
}

/// One declarative rule: *which* accesses can fault, *how*, and *how
/// often*. Rules are evaluated in plan order; the first one that fires
/// wins for that access.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// Restrict to reads or writes; `None` matches both.
    pub op: Option<IoOp>,
    /// Restrict to a block range; `None` matches every block.
    pub blocks: Option<Range<u64>>,
    /// What happens when the rule fires.
    pub kind: FaultKind,
    /// Per-access firing probability in `[0, 1]`.
    pub probability: f64,
    /// For [`FaultKind::Transient`]: total consecutive failures the
    /// triggered block serves (including the triggering access) before
    /// it heals. Ignored for other kinds. Clamped to at least 1.
    pub burst: u32,
    /// Stop firing after this many triggers; `None` is unlimited.
    pub max_fires: Option<u64>,
}

impl FaultRule {
    pub fn new(kind: FaultKind, probability: f64) -> FaultRule {
        FaultRule {
            op: None,
            blocks: None,
            kind,
            probability,
            burst: 1,
            max_fires: None,
        }
    }

    pub fn on(mut self, op: IoOp) -> FaultRule {
        self.op = Some(op);
        self
    }

    pub fn blocks(mut self, range: Range<u64>) -> FaultRule {
        self.blocks = Some(range);
        self
    }

    pub fn burst(mut self, n: u32) -> FaultRule {
        self.burst = n.max(1);
        self
    }

    pub fn max_fires(mut self, n: u64) -> FaultRule {
        self.max_fires = Some(n);
        self
    }

    fn matches(&self, op: IoOp, block: u64) -> bool {
        self.op.is_none_or(|o| o == op) && self.blocks.as_ref().is_none_or(|r| r.contains(&block))
    }
}

/// A seeded, declarative fault schedule. Build one, [`FaultPlan::build`]
/// it into a [`FaultInjector`], and hand that to the block device.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    max_total: Option<u64>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
            max_total: None,
        }
    }

    /// Add an arbitrary rule.
    pub fn rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Transient errors on `op` with per-access probability `p`; each
    /// triggered block fails `burst` consecutive accesses, then heals.
    pub fn transient(self, op: IoOp, p: f64, burst: u32) -> FaultPlan {
        self.rule(FaultRule::new(FaultKind::Transient, p).on(op).burst(burst))
    }

    /// Permanent errors on `op` with per-access probability `p`.
    pub fn permanent(self, op: IoOp, p: f64) -> FaultPlan {
        self.rule(FaultRule::new(FaultKind::Permanent, p).on(op))
    }

    /// Torn reads with per-access probability `p` (reads only).
    pub fn short_read(self, p: f64) -> FaultPlan {
        self.rule(FaultRule::new(FaultKind::ShortRead, p).on(IoOp::Read))
    }

    /// Latency spikes of `spike_ns` on `op` with probability `p`.
    pub fn latency_spike(self, op: IoOp, p: f64, spike_ns: u64) -> FaultPlan {
        self.rule(FaultRule::new(FaultKind::LatencySpikeNs(spike_ns), p).on(op))
    }

    /// Stop injecting anything once `n` faults (of any kind) have
    /// fired — the knob the "seeded N-fault campaign" tests use.
    pub fn limit(mut self, n: u64) -> FaultPlan {
        self.max_total = Some(n);
        self
    }

    /// The standard campaign used by `repro faults` and the integration
    /// tests: recoverable faults only (transient bursts shorter than the
    /// default retry budget, torn reads, latency spikes), capped at
    /// `total_faults` injections so runs of any length are comparable.
    pub fn campaign(seed: u64, total_faults: u64) -> FaultPlan {
        FaultPlan::new(seed)
            .transient(IoOp::Read, 0.02, 2)
            .transient(IoOp::Write, 0.01, 1)
            .short_read(0.005)
            .latency_spike(IoOp::Read, 0.005, 2_000_000)
            .limit(total_faults)
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Compile into the runtime injector (initially disarmed).
    pub fn build(self) -> FaultInjector {
        FaultInjector {
            rng: Mutex::new(SplitMix64::new(self.seed)),
            armed: AtomicBool::new(false),
            bursts: Mutex::new(HashMap::new()),
            broken: Mutex::new(HashSet::new()),
            cooldown: Mutex::new(HashSet::new()),
            stats: CountersInner::default(),
            plan: self,
        }
    }
}

#[derive(Default)]
struct CountersInner {
    accesses: AtomicU64,
    transient: AtomicU64,
    permanent: AtomicU64,
    short_reads: AtomicU64,
    latency_spikes: AtomicU64,
}

/// Snapshot of what an injector has done so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Armed accesses evaluated (faulted or not).
    pub accesses: u64,
    pub transient: u64,
    pub permanent: u64,
    pub short_reads: u64,
    pub latency_spikes: u64,
}

impl FaultStats {
    /// Total faults injected, across all kinds.
    pub fn total(&self) -> u64 {
        self.transient + self.permanent + self.short_reads + self.latency_spikes
    }
}

/// The runtime object the block device consults on every access.
///
/// Starts disarmed: [`FaultInjector::decide`] returns `None` until
/// [`FaultInjector::arm`] is called, so a device can carry an injector
/// permanently and only misbehave during a campaign window. Decisions
/// are serialized through one seeded RNG, so a single-threaded workload
/// replays bit-for-bit from the plan seed.
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Mutex<SplitMix64>,
    armed: AtomicBool,
    /// Remaining transient failures per triggered block (burst decay).
    bursts: Mutex<HashMap<u64, u32>>,
    /// Blocks a permanent fault has broken for good.
    broken: Mutex<HashSet<u64>>,
    /// Blocks whose transient cause just resolved: the next access to a
    /// cooled-down block is guaranteed clean. This turns "burst <
    /// max_attempts" into a hard recoverability guarantee — without it,
    /// an independent rule draw could re-fail a block mid-retry-chain
    /// and push a recoverable fault past the backoff budget.
    cooldown: Mutex<HashSet<u64>>,
    stats: CountersInner,
}

impl FaultInjector {
    /// Start injecting faults.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Stop injecting. Active bursts and broken blocks heal immediately
    /// (a disarmed injector never fails an access), which is exactly
    /// the "recovery" phase the campaign measures.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
        self.bursts.lock().clear();
        self.broken.lock().clear();
        self.cooldown.lock().clear();
    }

    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults injected so far, per kind.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            accesses: self.stats.accesses.load(Ordering::Relaxed),
            transient: self.stats.transient.load(Ordering::Relaxed),
            permanent: self.stats.permanent.load(Ordering::Relaxed),
            short_reads: self.stats.short_reads.load(Ordering::Relaxed),
            latency_spikes: self.stats.latency_spikes.load(Ordering::Relaxed),
        }
    }

    fn fired(&self) -> u64 {
        let s = self.stats();
        s.total()
    }

    /// The device-side hook: should this access fault, and how?
    ///
    /// Burst decay runs first — a block in the middle of a transient
    /// burst keeps failing (deterministically) until the burst drains,
    /// regardless of probabilities, which is what lets a retry loop
    /// deeper than the burst always win.
    pub fn decide(&self, op: IoOp, block: u64) -> Option<FaultKind> {
        if !self.is_armed() {
            return None;
        }
        self.stats.accesses.fetch_add(1, Ordering::Relaxed);

        // The global cap wins over everything, including in-flight
        // bursts and broken blocks: once the budget is spent the device
        // behaves perfectly, so an N-fault campaign injects exactly N.
        if self
            .plan
            .max_total
            .is_some_and(|limit| self.fired() >= limit)
        {
            return None;
        }

        if self.broken.lock().contains(&block) {
            self.stats.permanent.fetch_add(1, Ordering::Relaxed);
            return Some(FaultKind::Permanent);
        }

        {
            let mut bursts = self.bursts.lock();
            if let Some(remaining) = bursts.get_mut(&block) {
                *remaining -= 1;
                if *remaining == 0 {
                    bursts.remove(&block);
                    self.cooldown.lock().insert(block);
                }
                self.stats.transient.fetch_add(1, Ordering::Relaxed);
                return Some(FaultKind::Transient);
            }
        }

        // A block whose transient cause just resolved gets one clean
        // access before the rules may fire on it again — the retrying
        // caller is guaranteed to get through.
        if self.cooldown.lock().remove(&block) {
            return None;
        }

        for rule in &self.plan.rules {
            if !rule.matches(op, block) {
                continue;
            }
            if rule
                .max_fires
                .is_some_and(|limit| self.fires_of(rule.kind) >= limit)
            {
                continue;
            }
            let draw = self.rng.lock().next_f64();
            if draw >= rule.probability {
                continue;
            }
            match rule.kind {
                FaultKind::Transient => {
                    // The triggering access is failure 1 of `burst`; a
                    // one-shot burst cools down immediately.
                    if rule.burst > 1 {
                        self.bursts.lock().insert(block, rule.burst - 1);
                    } else {
                        self.cooldown.lock().insert(block);
                    }
                    self.stats.transient.fetch_add(1, Ordering::Relaxed);
                }
                FaultKind::Permanent => {
                    self.broken.lock().insert(block);
                    self.stats.permanent.fetch_add(1, Ordering::Relaxed);
                }
                FaultKind::ShortRead => {
                    // Torn transfers are retried by the page cache; cool
                    // the block down so the retry succeeds.
                    self.cooldown.lock().insert(block);
                    self.stats.short_reads.fetch_add(1, Ordering::Relaxed);
                }
                FaultKind::LatencySpikeNs(_) => {
                    self.stats.latency_spikes.fetch_add(1, Ordering::Relaxed);
                }
            }
            return Some(rule.kind);
        }
        None
    }

    fn fires_of(&self, kind: FaultKind) -> u64 {
        match kind {
            FaultKind::Transient => self.stats.transient.load(Ordering::Relaxed),
            FaultKind::Permanent => self.stats.permanent.load(Ordering::Relaxed),
            FaultKind::ShortRead => self.stats.short_reads.load(Ordering::Relaxed),
            FaultKind::LatencySpikeNs(_) => self.stats.latency_spikes.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("seed", &self.plan.seed)
            .field("armed", &self.is_armed())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_injector_never_faults() {
        let inj = FaultPlan::new(1).transient(IoOp::Read, 1.0, 2).build();
        for b in 0..100 {
            assert_eq!(inj.decide(IoOp::Read, b), None);
        }
        assert_eq!(inj.stats().total(), 0);
        assert_eq!(inj.stats().accesses, 0);
    }

    #[test]
    fn decisions_replay_from_seed() {
        let run = |seed: u64| -> Vec<Option<FaultKind>> {
            let inj = FaultPlan::new(seed)
                .transient(IoOp::Read, 0.3, 2)
                .short_read(0.1)
                .latency_spike(IoOp::Write, 0.2, 500)
                .build();
            inj.arm();
            (0..200)
                .map(|i| {
                    let op = if i % 3 == 0 { IoOp::Write } else { IoOp::Read };
                    inj.decide(op, i % 17)
                })
                .collect()
        };
        assert_eq!(run(0xABCD), run(0xABCD));
        assert_ne!(run(0xABCD), run(0xDCBA));
    }

    #[test]
    fn transient_burst_fails_exactly_burst_times_then_heals() {
        let inj = FaultPlan::new(9)
            .rule(
                FaultRule::new(FaultKind::Transient, 1.0)
                    .burst(3)
                    .max_fires(3),
            )
            .build();
        inj.arm();
        // p = 1.0 triggers on the first access; burst = 3 total failures.
        assert_eq!(inj.decide(IoOp::Read, 5), Some(FaultKind::Transient));
        assert_eq!(inj.decide(IoOp::Read, 5), Some(FaultKind::Transient));
        assert_eq!(inj.decide(IoOp::Read, 5), Some(FaultKind::Transient));
        // Burst drained and max_fires reached: the block has healed.
        assert_eq!(inj.decide(IoOp::Read, 5), None);
        assert_eq!(inj.stats().transient, 3);
    }

    #[test]
    fn cooldown_makes_transients_recoverable_even_at_p1() {
        // Worst case: every eligible access faults. A retrying caller
        // must still get through — the access after a drained burst (or
        // a one-shot fault, or a short read) is guaranteed clean.
        let inj = FaultPlan::new(11).transient(IoOp::Read, 1.0, 2).build();
        inj.arm();
        for _ in 0..10 {
            assert_eq!(inj.decide(IoOp::Read, 7), Some(FaultKind::Transient));
            assert_eq!(inj.decide(IoOp::Read, 7), Some(FaultKind::Transient));
            assert_eq!(inj.decide(IoOp::Read, 7), None, "cooled-down access");
        }
        let short = FaultPlan::new(12).short_read(1.0).build();
        short.arm();
        assert_eq!(short.decide(IoOp::Read, 3), Some(FaultKind::ShortRead));
        assert_eq!(short.decide(IoOp::Read, 3), None, "retry gets through");
        assert_eq!(short.decide(IoOp::Read, 3), Some(FaultKind::ShortRead));
    }

    #[test]
    fn permanent_fault_sticks_until_disarm() {
        let inj = FaultPlan::new(2).permanent(IoOp::Write, 1.0).build();
        inj.arm();
        assert_eq!(inj.decide(IoOp::Write, 7), Some(FaultKind::Permanent));
        // Broken for reads too — the block itself is bad.
        assert_eq!(inj.decide(IoOp::Read, 7), Some(FaultKind::Permanent));
        inj.disarm();
        assert_eq!(inj.decide(IoOp::Write, 7), None);
        inj.arm();
        // Re-arming starts from a healed device (but the RNG stream
        // continues, so the schedule stays deterministic overall).
        assert_eq!(inj.decide(IoOp::Read, 8), None);
    }

    #[test]
    fn block_range_and_op_filters_apply() {
        let inj = FaultPlan::new(3)
            .rule(
                FaultRule::new(FaultKind::Transient, 1.0)
                    .on(IoOp::Read)
                    .blocks(10..20),
            )
            .build();
        inj.arm();
        assert_eq!(inj.decide(IoOp::Read, 9), None);
        assert_eq!(inj.decide(IoOp::Write, 15), None);
        assert_eq!(inj.decide(IoOp::Read, 15), Some(FaultKind::Transient));
    }

    #[test]
    fn global_limit_caps_total_faults() {
        let inj = FaultPlan::new(4)
            .transient(IoOp::Read, 1.0, 1)
            .limit(5)
            .build();
        inj.arm();
        for b in 0..100 {
            inj.decide(IoOp::Read, b);
        }
        assert_eq!(inj.stats().total(), 5);
    }

    #[test]
    fn campaign_is_recoverable_and_bounded() {
        let inj = FaultPlan::campaign(0x5EED, 50).build();
        inj.arm();
        let mut faults = 0u64;
        for i in 0..200_000u64 {
            let op = if i % 8 == 0 { IoOp::Write } else { IoOp::Read };
            if let Some(k) = inj.decide(op, i % 1024) {
                faults += 1;
                assert_ne!(k, FaultKind::Permanent, "campaign must be recoverable");
            }
        }
        assert_eq!(faults, 50, "limit() must cap the campaign exactly");
        assert_eq!(inj.stats().total(), 50);
        // Transient bursts must fit inside the default retry budget.
        let max_burst = inj
            .plan()
            .rules()
            .iter()
            .filter(|r| matches!(r.kind, FaultKind::Transient))
            .map(|r| r.burst)
            .max()
            .unwrap();
        assert!(max_burst < crate::RetryPolicy::default().max_attempts);
    }
}
