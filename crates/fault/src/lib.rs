//! dc-fault — deterministic, seeded fault injection for the block layer.
//!
//! The paper's coherence story (§3.2) rests on *eviction*: DLHT entries
//! and PCC lines are dropped — never updated — and the slow path is
//! always available to rebuild them. A production directory cache must
//! therefore keep working when the layers under it misbehave: device
//! reads fail transiently or permanently, reads come back torn, and
//! latency spikes turn a warm miss into a slow one. This crate provides
//! the machinery to *provoke* those conditions on purpose and
//! deterministically:
//!
//! - [`FaultPlan`] — a declarative, seeded description of which I/O
//!   operations fail, how, and how often. Building it compiles to a
//!   [`FaultInjector`].
//! - [`FaultInjector`] — the armed runtime object `dc-blockdev` consults
//!   on every device access. Decisions are a pure function of the seed
//!   and the access sequence, so a failing campaign replays exactly.
//! - [`RetryPolicy`] — the bounded exponential-backoff schedule the page
//!   cache uses to ride out transient errors.
//!
//! Determinism: the injector's RNG is split per rule from the plan seed,
//! and transient faults are tracked as per-block *bursts* (a triggered
//! block fails the next `burst` accesses, then heals), so a retry loop
//! with more attempts than the burst length always recovers — the
//! property the campaign tests assert.
//!
//! # Example
//!
//! ```
//! use dc_fault::{FaultPlan, IoOp, FaultKind};
//!
//! let injector = FaultPlan::new(0x5EED)
//!     .transient(IoOp::Read, 0.01, 2)   // 1% of reads fail twice, then heal
//!     .latency_spike(IoOp::Read, 0.001, 2_000_000)
//!     .build();
//! injector.arm();
//! // 100 reads of block 7: some may fault, deterministically per seed.
//! let mut faults = 0;
//! for _ in 0..100 {
//!     if injector.decide(IoOp::Read, 7).is_some() {
//!         faults += 1;
//!     }
//! }
//! assert_eq!(faults, injector.stats().total());
//! ```

mod plan;
mod retry;
mod rng;

pub use plan::{FaultInjector, FaultKind, FaultPlan, FaultRule, FaultStats, IoOp};
pub use retry::RetryPolicy;
