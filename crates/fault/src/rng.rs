//! Minimal splitmix64 generator.
//!
//! Kept local so the crate stays dependency-light: the injector must be
//! usable from `dc-blockdev` (the bottom of the dependency graph)
//! without pulling the workloads' RNG shim along.

/// splitmix64: tiny, fast, and statistically fine for fault sampling.
#[derive(Clone, Debug)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`, 53 bits of precision.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
