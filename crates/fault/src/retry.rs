//! Bounded exponential-backoff schedule for transient I/O errors.
//!
//! The page cache consults this policy when a device access fails with
//! a *transient* error: it retries up to `max_attempts` total attempts,
//! sleeping (in simulated time) an exponentially growing interval
//! between them. Permanent errors are never retried.

/// Retry schedule: attempt `i` (0-based) is followed, if it fails
/// transiently, by a backoff of `base_ns * multiplier^i`, capped at
/// `max_backoff_ns`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "no retries").
    pub max_attempts: u32,
    /// Backoff after the first failed attempt.
    pub base_ns: u64,
    /// Growth factor between consecutive backoffs.
    pub multiplier: u32,
    /// Upper bound on any single backoff interval.
    pub max_backoff_ns: u64,
}

impl Default for RetryPolicy {
    /// 4 attempts with 10 µs / 40 µs / 160 µs backoffs: deep enough to
    /// outlast the standard campaign's transient bursts (≤ 3 failures
    /// per block), shallow enough that a permanently broken block
    /// surfaces as `EIO` in well under a millisecond of simulated time.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_ns: 10_000,
            multiplier: 4,
            max_backoff_ns: 1_000_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: every transient error propagates
    /// immediately, as if the fault were permanent.
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff to charge after failed attempt `attempt` (0-based).
    /// Saturates rather than overflowing for absurd attempt counts.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let factor = (self.multiplier as u64).saturating_pow(attempt);
        self.base_ns.saturating_mul(factor).min(self.max_backoff_ns)
    }

    /// Total simulated time an access can spend backing off before the
    /// policy gives up — the "backoff budget" the campaign asserts
    /// transient recoveries stay within.
    pub fn total_backoff_budget_ns(&self) -> u64 {
        (0..self.max_attempts.saturating_sub(1))
            .map(|i| self.backoff_ns(i))
            .fold(0u64, u64::saturating_add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_grows_exponentially() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ns(0), 10_000);
        assert_eq!(p.backoff_ns(1), 40_000);
        assert_eq!(p.backoff_ns(2), 160_000);
        assert_eq!(p.total_backoff_budget_ns(), 210_000);
    }

    #[test]
    fn backoff_is_capped() {
        let p = RetryPolicy {
            max_attempts: 20,
            base_ns: 1_000,
            multiplier: 10,
            max_backoff_ns: 50_000,
        };
        assert_eq!(p.backoff_ns(0), 1_000);
        assert_eq!(p.backoff_ns(1), 10_000);
        assert_eq!(p.backoff_ns(2), 50_000);
        assert_eq!(p.backoff_ns(19), 50_000);
    }

    #[test]
    fn no_retries_has_zero_budget() {
        let p = RetryPolicy::no_retries();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.total_backoff_budget_ns(), 0);
    }

    #[test]
    fn huge_attempt_counts_saturate() {
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            base_ns: u64::MAX,
            multiplier: u32::MAX,
            max_backoff_ns: u64::MAX,
        };
        assert_eq!(p.backoff_ns(u32::MAX - 1), u64::MAX);
        assert_eq!(p.total_backoff_budget_ns(), u64::MAX);
    }
}
