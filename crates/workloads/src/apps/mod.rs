//! Application emulators for Tables 1–2 and Figure 1.
//!
//! Each emulator issues the syscall mix that dominates the real tool's
//! interaction with the directory cache (per the paper's Table 1 path
//! statistics: `find`/`du`/`updatedb` use single-component `*at()` calls,
//! `tar`/`make` walk 3–4 component paths, `make` generates ~20% negative
//! lookups, `git` lstats every tracked file).

mod du;
mod find;
mod git;
mod make;
mod rm;
mod tar;
mod updatedb;

pub use du::du_s;
pub use find::find_name;
pub use git::{git_diff, git_status, git_write_index};
pub use make::make_build;
pub use rm::rm_r;
pub use tar::tar_extract;
pub use updatedb::updatedb;

/// What an emulated application run reports.
#[derive(Debug, Clone)]
pub struct AppReport {
    /// Tool name (table row label).
    pub name: &'static str,
    /// Wall-clock time, nanoseconds.
    pub wall_ns: u64,
    /// Path-based syscalls issued.
    pub path_ops: u64,
    /// Total bytes across path arguments (Table 1's `l` column).
    pub path_bytes: u64,
    /// Total components across path arguments (Table 1's `#` column).
    pub path_components: u64,
    /// Tool-specific operation count (files visited, objects built, …).
    pub work_items: u64,
}

impl AppReport {
    /// Average path length in bytes.
    pub fn avg_path_len(&self) -> f64 {
        if self.path_ops == 0 {
            return 0.0;
        }
        self.path_bytes as f64 / self.path_ops as f64
    }

    /// Average components per path.
    pub fn avg_components(&self) -> f64 {
        if self.path_ops == 0 {
            return 0.0;
        }
        self.path_components as f64 / self.path_ops as f64
    }

    /// Wall time in seconds.
    pub fn seconds(&self) -> f64 {
        self.wall_ns as f64 / 1e9
    }
}

/// Accumulates path-argument statistics while an emulator runs.
#[derive(Debug, Default)]
pub(crate) struct PathTally {
    ops: u64,
    bytes: u64,
    components: u64,
}

impl PathTally {
    pub fn record(&mut self, path: &str) {
        self.ops += 1;
        self.bytes += path.len() as u64;
        self.components += path
            .split('/')
            .filter(|c| !c.is_empty() && *c != ".")
            .count() as u64;
    }

    pub fn into_report(self, name: &'static str, wall_ns: u64, work_items: u64) -> AppReport {
        AppReport {
            name,
            wall_ns,
            path_ops: self.ops,
            path_bytes: self.bytes,
            path_components: self.components,
            work_items,
        }
    }
}
