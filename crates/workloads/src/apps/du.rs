//! `du -s <root>`: recursive size accounting with `*at()` lookups.

use super::{AppReport, PathTally};
use dc_vfs::{FsResult, Kernel, OpenFlags, Process};
use std::time::Instant;

/// Runs the emulator; returns the report and the total size in bytes.
pub fn du_s(k: &Kernel, p: &Process, root: &str) -> FsResult<(AppReport, u64)> {
    let t0 = Instant::now();
    let mut tally = PathTally::default();
    let mut total = 0u64;
    let mut visited = 0u64;
    let mut stack = vec![root.to_string()];
    while let Some(dir) = stack.pop() {
        tally.record(&dir);
        let dirfd = k.open(p, &dir, OpenFlags::directory(), 0)?;
        loop {
            let batch = k.readdir(p, dirfd, 256)?;
            if batch.is_empty() {
                break;
            }
            for e in batch {
                visited += 1;
                tally.record(&e.name);
                let attr = k.fstatat(p, dirfd, &e.name, true)?;
                if attr.ftype.is_dir() {
                    stack.push(format!("{dir}/{}", e.name));
                } else {
                    total += attr.size;
                }
            }
        }
        k.close(p, dirfd)?;
    }
    Ok((
        tally.into_report("du -s", t0.elapsed().as_nanos() as u64, visited),
        total,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::build_flat_dir;
    use dc_vfs::KernelBuilder;
    use dcache_core::DcacheConfig;

    #[test]
    fn du_sums_file_sizes() {
        let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(6))
            .build()
            .unwrap();
        let p = k.init_process();
        build_flat_dir(&k, &p, "/data", 20).unwrap();
        let fd = k
            .open(&p, "/data/f000000", OpenFlags::read_write(), 0)
            .unwrap();
        k.write_fd(&p, fd, &[0u8; 1234]).unwrap();
        k.close(&p, fd).unwrap();
        let (report, total) = du_s(&k, &p, "/data").unwrap();
        assert_eq!(total, 1234);
        assert_eq!(report.work_items, 20);
    }
}
