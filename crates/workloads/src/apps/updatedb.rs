//! `updatedb -U <root>`: builds a database of canonical paths — a pure
//! directory-tree scan (readdir + fstatat), the most lookup-bound of the
//! paper's workloads (up to 29% gain, Table 1).

use super::{AppReport, PathTally};
use dc_vfs::{FsResult, Kernel, OpenFlags, Process};
use std::time::Instant;

/// Runs the emulator; returns the report and the path database.
pub fn updatedb(k: &Kernel, p: &Process, root: &str) -> FsResult<(AppReport, Vec<String>)> {
    let t0 = Instant::now();
    let mut tally = PathTally::default();
    let mut db = Vec::new();
    let mut stack = vec![root.to_string()];
    while let Some(dir) = stack.pop() {
        tally.record(&dir);
        let dirfd = k.open(p, &dir, OpenFlags::directory(), 0)?;
        loop {
            let batch = k.readdir(p, dirfd, 512)?;
            if batch.is_empty() {
                break;
            }
            for e in batch {
                tally.record(&e.name);
                let attr = k.fstatat(p, dirfd, &e.name, true)?;
                let full = format!("{dir}/{}", e.name);
                if attr.ftype.is_dir() {
                    stack.push(full.clone());
                }
                db.push(full);
            }
        }
        k.close(p, dirfd)?;
    }
    db.sort();
    let items = db.len() as u64;
    Ok((
        tally.into_report("updatedb", t0.elapsed().as_nanos() as u64, items),
        db,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{build_tree, TreeSpec};
    use dc_vfs::KernelBuilder;
    use dcache_core::DcacheConfig;

    #[test]
    fn updatedb_lists_all_paths_sorted() {
        let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(7))
            .build()
            .unwrap();
        let p = k.init_process();
        let m = build_tree(&k, &p, "/usr", &TreeSpec::source_like(150)).unwrap();
        let (report, db) = updatedb(&k, &p, "/usr").unwrap();
        assert_eq!(db.len(), m.len() - 1);
        assert!(db.windows(2).all(|w| w[0] <= w[1]));
        assert!(report.path_ops > 0);
    }
}
