//! `tar xzf`: unpacks an archive manifest — mkdir + create + write for
//! every entry, walking 3-component-ish destination paths (Table 1).

use super::{AppReport, PathTally};
use crate::tree::Manifest;
use dc_vfs::{FsResult, Kernel, OpenFlags, Process};
use std::time::Instant;

/// Extracts `manifest` (paths rooted at its original root) under
/// `dst_root`, as `tar x` would.
pub fn tar_extract(
    k: &Kernel,
    p: &Process,
    manifest: &Manifest,
    src_root: &str,
    dst_root: &str,
) -> FsResult<AppReport> {
    let t0 = Instant::now();
    let mut tally = PathTally::default();
    let mut items = 0u64;
    let retarget = |path: &str| -> String {
        format!("{dst_root}{}", path.strip_prefix(src_root).unwrap_or(path))
    };
    k.mkdir(p, dst_root, 0o755).ok();
    for d in &manifest.dirs {
        if d == src_root {
            continue;
        }
        let nd = retarget(d);
        tally.record(&nd);
        k.mkdir(p, &nd, 0o755)?;
        items += 1;
    }
    for f in &manifest.files {
        let nf = retarget(f);
        tally.record(&nf);
        let fd = k.open(p, &nf, OpenFlags::create(), 0o644)?;
        k.write_fd(p, fd, format!("extracted {nf}\n").as_bytes())?;
        k.close(p, fd)?;
        items += 1;
    }
    Ok(tally.into_report("tar xzf", t0.elapsed().as_nanos() as u64, items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{build_tree, TreeSpec};
    use dc_vfs::KernelBuilder;
    use dcache_core::DcacheConfig;

    #[test]
    fn tar_recreates_the_tree() {
        let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(8))
            .build()
            .unwrap();
        let p = k.init_process();
        let m = build_tree(&k, &p, "/orig", &TreeSpec::source_like(120)).unwrap();
        let report = tar_extract(&k, &p, &m, "/orig", "/unpacked").unwrap();
        assert_eq!(report.work_items as usize, m.len() - 1);
        for f in m.files.iter().step_by(11) {
            let moved = f.replace("/orig", "/unpacked");
            assert!(k.stat(&p, &moved).is_ok(), "missing {moved}");
        }
    }
}
