//! `rm -r <root>`: post-order recursive deletion via readdir + unlinkat.

use super::{AppReport, PathTally};
use dc_vfs::{FsResult, Kernel, Process};
use std::time::Instant;

/// Deletes the whole subtree, root included.
pub fn rm_r(k: &Kernel, p: &Process, root: &str) -> FsResult<AppReport> {
    let t0 = Instant::now();
    let mut tally = PathTally::default();
    let mut removed = 0u64;
    rm_dir(k, p, root, &mut tally, &mut removed)?;
    tally.record(root);
    k.rmdir(p, root)?;
    removed += 1;
    Ok(tally.into_report("rm -r", t0.elapsed().as_nanos() as u64, removed))
}

fn rm_dir(
    k: &Kernel,
    p: &Process,
    dir: &str,
    tally: &mut PathTally,
    removed: &mut u64,
) -> FsResult<()> {
    let entries = k.list_dir(p, dir)?;
    for e in entries {
        let full = format!("{dir}/{}", e.name);
        tally.record(&full);
        if e.ftype.is_dir() {
            rm_dir(k, p, &full, tally, removed)?;
            k.rmdir(p, &full)?;
        } else {
            k.unlink(p, &full)?;
        }
        *removed += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{build_tree, TreeSpec};
    use dc_vfs::{FsError, KernelBuilder};
    use dcache_core::DcacheConfig;

    #[test]
    fn rm_removes_everything() {
        for config in [DcacheConfig::baseline(), DcacheConfig::optimized()] {
            let k = KernelBuilder::new(config.with_seed(9)).build().unwrap();
            let p = k.init_process();
            let m = build_tree(&k, &p, "/gone", &TreeSpec::source_like(100)).unwrap();
            let report = rm_r(&k, &p, "/gone").unwrap();
            assert_eq!(report.work_items as usize, m.len());
            assert_eq!(k.stat(&p, "/gone"), Err(FsError::NoEnt));
        }
    }
}
