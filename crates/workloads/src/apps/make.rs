//! `make`: compiles every `.c` file — stats the source, probes an include
//! search path (generating the ~20% negative-dentry traffic the paper
//! reports for make, Table 1), reads the source, writes the object.

use super::{AppReport, PathTally};
use crate::tree::Manifest;
use dc_vfs::{FsError, FsResult, Kernel, OpenFlags, Process};
use std::time::Instant;

/// Include directories probed for every header reference; only the last
/// one hits, like a real `-I` chain.
const SEARCH_PATH: &[&str] = &["arch/include", "generated", "include"];

/// Runs the emulated build over the manifest's `.c` files.
pub fn make_build(k: &Kernel, p: &Process, manifest: &Manifest, root: &str) -> FsResult<AppReport> {
    let t0 = Instant::now();
    let mut tally = PathTally::default();
    let mut objects = 0u64;
    // A small pool of header names that actually exist under
    // `<root>/include`.
    k.mkdir(p, &format!("{root}/include"), 0o755).ok();
    let headers: Vec<String> = (0..8).map(|i| format!("hdr{i}.h")).collect();
    for h in &headers {
        let path = format!("{root}/include/{h}");
        if k.stat(p, &path) == Err(FsError::NoEnt) {
            let fd = k.open(p, &path, OpenFlags::create(), 0o644)?;
            k.close(p, fd)?;
        }
    }
    for (n, src) in manifest
        .files
        .iter()
        .filter(|f| f.ends_with(".c"))
        .enumerate()
    {
        tally.record(src);
        k.stat(p, src)?;
        // Probe the include chain for a few headers: the first
        // search-path entries miss (negative lookups), the real include
        // dir hits.
        for i in 0..3 {
            let hdr = &headers[(n + i) % headers.len()];
            let mut found = false;
            for dir in SEARCH_PATH {
                let candidate = format!("{root}/{dir}/{hdr}");
                tally.record(&candidate);
                match k.stat(p, &candidate) {
                    Ok(_) => {
                        found = true;
                        break;
                    }
                    Err(FsError::NoEnt) => continue,
                    Err(e) => return Err(e),
                }
            }
            if !found {
                let real = format!("{root}/include/{hdr}");
                tally.record(&real);
                k.stat(p, &real)?;
            }
        }
        // Read the translation unit, emit the object.
        let fd = k.open(p, src, OpenFlags::read_only(), 0)?;
        let _ = k.read_fd(p, fd, 4096)?;
        k.close(p, fd)?;
        let obj = format!("{}.o", src.trim_end_matches(".c"));
        tally.record(&obj);
        let fd = k.open(p, &obj, OpenFlags::create(), 0o644)?;
        k.write_fd(p, fd, b"ELF-ish")?;
        k.close(p, fd)?;
        objects += 1;
    }
    Ok(tally.into_report("make", t0.elapsed().as_nanos() as u64, objects))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{build_tree, TreeSpec};
    use dc_vfs::KernelBuilder;
    use dcache_core::DcacheConfig;
    use std::sync::atomic::Ordering;

    #[test]
    fn make_builds_objects_and_generates_negative_lookups() {
        let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(10))
            .build()
            .unwrap();
        let p = k.init_process();
        let m = build_tree(&k, &p, "/proj", &TreeSpec::source_like(200)).unwrap();
        let c_files = m.files.iter().filter(|f| f.ends_with(".c")).count() as u64;
        k.reset_stats();
        let report = make_build(&k, &p, &m, "/proj").unwrap();
        assert_eq!(report.work_items, c_files);
        // Objects exist.
        for src in m.files.iter().filter(|f| f.ends_with(".c")).step_by(9) {
            let obj = format!("{}.o", src.trim_end_matches(".c"));
            assert!(k.stat(&p, &obj).is_ok());
        }
        // The include-path probing produced negative traffic.
        let s = &k.dcache.stats;
        let negs = s.hit_negative.load(Ordering::Relaxed)
            + s.fast_neg_hits.load(Ordering::Relaxed)
            + s.complete_neg_avoided.load(Ordering::Relaxed);
        if c_files > 0 {
            assert!(negs > 0, "expected negative lookups from include probing");
        }
    }
}
