//! `find <root> -name <pattern>`: a recursive walk using `*at()` calls —
//! opendir + readdir + fstatat on every entry, exactly one component per
//! lookup (matching Table 1's `# = 1` for find).

use super::{AppReport, PathTally};
use dc_vfs::{FsResult, Kernel, OpenFlags, Process};
use std::time::Instant;

/// Runs the emulator; returns the report and the number of name matches.
pub fn find_name(k: &Kernel, p: &Process, root: &str, pattern: &str) -> FsResult<(AppReport, u64)> {
    let t0 = Instant::now();
    let mut tally = PathTally::default();
    let mut matches = 0u64;
    let mut visited = 0u64;
    let mut stack = vec![root.to_string()];
    while let Some(dir) = stack.pop() {
        tally.record(&dir);
        let dirfd = k.open(p, &dir, OpenFlags::directory(), 0)?;
        loop {
            let batch = k.readdir(p, dirfd, 256)?;
            if batch.is_empty() {
                break;
            }
            for e in batch {
                visited += 1;
                tally.record(&e.name);
                let attr = k.fstatat(p, dirfd, &e.name, true)?;
                if e.name.contains(pattern) {
                    matches += 1;
                }
                if attr.ftype.is_dir() {
                    stack.push(format!("{dir}/{}", e.name));
                }
            }
        }
        k.close(p, dirfd)?;
    }
    Ok((
        tally.into_report("find", t0.elapsed().as_nanos() as u64, visited),
        matches,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{build_tree, TreeSpec};
    use dc_vfs::KernelBuilder;
    use dcache_core::DcacheConfig;

    #[test]
    fn find_visits_everything_and_counts_matches() {
        let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(5))
            .build()
            .unwrap();
        let p = k.init_process();
        let m = build_tree(&k, &p, "/src", &TreeSpec::source_like(300)).unwrap();
        let (report, matches) = find_name(&k, &p, "/src", "main").unwrap();
        assert_eq!(report.work_items as usize, m.len() - 1); // all but the root
        let expected = m
            .files
            .iter()
            .chain(m.dirs.iter())
            .filter(|f| f.rsplit('/').next().unwrap().contains("main"))
            .count() as u64;
        assert_eq!(matches, expected);
        // find uses ~single-component lookups.
        assert!(report.avg_components() < 3.0);
        assert!(report.seconds() >= 0.0);
    }
}
