//! `git status` / `git diff`: lstat every tracked file against a stored
//! index (the real tools' refresh loop), plus directory scans for
//! untracked-file detection in `status`.

use super::{AppReport, PathTally};
use crate::tree::Manifest;
use dc_vfs::{FsResult, Kernel, OpenFlags, Process};
use std::time::Instant;

/// Writes the "index" the two commands refresh against.
pub fn git_write_index(
    k: &Kernel,
    p: &Process,
    manifest: &Manifest,
    root: &str,
) -> FsResult<String> {
    let git_dir = format!("{root}/.git");
    k.mkdir(p, &git_dir, 0o755).ok();
    let index_path = format!("{git_dir}/index");
    let mut body = String::new();
    for f in &manifest.files {
        body.push_str(f);
        body.push('\n');
    }
    let fd = k.open(p, &index_path, OpenFlags::create(), 0o644)?;
    k.write_fd(p, fd, body.as_bytes())?;
    k.close(p, fd)?;
    Ok(index_path)
}

/// `git status`: read the index, lstat every tracked file, and scan every
/// directory for untracked entries.
pub fn git_status(k: &Kernel, p: &Process, manifest: &Manifest, root: &str) -> FsResult<AppReport> {
    let t0 = Instant::now();
    let mut tally = PathTally::default();
    let index_path = format!("{root}/.git/index");
    tally.record(&index_path);
    let fd = k.open(p, &index_path, OpenFlags::read_only(), 0)?;
    let _ = k.read_fd(p, fd, 1 << 20)?;
    k.close(p, fd)?;
    let mut refreshed = 0u64;
    for f in &manifest.files {
        tally.record(f);
        k.lstat(p, f)?;
        refreshed += 1;
    }
    for d in &manifest.dirs {
        tally.record(d);
        let _ = k.list_dir(p, d)?;
    }
    Ok(tally.into_report("git status", t0.elapsed().as_nanos() as u64, refreshed))
}

/// `git diff`: read the index and lstat every tracked file; read a
/// sample of contents for comparison.
pub fn git_diff(k: &Kernel, p: &Process, manifest: &Manifest, root: &str) -> FsResult<AppReport> {
    let t0 = Instant::now();
    let mut tally = PathTally::default();
    let index_path = format!("{root}/.git/index");
    tally.record(&index_path);
    let fd = k.open(p, &index_path, OpenFlags::read_only(), 0)?;
    let _ = k.read_fd(p, fd, 1 << 20)?;
    k.close(p, fd)?;
    let mut refreshed = 0u64;
    for (i, f) in manifest.files.iter().enumerate() {
        tally.record(f);
        k.lstat(p, f)?;
        refreshed += 1;
        // A sample of files get content-compared.
        if i % 16 == 0 {
            let fd = k.open(p, f, OpenFlags::read_only(), 0)?;
            let _ = k.read_fd(p, fd, 4096)?;
            k.close(p, fd)?;
        }
    }
    Ok(tally.into_report("git diff", t0.elapsed().as_nanos() as u64, refreshed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{build_tree, TreeSpec};
    use dc_vfs::KernelBuilder;
    use dcache_core::DcacheConfig;

    #[test]
    fn status_and_diff_refresh_all_files() {
        let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(11))
            .build()
            .unwrap();
        let p = k.init_process();
        let m = build_tree(&k, &p, "/repo", &TreeSpec::source_like(120)).unwrap();
        git_write_index(&k, &p, &m, "/repo").unwrap();
        let st = git_status(&k, &p, &m, "/repo").unwrap();
        assert_eq!(st.work_items as usize, m.files.len());
        let df = git_diff(&k, &p, &m, "/repo").unwrap();
        assert_eq!(df.work_items as usize, m.files.len());
        // git walks multi-component paths.
        assert!(st.avg_components() >= 2.0);
    }
}
