//! The Apache auto-index workload (Table 3): every request generates a
//! directory listing page — readdir plus a stat per entry plus HTML
//! assembly, uncached by the server.

use dc_vfs::{FsResult, Kernel, Process};
use std::time::Instant;

/// Generates one directory-listing page, returning the HTML.
pub fn listing_request(k: &Kernel, p: &Process, dir: &str) -> FsResult<String> {
    let entries = k.list_dir(p, dir)?;
    let mut html = String::with_capacity(128 + entries.len() * 96);
    html.push_str("<html><head><title>Index</title></head><body><table>\n");
    for e in &entries {
        let attr = k.stat(p, &format!("{dir}/{}", e.name))?;
        html.push_str(&format!(
            "<tr><td><a href=\"{0}\">{0}</a></td><td>{1}</td><td>{2}</td></tr>\n",
            e.name, attr.size, attr.mtime
        ));
    }
    html.push_str("</table></body></html>\n");
    Ok(html)
}

/// Serves listing requests for roughly `duration_ms`; returns req/sec.
pub fn serve(k: &Kernel, p: &Process, dir: &str, duration_ms: u64) -> FsResult<f64> {
    let t0 = Instant::now();
    let budget = std::time::Duration::from_millis(duration_ms);
    let mut reqs = 0u64;
    while t0.elapsed() < budget {
        let page = listing_request(k, p, dir)?;
        std::hint::black_box(&page);
        reqs += 1;
    }
    Ok(reqs as f64 / t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::build_flat_dir;
    use dc_vfs::KernelBuilder;
    use dcache_core::DcacheConfig;

    #[test]
    fn listing_contains_every_entry() {
        let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(14))
            .build()
            .unwrap();
        let p = k.init_process();
        build_flat_dir(&k, &p, "/www", 30).unwrap();
        let page = listing_request(&k, &p, "/www").unwrap();
        for i in 0..30 {
            assert!(page.contains(&format!("f{i:06}")));
        }
    }

    #[test]
    fn serve_reports_rate() {
        let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(15))
            .build()
            .unwrap();
        let p = k.init_process();
        build_flat_dir(&k, &p, "/www", 10).unwrap();
        assert!(serve(&k, &p, "/www", 30).unwrap() > 0.0);
    }
}
