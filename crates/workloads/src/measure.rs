//! Timing and summary-statistics helpers.

use std::time::Instant;

/// Summary statistics over per-iteration samples (nanoseconds).
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median.
    pub median_ns: f64,
    /// Minimum.
    pub min_ns: u64,
    /// Maximum.
    pub max_ns: u64,
    /// Half-width of a 95% confidence interval on the mean.
    pub ci95_ns: f64,
    /// Sample count.
    pub n: usize,
}

impl Summary {
    /// Summarizes raw samples.
    pub fn from_samples(mut samples: Vec<u64>) -> Summary {
        assert!(!samples.is_empty());
        samples.sort_unstable();
        let n = samples.len();
        let sum: u128 = samples.iter().map(|&s| s as u128).sum();
        let mean = sum as f64 / n as f64;
        let median = if n % 2 == 1 {
            samples[n / 2] as f64
        } else {
            (samples[n / 2 - 1] as f64 + samples[n / 2] as f64) / 2.0
        };
        let var = samples
            .iter()
            .map(|&s| {
                let d = s as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / (n.max(2) - 1) as f64;
        let ci95 = 1.96 * (var / n as f64).sqrt();
        Summary {
            mean_ns: mean,
            median_ns: median,
            min_ns: samples[0],
            max_ns: samples[n - 1],
            ci95_ns: ci95,
            n,
        }
    }

    /// Mean in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.mean_ns / 1000.0
    }
}

/// Times one closure invocation in nanoseconds.
pub fn time_ns(f: impl FnOnce()) -> u64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_nanos() as u64
}

/// Measures the per-operation latency of `op` by running `iters`
/// iterations in `batches` batches, returning per-op summaries.
pub fn latency_ns(batches: usize, iters_per_batch: usize, mut op: impl FnMut()) -> Summary {
    let mut samples = Vec::with_capacity(batches);
    // One warmup batch outside measurement.
    for _ in 0..iters_per_batch.min(64) {
        op();
    }
    for _ in 0..batches {
        let t0 = Instant::now();
        for _ in 0..iters_per_batch {
            op();
        }
        samples.push(t0.elapsed().as_nanos() as u64 / iters_per_batch.max(1) as u128 as u64);
    }
    Summary::from_samples(samples)
}

/// Runs `op` repeatedly for roughly `duration_ms`, returning ops/sec.
pub fn ops_per_sec(duration_ms: u64, mut op: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    let budget = std::time::Duration::from_millis(duration_ms);
    let mut ops = 0u64;
    while t0.elapsed() < budget {
        for _ in 0..32 {
            op();
        }
        ops += 32;
    }
    ops as f64 / t0.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_math() {
        let s = Summary::from_samples(vec![10, 20, 30, 40]);
        assert_eq!(s.mean_ns, 25.0);
        assert_eq!(s.median_ns, 25.0);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 40);
        assert_eq!(s.n, 4);
        let odd = Summary::from_samples(vec![3, 1, 2]);
        assert_eq!(odd.median_ns, 2.0);
    }

    #[test]
    fn latency_measures_something() {
        let mut x = 0u64;
        let s = latency_ns(5, 100, || {
            x = x.wrapping_add(1);
        });
        assert!(s.mean_ns < 1_000_000.0);
        assert!(x > 0);
    }

    #[test]
    fn ops_per_sec_positive() {
        let rate = ops_per_sec(10, || {
            std::hint::black_box(1 + 1);
        });
        assert!(rate > 0.0);
    }
}
