//! Syscall trace recording and replay.
//!
//! The paper motivates its work with the iBench system-call traces
//! ("between 10–20% of all system calls … do a path lookup", §1). This
//! module provides the equivalent instrument for this stack: a compact
//! trace of path-based operations that can be captured from any workload
//! run and replayed against any kernel configuration, so captured
//! real-world behavior can drive A/B comparisons.

use dc_vfs::{FsResult, Kernel, OpenFlags, Process};
use std::time::Instant;

/// One recorded path-based operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// `stat(path)`.
    Stat(String),
    /// `lstat(path)`.
    Lstat(String),
    /// `open(path)` + `close` (read-only).
    Open(String),
    /// `open(path, O_CREAT)` + `close`.
    Create(String),
    /// `mkdir(path)`.
    Mkdir(String),
    /// `unlink(path)`.
    Unlink(String),
    /// `rename(old, new)`.
    Rename(String, String),
    /// Full directory listing.
    List(String),
    /// `access(path, F_OK)`.
    Access(String),
}

impl TraceOp {
    /// Serializes to one trace line (`op<TAB>path[<TAB>path2]`).
    pub fn to_line(&self) -> String {
        match self {
            TraceOp::Stat(p) => format!("stat\t{p}"),
            TraceOp::Lstat(p) => format!("lstat\t{p}"),
            TraceOp::Open(p) => format!("open\t{p}"),
            TraceOp::Create(p) => format!("creat\t{p}"),
            TraceOp::Mkdir(p) => format!("mkdir\t{p}"),
            TraceOp::Unlink(p) => format!("unlink\t{p}"),
            TraceOp::Rename(a, b) => format!("rename\t{a}\t{b}"),
            TraceOp::List(p) => format!("list\t{p}"),
            TraceOp::Access(p) => format!("access\t{p}"),
        }
    }

    /// Parses one trace line; `None` for blanks/comments/garbage.
    pub fn from_line(line: &str) -> Option<TraceOp> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return None;
        }
        let mut parts = line.split('\t');
        let op = parts.next()?;
        let a = parts.next()?.to_string();
        Some(match op {
            "stat" => TraceOp::Stat(a),
            "lstat" => TraceOp::Lstat(a),
            "open" => TraceOp::Open(a),
            "creat" => TraceOp::Create(a),
            "mkdir" => TraceOp::Mkdir(a),
            "unlink" => TraceOp::Unlink(a),
            "rename" => TraceOp::Rename(a, parts.next()?.to_string()),
            "list" => TraceOp::List(a),
            "access" => TraceOp::Access(a),
            _ => return None,
        })
    }
}

/// A recorded trace.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    /// The operations, in order.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Records one operation.
    pub fn push(&mut self, op: TraceOp) {
        self.ops.push(op);
    }

    /// Serializes the whole trace.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.ops.len() * 32);
        out.push_str("# dcache-rs trace v1\n");
        for op in &self.ops {
            out.push_str(&op.to_line());
            out.push('\n');
        }
        out
    }

    /// Parses a serialized trace (unknown lines are skipped).
    pub fn from_text(text: &str) -> Trace {
        Trace {
            ops: text.lines().filter_map(TraceOp::from_line).collect(),
        }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Outcome of replaying a trace.
#[derive(Debug, Clone, Copy)]
pub struct ReplayReport {
    /// Operations replayed.
    pub ops: usize,
    /// Operations that returned an error (errors are legal — traces may
    /// reference paths that no longer exist; they must simply match
    /// across configurations).
    pub errors: usize,
    /// Wall time, nanoseconds.
    pub wall_ns: u64,
}

impl ReplayReport {
    /// Mean nanoseconds per operation.
    pub fn ns_per_op(&self) -> f64 {
        self.wall_ns as f64 / self.ops.max(1) as f64
    }
}

/// Replays `trace` against a kernel, tolerating per-op errors.
pub fn replay(k: &Kernel, p: &Process, trace: &Trace) -> FsResult<ReplayReport> {
    let t0 = Instant::now();
    let mut errors = 0usize;
    for op in &trace.ops {
        let r: Result<(), dc_vfs::FsError> = match op {
            TraceOp::Stat(path) => k.stat(p, path).map(|_| ()),
            TraceOp::Lstat(path) => k.lstat(p, path).map(|_| ()),
            TraceOp::Open(path) => k
                .open(p, path, OpenFlags::read_only(), 0)
                .and_then(|fd| k.close(p, fd)),
            TraceOp::Create(path) => k
                .open(p, path, OpenFlags::create(), 0o644)
                .and_then(|fd| k.close(p, fd)),
            TraceOp::Mkdir(path) => k.mkdir(p, path, 0o755),
            TraceOp::Unlink(path) => k.unlink(p, path),
            TraceOp::Rename(a, b) => k.rename(p, a, b),
            TraceOp::List(path) => k.list_dir(p, path).map(|_| ()),
            TraceOp::Access(path) => k.access(p, path, 0),
        };
        if r.is_err() {
            errors += 1;
        }
    }
    Ok(ReplayReport {
        ops: trace.ops.len(),
        errors,
        wall_ns: t0.elapsed().as_nanos() as u64,
    })
}

/// Captures a trace from a recording closure: the closure receives a
/// recorder and drives it; the recorder both executes and logs.
pub struct Recorder<'k> {
    kernel: &'k Kernel,
    proc: &'k Process,
    trace: Trace,
}

impl<'k> Recorder<'k> {
    /// Starts recording against `kernel`/`proc`.
    pub fn new(kernel: &'k Kernel, proc: &'k Process) -> Recorder<'k> {
        Recorder {
            kernel,
            proc,
            trace: Trace::new(),
        }
    }

    /// Executes + records a stat.
    pub fn stat(&mut self, path: &str) -> FsResult<()> {
        self.trace.push(TraceOp::Stat(path.to_string()));
        self.kernel.stat(self.proc, path).map(|_| ())
    }

    /// Executes + records an open/close.
    pub fn open(&mut self, path: &str) -> FsResult<()> {
        self.trace.push(TraceOp::Open(path.to_string()));
        let fd = self
            .kernel
            .open(self.proc, path, OpenFlags::read_only(), 0)?;
        self.kernel.close(self.proc, fd)
    }

    /// Executes + records a create.
    pub fn create(&mut self, path: &str) -> FsResult<()> {
        self.trace.push(TraceOp::Create(path.to_string()));
        let fd = self
            .kernel
            .open(self.proc, path, OpenFlags::create(), 0o644)?;
        self.kernel.close(self.proc, fd)
    }

    /// Executes + records a mkdir.
    pub fn mkdir(&mut self, path: &str) -> FsResult<()> {
        self.trace.push(TraceOp::Mkdir(path.to_string()));
        self.kernel.mkdir(self.proc, path, 0o755)
    }

    /// Executes + records a rename.
    pub fn rename(&mut self, a: &str, b: &str) -> FsResult<()> {
        self.trace
            .push(TraceOp::Rename(a.to_string(), b.to_string()));
        self.kernel.rename(self.proc, a, b)
    }

    /// Finishes recording, yielding the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_vfs::KernelBuilder;
    use dcache_core::DcacheConfig;

    #[test]
    fn trace_round_trips_through_text() {
        let mut t = Trace::new();
        t.push(TraceOp::Mkdir("/a".into()));
        t.push(TraceOp::Create("/a/f".into()));
        t.push(TraceOp::Rename("/a/f".into(), "/a/g".into()));
        t.push(TraceOp::Stat("/a/g".into()));
        t.push(TraceOp::List("/a".into()));
        let text = t.to_text();
        let back = Trace::from_text(&text);
        assert_eq!(back.ops, t.ops);
        // Garbage and comments are skipped.
        let messy = format!("# header\n\nnonsense line\n{}", text);
        assert_eq!(Trace::from_text(&messy).ops, t.ops);
    }

    #[test]
    fn record_then_replay_on_both_configs() {
        // Record against one kernel…
        let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(21))
            .build()
            .unwrap();
        let p = k.init_process();
        let mut rec = Recorder::new(&k, &p);
        rec.mkdir("/proj").unwrap();
        rec.create("/proj/main.c").unwrap();
        rec.stat("/proj/main.c").unwrap();
        rec.rename("/proj/main.c", "/proj/main.old").unwrap();
        let _ = rec.stat("/proj/main.c"); // recorded miss
        let trace = rec.finish();
        assert_eq!(trace.len(), 5);
        // …replay on fresh kernels of both configurations; the error
        // profile must match.
        let mut reports = Vec::new();
        for config in [DcacheConfig::baseline(), DcacheConfig::optimized()] {
            let k2 = KernelBuilder::new(config.with_seed(22)).build().unwrap();
            let p2 = k2.init_process();
            let r = replay(&k2, &p2, &trace).unwrap();
            assert_eq!(r.ops, 5);
            reports.push(r.errors);
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], 1); // exactly the recorded miss
    }

    #[test]
    fn replay_tolerates_dangling_paths() {
        let trace =
            Trace::from_text("stat\t/definitely/not/here\nunlink\t/nor/this\nrename\t/a\t/b\n");
        let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(23))
            .build()
            .unwrap();
        let p = k.init_process();
        let r = replay(&k, &p, &trace).unwrap();
        assert_eq!(r.ops, 3);
        assert_eq!(r.errors, 3);
        assert!(r.ns_per_op() > 0.0);
    }
}
