//! The Dovecot IMAP maildir workload (Figure 10).
//!
//! Maildir stores each mailbox as a directory and each message as a file
//! whose name encodes flags; marking a message renames its file and the
//! server re-reads the directory to sync its message list (§5.1). The
//! simulator issues exactly that syscall sequence: pick a random message,
//! `rename` it to toggle the Seen/Flagged flags, then `readdir` the
//! mailbox.

use dc_vfs::{FsResult, Kernel, OpenFlags, Process};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// A provisioned maildir store.
pub struct MaildirSim {
    root: String,
    boxes: Vec<String>,
    /// Message base names (flags excluded) per mailbox.
    messages: Vec<Vec<String>>,
    /// Current flag suffix per message.
    flags: Vec<Vec<&'static str>>,
    rng: StdRng,
}

const FLAG_STATES: [&str; 4] = ["", "S", "F", "FS"];

impl MaildirSim {
    /// Creates `nboxes` mailboxes of `msgs_per_box` messages each.
    pub fn provision(
        k: &Kernel,
        p: &Process,
        root: &str,
        nboxes: usize,
        msgs_per_box: usize,
        seed: u64,
    ) -> FsResult<MaildirSim> {
        k.mkdir(p, root, 0o755)?;
        let mut boxes = Vec::new();
        let mut messages = Vec::new();
        let mut flags = Vec::new();
        for b in 0..nboxes {
            let boxdir = format!("{root}/box{b:02}");
            k.mkdir(p, &boxdir, 0o755)?;
            for sub in ["cur", "new", "tmp"] {
                k.mkdir(p, &format!("{boxdir}/{sub}"), 0o755)?;
            }
            let mut msgs = Vec::with_capacity(msgs_per_box);
            let mut fl = Vec::with_capacity(msgs_per_box);
            for m in 0..msgs_per_box {
                let base = format!("{m:08}.m{b:02}.host");
                let path = format!("{boxdir}/cur/{base}:2,");
                let fd = k.open(p, &path, OpenFlags::create(), 0o600)?;
                k.write_fd(p, fd, b"Subject: hi\r\n\r\nbody")?;
                k.close(p, fd)?;
                msgs.push(base);
                fl.push(FLAG_STATES[0]);
            }
            boxes.push(boxdir);
            messages.push(msgs);
            flags.push(fl);
        }
        Ok(MaildirSim {
            root: root.to_string(),
            boxes,
            messages,
            flags,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The store's root path.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// One IMAP mark/unmark operation: rename the message file to its
    /// next flag state, then re-read the mailbox directory.
    pub fn mark_one(&mut self, k: &Kernel, p: &Process) -> FsResult<()> {
        let b = self.rng.gen_range(0..self.boxes.len());
        let m = self.rng.gen_range(0..self.messages[b].len());
        let cur_flags = self.flags[b][m];
        let next_idx =
            (FLAG_STATES.iter().position(|f| *f == cur_flags).unwrap() + 1) % FLAG_STATES.len();
        let next_flags = FLAG_STATES[next_idx];
        let base = &self.messages[b][m];
        let old = format!("{}/cur/{base}:2,{cur_flags}", self.boxes[b]);
        let new = format!("{}/cur/{base}:2,{next_flags}", self.boxes[b]);
        k.rename(p, &old, &new)?;
        self.flags[b][m] = next_flags;
        // The server syncs its view of the mailbox.
        let _ = k.list_dir(p, &format!("{}/cur", self.boxes[b]))?;
        Ok(())
    }

    /// Runs mark operations for roughly `duration_ms`; returns ops/sec.
    pub fn run(&mut self, k: &Kernel, p: &Process, duration_ms: u64) -> FsResult<f64> {
        let t0 = Instant::now();
        let budget = std::time::Duration::from_millis(duration_ms);
        let mut ops = 0u64;
        while t0.elapsed() < budget {
            for _ in 0..8 {
                self.mark_one(k, p)?;
            }
            ops += 8;
        }
        Ok(ops as f64 / t0.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_vfs::KernelBuilder;
    use dcache_core::DcacheConfig;

    #[test]
    fn marking_preserves_message_count() {
        for config in [DcacheConfig::baseline(), DcacheConfig::optimized()] {
            let k = KernelBuilder::new(config.with_seed(12)).build().unwrap();
            let p = k.init_process();
            let mut sim = MaildirSim::provision(&k, &p, "/mail", 3, 25, 99).unwrap();
            for _ in 0..100 {
                sim.mark_one(&k, &p).unwrap();
            }
            for b in 0..3 {
                let entries = k.list_dir(&p, &format!("/mail/box{b:02}/cur")).unwrap();
                assert_eq!(entries.len(), 25, "box{b} lost messages");
            }
        }
    }

    #[test]
    fn throughput_runner_reports_rate() {
        let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(13))
            .build()
            .unwrap();
        let p = k.init_process();
        let mut sim = MaildirSim::provision(&k, &p, "/mail", 2, 10, 7).unwrap();
        let rate = sim.run(&k, &p, 50).unwrap();
        assert!(rate > 0.0);
    }
}
