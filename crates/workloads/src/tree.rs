//! File-tree builders and manifests.

use dc_fs::FsResult;
use dc_vfs::{Kernel, OpenFlags, Process};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What got built: directories and files by full path.
#[derive(Debug, Default, Clone)]
pub struct Manifest {
    /// Directory paths, parents before children.
    pub dirs: Vec<String>,
    /// Regular-file paths.
    pub files: Vec<String>,
}

impl Manifest {
    /// Total object count.
    pub fn len(&self) -> usize {
        self.dirs.len() + self.files.len()
    }

    /// True when nothing was built.
    pub fn is_empty(&self) -> bool {
        self.dirs.is_empty() && self.files.is_empty()
    }
}

/// Parameters for a source-tree-like hierarchy (the Linux-source shape
/// the paper's command-line workloads operate on: ~8-character names,
/// 3–4 components, mixed fanout).
#[derive(Debug, Clone, Copy)]
pub struct TreeSpec {
    /// Top-level directories.
    pub top_dirs: usize,
    /// Subdirectories per directory at each level.
    pub fanout: usize,
    /// Directory nesting depth below the top level.
    pub depth: usize,
    /// Files per leaf directory.
    pub files_per_dir: usize,
    /// RNG seed (names and extensions).
    pub seed: u64,
}

impl TreeSpec {
    /// Roughly `scale` files spread like a source tree.
    pub fn source_like(scale: usize) -> TreeSpec {
        // top · fanout^depth leaf dirs, files_per_dir files each.
        let files_per_dir = 12;
        let leaves_needed = scale.div_ceil(files_per_dir).max(1);
        let fanout = 4;
        let mut depth = 0;
        let mut top = leaves_needed;
        while top > 16 {
            top = top.div_ceil(fanout);
            depth += 1;
        }
        TreeSpec {
            top_dirs: top.max(1),
            fanout,
            depth,
            files_per_dir,
            seed: 0x7ee5,
        }
    }
}

const NAME_PARTS: &[&str] = &[
    "drivers", "kernel", "sched", "core", "net", "ipv4", "proto", "block", "crypto", "hash",
    "main", "utils", "string", "alloc", "table", "inode", "super", "async", "timer", "event",
];
const EXTS: &[&str] = &["c", "h", "rs", "o", "txt", "mk"];

fn gen_name(rng: &mut StdRng, i: usize) -> String {
    let a = NAME_PARTS[rng.gen_range(0..NAME_PARTS.len())];
    format!("{a}{i:03}")
}

/// Builds the hierarchy under `root` through the syscall API, so the
/// dcache observes realistic creation traffic. Returns the manifest.
pub fn build_tree(k: &Kernel, p: &Process, root: &str, spec: &TreeSpec) -> FsResult<Manifest> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut m = Manifest::default();
    k.mkdir(p, root, 0o755)?;
    m.dirs.push(root.to_string());
    // Breadth-first directory creation.
    let mut level: Vec<String> = Vec::new();
    for i in 0..spec.top_dirs {
        let d = format!("{root}/{}", gen_name(&mut rng, i));
        k.mkdir(p, &d, 0o755)?;
        m.dirs.push(d.clone());
        level.push(d);
    }
    for _ in 0..spec.depth {
        let mut next = Vec::new();
        for dir in &level {
            for i in 0..spec.fanout {
                let d = format!("{dir}/{}", gen_name(&mut rng, i));
                k.mkdir(p, &d, 0o755)?;
                m.dirs.push(d.clone());
                next.push(d);
            }
        }
        level = next;
    }
    // Files in the leaf directories (and a few in interior ones).
    for dir in &level {
        for i in 0..spec.files_per_dir {
            let ext = EXTS[rng.gen_range(0..EXTS.len())];
            let f = format!("{dir}/{}.{ext}", gen_name(&mut rng, i));
            let fd = k.open(p, &f, OpenFlags::create(), 0o644)?;
            k.write_fd(p, fd, format!("content of {f}\n").as_bytes())?;
            k.close(p, fd)?;
            m.files.push(f);
        }
    }
    Ok(m)
}

/// Builds one flat directory with `n` files named `f000000…`; used by the
/// readdir/mkstemp/Apache experiments (Figures 9–10, Table 3).
pub fn build_flat_dir(k: &Kernel, p: &Process, dir: &str, n: usize) -> FsResult<Vec<String>> {
    k.mkdir(p, dir, 0o755)?;
    let mut files = Vec::with_capacity(n);
    for i in 0..n {
        let f = format!("{dir}/f{i:06}");
        let fd = k.open(p, &f, OpenFlags::create(), 0o644)?;
        k.close(p, fd)?;
        files.push(f);
    }
    Ok(files)
}

/// Builds a directory subtree of exactly `depth` levels with `total`
/// files spread evenly (the Figure 7 chmod/rename target shapes).
pub fn build_subtree(
    k: &Kernel,
    p: &Process,
    root: &str,
    depth: usize,
    total_files: usize,
) -> FsResult<Manifest> {
    let mut m = Manifest::default();
    k.mkdir(p, root, 0o755)?;
    m.dirs.push(root.to_string());
    // `width` dirs per level so capacity ≥ total_files at the leaves.
    let width = if depth == 0 {
        1
    } else {
        let mut w = 1usize;
        while w.pow(depth as u32) * 10 < total_files {
            w += 1;
        }
        w
    };
    let mut level = vec![root.to_string()];
    for d in 0..depth {
        let mut next = Vec::new();
        for dir in &level {
            for i in 0..width {
                let nd = format!("{dir}/d{d}{i:02}");
                k.mkdir(p, &nd, 0o755)?;
                m.dirs.push(nd.clone());
                next.push(nd);
            }
        }
        level = next;
    }
    let per_leaf = total_files.div_ceil(level.len());
    let mut created = 0;
    'outer: for dir in &level {
        for i in 0..per_leaf {
            if created >= total_files {
                break 'outer;
            }
            let f = format!("{dir}/file{i:04}");
            let fd = k.open(p, &f, OpenFlags::create(), 0o644)?;
            k.close(p, fd)?;
            m.files.push(f);
            created += 1;
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_vfs::KernelBuilder;
    use dcache_core::DcacheConfig;

    fn kp() -> (std::sync::Arc<Kernel>, std::sync::Arc<Process>) {
        let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(1))
            .build()
            .unwrap();
        let p = k.init_process();
        (k, p)
    }

    #[test]
    fn source_like_spec_scales() {
        let s = TreeSpec::source_like(1000);
        let leaves = s.top_dirs * s.fanout.pow(s.depth as u32);
        assert!(leaves * s.files_per_dir >= 1000);
    }

    #[test]
    fn build_tree_creates_everything() {
        let (k, p) = kp();
        let m = build_tree(&k, &p, "/src", &TreeSpec::source_like(200)).unwrap();
        assert!(m.files.len() >= 200);
        for f in m.files.iter().step_by(17) {
            assert!(k.stat(&p, f).is_ok(), "missing {f}");
        }
        for d in m.dirs.iter().step_by(7) {
            assert!(k.stat(&p, d).unwrap().ftype.is_dir());
        }
    }

    #[test]
    fn flat_dir_has_n_entries() {
        let (k, p) = kp();
        let files = build_flat_dir(&k, &p, "/flat", 150).unwrap();
        assert_eq!(files.len(), 150);
        assert_eq!(k.list_dir(&p, "/flat").unwrap().len(), 150);
    }

    #[test]
    fn subtree_shape_matches() {
        let (k, p) = kp();
        let m = build_subtree(&k, &p, "/sub", 2, 100).unwrap();
        assert_eq!(m.files.len(), 100);
        // All files are exactly `depth` levels below the root.
        for f in &m.files {
            assert_eq!(f.matches('/').count(), 4, "path {f}");
        }
        let _ = k;
    }
}
