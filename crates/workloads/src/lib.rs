//! Workload generators and application emulators for the evaluation.
//!
//! Everything the paper's §6 drives against the kernel lives here:
//!
//! - [`tree`] — file-tree builders (Linux-source-like hierarchies, flat
//!   directories of parametric size) plus a manifest of created paths.
//! - [`lmbench`] — the extended LMBench `lat_syscall` patterns of
//!   Figure 6 (`1-comp` … `8-comp`, `link-f`, `link-d`, `neg-f`, `neg-d`,
//!   `1-dotdot`, `4-dotdot`) with latency measurement helpers.
//! - [`apps`] — emulators for the command-line applications of Tables 1–2
//!   (`find`, `tar x`, `rm -r`, `make`, `du -s`, `updatedb`,
//!   `git status`, `git diff`): each issues the same syscall mix the real
//!   tool is dominated by and reports wall time plus path statistics.
//! - [`maildir`] — the Dovecot IMAP maildir server simulation of
//!   Figure 10 (mark/unmark = rename + directory re-read).
//! - [`apache`] — the Apache directory-listing generator of Table 3.
//! - [`traces`] — iBench-style syscall trace recording and replay, so a
//!   captured workload can drive A/B comparisons across configurations.
//! - [`measure`] — simple timing/statistics helpers shared by the
//!   benchmark harness (median-of-N, ops/sec runners).

pub mod apache;
pub mod apps;
pub mod lmbench;
pub mod maildir;
pub mod measure;
pub mod traces;
pub mod tree;

pub use measure::{ops_per_sec, time_ns, Summary};
