//! The extended LMBench `lat_syscall` patterns of Figure 6.

use crate::measure::{latency_ns, Summary};
use dc_fs::FsResult;
use dc_vfs::{Kernel, OpenFlags, Process};

/// The path patterns measured in Figure 6. `default` is the paper's
/// `/usr/include/gcc-x86_64-linux-gnu/sys/types.h` analog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// `/usr/include/gcc-x86_64-linux-gnu/sys/types.h`.
    Default,
    /// `FFF` — one component.
    Comp1,
    /// `XXX/FFF`.
    Comp2,
    /// `XXX/YYY/ZZZ/FFF`.
    Comp4,
    /// `XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF`.
    Comp8,
    /// `XXX/YYY/ZZZ/LLL → FFF` — final-component symlink.
    LinkF,
    /// `LLL/YYY/ZZZ/FFF` with `LLL → XXX` — leading-component symlink.
    LinkD,
    /// `XXX/YYY/ZZZ/NNN` — final component not found.
    NegF,
    /// `NNN/XXX/YYY/FFF` — leading component not found.
    NegD,
    /// `XXX/../FFF`.
    DotDot1,
    /// `XXX/YYY/../../AAA/BBB/../../FFF`.
    DotDot4,
}

impl Pattern {
    /// Every pattern, in the figure's order.
    pub fn all() -> [Pattern; 11] {
        [
            Pattern::Default,
            Pattern::Comp1,
            Pattern::Comp2,
            Pattern::Comp4,
            Pattern::Comp8,
            Pattern::LinkF,
            Pattern::LinkD,
            Pattern::NegF,
            Pattern::NegD,
            Pattern::DotDot1,
            Pattern::DotDot4,
        ]
    }

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Pattern::Default => "default",
            Pattern::Comp1 => "1-comp",
            Pattern::Comp2 => "2-comp",
            Pattern::Comp4 => "4-comp",
            Pattern::Comp8 => "8-comp",
            Pattern::LinkF => "link-f",
            Pattern::LinkD => "link-d",
            Pattern::NegF => "neg-f",
            Pattern::NegD => "neg-d",
            Pattern::DotDot1 => "1-dotdot",
            Pattern::DotDot4 => "4-dotdot",
        }
    }

    /// The path the measurement loop uses (relative to `/lm`).
    pub fn path(self) -> &'static str {
        match self {
            Pattern::Default => "/lm/usr/include/gcc-x86_64-linux-gnu/sys/types.h",
            Pattern::Comp1 => "/lm/FFF",
            Pattern::Comp2 => "/lm/XXX/FFF",
            Pattern::Comp4 => "/lm/XXX/YYY/ZZZ/FFF",
            Pattern::Comp8 => "/lm/XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF",
            Pattern::LinkF => "/lm/XXX/YYY/ZZZ/LLL",
            Pattern::LinkD => "/lm/LLL/YYY/ZZZ/FFF",
            Pattern::NegF => "/lm/XXX/YYY/ZZZ/NNN",
            Pattern::NegD => "/lm/NNN/XXX/YYY/FFF",
            Pattern::DotDot1 => "/lm/XXX/../FFF",
            Pattern::DotDot4 => "/lm/XXX/YYY/../../AAA/BBB/../../FFF",
        }
    }

    /// Whether lookups of this pattern are expected to fail (negative).
    pub fn is_negative(self) -> bool {
        matches!(self, Pattern::NegF | Pattern::NegD)
    }
}

/// Builds the `/lm` fixture all patterns resolve against.
pub fn setup(k: &Kernel, p: &Process) -> FsResult<()> {
    k.mkdir(p, "/lm", 0o755)?;
    // The "default" deep include path.
    for d in [
        "/lm/usr",
        "/lm/usr/include",
        "/lm/usr/include/gcc-x86_64-linux-gnu",
        "/lm/usr/include/gcc-x86_64-linux-gnu/sys",
    ] {
        k.mkdir(p, d, 0o755)?;
    }
    touch(k, p, "/lm/usr/include/gcc-x86_64-linux-gnu/sys/types.h")?;
    // The synthetic component ladder.
    for d in [
        "/lm/XXX",
        "/lm/XXX/YYY",
        "/lm/XXX/YYY/ZZZ",
        "/lm/XXX/YYY/ZZZ/AAA",
        "/lm/XXX/YYY/ZZZ/AAA/BBB",
        "/lm/XXX/YYY/ZZZ/AAA/BBB/CCC",
        "/lm/XXX/YYY/ZZZ/AAA/BBB/CCC/DDD",
        "/lm/AAA",
        "/lm/AAA/BBB",
    ] {
        k.mkdir(p, d, 0o755)?;
    }
    for f in [
        "/lm/FFF",
        "/lm/XXX/FFF",
        "/lm/XXX/YYY/ZZZ/FFF",
        "/lm/XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF",
    ] {
        touch(k, p, f)?;
    }
    // link-f: final symlink to a file; link-d: leading symlink to XXX.
    k.symlink(p, "FFF", "/lm/XXX/YYY/ZZZ/LLL")?;
    k.symlink(p, "XXX", "/lm/LLL")?;
    Ok(())
}

fn touch(k: &Kernel, p: &Process, path: &str) -> FsResult<()> {
    let fd = k.open(p, path, OpenFlags::create(), 0o644)?;
    k.close(p, fd)
}

/// Measures `stat` latency for a pattern.
pub fn stat_latency(k: &Kernel, p: &Process, pat: Pattern, batches: usize) -> Summary {
    let path = pat.path();
    let negative = pat.is_negative();
    latency_ns(batches, 2000, || {
        let r = k.stat(p, path);
        debug_assert_eq!(r.is_err(), negative);
        std::hint::black_box(&r);
    })
}

/// Measures `open`+`close` latency for a pattern.
pub fn open_latency(k: &Kernel, p: &Process, pat: Pattern, batches: usize) -> Summary {
    let path = pat.path();
    latency_ns(batches, 2000, || {
        if let Ok(fd) = k.open(p, path, OpenFlags::read_only(), 0) {
            let _ = k.close(p, fd);
        }
    })
}

/// Measures `fstatat`-style one-component lookups under an open dirfd
/// (the `*at()` discussion in §6.1).
pub fn fstatat_latency(k: &Kernel, p: &Process, batches: usize) -> FsResult<Summary> {
    let dirfd = k.open(p, "/lm/XXX", OpenFlags::directory(), 0)?;
    let s = latency_ns(batches, 2000, || {
        let _ = std::hint::black_box(k.fstatat(p, dirfd, "FFF", false));
    });
    k.close(p, dirfd)?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_vfs::KernelBuilder;
    use dcache_core::DcacheConfig;

    #[test]
    fn fixture_serves_every_pattern() {
        for config in [DcacheConfig::baseline(), DcacheConfig::optimized()] {
            let k = KernelBuilder::new(config.with_seed(2)).build().unwrap();
            let p = k.init_process();
            setup(&k, &p).unwrap();
            for pat in Pattern::all() {
                let r = k.stat(&p, pat.path());
                assert_eq!(
                    r.is_err(),
                    pat.is_negative(),
                    "pattern {} gave {r:?}",
                    pat.label()
                );
                // Twice: the second round exercises cached entries.
                let r2 = k.stat(&p, pat.path());
                assert_eq!(r2.is_err(), pat.is_negative());
            }
        }
    }

    #[test]
    fn lexical_mode_resolves_dotdot_patterns() {
        let k = KernelBuilder::new(DcacheConfig::optimized_lexical().with_seed(3))
            .build()
            .unwrap();
        let p = k.init_process();
        setup(&k, &p).unwrap();
        assert!(k.stat(&p, Pattern::DotDot1.path()).is_ok());
        assert!(k.stat(&p, Pattern::DotDot4.path()).is_ok());
    }

    #[test]
    fn latency_helpers_return_sane_numbers() {
        let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(4))
            .build()
            .unwrap();
        let p = k.init_process();
        setup(&k, &p).unwrap();
        let s = stat_latency(&k, &p, Pattern::Comp4, 3);
        assert!(s.mean_ns > 0.0 && s.mean_ns < 1_000_000.0);
        let o = open_latency(&k, &p, Pattern::Comp1, 3);
        assert!(o.mean_ns > 0.0);
        let f = fstatat_latency(&k, &p, 3).unwrap();
        assert!(f.mean_ns > 0.0);
    }
}
