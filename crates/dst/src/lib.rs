//! dst — deterministic-schedule testing for the lock-free read path.
//!
//! A loom/shuttle-style model checker: concurrency tests run their real
//! workspace code (seqlock, epoch reclamation, DLHT, PCC) on virtual
//! threads whose interleaving is fully controlled by a seeded scheduler.
//! Each explored schedule is a pure function of a `u64` seed, so a
//! failing interleaving replays *exactly* — the check failure prints the
//! seed and a one-line reproduction command.
//!
//! Three pieces:
//!
//! * [`sync`] / [`thread`] / [`hint`] — a facade mirroring the std API
//!   surface. With the `model` feature off, pure re-exports of std.
//!   With it on, every atomic op, lock acquisition, spawn, and yield is
//!   a *scheduling point*; outside an active execution the instrumented
//!   types pass straight through to std, so test binaries that link the
//!   facade but don't run model tests behave identically.
//! * [`runtime`](crate::model_active) — the controlled scheduler:
//!   baton-passing over real OS threads, uniform-random and PCT
//!   (priority + change points) policies, exact trace replay,
//!   per-execution isolation of process globals ([`exec_slot`]), and
//!   tracked-allocation use-after-free detection ([`alloc`]).
//! * [`linearize`] — a Wing & Gong linearizability checker fed by
//!   step-stamped operation histories.
//!
//! Exploration is sequentially consistent (shuttle-style), not weak
//! memory (loom-style): see DESIGN.md §9 for where the memory-ordering
//! argument is made by hand and cross-checked under ThreadSanitizer.
//!
//! # Example
//!
//! ```
//! use dst::sync::atomic::{AtomicU64, Ordering};
//! use dst::sync::Arc;
//!
//! dst::check("counter-increments", dst::Config::default().iterations(200), || {
//!     let c = Arc::new(AtomicU64::new(0));
//!     let t = {
//!         let c = c.clone();
//!         dst::thread::spawn(move || c.fetch_add(1, Ordering::Relaxed))
//!     };
//!     c.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     assert_eq!(c.load(Ordering::Relaxed), 2);
//! });
//! ```

pub mod linearize;
mod rng;
mod runtime;
pub mod sync;
pub mod thread;

pub use runtime::{
    alloc, exec_slot, execution_id, model_active, register_execution_end_hook, step, PolicyKind,
};

/// Spin-hint facade: a deprioritizing scheduling point inside a model
/// execution (so a spinning reader cannot starve the writer it waits
/// on), `std::hint::spin_loop` otherwise.
pub mod hint {
    /// See module docs.
    pub fn spin_loop() {
        if crate::model_active() {
            crate::runtime::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

use std::collections::HashSet;
use std::hash::{DefaultHasher, Hash, Hasher};

/// Exploration configuration. `Default` gives 1000 iterations split
/// between uniform-random and PCT(depth 3) policies, seed 0x5EED, and a
/// 20k-step budget per execution; [`Config::from_env`] layers
/// `DST_ITERS` / `DST_SEED` on top so CI lanes scale exploration without
/// code changes.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of schedules to explore.
    pub iterations: u64,
    /// Base seed; per-iteration seeds derive from it deterministically.
    pub seed: u64,
    /// Fraction (0..=100) of iterations run under PCT; the rest are
    /// uniform random. PCT targets low-depth ordering bugs, random
    /// covers the long tail.
    pub pct_percent: u64,
    /// PCT bug depth (number of priority change points + 1).
    pub pct_depth: u32,
    /// Per-execution scheduling-point budget; exhausting it fails the
    /// execution as a suspected deadlock/livelock.
    pub max_steps: u64,
    /// Rough expected schedule length, used to place PCT change points.
    pub expected_len: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            iterations: 1000,
            seed: 0x5EED,
            pct_percent: 50,
            pct_depth: 3,
            max_steps: 20_000,
            expected_len: 200,
        }
    }
}

impl Config {
    /// Sets the iteration count.
    pub fn iterations(mut self, n: u64) -> Config {
        self.iterations = n;
        self
    }

    /// Sets the base seed.
    pub fn seed(mut self, seed: u64) -> Config {
        self.seed = seed;
        self
    }

    /// Sets the per-execution step budget.
    pub fn max_steps(mut self, n: u64) -> Config {
        self.max_steps = n;
        self
    }

    /// Sets the expected schedule length (PCT change-point placement).
    pub fn expected_len(mut self, n: u64) -> Config {
        self.expected_len = n;
        self
    }

    /// Overrides from the environment: `DST_ITERS` scales the iteration
    /// count, `DST_SEED` pins the base seed (both decimal). This is how
    /// the nightly deep-exploration CI lane widens the search and how a
    /// failure seed is re-targeted.
    pub fn from_env(mut self) -> Config {
        if let Some(n) = env_u64("DST_ITERS") {
            self.iterations = n;
        }
        if let Some(s) = env_u64("DST_SEED") {
            self.seed = s;
        }
        self
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// A failing schedule, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The per-iteration derived seed that produced the schedule.
    pub seed: u64,
    /// Policy the schedule ran under.
    pub policy: PolicyKind,
    /// The invariant-violation message (panic payload or scheduler
    /// diagnosis).
    pub message: String,
    /// The exact choice sequence, for policy-independent replay.
    pub trace: Vec<u32>,
    /// Scheduling points executed before the failure.
    pub steps: u64,
    /// Which iteration of the exploration hit it.
    pub iteration: u64,
}

/// Result of an [`explore`] run.
#[derive(Debug)]
pub struct Report {
    /// Schedules executed (stops early at the first failure).
    pub explored: u64,
    /// Distinct schedules among them (by choice-trace hash).
    pub distinct: u64,
    /// The first failure, if any.
    pub failure: Option<Failure>,
}

/// Explores `config.iterations` schedules of `f`, alternating policies,
/// and returns a [`Report`]. Stops at the first failing schedule.
///
/// `f` runs once per schedule and must be deterministic apart from the
/// interleaving (no wall clock, no OS randomness): determinism is what
/// makes the recorded seed sufficient for replay.
pub fn explore<F: Fn()>(config: Config, f: F) -> Report {
    let mut distinct = HashSet::new();
    let pct_every = match config.pct_percent.min(100) {
        0 => u64::MAX,
        p => (100 / p).max(1),
    };
    for i in 0..config.iterations {
        let seed = rng::mix(config.seed, i);
        let policy = if i % pct_every == 0 {
            PolicyKind::Pct {
                depth: config.pct_depth,
            }
        } else {
            PolicyKind::Random
        };
        let outcome = runtime::run_one(seed, policy, config.max_steps, config.expected_len, &f);
        let mut h = DefaultHasher::new();
        outcome.trace.hash(&mut h);
        distinct.insert(h.finish());
        if let Some(message) = outcome.failure {
            return Report {
                explored: i + 1,
                distinct: distinct.len() as u64,
                failure: Some(Failure {
                    seed,
                    policy,
                    message,
                    trace: outcome.trace,
                    steps: outcome.steps,
                    iteration: i,
                }),
            };
        }
    }
    Report {
        explored: config.iterations,
        distinct: distinct.len() as u64,
        failure: None,
    }
}

/// Explores schedules of `f` and panics with a reproduction recipe if
/// any schedule violates an invariant. This is the entry point model
/// tests use.
pub fn check<F: Fn()>(name: &str, config: Config, f: F) {
    let report = explore(config, f);
    if std::env::var_os("DST_REPORT").is_some() {
        eprintln!(
            "model '{name}': explored {} schedules, {} distinct interleavings",
            report.explored, report.distinct
        );
    }
    if let Some(fail) = report.failure {
        panic!(
            "model '{name}' failed on iteration {iter} (schedule seed {seed:#x}, \
             policy {policy:?}, {steps} steps):\n  {msg}\n\
             replay exactly with:\n  \
             dst::replay({seed:#x}, dst::PolicyKind::{policy:?}, || ...)\n\
             or rerun this test with DST_SEED={base} DST_ITERS={iters}",
            iter = fail.iteration,
            seed = fail.seed,
            policy = fail.policy,
            steps = fail.steps,
            msg = fail.message,
            base = config.seed,
            iters = fail.iteration + 1,
        );
    }
}

/// Replays the single schedule generated by (`seed`, `policy`) and
/// returns its failure message, if it fails. Seeds printed by [`check`]
/// go here.
pub fn replay<F: Fn()>(seed: u64, policy: PolicyKind, f: F) -> Option<String> {
    let config = Config::default();
    runtime::run_one(seed, policy, config.max_steps, config.expected_len, f).failure
}

/// Replays an exact recorded choice trace (policy-independent; survives
/// scheduler-policy changes that would re-map seeds).
pub fn replay_trace<F: Fn()>(trace: Vec<u32>, f: F) -> Option<String> {
    runtime::run_trace(trace, Config::default().max_steps, f).failure
}

#[cfg(all(test, feature = "model"))]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Mutex};
    use super::*;

    #[test]
    fn single_thread_model_passes() {
        let report = explore(Config::default().iterations(50), || {
            let a = AtomicU64::new(1);
            a.fetch_add(1, Ordering::SeqCst);
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
        assert!(report.failure.is_none());
        assert_eq!(report.explored, 50);
    }

    #[test]
    fn finds_unsynchronized_check_then_act() {
        // Classic lost-update: both threads read 0, both store 1.
        // The explorer must find an interleaving where the final value
        // is 1 instead of 2, within few iterations.
        let report = explore(Config::default().iterations(500), || {
            let c = Arc::new(AtomicU64::new(0));
            let t = {
                let c = c.clone();
                thread::spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            };
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        });
        let failure = report.failure.expect("explorer must find the lost update");
        assert!(
            failure.message.contains("lost update"),
            "{}",
            failure.message
        );
    }

    #[test]
    fn failing_seed_replays_exactly() {
        let body = || {
            let c = Arc::new(AtomicU64::new(0));
            let t = {
                let c = c.clone();
                thread::spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            };
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        };
        let failure = explore(Config::default().iterations(500), body)
            .failure
            .expect("must find the lost update");
        // Seed replay reproduces the failure...
        let msg = replay(failure.seed, failure.policy, body).expect("seed must reproduce");
        assert!(msg.contains("lost update"));
        // ...and so does exact trace replay.
        let msg = replay_trace(failure.trace.clone(), body).expect("trace must reproduce");
        assert!(msg.contains("lost update"));
        // A correct program is clean under the same schedule.
        assert!(replay(failure.seed, failure.policy, || {
            let c = Arc::new(AtomicU64::new(0));
            let t = {
                let c = c.clone();
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            };
            c.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 2);
        })
        .is_none());
    }

    #[test]
    fn mutex_protects_critical_section() {
        let report = explore(Config::default().iterations(300), || {
            let m = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = m.clone();
                    thread::spawn(move || {
                        let mut g = m.lock().unwrap();
                        let v = *g;
                        thread::yield_now();
                        *g = v + 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 2);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }

    #[test]
    fn deadlock_diagnosed_as_step_budget() {
        let report = explore(Config::default().iterations(30).max_steps(2_000), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let t = {
                let a = a.clone();
                let b = b.clone();
                thread::spawn(move || {
                    let _ga = a.lock().unwrap();
                    thread::yield_now();
                    let _gb = b.lock().unwrap();
                })
            };
            let _gb = b.lock().unwrap();
            thread::yield_now();
            let _ga = a.lock().unwrap();
            drop(_ga);
            drop(_gb);
            t.join().unwrap();
        });
        let failure = report.failure.expect("AB-BA deadlock must be found");
        assert!(
            failure.message.contains("step budget"),
            "unexpected diagnosis: {}",
            failure.message
        );
    }

    #[test]
    fn explores_many_distinct_schedules() {
        let report = explore(Config::default().iterations(300), || {
            let c = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let c = c.clone();
                    thread::spawn(move || {
                        for _ in 0..3 {
                            c.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(c.load(Ordering::SeqCst), 9);
        });
        assert!(report.failure.is_none());
        // 3 threads x 3 ops gives far more than 100 interleavings; a
        // healthy explorer should rarely repeat itself here.
        assert!(
            report.distinct > 100,
            "only {} distinct schedules in 300 iterations",
            report.distinct
        );
    }

    #[test]
    fn exec_slot_isolated_per_execution() {
        use std::sync::atomic::AtomicU64 as StdAtomicU64;
        struct Counter(StdAtomicU64);
        let report = explore(Config::default().iterations(20), || {
            let c = exec_slot::<Counter>(|| Counter(StdAtomicU64::new(0)));
            // Each execution must see a pristine slot, regardless of how
            // many executions ran before it.
            assert_eq!(c.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst), 0);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }

    #[test]
    fn passthrough_outside_executions() {
        assert!(!model_active());
        let a = AtomicU64::new(7);
        assert_eq!(a.fetch_add(1, Ordering::SeqCst), 7);
        let m = Mutex::new(3);
        assert_eq!(*m.lock().unwrap(), 3);
        let t = thread::spawn(|| 42);
        assert_eq!(t.join().unwrap(), 42);
        hint::spin_loop();
        thread::yield_now();
    }
}
