//! The thread facade: `spawn`/`join`/`yield_now` that the scheduler
//! controls inside model executions and that defer to `std::thread`
//! everywhere else.

#[cfg(not(feature = "model"))]
pub use std::thread::{spawn, yield_now, JoinHandle};

#[cfg(feature = "model")]
pub use model::{spawn, yield_now, JoinHandle};

#[cfg(feature = "model")]
mod model {
    use crate::runtime::{model_active, schedule, spawn_virtual, vthread_finished, YieldKind};
    use std::any::Any;
    use std::sync::{Arc, Mutex};

    enum Inner<T> {
        /// A virtual thread owned by the active execution: the value
        /// lands in the shared slot when the body finishes.
        Virtual {
            vtid: usize,
            value: Arc<Mutex<Option<T>>>,
        },
        /// Plain std thread (no execution context at spawn time).
        Os(std::thread::JoinHandle<T>),
    }

    /// Handle to a spawned thread, mirroring `std::thread::JoinHandle`.
    pub struct JoinHandle<T>(Inner<T>);

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its value.
        ///
        /// For virtual threads the wait is cooperative: the caller
        /// yields (a deprioritizing scheduling point) until the target
        /// is marked finished, so the scheduler is free to run the
        /// target to completion. A missing value after `finished`
        /// means the target panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            match self.0 {
                Inner::Virtual { vtid, value } => {
                    while !vthread_finished(vtid) {
                        schedule(YieldKind::Yield);
                    }
                    let taken = value.lock().unwrap_or_else(|e| e.into_inner()).take();
                    match taken {
                        Some(v) => Ok(v),
                        None => {
                            Err(Box::new("virtual thread panicked")
                                as Box<dyn Any + Send + 'static>)
                        }
                    }
                }
                Inner::Os(h) => h.join(),
            }
        }
    }

    /// Spawns a thread. Inside a model execution the thread becomes a
    /// virtual thread of that execution (its every instrumented op a
    /// scheduling point); otherwise this is `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if model_active() {
            let (vtid, value) = spawn_virtual(f);
            JoinHandle(Inner::Virtual { vtid, value })
        } else {
            JoinHandle(Inner::Os(std::thread::spawn(f)))
        }
    }

    /// Cooperative yield: a deprioritizing scheduling point inside a
    /// model execution, `std::thread::yield_now` otherwise.
    pub fn yield_now() {
        if model_active() {
            schedule(YieldKind::Yield);
        } else {
            std::thread::yield_now();
        }
    }
}
