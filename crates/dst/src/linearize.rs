//! A small Wing & Gong linearizability checker.
//!
//! Model tests record each operation's invocation/response interval in
//! scheduler steps (via [`crate::step`]) together with its observed
//! result, then ask whether some total order of the operations (a) is
//! consistent with the real-time partial order — an op that responded
//! before another was invoked must precede it — and (b) replays
//! correctly against a sequential reference model. The search is a DFS
//! over "minimal" candidates (ops no other pending op strictly
//! precedes), which is exponential in the worst case but instant for
//! the handful of ops a single model execution records.

/// A sequential reference model: `apply` executes one operation and
/// returns the result a sequential execution would observe.
pub trait Sequential: Clone {
    /// Operation type (the invocation, without its result).
    type Op: Clone;
    /// Result type, compared against the recorded concurrent result.
    type Ret: PartialEq;

    /// Applies `op`, mutating the model and returning the sequential result.
    fn apply(&mut self, op: &Self::Op) -> Self::Ret;
}

/// One recorded concurrent operation.
#[derive(Clone)]
pub struct Recorded<S: Sequential> {
    /// The operation.
    pub op: S::Op,
    /// Result the concurrent execution observed.
    pub ret: S::Ret,
    /// Scheduler step at invocation.
    pub invoked: u64,
    /// Scheduler step at response. Must be `>= invoked`.
    pub responded: u64,
}

/// A concurrent history under construction. Threads push completed ops;
/// `check` asks whether the whole history linearizes.
pub struct History<S: Sequential> {
    ops: Vec<Recorded<S>>,
}

impl<S: Sequential> Default for History<S> {
    fn default() -> Self {
        History::new()
    }
}

impl<S: Sequential> History<S> {
    /// An empty history.
    pub fn new() -> History<S> {
        History { ops: Vec::new() }
    }

    /// Records one completed operation with its step-stamped interval.
    pub fn record(&mut self, op: S::Op, ret: S::Ret, invoked: u64, responded: u64) {
        debug_assert!(invoked <= responded);
        self.ops.push(Recorded {
            op,
            ret,
            invoked,
            responded,
        });
    }

    /// Merges another history (e.g. one per thread) into this one.
    pub fn extend(&mut self, other: History<S>) {
        self.ops.extend(other.ops);
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Checks the history against `initial`. Returns `Ok(())` with a
    /// witness order existing, or `Err` describing the first
    /// non-linearizable prefix found.
    pub fn check(&self, initial: S) -> Result<(), String> {
        let n = self.ops.len();
        if n == 0 {
            return Ok(());
        }
        let mut taken = vec![false; n];
        let mut order = Vec::with_capacity(n);
        if dfs(&self.ops, initial.clone(), &mut taken, &mut order) {
            Ok(())
        } else {
            Err(format!(
                "history of {n} operations has no linearization: {:?}",
                summarize(&self.ops)
            ))
        }
    }
}

fn dfs<S: Sequential>(
    ops: &[Recorded<S>],
    model: S,
    taken: &mut [bool],
    order: &mut Vec<usize>,
) -> bool {
    if order.len() == ops.len() {
        return true;
    }
    // Earliest response among pending ops: any candidate must have been
    // invoked before it, or it would have to linearize after that op.
    let min_resp = ops
        .iter()
        .enumerate()
        .filter(|(i, _)| !taken[*i])
        .map(|(_, o)| o.responded)
        .min()
        .unwrap();
    for i in 0..ops.len() {
        if taken[i] || ops[i].invoked > min_resp {
            continue;
        }
        let mut m = model.clone();
        if m.apply(&ops[i].op) != ops[i].ret {
            continue;
        }
        taken[i] = true;
        order.push(i);
        if dfs(ops, m, taken, order) {
            return true;
        }
        order.pop();
        taken[i] = false;
    }
    false
}

fn summarize<S: Sequential>(ops: &[Recorded<S>]) -> Vec<(u64, u64)> {
    ops.iter().map(|o| (o.invoked, o.responded)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sequential register: write returns nothing observable, read
    /// returns the current value.
    #[derive(Clone, Default, Debug)]
    struct Register(u64);

    #[derive(Clone, Debug)]
    enum RegOp {
        Write(u64),
        Read,
    }

    impl Sequential for Register {
        type Op = RegOp;
        type Ret = Option<u64>;
        fn apply(&mut self, op: &RegOp) -> Option<u64> {
            match op {
                RegOp::Write(v) => {
                    self.0 = *v;
                    None
                }
                RegOp::Read => Some(self.0),
            }
        }
    }

    #[test]
    fn sequential_history_linearizes() {
        let mut h: History<Register> = History::new();
        h.record(RegOp::Write(1), None, 0, 1);
        h.record(RegOp::Read, Some(1), 2, 3);
        assert!(h.check(Register::default()).is_ok());
    }

    #[test]
    fn concurrent_read_may_see_either_value() {
        // Write(5) overlaps a Read that observed the OLD value: fine.
        let mut h: History<Register> = History::new();
        h.record(RegOp::Write(5), None, 0, 10);
        h.record(RegOp::Read, Some(0), 2, 3);
        assert!(h.check(Register::default()).is_ok());
    }

    #[test]
    fn stale_read_after_write_rejected() {
        // Write(5) completed strictly before the Read began, yet the
        // Read observed the initial value: not linearizable.
        let mut h: History<Register> = History::new();
        h.record(RegOp::Write(5), None, 0, 1);
        h.record(RegOp::Read, Some(0), 2, 3);
        assert!(h.check(Register::default()).is_err());
    }

    #[test]
    fn fresh_read_between_writes() {
        let mut h: History<Register> = History::new();
        h.record(RegOp::Write(1), None, 0, 1);
        h.record(RegOp::Write(2), None, 4, 5);
        // Overlaps both writes; seeing 1 requires ordering between them.
        h.record(RegOp::Read, Some(1), 0, 6);
        assert!(h.check(Register::default()).is_ok());
    }

    #[test]
    fn value_never_written_rejected() {
        let mut h: History<Register> = History::new();
        h.record(RegOp::Write(1), None, 0, 1);
        h.record(RegOp::Read, Some(9), 2, 3);
        assert!(h.check(Register::default()).is_err());
    }

    #[test]
    fn empty_history_ok() {
        let h: History<Register> = History::new();
        assert!(h.check(Register::default()).is_ok());
    }
}
