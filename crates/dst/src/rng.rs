//! Deterministic pseudo-randomness for schedule exploration.
//!
//! SplitMix64: tiny, statistically solid, and — crucially — a pure
//! function of the seed, so a schedule is fully reproducible from the
//! `u64` that generated it.

/// A SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bound (Lemire); bias is negligible for the small
        // `n` (thread counts, step positions) used in scheduling.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// One-shot mix of `seed` and `salt` into a fresh derived seed (used to
/// derive per-iteration seeds from a base exploration seed).
pub fn mix(seed: u64, salt: u64) -> u64 {
    let mut r = SplitMix64::new(seed ^ salt.wrapping_mul(0xA24B_AED4_963E_E407));
    r.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = SplitMix64::new(43);
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(7);
        for n in 1..20u64 {
            for _ in 0..100 {
                assert!(r.next_below(n) < n);
            }
        }
    }

    #[test]
    fn mix_changes_with_salt() {
        assert_ne!(mix(1, 0), mix(1, 1));
        assert_eq!(mix(9, 3), mix(9, 3));
    }
}
