//! The controlled scheduler: virtual threads, one-at-a-time execution,
//! seeded schedule policies, and per-execution state isolation.
//!
//! Model code runs on real OS threads, but only one *virtual* thread
//! holds the baton at any instant. Every instrumented operation (facade
//! atomic, lock acquisition, explicit yield) calls [`schedule`], which
//! picks the next thread to run from the active policy and hands the
//! baton over through a mutex/condvar pair. Given deterministic model
//! code, the entire interleaving is a pure function of the policy's
//! decisions — which are themselves a pure function of a `u64` seed —
//! so any failing schedule replays exactly from its seed (or from the
//! recorded choice trace, which survives even policy changes).
//!
//! Weak-memory caveat: interleavings are explored at sequential
//! consistency (like shuttle/PCT), not the full C11 model (like loom).
//! Store buffering / load reordering bugs are out of scope; ordering
//! arguments are documented in DESIGN.md §9 and cross-checked by the
//! ThreadSanitizer CI lane.

use crate::rng::SplitMix64;
use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Panic payload used to unwind virtual threads when an execution
/// aborts (another thread failed, or the step budget ran out).
pub(crate) struct ExecAbort;

/// Schedule policy selected by a [`crate::Config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Uniformly random choice among runnable threads at every step.
    Random,
    /// PCT-style priority scheduling (Burckhardt et al., ASPLOS '10):
    /// threads get random priorities, the highest-priority runnable
    /// thread always runs, and `depth - 1` random *change points* drop
    /// the running thread's priority mid-execution. Finds bugs of
    /// "depth" d with probability ≥ 1/(n·k^(d-1)) per schedule.
    Pct {
        /// Bug depth to target (number of ordering constraints).
        depth: u32,
    },
}

/// Why a thread reached a scheduling point; `Yield` marks voluntary
/// back-off (spin hints, failed lock tries) and deprioritizes the
/// caller under PCT so spinners cannot starve the thread they wait on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum YieldKind {
    Op,
    Yield,
}

struct VThread {
    finished: bool,
    priority: i64,
}

enum Chooser {
    Random,
    Pct {
        change_points: Vec<u64>,
        next_low: i64,
    },
    Replay {
        choices: Vec<u32>,
        cursor: usize,
    },
}

struct ExecState {
    threads: Vec<VThread>,
    current: usize,
    chooser: Chooser,
    rng: SplitMix64,
    steps: u64,
    max_steps: u64,
    trace: Vec<u32>,
    abort: bool,
    failure: Option<String>,
    unfinished: usize,
}

impl ExecState {
    fn runnable(&self) -> impl Iterator<Item = usize> + '_ {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.finished)
            .map(|(i, _)| i)
    }

    /// Picks the next thread to run and records the decision.
    fn choose(&mut self) -> usize {
        let runnable: Vec<usize> = self.runnable().collect();
        debug_assert!(!runnable.is_empty(), "choose with no runnable threads");
        let pick = match &mut self.chooser {
            Chooser::Random => runnable[self.rng.next_below(runnable.len() as u64) as usize],
            Chooser::Pct { .. } => *runnable
                .iter()
                .max_by_key(|&&t| self.threads[t].priority)
                .unwrap(),
            Chooser::Replay { choices, cursor } => {
                let recorded = choices.get(*cursor).map(|&c| c as usize);
                *cursor += 1;
                match recorded {
                    // Replay diverging from the recorded trace means the
                    // model itself is nondeterministic; fall back to the
                    // first runnable thread rather than wedging.
                    Some(t) if runnable.contains(&t) => t,
                    _ => runnable[0],
                }
            }
        };
        self.trace.push(pick as u32);
        pick
    }

    /// Drops `tid`'s priority below every other thread (PCT only).
    fn deprioritize(&mut self, tid: usize) {
        if let Chooser::Pct { next_low, .. } = &mut self.chooser {
            *next_low -= 1;
            self.threads[tid].priority = *next_low;
        }
    }

    fn at_change_point(&mut self) -> bool {
        if let Chooser::Pct { change_points, .. } = &self.chooser {
            return change_points.contains(&self.steps);
        }
        false
    }
}

/// Tracked-allocation table: records pointers retired by instrumented
/// reclamation (the vendored `crossbeam-epoch` under its `dst` feature)
/// so a dereference of freed memory is caught as a clean invariant
/// violation *before* the load happens, instead of silent UB.
#[derive(Default)]
pub(crate) struct AllocTable {
    freed: HashSet<usize>,
}

/// One model execution: scheduler state, tracked allocations, and the
/// per-execution global-state slots (see [`exec_slot`]).
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
    alloc: Mutex<AllocTable>,
    slots: Mutex<HashMap<TypeId, Arc<dyn Any + Send + Sync>>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    id: u64,
}

/// Outcome of one execution, harvested by the explorer.
pub(crate) struct ExecOutcome {
    pub failure: Option<String>,
    pub trace: Vec<u32>,
    pub steps: u64,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

fn cur() -> Option<(Arc<Execution>, usize)> {
    CTX.try_with(|c| c.try_borrow().ok().and_then(|b| b.clone()))
        .ok()
        .flatten()
}

fn set_ctx(exec: Arc<Execution>, vtid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((exec, vtid)));
}

fn clear_ctx() {
    let _ = CTX.try_with(|c| {
        if let Ok(mut b) = c.try_borrow_mut() {
            *b = None;
        }
    });
}

/// True when the calling thread is a virtual thread of an active model
/// execution. Facade types consult this to decide between scheduler
/// participation and plain passthrough.
pub fn model_active() -> bool {
    cur().is_some()
}

/// The active execution's logical step counter (0 outside executions).
/// Monotone within an execution; used by the linearizability checker to
/// stamp operation invocation/response intervals.
pub fn step() -> u64 {
    match cur() {
        Some((exec, _)) => exec.lock_state().steps,
        None => 0,
    }
}

static NEXT_EXEC_ID: AtomicU64 = AtomicU64::new(1);

impl Execution {
    fn new(seed: u64, policy: PolicyKind, max_steps: u64, expected_len: u64) -> Arc<Execution> {
        let mut rng = SplitMix64::new(seed);
        let chooser = match policy {
            PolicyKind::Random => Chooser::Random,
            PolicyKind::Pct { depth } => {
                let mut change_points = Vec::new();
                for _ in 1..depth.max(1) {
                    change_points.push(rng.next_below(expected_len.max(2)) + 1);
                }
                Chooser::Pct {
                    change_points,
                    next_low: -1,
                }
            }
        };
        Arc::new(Execution {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                current: 0,
                chooser,
                rng,
                steps: 0,
                max_steps,
                trace: Vec::new(),
                abort: false,
                failure: None,
                unfinished: 0,
            }),
            cv: Condvar::new(),
            alloc: Mutex::new(AllocTable::default()),
            slots: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
            id: NEXT_EXEC_ID.fetch_add(1, Ordering::Relaxed),
        })
    }

    fn from_trace(trace: Vec<u32>, max_steps: u64) -> Arc<Execution> {
        let exec = Execution::new(0, PolicyKind::Random, max_steps, 2);
        exec.lock_state().chooser = Chooser::Replay {
            choices: trace,
            cursor: 0,
        };
        exec
    }

    fn lock_state(&self) -> MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        let priority = st.rng.next_u64() as i64 & i64::MAX;
        st.threads.push(VThread {
            finished: false,
            priority,
        });
        st.unfinished += 1;
        st.threads.len() - 1
    }

    /// Records a failure (first one wins) and wakes every thread so the
    /// execution unwinds.
    fn fail(&self, message: String) {
        let mut st = self.lock_state();
        if st.failure.is_none() {
            st.failure = Some(message);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    fn finish_thread(&self, vtid: usize) {
        let mut st = self.lock_state();
        debug_assert!(!st.threads[vtid].finished);
        st.threads[vtid].finished = true;
        st.unfinished -= 1;
        if st.unfinished > 0 && st.current == vtid && !st.abort {
            let next = st.choose();
            st.current = next;
        }
        self.cv.notify_all();
    }

    /// Blocks the OS thread until `vtid` holds the baton (or the
    /// execution aborts, in which case the caller must unwind).
    fn wait_for_baton(&self, vtid: usize) -> Result<(), ExecAbort> {
        let mut st = self.lock_state();
        while st.current != vtid && !st.abort {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.abort {
            return Err(ExecAbort);
        }
        Ok(())
    }
}

/// The scheduling point every instrumented operation passes through.
///
/// No-op when the calling thread is not part of an execution (facade
/// passthrough mode) or is already unwinding (so guard drops during a
/// panic never double-panic).
pub(crate) fn schedule(kind: YieldKind) {
    if std::thread::panicking() {
        return;
    }
    let Some((exec, vtid)) = cur() else { return };
    let mut st = exec.lock_state();
    debug_assert_eq!(st.current, vtid, "scheduling point without the baton");
    if st.abort {
        drop(st);
        std::panic::panic_any(ExecAbort);
    }
    st.steps += 1;
    if st.steps > st.max_steps {
        let budget = st.max_steps;
        drop(st);
        exec.fail(format!(
            "step budget exhausted after {budget} steps: possible deadlock or livelock \
             (every remaining thread is spinning or blocked)"
        ));
        std::panic::panic_any(ExecAbort);
    }
    if kind == YieldKind::Yield || st.at_change_point() {
        st.deprioritize(vtid);
    }
    let next = st.choose();
    if next == vtid {
        return; // keep running; no handoff needed
    }
    st.current = next;
    exec.cv.notify_all();
    while st.current != vtid && !st.abort {
        st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    if st.abort {
        drop(st);
        std::panic::panic_any(ExecAbort);
    }
}

/// An explicit scheduling point (exposed as `dst::hint::spin_loop` and
/// `dst::thread::yield_now`): tells the scheduler the caller cannot make
/// progress right now.
pub(crate) fn yield_now() {
    schedule(YieldKind::Yield);
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn handle_panic(exec: &Execution, payload: Box<dyn Any + Send>) {
    if payload.downcast_ref::<ExecAbort>().is_some() {
        return; // secondary unwind; original failure already recorded
    }
    exec.fail(panic_message(payload.as_ref()));
}

/// Spawns a virtual thread in the current execution. Must only be
/// called from a virtual thread (checked by the caller in
/// `dst::thread::spawn`).
pub(crate) fn spawn_virtual<T, F>(f: F) -> (usize, Arc<Mutex<Option<T>>>)
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (exec, _) = cur().expect("spawn_virtual outside an execution");
    let vtid = exec.register_thread();
    let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let os_handle = {
        let exec = exec.clone();
        let slot = slot.clone();
        std::thread::spawn(move || {
            set_ctx(exec.clone(), vtid);
            let body = AssertUnwindSafe(|| {
                if exec.wait_for_baton(vtid).is_err() {
                    return; // aborted before first scheduling
                }
                let value = f();
                *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
            });
            let result = catch_unwind(body);
            clear_ctx();
            if let Err(payload) = result {
                handle_panic(&exec, payload);
            }
            exec.finish_thread(vtid);
        })
    };
    exec.handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(os_handle);
    // Make the new thread immediately schedulable: the spawn itself is a
    // scheduling point, so the child can run before the parent's next op.
    schedule(YieldKind::Op);
    (vtid, slot)
}

/// True when virtual thread `vtid` of the current execution finished.
pub(crate) fn vthread_finished(vtid: usize) -> bool {
    match cur() {
        Some((exec, _)) => exec.lock_state().threads[vtid].finished,
        None => true,
    }
}

/// Runs `f` as virtual thread 0 of a fresh execution and returns the
/// outcome. `policy`/`seed` fully determine the schedule.
pub(crate) fn run_one<F: Fn()>(
    seed: u64,
    policy: PolicyKind,
    max_steps: u64,
    expected_len: u64,
    f: F,
) -> ExecOutcome {
    let exec = Execution::new(seed, policy, max_steps, expected_len);
    run_on(exec, f)
}

/// Runs `f` under an exact recorded schedule (trace replay).
pub(crate) fn run_trace<F: Fn()>(trace: Vec<u32>, max_steps: u64, f: F) -> ExecOutcome {
    let exec = Execution::from_trace(trace, max_steps);
    run_on(exec, f)
}

/// End-of-execution hooks (see [`register_execution_end_hook`]).
static END_HOOKS: Mutex<Vec<fn()>> = Mutex::new(Vec::new());

/// Registers `f` to run on the driver thread after every model execution
/// completes, *outside* any execution context. Instrumented crates use
/// this to purge per-execution thread-local state (e.g. the epoch
/// collector's participant record) so the next execution starts from an
/// identical state — lazily dropping such state inside the next
/// execution would shift its schedule-point count and break exact trace
/// replay. Registering the same function twice is a no-op.
pub fn register_execution_end_hook(f: fn()) {
    let mut hooks = END_HOOKS.lock().unwrap_or_else(|e| e.into_inner());
    if !hooks.contains(&f) {
        hooks.push(f);
    }
}

fn run_end_hooks() {
    let hooks: Vec<fn()> = END_HOOKS.lock().unwrap_or_else(|e| e.into_inner()).clone();
    for h in hooks {
        h();
    }
}

fn run_on<F: Fn()>(exec: Arc<Execution>, f: F) -> ExecOutcome {
    assert!(
        cur().is_none(),
        "nested dst executions are not supported (check() inside check())"
    );
    // Start from a clean slate too: a prior execution on this thread may
    // have ended before hooks existed (first-time registration happens
    // lazily inside the body).
    run_end_hooks();
    let vtid = exec.register_thread();
    debug_assert_eq!(vtid, 0);
    set_ctx(exec.clone(), 0);
    let result = catch_unwind(AssertUnwindSafe(&f));
    clear_ctx();
    if let Err(payload) = result {
        handle_panic(&exec, payload);
    }
    exec.finish_thread(0);
    // Wait for stragglers (threads the model spawned but never joined,
    // or threads still unwinding after an abort).
    {
        let mut st = exec.lock_state();
        while st.unfinished > 0 {
            st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    let handles: Vec<_> = exec
        .handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .drain(..)
        .collect();
    for h in handles {
        let _ = h.join();
    }
    let outcome = {
        let mut st = exec.lock_state();
        ExecOutcome {
            failure: st.failure.take(),
            trace: std::mem::take(&mut st.trace),
            steps: st.steps,
        }
    };
    // The context is cleared: hooks run in passthrough mode and cannot
    // perturb any schedule.
    run_end_hooks();
    outcome
}

// ---------------------------------------------------------------------------
// Tracked allocations
// ---------------------------------------------------------------------------

/// Allocation-tracking hooks. Instrumented reclamation (the vendored
/// `crossbeam-epoch` under its `dst` feature) reports allocation, free,
/// and dereference events here; a dereference of a freed pointer fails
/// the execution with a use-after-free diagnosis instead of touching the
/// memory. All hooks are no-ops outside a model execution.
pub mod alloc {
    use super::cur;

    /// Records `ptr` as a live tracked allocation (clears any stale
    /// freed record if the allocator reused the address).
    pub fn track_alloc(ptr: *const ()) {
        if let Some((exec, _)) = cur() {
            exec.alloc
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .freed
                .remove(&(ptr as usize));
        }
    }

    /// Records `ptr` as freed.
    pub fn track_free(ptr: *const ()) {
        if let Some((exec, _)) = cur() {
            exec.alloc
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .freed
                .insert(ptr as usize);
        }
    }

    /// Asserts `ptr` was not freed; panics (failing the execution) on a
    /// use-after-free. Call *before* dereferencing.
    pub fn check_deref(ptr: *const ()) {
        if let Some((exec, _)) = cur() {
            let freed = exec
                .alloc
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .freed
                .contains(&(ptr as usize));
            if freed {
                panic!(
                    "use-after-free: dereferenced {ptr:p}, which epoch reclamation \
                     already freed while a guard could still reach it"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-execution global-state slots
// ---------------------------------------------------------------------------

static FALLBACK_SLOTS: OnceLock<Mutex<HashMap<TypeId, Arc<dyn Any + Send + Sync>>>> =
    OnceLock::new();

/// Returns the per-execution instance of `T`, creating it with `init`
/// on first use. Process-global singletons (like the epoch collector's
/// state) route through this under model builds so every execution
/// starts from pristine state — the isolation that makes schedules
/// replayable. Outside an execution a process-wide fallback instance is
/// returned.
pub fn exec_slot<T: Send + Sync + 'static>(init: fn() -> T) -> Arc<T> {
    let slots = match cur() {
        Some((exec, _)) => {
            let mut map = exec.slots.lock().unwrap_or_else(|e| e.into_inner());
            return slot_from(&mut map, init);
        }
        None => FALLBACK_SLOTS.get_or_init(|| Mutex::new(HashMap::new())),
    };
    let mut map = slots.lock().unwrap_or_else(|e| e.into_inner());
    slot_from(&mut map, init)
}

fn slot_from<T: Send + Sync + 'static>(
    map: &mut HashMap<TypeId, Arc<dyn Any + Send + Sync>>,
    init: fn() -> T,
) -> Arc<T> {
    let entry = map
        .entry(TypeId::of::<T>())
        .or_insert_with(|| Arc::new(init()) as Arc<dyn Any + Send + Sync>);
    entry
        .clone()
        .downcast::<T>()
        .expect("exec_slot type confusion")
}

/// The current execution's id (0 outside executions). Diagnostics only.
pub fn execution_id() -> u64 {
    cur().map(|(e, _)| e.id).unwrap_or(0)
}
