//! The sync facade.
//!
//! With the `model` feature **off**, every item here is a plain
//! re-export of `std::sync` — zero cost, identical types. With `model`
//! **on**, atomics and locks become instrumented versions that insert a
//! scheduling point before each operation when the calling thread
//! belongs to an active model execution, and pass straight through to
//! the underlying std type otherwise. The instrumented types mirror the
//! `std::sync` API surface the workspace uses (including poisoning
//! signatures), so consumers route through with a one-line import swap.

#[cfg(not(feature = "model"))]
pub use std::sync::{
    Arc, Condvar, LockResult, Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard,
    RwLockWriteGuard, TryLockError, TryLockResult, Weak,
};

#[cfg(not(feature = "model"))]
pub mod atomic {
    pub use std::sync::atomic::*;
}

#[cfg(feature = "model")]
pub use std::sync::{
    Arc, Condvar, LockResult, OnceLock, PoisonError, TryLockError, TryLockResult, Weak,
};

#[cfg(feature = "model")]
pub use model::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "model")]
pub mod atomic {
    pub use super::model::atomic::{
        fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize,
    };
    pub use std::sync::atomic::Ordering;
}

#[cfg(feature = "model")]
mod model {
    use crate::runtime::{model_active, schedule, YieldKind};
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::sync::{self, LockResult, TryLockError, TryLockResult};

    /// A mutex whose acquisitions are scheduling points. Blocking is
    /// spin-with-yield: only one virtual thread runs at a time, so a
    /// failed `try_lock` means a descheduled thread holds the lock — the
    /// caller yields (deprioritizing itself under PCT) until the holder
    /// runs and releases. Real deadlocks surface as step-budget
    /// exhaustion with the full schedule trace attached.
    pub struct Mutex<T: ?Sized> {
        inner: sync::Mutex<T>,
    }

    /// RAII guard for [`Mutex`]. Release is *not* a scheduling point:
    /// guards drop during unwinding, and a panic inside `Drop` would
    /// abort the process; the next instrumented operation observes the
    /// release anyway.
    pub struct MutexGuard<'a, T: ?Sized + 'a>(sync::MutexGuard<'a, T>);

    impl<T> Mutex<T> {
        /// Creates a new instrumented mutex.
        pub const fn new(value: T) -> Mutex<T> {
            Mutex {
                inner: sync::Mutex::new(value),
            }
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock (poison-transparent: model executions
        /// recover the guard from a poisoned lock so the scheduler can
        /// unwind every thread cleanly after a failure).
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            schedule(YieldKind::Op);
            loop {
                match self.inner.try_lock() {
                    Ok(g) => return Ok(MutexGuard(g)),
                    Err(TryLockError::Poisoned(e)) => return Ok(MutexGuard(e.into_inner())),
                    Err(TryLockError::WouldBlock) => {
                        if !model_active() {
                            let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                            return Ok(MutexGuard(g));
                        }
                        schedule(YieldKind::Yield);
                    }
                }
            }
        }

        /// Attempts the lock without blocking.
        pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
            schedule(YieldKind::Op);
            match self.inner.try_lock() {
                Ok(g) => Ok(MutexGuard(g)),
                Err(TryLockError::Poisoned(e)) => Ok(MutexGuard(e.into_inner())),
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            }
        }

        /// Mutable access without locking (exclusive borrow).
        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.inner.get_mut()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            (**self).fmt(f)
        }
    }

    /// A reader-writer lock with scheduled acquisitions (see [`Mutex`]
    /// for the blocking discipline).
    pub struct RwLock<T: ?Sized> {
        inner: sync::RwLock<T>,
    }

    /// Shared-read guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T: ?Sized + 'a>(sync::RwLockReadGuard<'a, T>);

    /// Exclusive-write guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T: ?Sized + 'a>(sync::RwLockWriteGuard<'a, T>);

    impl<T> RwLock<T> {
        /// Creates a new instrumented reader-writer lock.
        pub const fn new(value: T) -> RwLock<T> {
            RwLock {
                inner: sync::RwLock::new(value),
            }
        }

        /// Consumes the lock, returning the inner value.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires a shared read lock.
        pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
            schedule(YieldKind::Op);
            loop {
                match self.inner.try_read() {
                    Ok(g) => return Ok(RwLockReadGuard(g)),
                    Err(TryLockError::Poisoned(e)) => return Ok(RwLockReadGuard(e.into_inner())),
                    Err(TryLockError::WouldBlock) => {
                        if !model_active() {
                            let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
                            return Ok(RwLockReadGuard(g));
                        }
                        schedule(YieldKind::Yield);
                    }
                }
            }
        }

        /// Acquires the exclusive write lock.
        pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
            schedule(YieldKind::Op);
            loop {
                match self.inner.try_write() {
                    Ok(g) => return Ok(RwLockWriteGuard(g)),
                    Err(TryLockError::Poisoned(e)) => return Ok(RwLockWriteGuard(e.into_inner())),
                    Err(TryLockError::WouldBlock) => {
                        if !model_active() {
                            let g = self.inner.write().unwrap_or_else(|e| e.into_inner());
                            return Ok(RwLockWriteGuard(g));
                        }
                        schedule(YieldKind::Yield);
                    }
                }
            }
        }

        /// Mutable access without locking (exclusive borrow).
        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.inner.get_mut()
        }
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            (**self).fmt(f)
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            (**self).fmt(f)
        }
    }

    pub mod atomic {
        use crate::runtime::{schedule, YieldKind};
        use std::sync::atomic::{self, Ordering};

        /// A memory fence preceded by a scheduling point.
        pub fn fence(order: Ordering) {
            schedule(YieldKind::Op);
            atomic::fence(order);
        }

        macro_rules! instrumented_atomic {
            ($(#[$m:meta])* $name:ident, $std:ident, $prim:ty) => {
                $(#[$m])*
                #[derive(Default)]
                pub struct $name {
                    inner: atomic::$std,
                }

                impl $name {
                    /// Creates a new instrumented atomic.
                    pub const fn new(value: $prim) -> $name {
                        $name { inner: atomic::$std::new(value) }
                    }

                    /// Atomic load (scheduling point).
                    #[inline]
                    pub fn load(&self, order: Ordering) -> $prim {
                        schedule(YieldKind::Op);
                        self.inner.load(order)
                    }

                    /// Atomic store (scheduling point).
                    #[inline]
                    pub fn store(&self, value: $prim, order: Ordering) {
                        schedule(YieldKind::Op);
                        self.inner.store(value, order);
                    }

                    /// Atomic swap (scheduling point).
                    #[inline]
                    pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                        schedule(YieldKind::Op);
                        self.inner.swap(value, order)
                    }

                    /// Atomic compare-exchange (scheduling point).
                    #[inline]
                    pub fn compare_exchange(
                        &self,
                        current: $prim,
                        new: $prim,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        schedule(YieldKind::Op);
                        self.inner.compare_exchange(current, new, success, failure)
                    }

                    /// Atomic weak compare-exchange (scheduling point).
                    #[inline]
                    pub fn compare_exchange_weak(
                        &self,
                        current: $prim,
                        new: $prim,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        schedule(YieldKind::Op);
                        self.inner.compare_exchange_weak(current, new, success, failure)
                    }

                    /// Mutable access (exclusive borrow; no scheduling).
                    #[inline]
                    pub fn get_mut(&mut self) -> &mut $prim {
                        self.inner.get_mut()
                    }

                    /// Consumes the atomic, returning the value.
                    #[inline]
                    pub fn into_inner(self) -> $prim {
                        self.inner.into_inner()
                    }
                }

                impl From<$prim> for $name {
                    fn from(value: $prim) -> $name {
                        $name::new(value)
                    }
                }

                impl std::fmt::Debug for $name {
                    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        self.inner.fmt(f)
                    }
                }
            };
        }

        macro_rules! instrumented_int_ops {
            ($name:ident, $prim:ty) => {
                impl $name {
                    /// Atomic add, returning the previous value.
                    #[inline]
                    pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                        schedule(YieldKind::Op);
                        self.inner.fetch_add(value, order)
                    }

                    /// Atomic subtract, returning the previous value.
                    #[inline]
                    pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                        schedule(YieldKind::Op);
                        self.inner.fetch_sub(value, order)
                    }

                    /// Atomic bitwise or, returning the previous value.
                    #[inline]
                    pub fn fetch_or(&self, value: $prim, order: Ordering) -> $prim {
                        schedule(YieldKind::Op);
                        self.inner.fetch_or(value, order)
                    }

                    /// Atomic bitwise and, returning the previous value.
                    #[inline]
                    pub fn fetch_and(&self, value: $prim, order: Ordering) -> $prim {
                        schedule(YieldKind::Op);
                        self.inner.fetch_and(value, order)
                    }

                    /// Atomic bitwise xor, returning the previous value.
                    #[inline]
                    pub fn fetch_xor(&self, value: $prim, order: Ordering) -> $prim {
                        schedule(YieldKind::Op);
                        self.inner.fetch_xor(value, order)
                    }

                    /// Atomic max, returning the previous value.
                    #[inline]
                    pub fn fetch_max(&self, value: $prim, order: Ordering) -> $prim {
                        schedule(YieldKind::Op);
                        self.inner.fetch_max(value, order)
                    }

                    /// Atomic min, returning the previous value.
                    #[inline]
                    pub fn fetch_min(&self, value: $prim, order: Ordering) -> $prim {
                        schedule(YieldKind::Op);
                        self.inner.fetch_min(value, order)
                    }
                }
            };
        }

        instrumented_atomic! {
            /// Instrumented `AtomicU32`: every operation is a scheduling
            /// point inside model executions, a plain std op otherwise.
            AtomicU32, AtomicU32, u32
        }
        instrumented_int_ops!(AtomicU32, u32);

        instrumented_atomic! {
            /// Instrumented `AtomicU64` (see [`AtomicU32`]).
            AtomicU64, AtomicU64, u64
        }
        instrumented_int_ops!(AtomicU64, u64);

        instrumented_atomic! {
            /// Instrumented `AtomicUsize` (see [`AtomicU32`]).
            AtomicUsize, AtomicUsize, usize
        }
        instrumented_int_ops!(AtomicUsize, usize);

        instrumented_atomic! {
            /// Instrumented `AtomicBool` (see [`AtomicU32`]).
            AtomicBool, AtomicBool, bool
        }

        impl AtomicBool {
            /// Atomic bitwise or, returning the previous value.
            #[inline]
            pub fn fetch_or(&self, value: bool, order: Ordering) -> bool {
                schedule(YieldKind::Op);
                self.inner.fetch_or(value, order)
            }

            /// Atomic bitwise and, returning the previous value.
            #[inline]
            pub fn fetch_and(&self, value: bool, order: Ordering) -> bool {
                schedule(YieldKind::Op);
                self.inner.fetch_and(value, order)
            }
        }

        /// Instrumented `AtomicPtr<T>` (see [`AtomicU32`]).
        pub struct AtomicPtr<T> {
            inner: atomic::AtomicPtr<T>,
        }

        impl<T> AtomicPtr<T> {
            /// Creates a new instrumented atomic pointer.
            pub const fn new(ptr: *mut T) -> AtomicPtr<T> {
                AtomicPtr {
                    inner: atomic::AtomicPtr::new(ptr),
                }
            }

            /// Atomic load (scheduling point).
            #[inline]
            pub fn load(&self, order: Ordering) -> *mut T {
                schedule(YieldKind::Op);
                self.inner.load(order)
            }

            /// Atomic store (scheduling point).
            #[inline]
            pub fn store(&self, ptr: *mut T, order: Ordering) {
                schedule(YieldKind::Op);
                self.inner.store(ptr, order);
            }

            /// Atomic swap (scheduling point).
            #[inline]
            pub fn swap(&self, ptr: *mut T, order: Ordering) -> *mut T {
                schedule(YieldKind::Op);
                self.inner.swap(ptr, order)
            }

            /// Atomic compare-exchange (scheduling point).
            #[inline]
            pub fn compare_exchange(
                &self,
                current: *mut T,
                new: *mut T,
                success: Ordering,
                failure: Ordering,
            ) -> Result<*mut T, *mut T> {
                schedule(YieldKind::Op);
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Mutable access (exclusive borrow; no scheduling).
            #[inline]
            pub fn get_mut(&mut self) -> &mut *mut T {
                self.inner.get_mut()
            }
        }

        impl<T> Default for AtomicPtr<T> {
            fn default() -> Self {
                AtomicPtr::new(std::ptr::null_mut())
            }
        }

        impl<T> std::fmt::Debug for AtomicPtr<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }
    }
}
