//! Linearizability model for the DLHT (`dcache-core/src/dlht.rs`).
//!
//! Concurrent `insert_raw` / `remove_raw` / `lookup` calls on the real
//! copy-chain-and-CAS table are recorded as a step-stamped history and
//! checked against a sequential per-signature register with the Wing &
//! Gong search in `dst::linearize`. In this model every signature is
//! only ever paired with one dentry id, so the sequential reference is
//! a map from signature slot to `Option<DentryId>`.

use dcache_core::model;
use dcache_core::{Dentry, Dlht, HashKey, Signature};
use dst::linearize::{History, Sequential};
use dst::sync::Arc;

/// Sequential reference: one register per signature slot.
#[derive(Clone)]
struct SigMap {
    slots: Vec<Option<u64>>,
}

#[derive(Clone, Debug)]
enum Op {
    /// Publish slot `i`'s dentry.
    Insert(usize),
    /// Remove slot `i`'s dentry.
    Remove(usize),
    /// Look slot `i` up, observing `Some(id)` or `None`.
    Lookup(usize),
}

impl Sequential for SigMap {
    type Op = Op;
    type Ret = Option<u64>;

    fn apply(&mut self, op: &Op) -> Option<u64> {
        match *op {
            Op::Insert(i) => {
                self.slots[i] = Some(id_for(i));
                None
            }
            Op::Remove(i) => {
                self.slots[i] = None;
                None
            }
            Op::Lookup(i) => self.slots[i],
        }
    }
}

fn id_for(slot: usize) -> u64 {
    slot as u64 + 1
}

struct Fixture {
    table: Arc<Dlht>,
    sigs: Vec<Signature>,
    dentries: Vec<std::sync::Arc<Dentry>>,
}

fn fixture(nslots: usize) -> Arc<Fixture> {
    fixture_with(nslots, true)
}

/// `open` selects the §13 open-addressed bucket-group layout (the
/// default) or the pre-overhaul pointer-chain layout — both remain live
/// (the layout ablation's "before" column) and both must linearize.
fn fixture_with(nslots: usize, open: bool) -> Arc<Fixture> {
    let key = HashKey::from_seed(42);
    // A tiny table so distinct signatures collide into shared chains and
    // mutators genuinely race on the same bucket head CAS.
    let table = Dlht::new_with_layout(0, 1 << 2, true, open);
    let sigs: Vec<Signature> = (0..nslots)
        .map(|i| key.hash_components([format!("slot{i}").as_bytes()]))
        .collect();
    let dentries: Vec<_> = (0..nslots).map(|i| model::dentry(id_for(i), "m")).collect();
    Arc::new(Fixture {
        table,
        sigs,
        dentries,
    })
}

/// Runs `ops` against the real table, recording each with its
/// invocation/response step interval.
fn run_ops(fx: &Fixture, ops: &[Op]) -> History<SigMap> {
    let mut h = History::new();
    for op in ops {
        let invoked = dst::step();
        let ret = match *op {
            Op::Insert(i) => {
                model::dlht_insert(&fx.table, fx.sigs[i], &fx.dentries[i]);
                None
            }
            Op::Remove(i) => {
                model::dlht_remove(&fx.table, &fx.sigs[i], id_for(i));
                None
            }
            Op::Lookup(i) => fx.table.lookup(&fx.sigs[i]).map(|d| d.id()),
        };
        h.record(op.clone(), ret, invoked, dst::step());
    }
    h
}

fn linearizes_body(threads: &'static [&'static [Op]], open: bool) {
    let fx = fixture_with(3, open);
    let handles: Vec<_> = threads[1..]
        .iter()
        .map(|ops| {
            let fx = fx.clone();
            dst::thread::spawn(move || run_ops(&fx, ops))
        })
        .collect();
    let mut history = run_ops(&fx, threads[0]);
    for handle in handles {
        history.extend(handle.join().unwrap());
    }
    let initial = SigMap {
        slots: vec![None; 3],
    };
    if let Err(e) = history.check(initial) {
        panic!("DLHT history not linearizable: {e}");
    }
}

#[test]
fn insert_remove_lookup_linearize_against_register_map() {
    // Two mutators + the main thread reading: contention on slot 0 plus
    // independent traffic on slots 1 and 2 sharing the same 4-bucket
    // table.
    static THREADS: [&[Op]; 3] = [
        &[Op::Lookup(0), Op::Lookup(1), Op::Lookup(0)],
        &[Op::Insert(0), Op::Insert(1), Op::Remove(0)],
        &[Op::Insert(2), Op::Lookup(0), Op::Lookup(2)],
    ];
    dst::check(
        "dlht-linearizability",
        dst::Config::default()
            .iterations(1500)
            .seed(0x71)
            .max_steps(60_000)
            .from_env(),
        || linearizes_body(&THREADS, true),
    );
}

#[test]
fn insert_remove_lookup_linearize_in_chained_layout() {
    // Same history set against the pre-overhaul pointer-chain layout.
    static THREADS: [&[Op]; 3] = [
        &[Op::Lookup(0), Op::Lookup(1), Op::Lookup(0)],
        &[Op::Insert(0), Op::Insert(1), Op::Remove(0)],
        &[Op::Insert(2), Op::Lookup(0), Op::Lookup(2)],
    ];
    dst::check(
        "dlht-linearizability-chained",
        dst::Config::default()
            .iterations(1500)
            .seed(0x74)
            .max_steps(60_000)
            .from_env(),
        || linearizes_body(&THREADS, false),
    );
}

#[test]
fn racing_mutators_on_one_signature_linearize() {
    // Insert and remove hammer the SAME signature from two threads while
    // readers validate: the copy-chain CAS loop must serialize them.
    static THREADS: [&[Op]; 3] = [
        &[Op::Lookup(0), Op::Lookup(0), Op::Lookup(0)],
        &[Op::Insert(0), Op::Remove(0)],
        &[Op::Insert(0), Op::Remove(0)],
    ];
    dst::check(
        "dlht-single-sig-race",
        dst::Config::default()
            .iterations(1500)
            .seed(0x72)
            .max_steps(60_000)
            .from_env(),
        || linearizes_body(&THREADS, true),
    );
}

#[test]
fn racing_mutators_linearize_in_chained_layout() {
    static THREADS: [&[Op]; 3] = [
        &[Op::Lookup(0), Op::Lookup(0), Op::Lookup(0)],
        &[Op::Insert(0), Op::Remove(0)],
        &[Op::Insert(0), Op::Remove(0)],
    ];
    dst::check(
        "dlht-single-sig-race-chained",
        dst::Config::default()
            .iterations(1500)
            .seed(0x75)
            .max_steps(60_000)
            .from_env(),
        || linearizes_body(&THREADS, false),
    );
}

#[test]
fn dead_dentries_never_returned_concurrently() {
    // A dentry marked dead mid-race must never come back from lookup,
    // whatever the interleaving (lookup re-checks liveness after the
    // weak upgrade).
    dst::check(
        "dlht-dead-skip",
        dst::Config::default()
            .iterations(1000)
            .seed(0x73)
            .max_steps(60_000)
            .from_env(),
        || {
            let fx = fixture(1);
            model::dlht_insert(&fx.table, fx.sigs[0], &fx.dentries[0]);
            // Kill-completion stamp in scheduler steps (0 = not yet);
            // plain std atomic so the bookkeeping adds no schedule
            // points.
            let done = Arc::new(std::sync::atomic::AtomicU64::new(0));
            let killer = {
                let fx = fx.clone();
                let done = done.clone();
                dst::thread::spawn(move || {
                    model::kill(&fx.dentries[0]);
                    done.store(dst::step(), std::sync::atomic::Ordering::Relaxed);
                })
            };
            // Schedule point so there are explorable schedules where the
            // kill fully completes before `start` is stamped.
            let gate = dst::sync::atomic::AtomicU64::new(0);
            let _ = gate.load(std::sync::atomic::Ordering::Relaxed);
            let start = dst::step();
            let found = fx.table.lookup(&fx.sigs[0]).is_some();
            let done_at = done.load(std::sync::atomic::Ordering::Relaxed);
            if found && done_at != 0 && done_at < start {
                panic!("lookup returned a dentry whose death completed before the lookup began");
            }
            killer.join().unwrap();
            assert!(
                fx.table.lookup(&fx.sigs[0]).is_none(),
                "dead dentry still visible after kill completed"
            );
        },
    );
}
