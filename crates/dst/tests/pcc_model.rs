//! Model checks for Prefix Check Cache coherence (`dcache-core/src/pcc.rs`).
//!
//! The invariant (§3.2): a memoized prefix check is only accepted while
//! the dentry's seq counter still equals the memoized version, so any
//! permission or structure change that *bumps the counter* invalidates
//! every PCC entry for the subtree without touching the PCCs. The model
//! races a chmod-analog writer against a fastpath reader and asserts the
//! PCC hit never survives a change that completed before the reader
//! began. The injected bug omits the seq bump — the exact omission the
//! discipline exists to catch — and must be found with a replayable
//! seed.

use dcache_core::model;
use dcache_core::Pcc;
use dst::sync::Arc;

/// `true` = writer bumps the seq after mutating (correct §3.2 flow);
/// `false` = the injected omission.
fn chmod_race_body(bump: bool) {
    let d = model::dentry(7, "dir");
    let pcc = Arc::new(Pcc::new(1024));
    // The credential walked to `d` earlier and memoized the successful
    // prefix check at the current version.
    pcc.insert(7, d.seq());

    // Writer-completion stamp in scheduler steps (0 = not yet). Plain
    // std atomic on purpose: it is bookkeeping for the assertion, not
    // part of the modeled protocol, so it must not add schedule points.
    let done = Arc::new(std::sync::atomic::AtomicU64::new(0));

    let writer = {
        let d = d.clone();
        let done = done.clone();
        dst::thread::spawn(move || {
            // chmod: revoke search permission (a state mutation that
            // republishes the snapshot), then bump the seq counter so
            // every memoized prefix check through `d` dies.
            model::rename(&d, "dir'");
            if bump {
                d.bump_seq();
            }
            done.store(dst::step(), std::sync::atomic::Ordering::Relaxed);
        })
    };

    // Fastpath reader: sample the dentry's current seq, then consult the
    // PCC with it. The gate load is a schedule point, so there are
    // explorable schedules where the writer runs to completion before
    // `start` is stamped — the schedules the assertion below inspects.
    let gate = dst::sync::atomic::AtomicU64::new(0);
    let _ = gate.load(std::sync::atomic::Ordering::Relaxed);
    let start = dst::step();
    let cur = d.seq();
    let hit = pcc.check(7, cur);
    let done_at = done.load(std::sync::atomic::Ordering::Relaxed);
    if hit && done_at != 0 && done_at < start {
        // The chmod fully completed before this reader even started,
        // yet the memoized check validated: stale permission accepted.
        panic!(
            "PCC hit survived a completed chmod (done at step {done_at}, read began at {start})"
        );
    }
    writer.join().unwrap();

    // Sequential epilogue: after the race settles, the memoized entry
    // must be dead iff the writer bumped.
    let settled = pcc.check(7, d.seq());
    if bump {
        assert!(!settled, "PCC entry survived the seq bump");
    }
}

#[test]
fn pcc_hit_never_survives_completed_chmod() {
    dst::check(
        "pcc-chmod-coherence",
        dst::Config::default()
            .iterations(5000)
            .seed(0x81)
            .from_env(),
        || chmod_race_body(true),
    );
}

#[test]
fn injected_missing_seq_bump_is_caught_and_replays() {
    let body = || chmod_race_body(false);
    let report = dst::explore(dst::Config::default().iterations(4000).seed(0x82), body);
    let failure = report
        .failure
        .expect("the checker must catch the omitted seq bump");
    assert!(
        failure.message.contains("PCC hit survived"),
        "unexpected failure: {}",
        failure.message
    );
    let msg = dst::replay(failure.seed, failure.policy, body).expect("seed must reproduce");
    assert!(msg.contains("PCC hit survived"));
    let msg = dst::replay_trace(failure.trace.clone(), body).expect("trace must reproduce");
    assert!(
        msg.contains("PCC hit survived"),
        "trace replay diverged: {msg}"
    );

    // The correct flow survives the exact counterexample schedule.
    assert!(
        dst::replay(failure.seed, failure.policy, || chmod_race_body(true)).is_none(),
        "correct seq-bump flow failed under the counterexample schedule"
    );
}

#[test]
fn forget_beats_racing_checks() {
    // `forget` (access revocation) must also never lose to a concurrent
    // reader: after it completes, checks at any version miss.
    dst::check(
        "pcc-forget",
        dst::Config::default()
            .iterations(3000)
            .seed(0x83)
            .from_env(),
        || {
            let pcc = Arc::new(Pcc::new(1024));
            pcc.insert(9, 0);
            let revoker = {
                let pcc = pcc.clone();
                dst::thread::spawn(move || pcc.forget(9))
            };
            // Racing check: either outcome is fine mid-race.
            let _ = pcc.check(9, 0);
            revoker.join().unwrap();
            assert!(!pcc.check(9, 0), "memoized check survived forget()");
        },
    );
}
