//! Model checks for epoch-based reclamation (`vendor/crossbeam-epoch`):
//! a pinned reader's loaded pointer must never be freed underneath it.
//!
//! Under the `dst` feature the vendored crate tracks every epoch-managed
//! allocation and panics on dereference-after-free, so a reclamation bug
//! surfaces as a deterministic "use-after-free" panic at the *reader's*
//! dereference — not as silent memory corruption. The injected bug sets
//! the collector's reclamation slack to 0 via
//! `crossbeam_epoch::dst_testing`, making `collect()` free garbage from
//! the current epoch, i.e. garbage pinned readers may still hold.

use crossbeam_epoch::{self as epoch, Atomic, Owned};
use dst::sync::Arc;
use std::sync::atomic::Ordering;

/// One reader pins, loads the shared pointer, and dereferences it twice
/// (the second deref widens the race window); one updater swaps in a new
/// node, retires the old one, and pumps the collector.
fn swap_and_reclaim_body() {
    let slot = Arc::new(Atomic::new(0u64));

    let reader = {
        let slot = slot.clone();
        dst::thread::spawn(move || {
            let guard = epoch::pin();
            let p = slot.load(Ordering::Acquire, &guard);
            if let Some(v) = unsafe { p.as_ref() } {
                let first = *v;
                // Yield while still holding the pointer: raw derefs are
                // not scheduling points, so this models the real-time gap
                // in which the updater may retire the node and pump the
                // collector. The pin must keep the allocation live across
                // it.
                dst::thread::yield_now();
                let again = unsafe { p.as_ref() }.unwrap();
                assert_eq!(first, *again);
            }
        })
    };

    {
        let guard = epoch::pin();
        let old = slot.swap(Owned::new(1u64), Ordering::AcqRel, &guard);
        unsafe { guard.defer_destroy(old) };
    }
    // Pump the collector hard: each pin/flush tries to advance the
    // epoch and run ripe deferred destructions.
    for _ in 0..3 {
        epoch::pin().flush();
    }

    reader.join().unwrap();

    // Tear down the remaining node through the collector as well.
    {
        let guard = epoch::pin();
        let last = slot.swap(epoch::Shared::null(), Ordering::AcqRel, &guard);
        unsafe { guard.defer_destroy(last) };
    }
}

#[test]
fn pinned_readers_never_observe_freed_memory() {
    dst::check(
        "epoch-no-uaf",
        dst::Config::default()
            .iterations(4000)
            .seed(0x61)
            .from_env(),
        swap_and_reclaim_body,
    );
}

#[test]
fn injected_zero_slack_collector_frees_under_pinned_reader() {
    // slack 0 makes `collect()` run destructions from the *current*
    // epoch — exactly the mistake of reclaiming without waiting out
    // pinned readers. The tracked allocator must catch the reader's
    // dereference of freed memory, with a replayable seed.
    let body = || {
        crossbeam_epoch::dst_testing::set_collect_slack(0);
        swap_and_reclaim_body();
    };
    let report = dst::explore(dst::Config::default().iterations(3000).seed(0x62), body);
    let failure = report
        .failure
        .expect("the checker must catch reclamation under a pinned reader");
    assert!(
        failure.message.contains("use-after-free"),
        "expected a tracked-allocation UAF, got: {}",
        failure.message
    );
    let msg = dst::replay(failure.seed, failure.policy, body).expect("seed must reproduce");
    assert!(msg.contains("use-after-free"));
    let msg = dst::replay_trace(failure.trace.clone(), body).expect("trace must reproduce");
    assert!(msg.contains("use-after-free"));
}

#[test]
fn correct_slack_survives_the_uaf_counterexample_schedule() {
    // Replaying a zero-slack counterexample seed against the CORRECT
    // collector (default slack) must come back clean: the bug is in the
    // injected knob, not in the schedule.
    let buggy = || {
        crossbeam_epoch::dst_testing::set_collect_slack(0);
        swap_and_reclaim_body();
    };
    let report = dst::explore(dst::Config::default().iterations(3000).seed(0x63), buggy);
    let failure = report.failure.expect("zero slack must fail");
    assert!(
        dst::replay(failure.seed, failure.policy, swap_and_reclaim_body).is_none(),
        "correct collector failed under the counterexample schedule"
    );
}
