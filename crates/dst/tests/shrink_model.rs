//! Model checks for memory-pressure eviction racing the lock-free read
//! path (`Dcache::shrink_to_bytes` → `unhash(reclaim = true)`,
//! DESIGN.md §10).
//!
//! The shrinker's eviction discipline is: set `FLAG_DEAD`, remove the
//! dentry from the DLHT, bump the seq counter — in that order. A
//! lock-free reader revalidating a held dentry (the PCC-memoized
//! fastpath) checks the dead flag *and* seq stability, so a completed
//! eviction can never slip under a validated read: if the bump landed
//! before the window, the dead flag (set even earlier) is visible; if
//! it landed inside, the seq check fails. The `injected_*` test omits
//! the dead flag and requires the checker to find the resulting stale
//! validation — and to reproduce it from the reported seed and trace.

use dcache_core::model;
use dcache_core::{Dentry, Dlht, HashKey};
use dst::sync::atomic::{AtomicBool, Ordering};
use dst::sync::Arc;

/// The fastpath revalidation of an already-held dentry: seq sample,
/// dead-flag check, seq re-sample. Returns `Some(seq)` when the read
/// validated.
fn revalidate(d: &Dentry) -> Option<u64> {
    let s0 = d.seq();
    if d.is_dead() {
        return None;
    }
    if d.seq() != s0 {
        return None;
    }
    Some(s0)
}

/// The shrinker's per-dentry eviction, mirroring `Dcache::unhash`
/// (`reclaim = true`): dead flag first, table removal, seq bump last.
fn evict(table: &Dlht, sig: &dcache_core::Signature, d: &Arc<Dentry>, done: &AtomicBool) {
    model::kill(d);
    model::dlht_remove(table, sig, d.id());
    d.bump_seq();
    done.store(true, Ordering::Release);
}

#[test]
fn validated_reads_never_overlap_a_completed_eviction() {
    // If the reader validates (not dead, seq stable), the eviction
    // cannot have completed before the window opened — the answer is
    // at worst the pre-eviction truth, never a freed/evicted dentry
    // masquerading as live.
    dst::check(
        "shrink-revalidate",
        dst::Config::default()
            .iterations(4000)
            .seed(0x60)
            .from_env(),
        || {
            let key = HashKey::from_seed(7);
            let table = Dlht::new(0, 1 << 2);
            let sig = key.hash_components([b"victim".as_slice()]);
            let d = model::dentry(1, "victim");
            model::dlht_insert(&table, sig, &d);
            let done = Arc::new(AtomicBool::new(false));
            let shrinker = {
                let d = d.clone();
                let done = done.clone();
                let table = table.clone();
                dst::thread::spawn(move || evict(&table, &sig, &d, &done))
            };
            for _ in 0..2 {
                let done_before = done.load(Ordering::Acquire);
                if revalidate(&d).is_some() {
                    assert!(
                        !done_before,
                        "reader validated a dentry whose eviction had already completed"
                    );
                }
            }
            shrinker.join().unwrap();
            // Post-eviction, revalidation must refuse — no resurrection.
            assert!(revalidate(&d).is_none(), "evicted dentry revalidated");
            assert!(table.lookup(&sig).is_none(), "evicted dentry still hashed");
        },
    );
}

#[test]
fn injected_missing_dead_flag_is_caught_and_replays() {
    // The eviction "forgets" FLAG_DEAD (remove + bump only). A reader
    // whose window opens after the bump now validates a fully evicted
    // dentry — exactly the stale read the dead flag exists to prevent.
    // The checker must find that schedule and replay it.
    let body = || {
        let key = HashKey::from_seed(7);
        let table = Dlht::new(0, 1 << 2);
        let sig = key.hash_components([b"victim".as_slice()]);
        let d = model::dentry(1, "victim");
        model::dlht_insert(&table, sig, &d);
        let done = Arc::new(AtomicBool::new(false));
        let shrinker = {
            let d = d.clone();
            let done = done.clone();
            let table = table.clone();
            dst::thread::spawn(move || {
                model::dlht_remove(&table, &sig, d.id());
                d.bump_seq();
                done.store(true, Ordering::Release);
            })
        };
        let done_before = done.load(Ordering::Acquire);
        if revalidate(&d).is_some() {
            assert!(
                !done_before,
                "reader validated a dentry whose eviction had already completed"
            );
        }
        shrinker.join().unwrap();
    };
    let report = dst::explore(dst::Config::default().iterations(4000).seed(0x61), body);
    let failure = report
        .failure
        .expect("the checker must catch the missing dead flag");
    assert!(
        failure.message.contains("eviction had already completed"),
        "unexpected failure: {}",
        failure.message
    );
    let msg = dst::replay(failure.seed, failure.policy, body).expect("seed must reproduce");
    assert!(msg.contains("eviction had already completed"));
    let msg = dst::replay_trace(failure.trace.clone(), body).expect("trace must reproduce");
    assert!(msg.contains("eviction had already completed"));
}

#[test]
fn lookups_racing_bulk_eviction_see_live_or_nothing() {
    // A shrinker sweeps a shared-bucket chain while readers hammer
    // lookups. The tracked allocator fails the execution if a reader
    // ever touches a reclaimed chain node (freed read); the assertions
    // fail it if a lookup returns an evicted-and-bumped dentry as
    // validated, or if anything resurrects after the sweep.
    dst::check(
        "shrink-bulk-sweep",
        dst::Config::default()
            .iterations(2500)
            .seed(0x62)
            .max_steps(60_000)
            .from_env(),
        || {
            let key = HashKey::from_seed(9);
            // 4 entries in a 2-bucket table: chains are shared, so
            // removal rewrites nodes readers are traversing.
            let table = Dlht::new(0, 1 << 1);
            let sigs: Vec<_> = (0..4)
                .map(|i| key.hash_components([format!("e{i}").as_bytes()]))
                .collect();
            let dentries: Vec<_> = (0..4).map(|i| model::dentry(i as u64 + 1, "e")).collect();
            for (sig, d) in sigs.iter().zip(&dentries) {
                model::dlht_insert(&table, *sig, d);
            }
            let done = Arc::new(AtomicBool::new(false));
            let shrinker = {
                let table = table.clone();
                let sigs = sigs.clone();
                let dentries = dentries.clone();
                let done = done.clone();
                dst::thread::spawn(move || {
                    for (sig, d) in sigs.iter().zip(&dentries) {
                        let flag = AtomicBool::new(false);
                        evict(&table, sig, d, &flag);
                    }
                    done.store(true, Ordering::Release);
                })
            };
            let reader = {
                let table = table.clone();
                let sigs = sigs.clone();
                dst::thread::spawn(move || {
                    for sig in &sigs {
                        if let Some(d) = table.lookup(sig) {
                            // Touch the dentry: the tracked allocator
                            // catches it if the chain node was freed.
                            let _ = d.id();
                            let _ = revalidate(&d);
                        }
                    }
                })
            };
            for sig in &sigs {
                if done.load(Ordering::Acquire) {
                    assert!(
                        table.lookup(sig).is_none(),
                        "entry resurrected after the sweep completed"
                    );
                }
            }
            shrinker.join().unwrap();
            reader.join().unwrap();
            for (sig, d) in sigs.iter().zip(&dentries) {
                assert!(table.lookup(sig).is_none(), "sweep left an entry hashed");
                assert!(revalidate(d).is_none(), "evicted dentry still validates");
            }
        },
    );
}
