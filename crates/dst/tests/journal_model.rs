//! Model check for the metadata journal's write-ordering contract
//! (`dc-fs/src/memfs/journal.rs`, DESIGN.md §11).
//!
//! The journal's durability argument rests on one ordering discipline
//! per transaction: **payload blocks reach the device, then the
//! checksummed commit record, then (and only then) the in-place
//! checkpoint writes**. A power cut observes the device at an arbitrary
//! point in that stream, so at every instant the durable image must
//! satisfy `payload ≥ commit ≥ in-place` (each side counted in
//! transactions). Recovery reads the same relation right-to-left: any
//! in-place state it finds is covered by a commit record, and any
//! commit record it trusts has its payload.
//!
//! The model keeps the three durable regions as one atomic word each —
//! the transaction number whose data last reached that region — and
//! runs the real protocol under the deterministic scheduler with a
//! concurrent crash observer. The `injected_*` test reverses one arc
//! (checkpoint before commit — the bug a missing flush barrier causes):
//! the checker must find a schedule where recovery would replay a
//! transaction whose commit record never existed, and must reproduce it
//! from the reported seed and trace.

use dst::sync::atomic::{AtomicU64, Ordering};
use dst::sync::Arc;

/// The durable device image, one word per region. Each store models
/// one flush (`flush_blocks`) completing — the only granularity a
/// power cut can split.
struct Device {
    /// Highest txn whose journal payload (descriptor + data blocks) is
    /// durable.
    payload: AtomicU64,
    /// Highest txn whose commit record is durable.
    commit: AtomicU64,
    /// Highest txn reflected by in-place (checkpointed) metadata.
    inplace: AtomicU64,
}

impl Device {
    fn new() -> Device {
        Device {
            payload: AtomicU64::new(0),
            commit: AtomicU64::new(0),
            inplace: AtomicU64::new(0),
        }
    }

    /// One journaled transaction. `commit_first` is the real protocol;
    /// the injected bug flips the last two flushes.
    fn commit_txn(&self, n: u64, commit_first: bool) {
        self.payload.store(n, Ordering::Release);
        if commit_first {
            self.commit.store(n, Ordering::Release);
            self.inplace.store(n, Ordering::Release);
        } else {
            // BUG: checkpoint writes overtake the commit record — what
            // happens if the commit record is written into the page
            // cache before the payload flush and eviction pushes it or
            // the in-place blocks out early.
            self.inplace.store(n, Ordering::Release);
            self.commit.store(n, Ordering::Release);
        }
    }

    /// What mount-time recovery would find after a cut at this instant.
    /// Reads run right-to-left (in-place first), mirroring recovery: it
    /// trusts in-place state only as far as commit records cover it,
    /// and commit records only as far as payload exists.
    fn observe(&self) -> (u64, u64, u64) {
        let inplace = self.inplace.load(Ordering::Acquire);
        let commit = self.commit.load(Ordering::Acquire);
        let payload = self.payload.load(Ordering::Acquire);
        (payload, commit, inplace)
    }
}

fn check_crash_point(d: &Device) {
    let (payload, commit, inplace) = d.observe();
    assert!(
        commit <= payload,
        "commit record {commit} durable before its payload (payload at {payload}): \
         recovery would trust a checksummed record whose data blocks are garbage"
    );
    assert!(
        inplace <= commit,
        "in-place metadata at txn {inplace} but last commit record is {commit}: \
         a cut here leaves changes fsck can see with no journal record to redo them"
    );
}

#[test]
fn commit_record_ordering_holds_at_every_crash_point() {
    dst::check(
        "journal-commit-order",
        dst::Config::default()
            .iterations(6000)
            .seed(0x6A11)
            .from_env(),
        || {
            let d = Arc::new(Device::new());
            let writer = {
                let d = d.clone();
                dst::thread::spawn(move || {
                    d.commit_txn(1, true);
                    d.commit_txn(2, true);
                })
            };
            // The crash observer: every interleaving point is a
            // possible power cut.
            for _ in 0..3 {
                check_crash_point(&d);
            }
            writer.join().unwrap();
            check_crash_point(&d);
            assert_eq!(d.observe(), (2, 2, 2));
        },
    );
}

#[test]
fn injected_checkpoint_before_commit_is_caught_and_replays() {
    let body = || {
        let d = Arc::new(Device::new());
        let writer = {
            let d = d.clone();
            dst::thread::spawn(move || d.commit_txn(1, false))
        };
        for _ in 0..2 {
            check_crash_point(&d);
        }
        writer.join().unwrap();
    };
    let report = dst::explore(dst::Config::default().iterations(4000).seed(0x6A12), body);
    let failure = report
        .failure
        .expect("the checker must catch checkpoint-before-commit");
    assert!(
        failure.message.contains("no journal record to redo"),
        "unexpected failure: {}",
        failure.message
    );
    // Seed replay and exact-trace replay both reproduce the violation.
    let msg = dst::replay(failure.seed, failure.policy, body).expect("seed must reproduce");
    assert!(msg.contains("no journal record to redo"));
    let msg = dst::replay_trace(failure.trace.clone(), body).expect("trace must reproduce");
    assert!(msg.contains("no journal record to redo"));
}
