//! Model checks for namespace teardown racing the read path
//! (`Dcache::retire_dlht` vs `Dcache::dlht_for`, DESIGN.md §14).
//!
//! Teardown's discipline: take the retired-set lock, tombstone the
//! namespace id, remove the table from the map — while `dlht_for`'s
//! lazy-create path checks the tombstone *under the same lock* before
//! inserting. The invariant: once a retire completes, the map never
//! holds a table for that namespace again; a racing walker gets an
//! orphan table that dies with its handle. The `injected_*` test drops
//! the tombstone check — the exact omission that would let a walker
//! resurrect a dead tenant's map entry forever — and the checker must
//! find it and replay it from the reported seed and trace.

use dcache_core::model;
use dcache_core::{Dcache, DcacheConfig, HashKey};
use dst::sync::{Arc, Mutex};

const NS: u64 = 5;

/// The real thing: `retire_dlht` racing a walker that resolves the
/// namespace handle and publishes through it. In every schedule the
/// walker keeps full service on whatever table it got, and the map
/// ends (and stays) empty of the retired namespace.
#[test]
fn retired_namespace_never_resurrects_in_the_map() {
    dst::check(
        "teardown-no-resurrect",
        dst::Config::default()
            .iterations(3000)
            .seed(0x91)
            .max_steps(60_000)
            .from_env(),
        || {
            let dcache = Dcache::new(
                DcacheConfig::optimized()
                    .with_seed(7)
                    .with_tenant_buckets(1 << 2),
            );
            let retirer = {
                let dcache = dcache.clone();
                dst::thread::spawn(move || dcache.retire_dlht(NS))
            };
            // The walker: resolve the namespace's table and publish an
            // entry through the handle — exactly what an in-flight
            // lookup does mid-teardown.
            let table = dcache.dlht_for(NS);
            let sig = HashKey::from_seed(7).hash_components([b"f".as_slice()]);
            let d = model::dentry(1, "f");
            if dcache.dlht_insert_in(&table, sig, &d) {
                // Whichever table the walker holds — registered or
                // orphan — it keeps serving until the handle drops.
                assert!(
                    table.lookup(&sig).is_some(),
                    "in-flight reader lost service mid-teardown"
                );
            }
            retirer.join().unwrap();
            assert!(
                !dcache.ns_footprints().iter().any(|(id, _)| *id == NS),
                "retired namespace still registered in the map"
            );
            // A straggler resolving after the teardown gets an orphan:
            // usable, but never registered.
            let late = dcache.dlht_for(NS);
            let _ = late.lookup(&sig);
            assert!(
                !dcache.ns_footprints().iter().any(|(id, _)| *id == NS),
                "late walker resurrected the retired namespace"
            );
        },
    );
}

/// The map/tombstone protocol in miniature, with the bug injectable:
/// one namespace slot plus the retired flag, guarded by the same
/// two-lock discipline as `cache.rs`.
struct NsSlot {
    /// `Some(())` = a table is registered for the namespace.
    map: Mutex<Option<()>>,
    /// The tombstone `retire` plants before clearing the slot.
    retired: Mutex<bool>,
}

/// `dlht_for`'s lazy-create flow. `check_tombstone = false` is the
/// injected omission.
fn resolve(s: &NsSlot, check_tombstone: bool) {
    if s.map.lock().unwrap().is_some() {
        return;
    }
    let retired = s.retired.lock().unwrap();
    if check_tombstone && *retired {
        return; // orphan table: stay out of the map
    }
    *s.map.lock().unwrap() = Some(());
    drop(retired);
}

/// `retire_dlht`: tombstone and clear under one retired-lock hold.
fn retire(s: &NsSlot) {
    let mut retired = s.retired.lock().unwrap();
    *retired = true;
    *s.map.lock().unwrap() = None;
}

fn teardown_race_body(check_tombstone: bool) {
    let slot = Arc::new(NsSlot {
        map: Mutex::new(None),
        retired: Mutex::new(false),
    });
    let retirer = {
        let slot = slot.clone();
        dst::thread::spawn(move || retire(&slot))
    };
    resolve(&slot, check_tombstone);
    retirer.join().unwrap();
    // Retire has completed; nothing may sit in the map afterwards.
    assert!(
        slot.map.lock().unwrap().is_none(),
        "retired namespace resurrected in the map"
    );
}

#[test]
fn tombstone_check_beats_every_schedule() {
    dst::check(
        "teardown-tombstone",
        dst::Config::default()
            .iterations(4000)
            .seed(0x92)
            .from_env(),
        || teardown_race_body(true),
    );
}

#[test]
fn injected_missing_tombstone_is_caught_and_replays() {
    let body = || teardown_race_body(false);
    let report = dst::explore(dst::Config::default().iterations(4000).seed(0x93), body);
    let failure = report
        .failure
        .expect("the checker must catch the missing tombstone check");
    assert!(
        failure.message.contains("resurrected"),
        "unexpected failure: {}",
        failure.message
    );
    let msg = dst::replay(failure.seed, failure.policy, body).expect("seed must reproduce");
    assert!(msg.contains("resurrected"));
    let msg = dst::replay_trace(failure.trace.clone(), body).expect("trace must reproduce");
    assert!(msg.contains("resurrected"), "trace replay diverged: {msg}");

    // The correct flow survives the exact counterexample schedule.
    assert!(
        dst::replay(failure.seed, failure.policy, || teardown_race_body(true)).is_none(),
        "tombstone-checked flow failed under the counterexample schedule"
    );
}
